"""Suite-orchestration smoke: a reduced figure run through one shared service.

Runs Figure 7(a) on the benchmark subset twice — serially (``jobs=1``)
and through the shared solver service with two workers and batched
compact dispatch — and gates on:

* **bit-identical results**: speedups, estimated speedups and task counts
  must match the serial run exactly (the determinism contract of
  ``core/schedule.py``);
* the pipeline thresholds in ``benchmarks/pipeline_thresholds.json``:
  pooled suite wall time vs. serial, worker utilization, and compact-wire
  bytes shipped per dispatched solve.

The threshold checks only apply when the pool actually came up; in
sandboxes without process pools the run must still complete (inline
fallback) and stay bit-identical.
"""

from __future__ import annotations

import json
import pathlib

from repro.core.parallelize import ParallelizeOptions
from repro.toolflow.experiments import run_figure

from benchmarks.conftest import record_suite

THRESHOLDS_PATH = pathlib.Path(__file__).parent / "pipeline_thresholds.json"


def test_suite_smoke_jobs2(benchmark, benchmarks_under_test):
    thresholds = json.loads(THRESHOLDS_PATH.read_text(encoding="utf-8"))
    # jobs=1 options (not None) bypass the default-option run cache, so
    # the serial reference really executes even if another benchmark
    # module already ran these cells in this session.
    serial = run_figure(
        "7a", benchmarks=benchmarks_under_test,
        parallelize_options=ParallelizeOptions(jobs=1),
    )
    box = {}

    def run():
        box["fig"] = run_figure(
            "7a", benchmarks=benchmarks_under_test,
            parallelize_options=ParallelizeOptions(jobs=2),
        )
        return box["fig"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    pooled = box["fig"]

    for name in benchmarks_under_test:
        for approach in ("homogeneous", "heterogeneous"):
            s = serial.runs[name][approach]
            p = pooled.runs[name][approach]
            assert p.speedup == s.speedup, (name, approach)
            assert p.estimated_speedup == s.estimated_speedup, (name, approach)
            assert p.parallel_us == s.parallel_us, (name, approach)
            assert p.num_tasks == s.num_tasks, (name, approach)
            assert p.stats.num_ilps == s.stats.num_ilps, (name, approach)
            assert p.stats.total_variables == s.stats.total_variables
            assert p.stats.total_constraints == s.stats.total_constraints

    suite = pooled.suite
    assert suite is not None and serial.suite is not None
    record_suite("suite_smoke_jobs2", suite)
    benchmark.extra_info["suite_wall_seconds"] = round(suite.wall_seconds, 3)
    benchmark.extra_info["worker_utilization"] = round(
        suite.worker_utilization, 3
    )

    pool = suite.pool
    if pool.dispatched:  # pool came up: gate on the orchestration thresholds
        limit = (
            thresholds["max_suite_wall_factor_vs_serial"]
            * serial.suite.wall_seconds
            + thresholds["wall_slack_seconds"]
        )
        assert suite.wall_seconds <= limit, (
            f"pooled suite took {suite.wall_seconds:.1f}s "
            f"(serial {serial.suite.wall_seconds:.1f}s, limit {limit:.1f}s)"
        )
        assert suite.worker_utilization >= thresholds["min_worker_utilization"]
        per_solve = pool.bytes_shipped / pool.dispatched
        assert per_solve <= thresholds["max_bytes_per_dispatched_solve"], (
            f"{per_solve:.0f} bytes/solve over the compact wire"
        )
