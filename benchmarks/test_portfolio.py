"""Portfolio smoke: heuristic quality gates and the incumbent-race cell.

Two gates, thresholds in ``benchmarks/heuristic_thresholds.json``:

* **Quality** — a pure-heuristic run (``portfolio="heuristic"``) of every
  paper benchmark under platform configurations (A) and (B) must land
  within ``max_gap`` of the exact optimum, and every heuristic answer
  must pass the full certification pipeline (structural checks, static
  races, Eq. 1-18 certificate replay, trace sanitizing, mapping lint).

* **Race** — on the synthetic wide-AHTG cell
  (:func:`repro.bench_suite.synthetic.wide_ahtg_source`), racing the
  heuristic against warm-started branch-and-bound must beat the
  exact-only run by ``race.min_wall_factor`` in wall time at the same
  ``mip_rel_gap``: the injected incumbent meets the critical-path lower
  bound, so the warm solve terminates without search while the cold one
  enumerates the slot-packing tree. The warm run must also expand no
  more branch-and-bound nodes than the cold one and stay inside the
  relative-gap tolerance of the exact objective.

Results land in the ``portfolio`` block of ``BENCH_pipeline.json``
(schema ``repro-bench-pipeline-v4``, documented in
``docs/BENCHMARKS.md``).
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.analysis import certify_run
from repro.bench_suite.synthetic import wide_ahtg_source
from repro.cfront import parse_c_source
from repro.cfront.defuse import compute_call_summaries
from repro.core.parallelize import HeterogeneousParallelizer, ParallelizeOptions
from repro.htg.builder import BuildOptions, build_htg
from repro.platforms import config_a, config_b
from repro.timing.estimator import annotate_costs
from repro.toolflow.experiments import prepare_benchmark

from benchmarks.conftest import record_pipeline_row, record_portfolio

THRESHOLDS = json.loads(
    (pathlib.Path(__file__).parent / "heuristic_thresholds.json").read_text()
)

CONFIGS = {"A": config_a, "B": config_b}


def _parallelize(htg, platform, **options):
    parallelizer = HeterogeneousParallelizer(
        platform, ParallelizeOptions(**options)
    )
    start = time.perf_counter()
    result = parallelizer.parallelize(htg)
    return result, time.perf_counter() - start


@pytest.mark.parametrize("config", sorted(THRESHOLDS["configs"]))
def test_heuristic_gap_gate(config, benchmarks_under_test):
    platform = CONFIGS[config]("accelerator")
    max_gap = THRESHOLDS["max_gap"]
    rows = {}
    for name in benchmarks_under_test:
        _program, htg = prepare_benchmark(name, platform.total_cores)
        exact, exact_wall = _parallelize(htg, platform)
        heur, heur_wall = _parallelize(htg, platform, portfolio="heuristic")
        gap = (
            heur.best.exec_time_us - exact.best.exec_time_us
        ) / exact.best.exec_time_us
        rows[name] = {
            "exact_us": round(exact.best.exec_time_us, 3),
            "heuristic_us": round(heur.best.exec_time_us, 3),
            "gap": round(gap, 6),
            "exact_wall_seconds": round(exact_wall, 6),
            "heuristic_wall_seconds": round(heur_wall, 6),
            "heuristic_solves": heur.stats.pool.heuristic_solves,
        }
        record_pipeline_row(f"portfolio_{config}", name, rows[name])
        # Heuristic answers are feasible — never better than the optimum,
        # never beyond the gap gate, and certificate-clean end to end.
        assert gap >= -1e-6, (config, name, gap)
        assert gap <= max_gap, (config, name, gap)
        report = certify_run(heur)
        assert report.ok, (config, name, report.diagnostics())
    worst = max(r["gap"] for r in rows.values())
    record_portfolio(
        f"gap_gate_{config}",
        {"max_gap": max_gap, "worst_gap": round(worst, 6), "cells": len(rows)},
    )


def _synthetic_htg(platform, params):
    source = wide_ahtg_source(
        blocks=params["blocks"],
        base_iters=params["base_iters"],
        pole=params["pole"],
    )
    program = parse_c_source(source)
    func = program.entry("main")
    summaries = compute_call_summaries(program)
    cost_db = annotate_costs(program, func)
    return build_htg(
        program,
        func,
        cost_db=cost_db,
        options=BuildOptions(),
        total_cores=platform.total_cores,
        summaries=summaries,
    )


def test_race_beats_exact_on_wide_ahtg():
    gates = THRESHOLDS["race"]
    params = gates["synthetic"]
    platform = config_a("accelerator")
    htg = _synthetic_htg(platform, params)
    solver = dict(
        backend="bnb",
        mip_rel_gap=params["mip_rel_gap"],
        time_limit_s=params["time_limit_s"],
    )

    exact, exact_wall = _parallelize(htg, platform, **solver)
    race, race_wall = _parallelize(htg, platform, portfolio="race", **solver)
    exact_nodes = exact.stats.total_nodes
    race_nodes = race.stats.total_nodes
    factor = exact_wall / race_wall
    rel = (
        abs(race.best.exec_time_us - exact.best.exec_time_us)
        / exact.best.exec_time_us
    )

    metrics = {
        "exact_wall_seconds": round(exact_wall, 3),
        "race_wall_seconds": round(race_wall, 3),
        "wall_factor": round(factor, 2),
        "exact_bnb_nodes": exact_nodes,
        "race_bnb_nodes": race_nodes,
        "exact_us": round(exact.best.exec_time_us, 3),
        "race_us": round(race.best.exec_time_us, 3),
        "incumbents_injected": race.stats.pool.incumbents_injected,
        "mip_rel_gap": params["mip_rel_gap"],
    }
    record_pipeline_row("portfolio_race", "wide_ahtg", metrics)
    record_portfolio("race_cell", metrics)

    assert race.stats.pool.incumbents_injected > 0
    # Both runs solve to the same relative-gap tolerance: answers agree
    # within it, and the warm start must never *grow* the search tree.
    assert rel <= params["mip_rel_gap"], metrics
    assert race_nodes <= exact_nodes, metrics
    assert factor >= gates["min_wall_factor"], metrics
    assert race_wall <= gates["max_race_wall_seconds"], metrics
