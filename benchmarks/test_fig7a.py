"""Regenerates Figure 7(a): platform (A), accelerator scenario (I).

Paper numbers: homogeneous ~3.3x average (3-4x band for data-parallel
kernels), heterogeneous ~8.7x average with 11-12x peaks; limit 13.5x.
"""

from benchmarks.figure_common import assert_common_shape, regenerate_figure


def test_figure_7a(benchmark, benchmarks_under_test):
    fig = regenerate_figure(benchmark, "7a", benchmarks_under_test)
    assert_common_shape(fig)
    # scenario-specific shape: substantial headroom exploited
    assert fig.average_speedup("heterogeneous") >= 1.3 * fig.average_speedup(
        "homogeneous"
    )
