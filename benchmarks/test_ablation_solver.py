"""Ablation: solver backends (HiGHS vs. pure-Python branch-and-bound).

The paper lets users choose between lp_solve and CPLEX; the analogue here
is the HiGHS backend vs. the self-contained B&B. Both are exact, so the
extracted solutions must have identical objective values; HiGHS is the
faster default.
"""

import pytest

from repro.core.parallelize import HeterogeneousParallelizer, ParallelizeOptions
from repro.platforms import config_a
from repro.toolflow.experiments import prepare_benchmark

from benchmarks.conftest import write_report


def test_solver_backend_agreement(benchmark):
    # fir_256's AHTG is small enough for the pure-Python solver
    _program, htg = prepare_benchmark("fir_256")
    platform = config_a("accelerator")
    box = {}

    def run_both():
        scipy_res = HeterogeneousParallelizer(
            platform, ParallelizeOptions(backend="scipy")
        ).parallelize(htg)
        bnb_res = HeterogeneousParallelizer(
            platform, ParallelizeOptions(backend="bnb")
        ).parallelize(htg)
        box["scipy"] = scipy_res
        box["bnb"] = bnb_res
        return scipy_res, bnb_res

    benchmark.pedantic(run_both, rounds=1, iterations=1)
    scipy_res, bnb_res = box["scipy"], box["bnb"]

    lines = [
        "Ablation: solver backends (fir_256, platform A, scenario I)",
        f"  HiGHS: best {scipy_res.best.exec_time_us:10.1f} us "
        f"in {scipy_res.wall_seconds:6.1f} s ({scipy_res.stats.num_ilps} ILPs)",
        f"  B&B:   best {bnb_res.best.exec_time_us:10.1f} us "
        f"in {bnb_res.wall_seconds:6.1f} s ({bnb_res.stats.num_ilps} ILPs)",
    ]
    write_report("ablation_solver.txt", "\n".join(lines))

    # both backends are exact: identical optimal objective values
    assert scipy_res.best.exec_time_us == pytest.approx(
        bnb_res.best.exec_time_us, rel=1e-6
    )
    benchmark.extra_info["highs_seconds"] = round(scipy_res.wall_seconds, 2)
    benchmark.extra_info["bnb_seconds"] = round(bnb_res.wall_seconds, 2)
