"""Regenerates Figure 7(b): platform (A), slower-cores scenario (II).

Paper numbers: homogeneous < 1x (the uniform partition makes the fast
main core wait on the 100 MHz core), heterogeneous 1.2-2.5x; limit 2.7x.
"""

from benchmarks.figure_common import assert_common_shape, regenerate_figure


def test_figure_7b(benchmark, benchmarks_under_test):
    fig = regenerate_figure(benchmark, "7b", benchmarks_under_test)
    assert_common_shape(fig)
    # the paper's signature result: the class-blind baseline slows some
    # data-parallel kernels below 1x on average
    homo_values = list(fig.speedups("homogeneous").values())
    assert min(homo_values) < 1.0
