"""Micro-benchmarks of the substrate components (proper pytest-benchmark
timing: these functions run many rounds)."""

import pytest

from repro.cfront import parse_c_source
from repro.bench_suite import get_benchmark
from repro.core.flatten import flatten_solution
from repro.core.parallelize import HeterogeneousParallelizer
from repro.ilp import Model, lin_sum
from repro.platforms import config_a
from repro.simulator.engine import simulate_graph
from repro.timing.interp import run_function
from repro.toolflow.experiments import prepare_benchmark


def test_parse_fir(benchmark):
    source = get_benchmark("fir_256").source
    benchmark(parse_c_source, source)


def test_interpret_fir(benchmark):
    program = parse_c_source(get_benchmark("fir_256").source)
    benchmark(run_function, program, "main")


def test_ilp_solve_knapsack(benchmark):
    def build_and_solve():
        m = Model("bench")
        xs = [m.add_binary(f"x{i}") for i in range(24)]
        m.add_constraint(lin_sum((i % 7 + 1) * x for i, x in enumerate(xs)) <= 40)
        m.maximize(lin_sum((i % 5 + 1) * x for i, x in enumerate(xs)))
        return m.solve()

    result = benchmark(build_and_solve)
    assert result.objective > 0


def test_simulator_throughput(benchmark):
    platform = config_a("accelerator")
    _program, htg = prepare_benchmark("fir_256")
    result = HeterogeneousParallelizer(platform).parallelize(htg)
    graph = flatten_solution(result.best, platform)

    sim = benchmark(simulate_graph, graph, platform)
    assert sim.makespan_us > 0


def test_htg_build_fir(benchmark):
    from repro.cfront.defuse import compute_call_summaries
    from repro.htg.builder import build_htg
    from repro.timing.estimator import annotate_costs

    program = parse_c_source(get_benchmark("fir_256").source)
    func = program.entry("main")
    summaries = compute_call_summaries(program)
    cost_db = annotate_costs(program, func)

    htg = benchmark(
        build_htg, program, func, cost_db, None, 4, summaries
    )
    assert htg.num_nodes > 5
