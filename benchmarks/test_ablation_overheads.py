"""Ablations: task-creation overhead and bus-contention sensitivity.

The ILP's Eq. 8 balances speedup against the configurable TCO; this
sweep shows extracted parallelism degrading gracefully as spawning gets
more expensive, and quantifies the (small) cost of modelling bus
contention in the simulator.
"""

import pytest

from repro.core.parallelize import HeterogeneousParallelizer
from repro.platforms import config_a
from repro.simulator.engine import SimOptions
from repro.simulator.run import evaluate_solution
from repro.toolflow.experiments import prepare_benchmark

from benchmarks.conftest import write_report


def _speedup_with_tco(htg, tco_us: float) -> float:
    platform = config_a("accelerator", task_creation_overhead_us=tco_us)
    result = HeterogeneousParallelizer(platform).parallelize(htg)
    return evaluate_solution(result).speedup


def test_tco_sensitivity(benchmark):
    _program, htg = prepare_benchmark("fir_256")
    box = {}

    def sweep():
        box["results"] = {
            tco: _speedup_with_tco(htg, tco) for tco in (0.0, 25.0, 250.0, 2500.0)
        }
        return box["results"]

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    results = box["results"]
    lines = ["Ablation: task-creation-overhead sweep (fir_256, platform A-I)"]
    for tco, speedup in results.items():
        lines.append(f"  TCO {tco:7.0f} us  speedup {speedup:5.2f}x")
    write_report("ablation_tco.txt", "\n".join(lines))

    # monotone degradation, and graceful: never a slowdown
    values = [results[k] for k in sorted(results)]
    assert all(a >= b - 1e-6 for a, b in zip(values, values[1:]))
    assert values[-1] >= 1.0 - 1e-9


def test_bus_contention_effect(benchmark):
    _program, htg = prepare_benchmark("spectral")
    platform = config_a("accelerator")
    result = HeterogeneousParallelizer(platform).parallelize(htg)
    box = {}

    def run_both():
        box["free"] = evaluate_solution(result, SimOptions(bus_contention=False))
        box["contended"] = evaluate_solution(result, SimOptions(bus_contention=True))
        return box

    benchmark.pedantic(run_both, rounds=1, iterations=1)
    free, contended = box["free"], box["contended"]
    lines = [
        "Ablation: shared-bus contention (spectral, platform A-I)",
        f"  infinite bus: speedup {free.speedup:5.2f}x",
        f"  contended:    speedup {contended.speedup:5.2f}x "
        f"(bus busy {contended.sim.bus_busy_us:8.1f} us)",
    ]
    write_report("ablation_bus.txt", "\n".join(lines))
    assert contended.speedup <= free.speedup + 1e-9
