"""Ablation: loop-chunking granularity (DESIGN.md §5).

Sweeps the chunk count of the AHTG builder on a data-parallel kernel and
shows why the default (2x the core count) is chosen: too few chunks
cannot balance unequal-speed classes, and disabling chunking altogether
collapses the heterogeneous speedup toward statement-level parallelism
only.
"""

import pytest

from repro.htg.builder import BuildOptions
from repro.platforms import config_a
from repro.toolflow.experiments import run_benchmark

from benchmarks.conftest import write_report


def _speedup(max_chunks: int, enable: bool = True) -> float:
    run = run_benchmark(
        "fir_256",
        config_a("accelerator"),
        "heterogeneous",
        build_options=BuildOptions(enable_chunking=enable, max_chunks=max_chunks),
    )
    return run.speedup


def test_chunking_ablation(benchmark):
    box = {}

    def sweep():
        box["results"] = {
            "disabled": _speedup(8, enable=False),
            "chunks=2": _speedup(2),
            "chunks=4": _speedup(4),
            "chunks=8": _speedup(8),
            "chunks=16": _speedup(16),
        }
        return box["results"]

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    results = box["results"]
    lines = ["Ablation: chunk-count sweep (fir_256, platform A, scenario I)"]
    for label, speedup in results.items():
        lines.append(f"  {label:<10} speedup {speedup:5.2f}x")
    write_report("ablation_chunking.txt", "\n".join(lines))
    for key, value in results.items():
        benchmark.extra_info[key] = round(value, 3)

    # shape: chunking is what unlocks heterogeneous balancing
    assert results["chunks=8"] > results["disabled"]
    assert results["chunks=8"] > results["chunks=2"]
    # diminishing returns: 16 chunks buys little over 8
    assert results["chunks=16"] >= 0.9 * results["chunks=8"]
