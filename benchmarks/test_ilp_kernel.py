"""Simplex-kernel microbenchmark over the figure-run ILPPAR instances.

Captures the distinct ILPPAR matrix forms produced by the two-benchmark
figure run (``fir_256`` + ``mult_10``, cold cache, jobs=1) and drives the
pure-Python branch-and-bound over each kernel-sized form twice — with the
warm-basis protocol enabled (the default) and disabled — so the pivot
savings of parent-basis reuse are measured on the real instances, not on
synthetic LPs. Every kernel objective is cross-checked against HiGHS
(``scipy.optimize.milp``) on the same form.

Results are written to the repo-root ``BENCH_ilp.json`` (schema documented
in ``docs/BENCHMARKS.md``). The test **fails** when

* any kernel objective diverges from HiGHS by more than the stored
  tolerance, or
* warm-path pivots regress beyond the per-benchmark thresholds stored in
  ``benchmarks/ilp_kernel_thresholds.json`` (recorded with ~1.5x headroom
  over the measured totals), or
* warm-basis reuse stops delivering the required total pivot reduction.

Capture uses the scipy backend so the harvesting pass is cheap; the model
shrinking (dominance pruning, symmetry rows, ordering presolve) is applied
at model-build time and therefore benchmarked regardless of backend.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Dict, List

import numpy as np

import repro.ilp.service as service
from repro.core.parallelize import HeterogeneousParallelizer, ParallelizeOptions
from repro.ilp.bnb import BnbStats, _SIMPLEX_SIZE_LIMIT, solve_form_bnb
from repro.ilp.model import MatrixForm, SolveStatus
from repro.ilp.scipy_backend import solve_form_scipy
from repro.platforms import config_a
from repro.toolflow.experiments import prepare_benchmark

BENCHMARKS = ["fir_256", "mult_10"]
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
THRESHOLDS_PATH = pathlib.Path(__file__).parent / "ilp_kernel_thresholds.json"
REPORT_PATH = REPO_ROOT / "BENCH_ilp.json"


def _capture_forms(name: str, platform) -> List[MatrixForm]:
    """Run the parallelizer once (scipy backend, cold cache) and harvest
    every distinct ILPPAR matrix form it submits to the solver service."""
    _program, htg = prepare_benchmark(name, platform.total_cores)
    captured: List[MatrixForm] = []
    original = service._execute_form

    def capture(form, spec):
        captured.append(form)
        return original(form, service.SolveSpec(backend="scipy"))

    service._execute_form = capture
    try:
        opts = ParallelizeOptions(
            backend="scipy", jobs=1, cache=None, memory_cache=True
        )
        HeterogeneousParallelizer(platform, opts).parallelize(htg)
    finally:
        service._execute_form = original

    seen = set()
    forms = []
    for form in captured:
        key = (len(form.c), len(form.rows_ub), len(form.rows_eq))
        if key not in seen:
            seen.add(key)
            forms.append(form)
    return forms


def _objective(form: MatrixForm, x) -> float:
    return float(np.asarray(form.c, dtype=float) @ x) + form.obj_const


def _bench_one(name: str, platform) -> Dict:
    forms = _capture_forms(name, platform)
    kernel_forms = [f for f in forms if len(f.c) <= _SIMPLEX_SIZE_LIMIT]

    warm = BnbStats()
    cold = BnbStats()
    max_diff = 0.0
    wall = 0.0
    for form in kernel_forms:
        start = time.perf_counter()
        status_w, x_w = solve_form_bnb(form, use_scipy_lp=False, stats=warm)
        wall += time.perf_counter() - start
        status_c, x_c = solve_form_bnb(
            form, use_scipy_lp=False, stats=cold, warm_start=False
        )
        status_h, x_h, _info = solve_form_scipy(form)
        assert status_w == status_c == status_h, (
            f"{name}: backend verdicts diverge on a {len(form.c)}-var form: "
            f"warm={status_w} cold={status_c} highs={status_h}"
        )
        if status_h is SolveStatus.OPTIMAL:
            max_diff = max(max_diff, abs(_objective(form, x_w) - _objective(form, x_h)))
            max_diff = max(max_diff, abs(_objective(form, x_c) - _objective(form, x_h)))

    return {
        "forms_captured": len(forms),
        "kernel_forms": len(kernel_forms),
        "pivots": warm.pivots,
        "pivots_cold": cold.pivots,
        "nodes": warm.nodes,
        "lp_solves": warm.lp_solves,
        "warm_lp_solves": warm.warm_lp_solves,
        "warm_lp_hits": warm.warm_lp_hits,
        "warm_hit_rate": (
            round(warm.warm_lp_hits / warm.warm_lp_solves, 4)
            if warm.warm_lp_solves
            else 0.0
        ),
        "wall_seconds": round(wall, 3),
        "max_objective_diff_vs_highs": max_diff,
    }


def test_simplex_kernel_microbench():
    thresholds = json.loads(THRESHOLDS_PATH.read_text(encoding="utf-8"))
    platform = config_a("accelerator")

    per_bench = {name: _bench_one(name, platform) for name in BENCHMARKS}
    totals = {
        key: sum(entry[key] for entry in per_bench.values())
        for key in ("kernel_forms", "pivots", "pivots_cold", "nodes")
    }
    totals["pivot_reduction"] = (
        round(totals["pivots_cold"] / totals["pivots"], 2) if totals["pivots"] else 0.0
    )
    report = {
        "schema": "repro-bench-ilp-v1",
        "benchmarks": per_bench,
        "totals": totals,
    }
    REPORT_PATH.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(json.dumps(report, indent=2, sort_keys=True))

    # -- acceptance gates -------------------------------------------------
    for name, entry in per_bench.items():
        assert entry["max_objective_diff_vs_highs"] <= thresholds["max_objective_diff"], (
            f"{name}: kernel objective diverges from HiGHS by "
            f"{entry['max_objective_diff_vs_highs']:.3e}"
        )
        limit = thresholds["max_pivots"][name]
        assert entry["pivots"] <= limit, (
            f"{name}: warm-path pivots regressed: {entry['pivots']} > {limit}"
        )
    if totals["pivots"]:
        assert totals["pivot_reduction"] >= thresholds["min_pivot_reduction"], (
            f"warm-basis reuse below required reduction: "
            f"{totals['pivot_reduction']}x < {thresholds['min_pivot_reduction']}x"
        )
