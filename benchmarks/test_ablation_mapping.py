"""Ablation: static task-to-core binding vs. dynamic scheduling.

The paper binds tasks to processing units statically, "avoiding
additional scheduling overhead" (Section IV-I). This ablation quantifies
what an idealized dynamic (earliest-finish) runtime would add on top of
the ILP's placements across the benchmark suite: if the ILP balanced
well, the answer should be "nothing".
"""

import pytest

from repro.core.flatten import flatten_solution
from repro.core.mapping import compute_static_mapping
from repro.core.parallelize import HeterogeneousParallelizer
from repro.platforms import config_a
from repro.simulator.engine import SimOptions, simulate_graph
from repro.toolflow.experiments import prepare_benchmark

from benchmarks.conftest import write_report

_KERNELS = ("fir_256", "mult_10", "spectral", "latnrm_32")


def test_static_vs_dynamic_mapping(benchmark):
    platform = config_a("accelerator")
    box = {}

    def run():
        rows = {}
        for name in _KERNELS:
            _, htg = prepare_benchmark(name)
            result = HeterogeneousParallelizer(platform).parallelize(htg)
            graph = flatten_solution(result.best, platform)
            mapping = compute_static_mapping(graph, platform)
            static = simulate_graph(
                graph, platform, SimOptions(fixed_mapping=mapping.assignment)
            )
            dynamic = simulate_graph(graph, platform)
            rows[name] = (static.makespan_us, dynamic.makespan_us)
        box["rows"] = rows
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = box["rows"]
    lines = [
        "Ablation: static binding vs dynamic scheduling (platform A-I)",
        f"{'benchmark':<12} {'static (us)':>12} {'dynamic (us)':>13} {'overhead':>9}",
    ]
    for name, (static_us, dynamic_us) in rows.items():
        overhead = static_us / dynamic_us - 1.0
        lines.append(
            f"{name:<12} {static_us:>12,.1f} {dynamic_us:>13,.1f} {overhead:>8.1%}"
        )
    write_report("ablation_mapping.txt", "\n".join(lines))

    for name, (static_us, dynamic_us) in rows.items():
        # dynamic can't be worse; static must stay within 10% of it
        assert dynamic_us <= static_us + 1e-6, name
        assert static_us <= 1.10 * dynamic_us, name
