"""Regenerates Table I: ILP statistics of both parallelization algorithms.

Paper numbers (averages over the ten benchmarks): the heterogeneous
approach generates ~3.5x as many ILPs, ~7.0x the variables and ~5.5x the
constraints of the homogeneous baseline, and takes correspondingly longer
to run. Our formulation uses a tighter linearization (see DESIGN.md §5),
so the absolute factors are smaller, but every factor must exceed 1 and
the ILP-count factor should land in the paper's 2.4-7.4x band.
"""

from repro.toolflow.experiments import run_table1
from repro.toolflow.report import render_table1

from benchmarks.conftest import (
    bench_parallelize_options,
    record_pipeline_row,
    record_suite,
    write_report,
)


def test_table_1(benchmark, benchmarks_under_test):
    box = {}
    options = bench_parallelize_options()

    def run():
        box["table"] = run_table1(
            benchmarks=benchmarks_under_test, parallelize_options=options
        )
        return box["table"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = box["table"]
    write_report("table_1.txt", render_table1(table))
    record_suite("table_1", table.suite)
    for row in table.rows:
        record_pipeline_row(
            "table_1", row.benchmark,
            {
                "homogeneous_solve_seconds": round(
                    row.homogeneous.total_solve_seconds, 6
                ),
                "heterogeneous_solve_seconds": round(
                    row.heterogeneous.total_solve_seconds, 6
                ),
                "ilp_factor": round(row.factor.ilp_factor, 4),
            },
        )

    for row in table.rows:
        factor = row.factor
        assert factor.ilp_factor > 1.0, row.benchmark
        assert factor.variable_factor > 1.0, row.benchmark
        assert factor.constraint_factor > 1.0, row.benchmark

    avg = table.averages()
    assert avg is not None
    benchmark.extra_info["avg_ilp_factor"] = round(avg.factor.ilp_factor, 2)
    benchmark.extra_info["avg_variable_factor"] = round(
        avg.factor.variable_factor, 2
    )
    benchmark.extra_info["avg_constraint_factor"] = round(
        avg.factor.constraint_factor, 2
    )
    # the paper's per-benchmark ILP-count factors span 2.4x-7.4x
    assert 1.5 <= avg.factor.ilp_factor <= 8.0
