"""Verification smoke: certify the Table-I set on both ILP backends.

Re-parallelizes every selected benchmark on platform configurations (A)
and (B) with solve-time certificate replay enabled, runs the full
certification pipeline (structural, races, certificates, trace,
mapping) on each cell, and cross-checks the two ILP backends against
each other. Any diagnostic — a race, a violated Eq. 1-18 row, an
unordered conflicting trace pair, a mapping mismatch, or a backend
divergence — fails the run.

Solves go through the on-disk solver cache (``REPRO_VERIFY_CACHE_DIR``,
default ``.repro_cache/``): a warm CI cache turns the whole sweep into
replay + certification, keeping it well under a minute.

Per-cell certifier runtimes land in ``BENCH_pipeline.json`` under the
``verify_smoke`` section (see ``docs/BENCHMARKS.md``).
"""

from __future__ import annotations

import os

from repro.core.parallelize import ParallelizeOptions
from repro.toolflow.verify import resolve_verify_platforms, run_verify

from benchmarks.conftest import bench_jobs, record_pipeline_row


def test_verify_smoke(benchmark, benchmarks_under_test):
    cache_dir = os.environ.get("REPRO_VERIFY_CACHE_DIR", ".repro_cache")
    options = ParallelizeOptions(
        jobs=bench_jobs(), cache=True, cache_dir=cache_dir
    )
    box = {}

    def run():
        box["suite"] = run_verify(
            benchmarks=benchmarks_under_test,
            platforms=resolve_verify_platforms("both"),
            backends=("scipy", "bnb"),
            parallelize_options=options,
        )
        return box["suite"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    suite = box["suite"]

    per_bench = {}
    for cell in suite.cells:
        row = per_bench.setdefault(cell.benchmark, {})
        row[f"{cell.platform}|{cell.backend}"] = {
            "verify_seconds": round(cell.report.total_seconds, 6),
            "diagnostics": len(cell.report.diagnostics),
            "exec_time_us": round(cell.exec_time_us, 3),
        }
    for name, row in per_bench.items():
        record_pipeline_row("verify_smoke", name, row)

    benchmark.extra_info["num_cells"] = len(suite.cells)
    benchmark.extra_info["certify_seconds"] = round(
        sum(cell.report.total_seconds for cell in suite.cells), 3
    )
    assert suite.ok, "\n" + suite.render_text()
