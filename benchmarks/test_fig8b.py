"""Regenerates Figure 8(b): platform (B), slower-cores scenario (II).

Paper numbers: homogeneous up to 1.7x, heterogeneous up to 2.6x;
limit 2.8x.
"""

from benchmarks.figure_common import assert_common_shape, regenerate_figure


def test_figure_8b(benchmark, benchmarks_under_test):
    fig = regenerate_figure(benchmark, "8b", benchmarks_under_test)
    assert_common_shape(fig)
    assert fig.theoretical_limit == 2.8
