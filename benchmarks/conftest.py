"""Shared helpers for the paper-reproduction benchmark harness.

Each ``test_fig*.py`` / ``test_table1.py`` module regenerates one table or
figure of the paper with ``pytest benchmarks/ --benchmark-only``. The
rendered text tables are written to ``benchmarks/out/`` and echoed to the
terminal; pytest-benchmark reports the wall time of each regeneration.

Environment:

* ``REPRO_BENCH_SUBSET`` — comma-separated benchmark names to restrict a
  run (e.g. ``REPRO_BENCH_SUBSET=fir_256,mult_10``); default: all ten.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.bench_suite import benchmark_names

OUT_DIR = pathlib.Path(__file__).parent / "out"


def selected_benchmarks():
    subset = os.environ.get("REPRO_BENCH_SUBSET", "").strip()
    if subset:
        return [name.strip() for name in subset.split(",") if name.strip()]
    return benchmark_names()


def write_report(filename: str, text: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / filename).write_text(text + "\n", encoding="utf-8")
    print()
    print(text)


@pytest.fixture(scope="session")
def benchmarks_under_test():
    return selected_benchmarks()
