"""Shared helpers for the paper-reproduction benchmark harness.

Each ``test_fig*.py`` / ``test_table1.py`` module regenerates one table or
figure of the paper with ``pytest benchmarks/ --benchmark-only``. The
rendered text tables are written to ``benchmarks/out/`` and echoed to the
terminal; pytest-benchmark reports the wall time of each regeneration.

On top of the human-readable reports the harness accumulates one
machine-readable summary, ``benchmarks/out/BENCH_pipeline.json``: per
regenerated figure/table and per benchmark, the parallelization wall time
and the estimated/simulated speedups. CI and before/after comparisons
(e.g. cold vs. warm solver cache) diff this file instead of parsing text.

Environment:

* ``REPRO_BENCH_SUBSET`` — comma-separated benchmark names to restrict a
  run (e.g. ``REPRO_BENCH_SUBSET=fir_256,mult_10``); default: all ten.
* ``REPRO_BENCH_JOBS`` — worker processes for the shared solver service
  each figure/table regeneration runs against (default 1, serial;
  results are bit-identical for any value).
* ``REPRO_BENCH_BATCH`` — small-instance batch size of pooled dispatch
  (default 8; 1 ships every solve individually).
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict

import pytest

from repro.bench_suite import benchmark_names

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: section -> benchmark -> approach -> metrics, flushed at session end.
_PIPELINE: Dict[str, dict] = {}

#: section -> SuiteStats.as_dict() of the shared-service run (if any).
_SUITES: Dict[str, dict] = {}

#: key -> summary dict from the portfolio smoke (gap gates, race cell).
_PORTFOLIO: Dict[str, dict] = {}


def selected_benchmarks():
    subset = os.environ.get("REPRO_BENCH_SUBSET", "").strip()
    if subset:
        return [name.strip() for name in subset.split(",") if name.strip()]
    return benchmark_names()


def bench_jobs() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1") or 1))


def bench_parallelize_options():
    """Solver options from the environment, or ``None`` at the defaults.

    Returning ``None`` for the default configuration keeps the
    default-option run cache of :mod:`repro.toolflow.experiments` in
    play (Table I reuses Figure 7(a) cells within one session).
    """
    jobs = bench_jobs()
    batch = max(1, int(os.environ.get("REPRO_BENCH_BATCH", "8") or 8))
    if jobs <= 1 and batch == 8:
        return None
    from repro.core.parallelize import ParallelizeOptions

    return ParallelizeOptions(jobs=jobs, batch_size=batch)


def write_report(filename: str, text: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / filename).write_text(text + "\n", encoding="utf-8")
    print()
    print(text)


def record_pipeline(section: str, runs) -> None:
    """Accumulate per-benchmark pipeline metrics for ``BENCH_pipeline.json``.

    ``runs`` is ``{benchmark: {approach: BenchmarkRun}}`` as produced by
    :class:`repro.toolflow.experiments.FigureResult`.
    """
    entry = _PIPELINE.setdefault(section, {})
    for name, by_approach in runs.items():
        per_bench = entry.setdefault(name, {})
        for approach, run in by_approach.items():
            metrics = {
                "wall_seconds": round(run.wall_seconds, 6),
                "estimated_speedup": round(run.estimated_speedup, 6),
                "speedup": round(run.speedup, 6),
            }
            if run.verify_seconds or run.verify_diagnostics:
                metrics["verify_seconds"] = round(run.verify_seconds, 6)
                metrics["verify_diagnostics"] = run.verify_diagnostics
            per_bench[approach] = metrics


def record_pipeline_row(section: str, benchmark: str, metrics: dict) -> None:
    """Accumulate a single flat metrics row (used by the Table-I run)."""
    _PIPELINE.setdefault(section, {})[benchmark] = metrics


def record_portfolio(key: str, summary: dict) -> None:
    """Attach one portfolio-smoke summary (gap gate or race cell).

    Lands in the top-level ``portfolio`` block of
    ``BENCH_pipeline.json`` — the before/after signal for heuristic
    quality and incumbent-race speedups, next to (not inside) the
    per-benchmark ``sections`` rows.
    """
    _PORTFOLIO[key] = summary


def record_suite(section: str, suite) -> None:
    """Attach a section's shared-service :class:`SuiteStats` snapshot.

    ``suite`` may be ``None`` (every cell served from the run cache); the
    section is then simply absent from the ``suites`` block.
    """
    if suite is not None:
        _SUITES[section] = suite.as_dict()


def pytest_sessionfinish(session, exitstatus):
    if not _PIPELINE and not _SUITES and not _PORTFOLIO:
        return
    OUT_DIR.mkdir(exist_ok=True)
    payload = {
        "schema": "repro-bench-pipeline-v4",
        "subset": os.environ.get("REPRO_BENCH_SUBSET", "") or "all",
        "jobs": bench_jobs(),
        "sections": _PIPELINE,
        "suites": _SUITES,
        "portfolio": _PORTFOLIO,
    }
    (OUT_DIR / "BENCH_pipeline.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


@pytest.fixture(scope="session")
def benchmarks_under_test():
    return selected_benchmarks()
