"""Shared helpers for the paper-reproduction benchmark harness.

Each ``test_fig*.py`` / ``test_table1.py`` module regenerates one table or
figure of the paper with ``pytest benchmarks/ --benchmark-only``. The
rendered text tables are written to ``benchmarks/out/`` and echoed to the
terminal; pytest-benchmark reports the wall time of each regeneration.

On top of the human-readable reports the harness accumulates one
machine-readable summary, ``benchmarks/out/BENCH_pipeline.json``: per
regenerated figure/table and per benchmark, the parallelization wall time
and the estimated/simulated speedups. CI and before/after comparisons
(e.g. cold vs. warm solver cache) diff this file instead of parsing text.

Environment:

* ``REPRO_BENCH_SUBSET`` — comma-separated benchmark names to restrict a
  run (e.g. ``REPRO_BENCH_SUBSET=fir_256,mult_10``); default: all ten.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict

import pytest

from repro.bench_suite import benchmark_names

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: section -> benchmark -> approach -> metrics, flushed at session end.
_PIPELINE: Dict[str, dict] = {}


def selected_benchmarks():
    subset = os.environ.get("REPRO_BENCH_SUBSET", "").strip()
    if subset:
        return [name.strip() for name in subset.split(",") if name.strip()]
    return benchmark_names()


def write_report(filename: str, text: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / filename).write_text(text + "\n", encoding="utf-8")
    print()
    print(text)


def record_pipeline(section: str, runs) -> None:
    """Accumulate per-benchmark pipeline metrics for ``BENCH_pipeline.json``.

    ``runs`` is ``{benchmark: {approach: BenchmarkRun}}`` as produced by
    :class:`repro.toolflow.experiments.FigureResult`.
    """
    entry = _PIPELINE.setdefault(section, {})
    for name, by_approach in runs.items():
        per_bench = entry.setdefault(name, {})
        for approach, run in by_approach.items():
            per_bench[approach] = {
                "wall_seconds": round(run.wall_seconds, 6),
                "estimated_speedup": round(run.estimated_speedup, 6),
                "speedup": round(run.speedup, 6),
            }


def record_pipeline_row(section: str, benchmark: str, metrics: dict) -> None:
    """Accumulate a single flat metrics row (used by the Table-I run)."""
    _PIPELINE.setdefault(section, {})[benchmark] = metrics


def pytest_sessionfinish(session, exitstatus):
    if not _PIPELINE:
        return
    OUT_DIR.mkdir(exist_ok=True)
    payload = {
        "subset": os.environ.get("REPRO_BENCH_SUBSET", "") or "all",
        "sections": _PIPELINE,
    }
    (OUT_DIR / "BENCH_pipeline.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


@pytest.fixture(scope="session")
def benchmarks_under_test():
    return selected_benchmarks()
