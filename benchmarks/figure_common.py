"""Shared implementation of the per-figure regeneration benchmarks."""

from __future__ import annotations

from typing import Sequence

from repro.toolflow.experiments import FigureResult, run_figure
from repro.toolflow.report import render_figure

from benchmarks.conftest import (
    bench_parallelize_options,
    record_pipeline,
    record_suite,
    write_report,
)


def regenerate_figure(
    benchmark, figure: str, names: Sequence[str]
) -> FigureResult:
    """Run one figure's sweep under pytest-benchmark (single round)."""
    result_box = {}
    options = bench_parallelize_options()

    def run():
        result_box["figure"] = run_figure(
            figure, benchmarks=names, parallelize_options=options
        )
        return result_box["figure"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    fig = result_box["figure"]
    write_report(f"figure_{figure}.txt", render_figure(fig))
    record_pipeline(f"figure_{figure}", fig.runs)
    record_suite(f"figure_{figure}", fig.suite)
    benchmark.extra_info["homogeneous_avg_speedup"] = round(
        fig.average_speedup("homogeneous"), 3
    )
    benchmark.extra_info["heterogeneous_avg_speedup"] = round(
        fig.average_speedup("heterogeneous"), 3
    )
    benchmark.extra_info["theoretical_limit"] = fig.theoretical_limit
    if fig.suite is not None:
        benchmark.extra_info["suite_wall_seconds"] = round(
            fig.suite.wall_seconds, 3
        )
        benchmark.extra_info["worker_utilization"] = round(
            fig.suite.worker_utilization, 3
        )
    return fig


def assert_common_shape(fig: FigureResult) -> None:
    """Shape criteria shared by all four figures (DESIGN.md §4)."""
    for name, by_approach in fig.runs.items():
        homo = by_approach["homogeneous"]
        hetero = by_approach["heterogeneous"]
        # paper result 4: hetero outperforms homo and never slows down
        assert hetero.speedup >= homo.speedup - 1e-6, name
        assert hetero.speedup > 1.0, name
        # nothing beats the theoretical limit
        assert hetero.speedup <= fig.theoretical_limit + 1e-6, name
        assert homo.speedup <= fig.theoretical_limit + 1e-6, name
    assert fig.average_speedup("heterogeneous") > fig.average_speedup(
        "homogeneous"
    )
