"""Regenerates Figure 8(a): platform (B) 200/200/500/500, scenario (I).

Paper numbers: homogeneous ~2.9x average, heterogeneous ~4.5x average
(peaks >6x); limit 7x — lower than (A) because the performance variance
is smaller.
"""

from benchmarks.figure_common import assert_common_shape, regenerate_figure


def test_figure_8a(benchmark, benchmarks_under_test):
    fig = regenerate_figure(benchmark, "8a", benchmarks_under_test)
    assert_common_shape(fig)
    assert fig.theoretical_limit == 7.0
