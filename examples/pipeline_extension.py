#!/usr/bin/env python
"""Pipeline-parallelism extension on a serial DSP loop.

The paper's evaluation notes that latnrm and spectral "have higher
communication loads and ... profit more from other parallelism types,
like, e.g., pipeline parallelism" (future work, Section VII). This
example runs the DSWP-style pipeline extractor on a chained-filter loop
that task-level parallelism cannot touch, and compares:

* sequential execution on the main core,
* the best task-level solution (the paper's approach),
* the pipelined execution plan (the extension).

Usage::

    python examples/pipeline_extension.py
"""

from repro.cfront import parse_c_source
from repro.cfront.defuse import compute_call_summaries
from repro.core.parallelize import HeterogeneousParallelizer
from repro.core.pipeline import extract_pipeline
from repro.htg.builder import build_htg
from repro.htg.nodes import HierarchicalNode
from repro.platforms import config_a
from repro.simulator.run import evaluate_solution
from repro.timing.estimator import annotate_costs

# A three-stage filter chain: every stage carries its own recurrence, so
# the sample loop is fully serial for task-level extraction, but stages
# are separable into a pipeline.
C_SOURCE = """
#define N 4096

float x[N];
float stage1[N];
float stage2[N];
float y[N];

void main(void) {
    int i;
    float a;
    float b;
    float c;
    a = 0.0f;
    b = 0.0f;
    c = 0.0f;
    for (i = 0; i < N; i++) { x[i] = sin(0.01f * i); }
    for (i = 0; i < N; i++) {
        a = 0.7f * a + 0.3f * x[i];
        stage1[i] = a;
        b = 0.5f * b + 0.5f * stage1[i] * stage1[i];
        stage2[i] = b;
        c = 0.9f * c + 0.1f * sqrt(fabs(stage2[i]));
        y[i] = c;
    }
}
"""


def main() -> None:
    platform = config_a("accelerator")
    program = parse_c_source(C_SOURCE)
    func = program.entry("main")
    summaries = compute_call_summaries(program)
    cost_db = annotate_costs(program, func)
    htg = build_htg(
        program, func, cost_db=cost_db,
        total_cores=platform.total_cores, summaries=summaries,
    )

    sequential_us = platform.main_class.time_us(htg.root.total_cycles())
    print(f"sequential on {platform.main_class.name}: {sequential_us:10.1f} us")

    # --- the paper's task-level approach -------------------------------
    result = HeterogeneousParallelizer(platform).parallelize(htg)
    evaluation = evaluate_solution(result)
    print(f"task-level (paper)      : {evaluation.parallel_us:10.1f} us "
          f"({evaluation.speedup:4.2f}x) — limited: the filter loop is serial")

    # --- the pipeline extension ----------------------------------------
    serial_loops = [
        n
        for n in htg.walk()
        if isinstance(n, HierarchicalNode) and n.construct == "loop"
    ]
    best = None
    for loop in serial_loops:
        solution = extract_pipeline(loop, platform)
        if solution and (best is None or solution.exec_time_us < best.exec_time_us):
            best = solution
    if best is None:
        print("pipeline extension      : no profitable pipeline found")
        return

    print(f"pipeline ({best.num_stages} stages)     : "
          f"{best.exec_time_us:10.1f} us for the loop "
          f"({best.estimated_speedup:4.2f}x over its sequential time)")
    for stage in best.stages:
        names = ", ".join(n.label for n in stage.nodes)
        print(f"    stage {stage.index} on {stage.proc_class:7s} "
              f"({stage.time_us:9.1f} us): {names}")


if __name__ == "__main__":
    main()
