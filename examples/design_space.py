#!/usr/bin/env python
"""Design-space exploration: when does heterogeneity-aware parallelization pay?

Uses the sweep framework and the AHTG parallelism metrics on the
edge-detection benchmark to answer three design questions the paper's
fixed two-platform evaluation raises:

1. How does the hetero-over-homo advantage grow with the clock gap?
2. How many fast helper cores can a kernel actually exploit?
3. How sensitive is the extracted parallelism to spawn overhead?

Also prints the structural parallelism report (critical path, available
parallelism, analytic speedup bound) and the simulated schedule of the
chosen solution on a Tegra-3-style platform from the platform library.

Usage::

    python examples/design_space.py
"""

from repro.core.parallelize import HeterogeneousParallelizer
from repro.htg.metrics import analyze_parallelism, render_report
from repro.platforms import config_a
from repro.platforms.library import tegra3
from repro.simulator.run import evaluate_solution
from repro.simulator.trace import render_gantt
from repro.toolflow.experiments import prepare_benchmark
from repro.toolflow.sweeps import (
    render_sweep,
    sweep_core_count,
    sweep_frequency_ratio,
    sweep_tco,
)


def main() -> None:
    _program, htg = prepare_benchmark("edge_detect")

    print("=== structural parallelism (edge_detect) ===")
    report = analyze_parallelism(htg)
    print(render_report(report, config_a("accelerator")))
    print()

    print("=== clock-gap sweep (2 slow + 2 fast cores) ===")
    print(render_sweep(sweep_frequency_ratio(htg, ratios=(1.0, 1.5, 2.5, 4.0))))
    print()

    print("=== helper-core sweep (1x100 MHz main + N x 500 MHz) ===")
    print(render_sweep(sweep_core_count(htg, counts=(1, 2, 4))))
    print()

    print("=== spawn-overhead sweep (platform A, scenario I) ===")
    print(render_sweep(sweep_tco(htg, config_a("accelerator"),
                                 tcos_us=(0.0, 25.0, 250.0))))
    print()

    print("=== Tegra-3-style platform: simulated schedule ===")
    platform = tegra3("accelerator")
    print(platform.describe())
    result = HeterogeneousParallelizer(platform).parallelize(htg)
    evaluation = evaluate_solution(result)
    print(
        f"speedup {evaluation.speedup:.2f}x "
        f"(limit {evaluation.theoretical_limit:.2f}x)"
    )
    print(render_gantt(evaluation.sim, evaluation.graph))


if __name__ == "__main__":
    main()
