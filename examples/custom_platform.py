#!/usr/bin/env python
"""Targeting a custom platform + the energy-objective extension.

Defines a big.LITTLE-style MPSoC (2x Cortex-A15-ish + 2x Cortex-A7-ish),
parallelizes an edge-detection kernel for it in both scenarios, and then
re-runs the ILP with the energy objective (a paper future-work item):
minimize energy under a deadline instead of minimizing the makespan.

Usage::

    python examples/custom_platform.py
"""

from repro.bench_suite import get_benchmark
from repro.core.parallelize import HeterogeneousParallelizer, ParallelizeOptions
from repro.platforms import Interconnect, Platform, ProcessorClass
from repro.simulator.run import evaluate_solution
from repro.toolflow.flow import ToolFlow


def make_platform(main: str) -> Platform:
    return Platform(
        name="custom-big-little",
        processor_classes=(
            # the LITTLE cores: slower but 4x more energy-efficient
            ProcessorClass("a7", 600.0, 2, energy_per_cycle_nj=0.25),
            # the big cores: fast but power-hungry
            ProcessorClass("a15", 1500.0, 2, energy_per_cycle_nj=1.0),
        ),
        interconnect=Interconnect(bandwidth_bytes_per_us=800.0, latency_us=0.5),
        task_creation_overhead_us=15.0,
        main_class_name=main,
    )


def main() -> None:
    source = get_benchmark("edge_detect").source

    for scenario, main_class in [("accelerator (LITTLE main)", "a7"),
                                 ("slower-cores (big main)", "a15")]:
        platform = make_platform(main_class)
        flow = ToolFlow(platform)
        outcome = flow.run(source)
        print(f"--- {scenario} ---")
        print(f"  limit   : {platform.theoretical_speedup():.2f}x")
        print(f"  speedup : {outcome.speedup:.2f}x "
              f"(model estimate {outcome.estimated_speedup:.2f}x)")
        print(f"  solution: {outcome.result.best.num_tasks} tasks, "
              f"extra procs {outcome.result.best.used_procs}")
        print()

    # --- energy objective -------------------------------------------------
    print("--- energy-aware parallelization (deadline = sequential time) ---")
    platform = make_platform("a7")
    flow_time = ToolFlow(platform)
    time_outcome = flow_time.run(source)

    flow_energy = ToolFlow(
        platform,
        parallelize_options=ParallelizeOptions(
            objective="energy", energy_deadline_factor=1.0
        ),
    )
    energy_outcome = flow_energy.run(source)

    t_best = time_outcome.result.best
    e_best = energy_outcome.result.best
    print(f"  time-optimal  : {t_best.exec_time_us:10.1f} us, "
          f"{t_best.energy_nj / 1e3:10.1f} uJ")
    print(f"  energy-optimal: {e_best.exec_time_us:10.1f} us, "
          f"{e_best.energy_nj / 1e3:10.1f} uJ")
    if e_best.energy_nj < t_best.energy_nj:
        saved = 100 * (1 - e_best.energy_nj / t_best.energy_nj)
        print(f"  energy saved  : {saved:.0f}% by keeping work on the "
              f"efficient LITTLE cores within the deadline")


if __name__ == "__main__":
    main()
