#!/usr/bin/env python
"""Quickstart: parallelize a sequential C kernel for a heterogeneous MPSoC.

Runs the complete tool flow of the paper on a small FIR filter:

1. parse ANSI C and profile it (interpreter),
2. extract the Augmented Hierarchical Task Graph,
3. run the ILP-based heterogeneous parallelization (Algorithm 1),
4. simulate the solution on the 100/250/500/500 MHz platform (A),
5. emit the annotated source and the task-to-class pre-mapping.

Usage::

    python examples/quickstart.py
"""

from repro import parallelize_source
from repro.codegen import annotate_solution
from repro.codegen.mapping_spec import mapping_spec_json
from repro.platforms import config_a

C_SOURCE = """
#define N 64
#define TAPS 256

float x[N + TAPS];
float h[TAPS];
float y[N];

void main(void) {
    int i;
    int j;
    float sum;
    for (i = 0; i < N + TAPS; i++) { x[i] = 0.001f * i; }
    for (i = 0; i < TAPS; i++) { h[i] = 1.0f / (i + 1); }
    for (i = 0; i < N; i++) {
        sum = 0.0f;
        for (j = 0; j < TAPS; j++) { sum = sum + x[i + j] * h[j]; }
        y[i] = sum;
    }
}
"""


def main() -> None:
    platform = config_a("accelerator")  # slow 100 MHz main core + accelerators
    print(platform.describe())
    print()

    result, evaluation = parallelize_source(C_SOURCE, platform)

    print(f"sequential on main core : {evaluation.sequential_us:10.1f} us")
    print(f"parallelized (simulated): {evaluation.parallel_us:10.1f} us")
    print(f"speedup                 : {evaluation.speedup:10.2f}x "
          f"(theoretical limit {evaluation.theoretical_limit:.1f}x)")
    print(f"ILPs solved             : {result.stats.num_ilps:10d}")
    print()

    print("--- chosen solution ---")
    print(result.best.describe())
    print()

    print("--- annotated source (excerpt) ---")
    annotated = annotate_solution(result)
    print("\n".join(annotated.splitlines()[:40]))
    print("    ...")
    print()

    print("--- pre-mapping specification (excerpt) ---")
    spec = mapping_spec_json(result)
    print("\n".join(spec.splitlines()[:30]))
    print("    ...")


if __name__ == "__main__":
    main()
