#!/usr/bin/env python
"""Regenerate the paper's evaluation tables and figures from the CLI.

Examples::

    # one figure, all ten benchmarks (takes a few minutes)
    python examples/paper_experiments.py --figure 7a

    # quick look with a subset
    python examples/paper_experiments.py --figure 7b --benchmarks fir_256,mult_10

    # Table I (ILP statistics)
    python examples/paper_experiments.py --table1

    # everything the paper reports
    python examples/paper_experiments.py --all
"""

import argparse
import sys
import time

from repro.toolflow.experiments import FIGURES, run_figure, run_table1
from repro.toolflow.report import render_figure, render_table1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--figure", choices=sorted(FIGURES), help="figure to regenerate"
    )
    parser.add_argument(
        "--table1", action="store_true", help="regenerate Table I"
    )
    parser.add_argument(
        "--all", action="store_true", help="regenerate every figure and Table I"
    )
    parser.add_argument(
        "--benchmarks",
        help="comma-separated subset of benchmark names (default: all ten)",
    )
    args = parser.parse_args(argv)

    names = None
    if args.benchmarks:
        names = [n.strip() for n in args.benchmarks.split(",") if n.strip()]

    todo = []
    if args.all:
        todo = [("figure", f) for f in sorted(FIGURES)] + [("table1", None)]
    else:
        if args.figure:
            todo.append(("figure", args.figure))
        if args.table1:
            todo.append(("table1", None))
    if not todo:
        parser.print_help()
        return 2

    for kind, which in todo:
        start = time.perf_counter()
        if kind == "figure":
            result = run_figure(which, benchmarks=names)
            print(render_figure(result))
        else:
            result = run_table1(benchmarks=names)
            print(render_table1(result))
        print(f"[{time.perf_counter() - start:.0f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
