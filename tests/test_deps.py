"""Tests for dependence analysis: block edges, loop classification, affine forms."""

import pytest

from repro.cfront import parse_c_source
from repro.cfront.defuse import compute_call_summaries
from repro.cfront.deps import (
    DepKind,
    LoopParallelism,
    affine_form,
    analyze_block_dependences,
    classify_loop,
    private_scalars,
)
from repro.cfront import ir


def first_loop(source: str):
    program = parse_c_source(source)
    func = next(iter(program.functions.values()))
    summaries = compute_call_summaries(program)
    for stmt in func.body.walk():
        if isinstance(stmt, ir.ForLoop):
            return stmt, summaries
    raise AssertionError("no loop found")


def classify(source: str):
    loop, summaries = first_loop(source)
    return classify_loop(loop, summaries)


class TestBlockDependences:
    def _stmts(self, body, prelude=""):
        program = parse_c_source(f"{prelude}\nvoid f(void) {{ {body} }}")
        func = program.entry("f")
        return func.body.stmts, compute_call_summaries(program)

    def test_flow_dependence(self):
        stmts, summ = self._stmts("int a; int b; a = 1; b = a;")
        edges = analyze_block_dependences(stmts, summ)
        flows = [e for e in edges if e.kind is DepKind.FLOW]
        assert any("a" in e.variables for e in flows)

    def test_kill_suppresses_transitive_edge(self):
        # statement indices: 0,1 decls; 2: a=1; 3: a=2; 4: b=a
        stmts, summ = self._stmts("int a; int b; a = 1; a = 2; b = a;")
        edges = analyze_block_dependences(stmts, summ)
        # flow must come from the *second* write (index 3), not the first
        flow_sources = {
            e.src_index for e in edges if e.kind is DepKind.FLOW and "a" in e.variables
        }
        assert 3 in flow_sources
        assert 2 not in flow_sources

    def test_anti_dependence(self):
        # indices: 0,1 decls; 2: a=5; 3: b=a; 4: a=2
        stmts, summ = self._stmts("int a; int b; a = 5; b = a; a = 2;")
        edges = analyze_block_dependences(stmts, summ)
        antis = [e for e in edges if e.kind is DepKind.ANTI and "a" in e.variables]
        assert any(e.src_index == 3 and e.dst_index == 4 for e in antis)

    def test_output_dependence(self):
        stmts, summ = self._stmts("int a; a = 1; a = 2;")
        edges = analyze_block_dependences(stmts, summ)
        assert any(e.kind is DepKind.OUTPUT for e in edges)

    def test_independent_statements_no_edges(self):
        stmts, summ = self._stmts("int a; int b; a = 1; b = 2;")
        edges = analyze_block_dependences(stmts, summ)
        assert not edges


class TestLoopClassification:
    def test_elementwise_parallel(self):
        cls = classify(
            "float x[16]; float y[16];\n"
            "void f(void) { int i; for (i = 0; i < 16; i++) { y[i] = x[i] * 2.0f; } }"
        )
        assert cls.parallelism is LoopParallelism.PARALLEL

    def test_reduction(self):
        cls = classify(
            "float x[16];\n"
            "void f(void) { int i; float s; s = 0.0f;"
            " for (i = 0; i < 16; i++) { s = s + x[i]; } }"
        )
        assert cls.parallelism is LoopParallelism.REDUCTION
        assert cls.reduction_vars == ("s",)

    def test_recurrence_serial(self):
        cls = classify(
            "float y[16];\n"
            "void f(void) { int i; for (i = 1; i < 16; i++) { y[i] = y[i - 1]; } }"
        )
        assert cls.parallelism is LoopParallelism.SERIAL

    def test_scalar_carried_serial(self):
        cls = classify(
            "float y[16];\n"
            "void f(void) { int i; float state; state = 0.0f;"
            " for (i = 0; i < 16; i++) { y[i] = state; state = state * 0.5f + i; } }"
        )
        assert cls.parallelism is LoopParallelism.SERIAL

    def test_private_temp_parallel(self):
        cls = classify(
            "float x[16]; float y[16];\n"
            "void f(void) { int i; float t;"
            " for (i = 0; i < 16; i++) { t = x[i] * 2.0f; y[i] = t + 1.0f; } }"
        )
        assert cls.parallelism is LoopParallelism.PARALLEL

    def test_private_in_nested_loop(self):
        # first access is a write buried in an always-executed inner loop
        cls = classify(
            "float a[8][8]; float c[8];\n"
            "void f(void) { int i; int j; float s;"
            " for (i = 0; i < 8; i++) {"
            "   for (j = 0; j < 8; j++) { s = 0.0f; s = s + a[i][j]; c[i] = s; }"
            " } }"
        )
        assert cls.parallelism is LoopParallelism.PARALLEL

    def test_shifted_read_serial(self):
        cls = classify(
            "float x[32];\n"
            "void f(void) { int i; for (i = 0; i < 16; i++) { x[i] = x[i + 1]; } }"
        )
        assert cls.parallelism is LoopParallelism.SERIAL

    def test_unknown_call_serial(self):
        cls = classify(
            "float x[16];\n"
            "void f(void) { int i; for (i = 0; i < 16; i++) { mystery(x); } }"
        )
        assert cls.parallelism is LoopParallelism.SERIAL
        assert "unknown" in cls.reason

    def test_return_in_body_serial(self):
        cls = classify(
            "void f(void) { int i; for (i = 0; i < 16; i++) { return; } }"
        )
        assert cls.parallelism is LoopParallelism.SERIAL

    def test_loop_var_mutation_serial(self):
        cls = classify(
            "void f(void) { int i; for (i = 0; i < 16; i++) { i = i + 1; } }"
        )
        assert cls.parallelism is LoopParallelism.SERIAL

    def test_outer_loop_of_matmul_parallel(self):
        cls = classify(
            "float a[4][4]; float b[4][4]; float c[4][4];\n"
            "void f(void) { int i; int j; int k; float s;"
            " for (i = 0; i < 4; i++) {"
            "  for (j = 0; j < 4; j++) {"
            "   s = 0.0f;"
            "   for (k = 0; k < 4; k++) { s = s + a[i][k] * b[k][j]; }"
            "   c[i][j] = s;"
            "  } } }"
        )
        assert cls.parallelism is LoopParallelism.PARALLEL

    def test_multidim_disjoint_by_first_dim(self):
        cls = classify(
            "float x[8][8];\n"
            "void f(void) { int i; int j;"
            " for (i = 0; i < 8; i++) { for (j = 0; j < 8; j++) {"
            "   x[i][j] = x[i][7 - j] + 1.0f;"  # same row: dim 0 proves it
            " } } }"
        )
        assert cls.parallelism is LoopParallelism.PARALLEL

    def test_gather_with_write_not_involving_var_serial(self):
        cls = classify(
            "float x[8]; float y[8]; \n"
            "void f(void) { int i; for (i = 0; i < 8; i++) { x[0] = y[i]; } }"
        )
        assert cls.parallelism is LoopParallelism.SERIAL

    def test_chunkable_property(self):
        par = classify(
            "float x[8];\n"
            "void f(void) { int i; for (i = 0; i < 8; i++) { x[i] = i; } }"
        )
        ser = classify(
            "float x[8];\n"
            "void f(void) { int i; for (i = 1; i < 8; i++) { x[i] = x[i-1]; } }"
        )
        assert par.chunkable and not ser.chunkable


class TestAffineForm:
    def _expr(self, text: str, prelude: str = "float x[64];"):
        program = parse_c_source(
            f"{prelude}\nvoid f(void) {{ int i; int k; i = 0; k = 0; x[{text}] = 1.0f; }}"
        )
        func = program.entry("f")
        assign = func.body.stmts[-1]
        return assign.lhs.indices[0]

    def test_plain_var(self):
        assert affine_form(self._expr("i"), "i") == (1, "#0")

    def test_scaled(self):
        coef, _rest = affine_form(self._expr("3 * i"), "i")
        assert coef == 3

    def test_offset(self):
        coef, rest = affine_form(self._expr("i + 5"), "i")
        assert coef == 1 and "5" in rest

    def test_other_var_offset(self):
        a = affine_form(self._expr("i + k"), "i")
        b = affine_form(self._expr("k + i"), "i")
        assert a == b

    def test_subtraction(self):
        coef, _ = affine_form(self._expr("10 - i"), "i")
        assert coef == -1

    def test_nonaffine_product(self):
        assert affine_form(self._expr("i * i"), "i") is None

    def test_var_free_is_zero_coef(self):
        coef, _ = affine_form(self._expr("k * 2"), "i")
        assert coef == 0


class TestPrivateScalars:
    def test_loop_counters_and_temps(self):
        program = parse_c_source(
            "float x[8]; float y[8];\n"
            "void f(void) { int i; float t;"
            " for (i = 0; i < 8; i++) { t = x[i]; y[i] = t; } }"
        )
        func = program.entry("f")
        private = private_scalars(func.body)
        assert {"i", "t"} <= private

    def test_live_in_scalar_not_private_at_loop_scope(self):
        program = parse_c_source(
            "float y[8];\n"
            "void f(float seed) { int i; float s; s = seed;"
            " for (i = 0; i < 8; i++) { y[i] = s; s = s * 0.5f; } }"
        )
        func = program.entry("f")
        loop = next(s for s in func.body.walk() if isinstance(s, ir.ForLoop))
        # within the loop body, s is consumed before being rewritten: the
        # recurrence makes it non-private there
        private = private_scalars(loop.body)
        assert "s" not in private
        # at whole-body scope the first access is the write `s = seed`, so
        # the block as a whole does not consume an external s
        assert "s" in private_scalars(func.body)
