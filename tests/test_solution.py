"""Tests for solution candidates, dominance and Pareto sets."""

import pytest

from repro.cfront.defuse import DefUse
from repro.core.solution import (
    SolutionCandidate,
    SolutionSet,
    TaskSegment,
    dominates,
)
from repro.htg.nodes import SimpleNode


def leaf(label="n", cycles=100.0):
    return SimpleNode(label, 1.0, DefUse(), cycles)


def cand(cls="a", time=10.0, procs=None, sequential=True, node=None):
    return SolutionCandidate(
        node=node or leaf(),
        main_class=cls,
        exec_time_us=time,
        used_procs=procs or {},
        is_sequential=sequential,
    )


class TestDominance:
    def test_faster_same_procs_dominates(self):
        assert dominates(cand(time=5), cand(time=10))

    def test_fewer_procs_same_time_dominates(self):
        a = cand(time=10, procs={})
        b = cand(time=10, procs={"fast": 1})
        assert dominates(a, b)

    def test_incomparable(self):
        a = cand(time=5, procs={"fast": 2})
        b = cand(time=10, procs={})
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_different_class_never_dominates(self):
        assert not dominates(cand(cls="a", time=1), cand(cls="b", time=100))

    def test_equal_candidates_no_strict_dominance(self):
        assert not dominates(cand(), cand())


class TestSolutionSet:
    def test_sequential_seed_retrievable(self):
        s = SolutionSet()
        s.add(cand(cls="a", sequential=True))
        assert s.sequential_for_class("a") is not None
        assert s.sequential_for_class("b") is None

    def test_dominated_insert_rejected(self):
        s = SolutionSet()
        s.add(cand(time=5))
        assert not s.add(cand(time=10))
        assert len(s) == 1

    def test_dominating_insert_evicts(self):
        s = SolutionSet()
        s.add(cand(time=10, sequential=False, procs={"fast": 1}))
        assert s.add(cand(time=5, sequential=False, procs={"fast": 1}))
        assert len(s) == 1
        assert s.best_for_class("a").exec_time_us == 5

    def test_pareto_frontier_kept(self):
        s = SolutionSet()
        s.add(cand(time=10, procs={}))
        s.add(cand(time=5, procs={"fast": 1}, sequential=False))
        s.add(cand(time=2, procs={"fast": 2}, sequential=False))
        assert len(s) == 3

    def test_duplicate_rejected(self):
        s = SolutionSet()
        s.add(cand(time=5))
        assert not s.add(cand(time=5))

    def test_classes_listing(self):
        s = SolutionSet()
        s.add(cand(cls="b"))
        s.add(cand(cls="a"))
        assert s.classes() == ["a", "b"]

    def test_best_for_class(self):
        s = SolutionSet()
        s.add(cand(cls="a", time=9, procs={"x": 1}, sequential=False))
        s.add(cand(cls="a", time=3, procs={"x": 2}, sequential=False))
        assert s.best_for_class("a").exec_time_us == 3
        assert s.best_for_class("zzz") is None


class TestCandidateProperties:
    def test_sequential_num_tasks(self):
        assert cand().num_tasks == 1

    def test_parallel_num_tasks_counts_used_extras(self):
        node = leaf()
        c = SolutionCandidate(
            node=node,
            main_class="a",
            exec_time_us=1.0,
            segments=(
                TaskSegment(0, "fork", "a", (leaf("x"),)),
                TaskSegment(1, "extra", "b", (leaf("y"),)),
                TaskSegment(2, "extra", "b", ()),  # unused slot
                TaskSegment(3, "join", "a", ()),
            ),
            is_sequential=False,
        )
        assert c.num_tasks == 2  # main + one used extra

    def test_total_procs(self):
        c = cand(procs={"fast": 2, "slow": 1})
        assert c.total_procs == 4

    def test_task_of_child(self):
        child = leaf("child")
        c = SolutionCandidate(
            node=leaf(),
            main_class="a",
            exec_time_us=1.0,
            segments=(TaskSegment(0, "fork", "a", (child,)),),
            is_sequential=False,
        )
        assert c.task_of_child(child) == 0
        assert c.task_of_child(leaf("other")) is None

    def test_describe_mentions_class(self):
        assert "arm" in cand(cls="arm500").describe() or "arm500" in cand(
            cls="arm500"
        ).describe()
