"""Tests for the OpenMP output backend."""

import pytest

from repro.bench_suite import get_benchmark
from repro.codegen.openmp import emit_openmp
from repro.core.parallelize import HeterogeneousParallelizer
from repro.platforms import config_a

from tests.conftest import prepare
from tests.test_transform_semantics import (
    assert_same_globals,
    run_globals,
    strip_pragmas,
)


@pytest.fixture(scope="module")
def filterbank_result():
    source = get_benchmark("filterbank").source
    program, _db, htg = prepare(source)
    result = HeterogeneousParallelizer(config_a("accelerator")).parallelize(htg)
    return source, program, result


class TestStructure:
    def test_sections_emitted(self, filterbank_result):
        _source, program, result = filterbank_result
        text = emit_openmp(result, program=program)
        assert "#pragma omp parallel sections" in text
        assert "#pragma omp section" in text

    def test_class_hints_present(self, filterbank_result):
        _source, program, result = filterbank_result
        text = emit_openmp(result, program=program)
        assert "repro:class(" in text
        assert "repro:main_class(" in text

    def test_body_only_mode(self, filterbank_result):
        _source, _program, result = filterbank_result
        text = emit_openmp(result)
        assert "OpenMP output" in text

    def test_full_unit_has_globals_and_entry(self, filterbank_result):
        _source, program, result = filterbank_result
        text = emit_openmp(result, program=program)
        assert "float input[" in text
        assert "void main(void)" in text


class TestSemantics:
    def test_sequential_fallback_equivalence(self, filterbank_result):
        """With OpenMP disabled (pragmas stripped) the emitted program is
        plain sequential C computing the same result."""
        source, program, result = filterbank_result
        text = emit_openmp(result, program=program)
        sequentialized = strip_pragmas(text)
        assert_same_globals(run_globals(source), run_globals(sequentialized))

    @pytest.mark.parametrize("bench", ["fir_256", "mult_10"])
    def test_other_kernels(self, bench):
        source = get_benchmark(bench).source
        program, _db, htg = prepare(source)
        result = HeterogeneousParallelizer(config_a("accelerator")).parallelize(htg)
        text = emit_openmp(result, program=program)
        assert_same_globals(
            run_globals(source), run_globals(strip_pragmas(text))
        )
