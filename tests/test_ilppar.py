"""Behavioral tests of the heterogeneous ILP on hand-built AHTG nodes."""

import pytest

from repro.cfront.defuse import DefUse
from repro.cfront.deps import DepKind
from repro.core.ilppar import IlpParOptions, ilp_parallelize_node
from repro.core.solution import SolutionCandidate, SolutionSet
from repro.htg.nodes import HierarchicalNode, HTGEdge, SimpleNode
from repro.platforms import Platform, ProcessorClass, config_a
from repro.platforms.description import Interconnect


def leaf(label: str, cycles: float) -> SimpleNode:
    return SimpleNode(label, 1.0, DefUse(), cycles)


def make_node(children, edges=None, label="node", exec_count=1.0):
    node = HierarchicalNode(
        label=label,
        construct="block",
        exec_count=exec_count,
        defuse=DefUse(),
        children=list(children),
        edges=[],
    )
    node.edges = edges or []
    # every child joins comm-out (zero bytes) as the builder does
    for child in children:
        node.edges.append(
            HTGEdge(child, node.comm_out, DepKind.FLOW, frozenset(), 0.0)
        )
    return node


def seed_sets(platform: Platform, children) -> dict:
    sets = {}
    for child in children:
        sset = SolutionSet()
        for pc in platform.processor_classes:
            sset.add(
                SolutionCandidate(
                    node=child,
                    main_class=pc.name,
                    exec_time_us=pc.time_us(child.total_cycles()),
                    is_sequential=True,
                    energy_nj=child.total_cycles() * pc.energy_per_cycle_nj,
                )
            )
        sets[child.uid] = sset
    return sets


def two_class_platform(tco=1.0):
    return Platform(
        "test",
        (
            ProcessorClass("slow", 100.0, 1),
            ProcessorClass("fast", 400.0, 2),
        ),
        interconnect=Interconnect(bandwidth_bytes_per_us=1000.0, latency_us=0.5),
        task_creation_overhead_us=tco,
        main_class_name="slow",
    )


class TestBasicDecisions:
    def test_independent_children_parallelized(self):
        platform = two_class_platform()
        children = [leaf(f"w{i}", 40_000.0) for i in range(3)]
        node = make_node(children)
        cand = ilp_parallelize_node(
            node, "slow", 4, platform, seed_sets(platform, children)
        )
        assert cand is not None
        seq_on_slow = 3 * 400.0  # 3 x 40k cycles at 100MHz
        assert cand.exec_time_us < seq_on_slow
        assert cand.num_tasks >= 2

    def test_fast_cores_get_more_work(self):
        platform = two_class_platform()
        children = [leaf(f"w{i}", 40_000.0) for i in range(8)]
        node = make_node(children)
        cand = ilp_parallelize_node(
            node, "slow", 4, platform, seed_sets(platform, children)
        )
        assert cand is not None
        # count children per class
        per_class = {}
        for segment in cand.segments:
            per_class.setdefault(segment.proc_class, 0)
            per_class[segment.proc_class] += len(segment.children)
        fast = per_class.get("fast", 0)
        slow = per_class.get("slow", 0)
        assert fast > slow

    def test_never_worse_than_sequential(self):
        platform = two_class_platform(tco=100.0)  # huge spawn cost
        children = [leaf(f"w{i}", 100.0) for i in range(4)]  # tiny work
        node = make_node(children)
        cand = ilp_parallelize_node(
            node, "slow", 4, platform, seed_sets(platform, children)
        )
        assert cand is not None
        seq_on_slow = 4 * 1.0
        assert cand.exec_time_us <= seq_on_slow + 1e-6

    def test_offload_single_child(self):
        platform = two_class_platform()
        child = leaf("heavy", 400_000.0)
        node = make_node([child])
        cand = ilp_parallelize_node(node, "slow", 4, platform, seed_sets(platform, [child]))
        assert cand is not None
        # offloading to 'fast' takes 1000us (+TCO) vs 4000us on slow
        assert cand.exec_time_us < 1200.0

    def test_budget_one_returns_none(self):
        platform = two_class_platform()
        children = [leaf("a", 1000.0)]
        node = make_node(children)
        assert (
            ilp_parallelize_node(node, "slow", 1, platform, seed_sets(platform, children))
            is None
        )

    def test_no_children_returns_none(self):
        platform = two_class_platform()
        node = make_node([])
        assert ilp_parallelize_node(node, "slow", 4, platform, {}) is None


class TestDependences:
    def test_chain_not_parallelized_across(self):
        platform = two_class_platform()
        a = leaf("a", 40_000.0)
        b = leaf("b", 40_000.0)
        node = make_node([a, b])
        # a -> b dependence with negligible data
        node.edges.insert(0, HTGEdge(a, b, DepKind.FLOW, frozenset({"v"}), 4.0))
        cand = ilp_parallelize_node(
            node, "slow", 4, platform, seed_sets(platform, [a, b])
        )
        assert cand is not None
        # best is to run both on a fast core sequentially: 2*100us + overhead
        assert cand.exec_time_us >= 200.0 - 1e-6
        assert cand.exec_time_us < 2 * 400.0

    def test_backward_edge_forces_colocation(self):
        platform = two_class_platform()
        a = leaf("a", 40_000.0)
        b = leaf("b", 40_000.0)
        node = make_node([a, b])
        node.edges.insert(0, HTGEdge(a, b, DepKind.FLOW, frozenset({"v"}), 4.0))
        node.edges.insert(
            0, HTGEdge(b, a, DepKind.FLOW, frozenset({"w"}), 4.0, backward=True)
        )
        cand = ilp_parallelize_node(
            node, "slow", 4, platform, seed_sets(platform, [a, b])
        )
        assert cand is not None
        ta = cand.task_of_child(a)
        tb = cand.task_of_child(b)
        assert ta == tb

    def test_expensive_communication_discourages_split(self):
        platform = two_class_platform()
        a = leaf("a", 4_000.0)
        b = leaf("b", 4_000.0)
        node = make_node([a, b])
        # enormous data flow between a and b
        node.edges.insert(
            0, HTGEdge(a, b, DepKind.FLOW, frozenset({"big"}), 10_000_000.0)
        )
        cand = ilp_parallelize_node(
            node, "slow", 4, platform, seed_sets(platform, [a, b])
        )
        assert cand is not None
        assert cand.task_of_child(a) == cand.task_of_child(b)


class TestBudgets:
    def test_class_capacity_respected(self):
        platform = two_class_platform()  # 1 slow + 2 fast
        children = [leaf(f"w{i}", 40_000.0) for i in range(6)]
        node = make_node(children)
        cand = ilp_parallelize_node(
            node, "slow", 4, platform, seed_sets(platform, children)
        )
        assert cand is not None
        fast_tasks = sum(
            1
            for s in cand.segments
            if s.role == "extra" and s.children and s.proc_class == "fast"
        )
        assert fast_tasks <= 2
        slow_tasks = sum(
            1
            for s in cand.segments
            if s.role == "extra" and s.children and s.proc_class == "slow"
        )
        assert slow_tasks == 0  # the only slow core hosts the main task

    def test_total_budget_respected(self):
        platform = two_class_platform()
        children = [leaf(f"w{i}", 40_000.0) for i in range(6)]
        node = make_node(children)
        cand = ilp_parallelize_node(
            node, "slow", 2, platform, seed_sets(platform, children)
        )
        assert cand is not None
        assert cand.total_procs <= 2

    def test_inner_procs_counted(self):
        platform = two_class_platform()
        child = leaf("inner-parallel", 40_000.0)
        node = make_node([child])
        sets = seed_sets(platform, [child])
        # add a parallel candidate for the child that uses both fast cores
        sets[child.uid].add(
            SolutionCandidate(
                node=child,
                main_class="fast",
                exec_time_us=55.0,
                used_procs={"fast": 1},
                is_sequential=False,
            )
        )
        cand = ilp_parallelize_node(node, "slow", 4, platform, sets)
        assert cand is not None
        chosen = cand.child_choice[child.uid]
        if not chosen.is_sequential:
            # both fast cores are accounted for
            assert cand.used_procs.get("fast", 0) == 2

    def test_budget_two_blocks_inner_parallel_choice(self):
        platform = two_class_platform()
        child = leaf("inner-parallel", 40_000.0)
        node = make_node([child])
        sets = seed_sets(platform, [child])
        sets[child.uid].add(
            SolutionCandidate(
                node=child,
                main_class="fast",
                exec_time_us=55.0,
                used_procs={"fast": 1},
                is_sequential=False,
            )
        )
        cand = ilp_parallelize_node(node, "slow", 2, platform, sets)
        assert cand is not None
        chosen = cand.child_choice[child.uid]
        # with only one extra processor the 2-proc candidate is not usable
        assert chosen.is_sequential


class TestClassConsistency:
    def test_chosen_candidate_matches_task_class(self):
        platform = two_class_platform()
        children = [leaf(f"w{i}", 40_000.0) for i in range(4)]
        node = make_node(children)
        cand = ilp_parallelize_node(
            node, "slow", 4, platform, seed_sets(platform, children)
        )
        assert cand is not None
        for segment in cand.segments:
            for child in segment.children:
                assert cand.child_choice[child.uid].main_class == segment.proc_class

    def test_main_segments_on_seq_class(self):
        platform = two_class_platform()
        children = [leaf(f"w{i}", 40_000.0) for i in range(4)]
        node = make_node(children)
        cand = ilp_parallelize_node(
            node, "fast", 4, platform, seed_sets(platform, children)
        )
        assert cand is not None
        for segment in cand.segments:
            if segment.is_main:
                assert segment.proc_class == "fast"
        assert cand.main_class == "fast"


class TestEnergyObjective:
    def test_energy_objective_prefers_efficient_class(self):
        # fast class burns much more energy per cycle
        platform = Platform(
            "energy",
            (
                ProcessorClass("eff", 100.0, 2, energy_per_cycle_nj=1.0),
                ProcessorClass("burn", 400.0, 2, energy_per_cycle_nj=20.0),
            ),
            interconnect=Interconnect(),
            task_creation_overhead_us=1.0,
            main_class_name="eff",
        )
        children = [leaf(f"w{i}", 10_000.0) for i in range(2)]
        node = make_node(children)
        sets = seed_sets(platform, children)
        cand = ilp_parallelize_node(
            node,
            "eff",
            4,
            platform,
            sets,
            options=IlpParOptions(objective="energy", energy_deadline_factor=1.0),
        )
        assert cand is not None
        for child in children:
            assert cand.child_choice[child.uid].main_class == "eff"
        assert cand.energy_nj == pytest.approx(20_000.0)

    def test_time_objective_uses_fast_class(self):
        platform = Platform(
            "energy",
            (
                ProcessorClass("eff", 100.0, 2, energy_per_cycle_nj=1.0),
                ProcessorClass("burn", 400.0, 2, energy_per_cycle_nj=20.0),
            ),
            interconnect=Interconnect(),
            task_creation_overhead_us=1.0,
            main_class_name="eff",
        )
        children = [leaf(f"w{i}", 100_000.0) for i in range(2)]
        node = make_node(children)
        cand = ilp_parallelize_node(
            node, "eff", 4, platform, seed_sets(platform, children)
        )
        assert cand is not None
        classes = {
            cand.child_choice[c.uid].main_class for c in children
        }
        assert "burn" in classes
