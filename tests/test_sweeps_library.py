"""Tests for parameter sweeps and the platform library."""

import pytest

from repro.platforms import config_a
from repro.platforms.library import ALL_PRESETS, exynos_big_little, omap4, tegra3
from repro.toolflow.sweeps import (
    render_sweep,
    sweep_bus_bandwidth,
    sweep_core_count,
    sweep_frequency_ratio,
    sweep_tco,
)


class TestPlatformLibrary:
    @pytest.mark.parametrize("factory", sorted(ALL_PRESETS))
    def test_presets_valid(self, factory):
        platform = ALL_PRESETS[factory]("accelerator")
        assert platform.total_cores >= 4
        assert platform.theoretical_speedup() > 1.0

    def test_tegra3_scenarios(self):
        assert tegra3("accelerator").main_class.name == "companion"
        assert tegra3("slower-cores").main_class.name == "a9"

    def test_omap4_cpi_scale_effective(self):
        platform = omap4()
        m3 = platform.get_class("m3")
        assert m3.effective_mhz == pytest.approx(200.0 / 1.5)

    def test_exynos_gap_near_paper_quote(self):
        platform = exynos_big_little()
        big = platform.get_class("a15").effective_mhz
        little = platform.get_class("a7").effective_mhz
        assert 2.0 <= big / little <= 3.0  # the paper quotes ~2.5x


class TestSweeps:
    @pytest.fixture(scope="class")
    def fir_htg(self, small_fir):
        _, _, htg = small_fir
        return htg

    def test_frequency_ratio_monotone_gap(self, fir_htg):
        """The hetero-over-homo advantage grows with the clock gap."""
        result = sweep_frequency_ratio(fir_htg, ratios=(1.0, 2.5, 5.0))
        gaps = [
            p.heterogeneous_speedup - p.homogeneous_speedup for p in result.points
        ]
        # at ratio 1.0 the platform is homogeneous: both approaches tie
        assert abs(gaps[0]) < 0.7
        assert gaps[-1] > gaps[0]

    def test_frequency_ratio_limits(self, fir_htg):
        result = sweep_frequency_ratio(fir_htg, ratios=(1.0, 4.0))
        for point in result.points:
            assert point.heterogeneous_speedup <= point.theoretical_limit + 1e-6

    def test_core_count_scaling(self, fir_htg):
        result = sweep_core_count(fir_htg, counts=(1, 3))
        assert (
            result.points[1].heterogeneous_speedup
            > result.points[0].heterogeneous_speedup
        )

    def test_tco_degradation(self, fir_htg):
        result = sweep_tco(
            fir_htg, config_a("accelerator"), tcos_us=(0.0, 200.0)
        )
        assert (
            result.points[0].heterogeneous_speedup
            >= result.points[1].heterogeneous_speedup - 1e-6
        )

    def test_bus_bandwidth_helps(self, fir_htg):
        result = sweep_bus_bandwidth(
            fir_htg, config_a("accelerator"), bandwidths=(25.0, 1600.0)
        )
        assert (
            result.points[1].heterogeneous_speedup
            >= result.points[0].heterogeneous_speedup - 1e-6
        )

    def test_render(self, fir_htg):
        result = sweep_core_count(fir_htg, counts=(1, 2))
        text = render_sweep(result)
        assert "fast_core_count" in text
        assert "limit" in text
