"""Smoke tests: the bundled examples must run end-to-end.

The heavyweight sweeps (`paper_experiments --all`, `design_space`) are
exercised by the benchmark harness; here the two fastest examples run in
full and the others are import-checked.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart_runs(self, capsys):
        module = load_example("quickstart")
        module.main()
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "#pragma repro" in out
        assert "repro-premapping" in out

    def test_pipeline_extension_runs(self, capsys):
        module = load_example("pipeline_extension")
        module.main()
        out = capsys.readouterr().out
        assert "pipeline" in out
        assert "task-level" in out

    @pytest.mark.parametrize(
        "name", ["paper_experiments", "custom_platform", "design_space"]
    )
    def test_other_examples_importable(self, name):
        module = load_example(name)
        assert hasattr(module, "main")

    def test_paper_experiments_help(self, capsys):
        module = load_example("paper_experiments")
        # no arguments: prints help, returns 2
        assert module.main([]) == 2
