"""Tests of the happens-before trace sanitizer and simulator vector clocks."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis.hb import sanitize_trace
from repro.simulator.run import evaluate_solution


@pytest.fixture(scope="module")
def fir_evaluation(fir_hetero_result):
    return evaluate_solution(fir_hetero_result, None)


class TestVectorClocks:
    def test_every_task_clocked(self, fir_evaluation):
        sim = fir_evaluation.sim
        for task in fir_evaluation.graph.tasks:
            assert task.tid in sim.clocks
            # reflexive bit: a task is in its own causal past
            assert (sim.clocks[task.tid] >> task.tid) & 1

    def test_edges_are_ordered(self, fir_evaluation):
        sim = fir_evaluation.sim
        for edge in fir_evaluation.graph.edges:
            assert sim.happens_before(edge.src, edge.dst), (edge.src, edge.dst)

    def test_happens_before_is_a_partial_order(self, fir_evaluation):
        sim = fir_evaluation.sim
        tids = [t.tid for t in fir_evaluation.graph.tasks]
        for a in tids:
            assert not sim.happens_before(a, a)
            for b in tids:
                if sim.happens_before(a, b):
                    assert not sim.happens_before(b, a)

    def test_same_core_serialization_ordered(self, fir_evaluation):
        sim = fir_evaluation.sim
        by_core = {}
        for tid, scheduled in sim.schedule.items():
            by_core.setdefault(scheduled.core, []).append(scheduled)
        for tasks in by_core.values():
            tasks.sort(key=lambda s: s.start_us)
            for prev, nxt in zip(tasks, tasks[1:]):
                assert sim.ordered(prev.tid, nxt.tid)


class TestSanitizer:
    def test_clean_trace_sanitizes(self, fir_hetero_result, fir_evaluation):
        diags = sanitize_trace(
            fir_evaluation.graph, fir_evaluation.sim, fir_hetero_result.htg
        )
        assert diags == []

    def test_erased_ordering_detected(self, fir_hetero_result, fir_evaluation):
        sim = fir_evaluation.sim
        # forge a trace where no task ever ordered after another
        forged = replace(
            sim, clocks={tid: 1 << tid for tid in sim.clocks}
        )
        diags = sanitize_trace(
            fir_evaluation.graph, forged, fir_hetero_result.htg
        )
        codes = {d.code for d in diags}
        assert "trace.missing-order" in codes
        # SMALL_FIR has real inter-task data flow, so erasing all
        # ordering must also surface at least one unordered conflict
        assert "trace.unordered-conflict" in codes
