"""Tests for the extended benchmark kernels (frontend hardening)."""

import numpy as np
import pytest

from repro.bench_suite.extended import EXTENDED_BENCHMARKS, get_extended_benchmark
from repro.cfront import ir, parse_c_source
from repro.cfront.defuse import compute_call_summaries
from repro.cfront.deps import LoopParallelism, classify_loop
from repro.core.parallelize import HeterogeneousParallelizer
from repro.platforms import config_a
from repro.simulator.run import evaluate_solution
from repro.timing.interp import Interpreter

from tests.conftest import prepare


@pytest.fixture(scope="module")
def interpreted():
    out = {}
    for name, bench in EXTENDED_BENCHMARKS.items():
        program = parse_c_source(bench.source)
        interp = Interpreter(program)
        interp.run("main")
        out[name] = (program, interp)
    return out


class TestKernels:
    @pytest.mark.parametrize("name", sorted(EXTENDED_BENCHMARKS))
    def test_runs(self, name, interpreted):
        _program, interp = interpreted[name]
        assert np.isfinite(interp.globals["checksum"])

    def test_get_unknown(self):
        with pytest.raises(KeyError):
            get_extended_benchmark("nope")

    def test_histogram_counts_sum(self, interpreted):
        _, interp = interpreted["histogram"]
        bins = interp.globals["bins"]
        assert bins.sum() == pytest.approx(2048.0)

    def test_cholesky_matches_numpy(self, interpreted):
        _, interp = interpreted["cholesky"]
        a = interp.globals["a"].astype(np.float64)
        dim = a.shape[0]
        # rebuild the original SPD matrix and factor with numpy
        i = np.arange(dim).reshape(-1, 1)
        j = np.arange(dim).reshape(1, -1)
        original = (1.0 / (1.0 + i + j)).astype(np.float32).astype(np.float64)
        np.fill_diagonal(original, dim + 1.0)
        expected = np.linalg.cholesky(original)
        measured = np.tril(a)
        np.testing.assert_allclose(measured, expected, rtol=1e-3, atol=1e-5)

    def test_lms_error_decreases(self, interpreted):
        _, interp = interpreted["lms_adaptive"]
        e = np.abs(interp.globals["e"].astype(np.float64))
        # the adaptive filter converges: late errors much smaller than early
        assert e[-64:].mean() < 0.5 * e[:64].mean()


class TestConservativeClassification:
    def _classify_loop_writing(self, name, target_array, also_reads=None):
        """Classify the compute loop that writes ``target_array``."""
        from repro.cfront.defuse import compute_defuse

        program = parse_c_source(EXTENDED_BENCHMARKS[name].source)
        func = program.entry("main")
        summaries = compute_call_summaries(program)
        for stmt in func.body.stmts:
            if not isinstance(stmt, ir.ForLoop):
                continue
            du = compute_defuse(stmt, summaries)
            if target_array not in du.array_defs:
                continue
            if also_reads and also_reads not in du.array_uses:
                continue
            return classify_loop(stmt, summaries)
        raise AssertionError(f"no loop writing {target_array!r} found")

    def test_lms_sample_loop_serial(self):
        """The weight vector w carries across samples."""
        cls = self._classify_loop_writing("lms_adaptive", "w", also_reads="d")
        assert cls.parallelism is LoopParallelism.SERIAL

    def test_histogram_indirect_serial(self):
        """Indirect bins[b] writes must defeat the affine test."""
        cls = self._classify_loop_writing("histogram", "bins", also_reads="data")
        assert cls.parallelism is LoopParallelism.SERIAL

    def test_cholesky_outer_serial(self):
        """In-place updates read earlier columns: carried dependence."""
        cls = self._classify_loop_writing("cholesky", "a", also_reads="a")
        # the factorization loop is the second writer of `a` (after init);
        # init writes without reading a, so also_reads filters to the right one
        assert cls.parallelism is LoopParallelism.SERIAL


class TestEndToEnd:
    @pytest.mark.parametrize("name", sorted(EXTENDED_BENCHMARKS))
    def test_parallelizes_safely(self, name):
        """Conservative kernels must still go through the whole pipeline
        without unsound transformations (offload-only solutions are fine)."""
        source = EXTENDED_BENCHMARKS[name].source
        program, _db, htg = prepare(source)
        platform = config_a("accelerator")
        result = HeterogeneousParallelizer(platform).parallelize(htg)
        evaluation = evaluate_solution(result)
        assert 0.9 < evaluation.speedup <= platform.theoretical_speedup() + 1e-6

        # semantic equivalence of the emitted transformation
        from repro.codegen import annotate_solution
        from tests.test_transform_semantics import (
            assert_same_globals,
            run_globals,
            strip_pragmas,
        )

        transformed = strip_pragmas(annotate_solution(result, program=program))
        assert_same_globals(run_globals(source), run_globals(transformed))
