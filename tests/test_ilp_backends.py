"""Cross-checks between the HiGHS backend and the pure-Python B&B solver."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ilp import InfeasibleError, Model, SolveStatus, UnboundedError, lin_sum
from repro.ilp.bnb import solve_bnb
from repro.ilp.scipy_backend import solve_scipy


def _knapsack(values, weights, capacity):
    m = Model("knapsack")
    xs = [m.add_binary(f"x{i}") for i in range(len(values))]
    m.add_constraint(lin_sum(w * x for w, x in zip(weights, xs)) <= capacity)
    m.maximize(lin_sum(v * x for v, x in zip(values, xs)))
    return m


class TestAgreement:
    @pytest.mark.parametrize(
        "values,weights,capacity",
        [
            ([6, 5, 4], [3, 2, 2], 4),
            ([10, 1, 1, 1], [4, 1, 1, 1], 4),
            ([7, 7, 7], [5, 5, 5], 10),
            ([3], [10], 5),
        ],
    )
    def test_knapsack_objectives_match(self, values, weights, capacity):
        m = _knapsack(values, weights, capacity)
        a = m.solve(backend="scipy")
        b = m.solve(backend="bnb")
        assert a.objective == pytest.approx(b.objective)

    def test_mixed_integer_continuous(self):
        m = Model()
        x = m.add_var("x", 0, 10, integer=True)
        y = m.add_var("y", 0, 10)
        m.add_constraint(x + y <= 7.5)
        m.add_constraint(y <= 2 * x)
        m.maximize(3 * x + 2 * y)
        a = m.solve(backend="scipy")
        b = m.solve(backend="bnb")
        assert a.objective == pytest.approx(b.objective)
        # x integral in both
        assert b[x] == round(b[x])

    def test_equality_constraints(self):
        m = Model()
        x = m.add_var("x", 0, 5, integer=True)
        y = m.add_var("y", 0, 5, integer=True)
        m.add_constraint(x + y == 4)
        m.minimize(x - y)
        a = m.solve(backend="scipy")
        b = m.solve(backend="bnb")
        assert a.objective == pytest.approx(-4) == pytest.approx(b.objective)

    def test_bnb_detects_infeasible(self):
        m = Model()
        x = m.add_binary("x")
        m.add_constraint(x >= 2)
        m.minimize(x)
        assert solve_bnb(m).status is SolveStatus.INFEASIBLE
        assert solve_scipy(m).status is SolveStatus.INFEASIBLE

    def test_bnb_detects_unbounded(self):
        m = Model()
        x = m.add_var("x", 0, math.inf, integer=True)
        m.maximize(x)
        assert solve_bnb(m).status is SolveStatus.UNBOUNDED

    def test_bnb_with_scipy_relaxation(self):
        m = _knapsack([6, 5, 4], [3, 2, 2], 4)
        a = solve_bnb(m, use_scipy_lp=True)
        b = solve_bnb(m, use_scipy_lp=False)
        assert a.objective == pytest.approx(b.objective)

    def test_fractional_lp_part_preserved(self):
        # Pure LP (no integers) through both backends.
        m = Model()
        x = m.add_var("x", 0, 1)
        y = m.add_var("y", 0, 1)
        m.add_constraint(x + y <= 1.5)
        m.maximize(x + y)
        a = m.solve(backend="scipy")
        b = m.solve(backend="bnb")
        assert a.objective == pytest.approx(1.5) == pytest.approx(b.objective)


class TestBnbWarmStart:
    def test_incumbent_obj_is_a_cutoff(self):
        # minimize x over x in [3, 10]: optimum 3.
        m = Model("cutoff")
        x = m.add_var("x", 0, 10, integer=True)
        m.add_constraint(x >= 3)
        m.minimize(x)
        assert solve_bnb(m, incumbent_obj=4.0).objective == pytest.approx(3.0)
        # Nothing beats the cutoff at the optimum itself: the caller keeps
        # its incumbent, reported as INFEASIBLE.
        assert solve_bnb(m, incumbent_obj=3.0).status is SolveStatus.INFEASIBLE

    def test_incumbent_x_at_optimum_returns_optimal_not_infeasible(self):
        # Regression: an injected incumbent *solution* whose objective
        # equals the optimum must come back OPTIMAL with that solution —
        # the cutoff prunes every node, but the seed itself is the
        # answer. (Plain incumbent_obj keeps the caller-keeps-incumbent
        # INFEASIBLE contract tested above.)
        m = Model("warm-at-optimum")
        x = m.add_var("x", 0, 10, integer=True)
        m.add_constraint(x >= 3)
        m.minimize(x)
        warm = solve_bnb(m, incumbent_obj=3.0, incumbent_x=[3.0])
        assert warm.status is SolveStatus.OPTIMAL
        assert warm.objective == pytest.approx(3.0)
        assert warm[x] == pytest.approx(3.0)
        assert not m.check(warm)

    def test_incumbent_x_objective_recomputed_from_vector(self):
        # The seeded objective is recomputed as c @ x: a stale or
        # mis-rounded incumbent_obj cannot poison the cutoff.
        m = Model("warm-recompute")
        x = m.add_var("x", 0, 10, integer=True)
        m.add_constraint(x >= 3)
        m.minimize(x)
        warm = solve_bnb(m, incumbent_obj=2.5, incumbent_x=[4.0])
        assert warm.status is SolveStatus.OPTIMAL
        assert warm.objective == pytest.approx(3.0)

    def test_incumbent_x_suboptimal_is_improved(self):
        m = _knapsack([6, 5, 4], [3, 2, 2], 4)
        # Seed the feasible but suboptimal "take only item 2" solution.
        warm = solve_bnb(m, incumbent_x=[0.0, 0.0, 1.0])
        assert warm.status is SolveStatus.OPTIMAL
        assert warm.objective == pytest.approx(solve_bnb(m).objective)

    def test_lower_bound_accelerates_without_changing_result(self):
        m = _knapsack([6, 5, 4], [3, 2, 2], 4)
        plain = solve_bnb(m)
        # The optimum of the minimized matrix form is -objective for a
        # maximize model; handing it over must not change the answer.
        warm = solve_bnb(m, lower_bound=-plain.objective)
        assert warm.status is SolveStatus.OPTIMAL
        assert warm.objective == pytest.approx(plain.objective)

    def test_mip_rel_gap_returns_feasible_within_gap(self):
        m = _knapsack([6, 5, 4], [3, 2, 2], 4)
        exact = solve_bnb(m).objective
        approx = solve_bnb(m, mip_rel_gap=0.5)
        assert approx.status is SolveStatus.OPTIMAL
        assert not m.check(approx)
        assert approx.objective >= (1 - 0.5) * exact - 1e-9
        assert approx.objective <= exact + 1e-9

    def test_time_limit_returns_incumbent_as_feasible(self, monkeypatch):
        from repro.ilp import bnb as bnb_mod
        from repro.ilp.simplex import LPResult

        # Deterministic clock: the timeout strikes on the third loop check,
        # after the floor child has produced an incumbent.
        ticks = iter([0.0, 0.0, 0.0, 100.0])
        monkeypatch.setattr(bnb_mod, "_now", lambda: next(ticks))

        def fake_lp(c, a_ub, b_ub, a_eq, b_eq, lb, ub):
            if ub[0] == 0:  # floor child: integral incumbent y = 0
                return LPResult("optimal", np.array([0.0]), 0.0)
            return LPResult("optimal", np.array([0.5]), 0.5)  # root: branch

        monkeypatch.setattr(bnb_mod, "solve_lp", fake_lp)
        m = Model("timeout")
        y = m.add_var("y", 0, 10, integer=True)
        m.add_constraint(y <= 10)
        m.minimize(y)
        sol = solve_bnb(m, time_limit=5.0, use_scipy_lp=False)
        assert sol.status is SolveStatus.FEASIBLE
        assert sol[y] == 0.0

    def test_time_limit_without_incumbent_is_an_error(self, monkeypatch):
        from repro.ilp import bnb as bnb_mod

        ticks = iter([0.0, 100.0])
        monkeypatch.setattr(bnb_mod, "_now", lambda: next(ticks))
        m = _knapsack([6, 5, 4], [3, 2, 2], 4)
        assert solve_bnb(m, time_limit=5.0).status is SolveStatus.ERROR


class TestBnbUnboundedVerdict:
    """Regression: only the *root* relaxation may prove unboundedness.

    A restricted subproblem box can make the simplex report "unbounded"
    as a numerical artifact; the old ``root_unbounded or best_x is None``
    logic then flipped a bounded MILP's verdict to UNBOUNDED.
    """

    def _model(self):
        m = Model("interior-unbounded")
        y = m.add_var("y", 0, 10, integer=True)
        m.add_constraint(y <= 10)
        m.minimize(-y)
        return m, y

    def test_interior_unbounded_child_does_not_flip_verdict(self, monkeypatch):
        from repro.ilp import bnb as bnb_mod
        from repro.ilp.simplex import LPResult

        def fake_lp(c, a_ub, b_ub, a_eq, b_eq, lb, ub):
            if ub[0] == 0:  # floor child: the numerical artifact
                return LPResult("unbounded")
            if lb[0] >= 1:  # ceil child: integral optimum
                return LPResult("optimal", np.array([10.0]), -10.0)
            return LPResult("optimal", np.array([0.5]), -0.5)  # root

        monkeypatch.setattr(bnb_mod, "solve_lp", fake_lp)
        m, y = self._model()
        sol = solve_bnb(m, use_scipy_lp=False)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol[y] == 10.0

    def test_all_children_pruned_is_infeasible_not_unbounded(self, monkeypatch):
        from repro.ilp import bnb as bnb_mod
        from repro.ilp.simplex import LPResult

        def fake_lp(c, a_ub, b_ub, a_eq, b_eq, lb, ub):
            if ub[0] == 0 or lb[0] >= 1:
                return LPResult("unbounded")
            return LPResult("optimal", np.array([0.5]), -0.5)

        monkeypatch.setattr(bnb_mod, "solve_lp", fake_lp)
        m, _y = self._model()
        assert solve_bnb(m, use_scipy_lp=False).status is SolveStatus.INFEASIBLE

    def test_root_unbounded_still_detected(self, monkeypatch):
        from repro.ilp import bnb as bnb_mod
        from repro.ilp.simplex import LPResult

        monkeypatch.setattr(
            bnb_mod, "solve_lp", lambda *args: LPResult("unbounded")
        )
        m, _y = self._model()
        assert solve_bnb(m, use_scipy_lp=False).status is SolveStatus.UNBOUNDED


class TestBnbPresolveFastPaths:
    """Instances decided by presolve must never reach the simplex."""

    def _raising_lp(self, monkeypatch):
        from repro.ilp import bnb as bnb_mod

        def boom(*args, **kwargs):
            raise AssertionError("simplex must not be invoked")

        monkeypatch.setattr(bnb_mod, "solve_lp", boom)

    def test_all_variables_fixed_returns_without_simplex(self, monkeypatch):
        self._raising_lp(monkeypatch)
        m = Model("fixed")
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add_constraint(x <= 0)
        m.add_constraint(y <= 0)
        m.minimize(x + y)
        sol = solve_bnb(m, use_scipy_lp=False)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(0.0)
        assert sol[x] == 0.0 and sol[y] == 0.0

    def test_all_fixed_infeasible_point_detected(self, monkeypatch):
        self._raising_lp(monkeypatch)
        m = Model("fixed-infeasible")
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add_constraint(x <= 0)
        m.add_constraint(y <= 0)
        m.add_constraint(x + y >= 1)  # unsatisfiable at the fixed point
        m.minimize(x + y)
        assert solve_bnb(m, use_scipy_lp=False).status is SolveStatus.INFEASIBLE

    def test_all_fixed_respects_incumbent_cutoff(self, monkeypatch):
        self._raising_lp(monkeypatch)
        m = Model("fixed-cutoff")
        x = m.add_binary("x")
        m.add_constraint(x <= 0)
        m.minimize(x)
        assert (
            solve_bnb(m, use_scipy_lp=False, incumbent_obj=0.0).status
            is SolveStatus.INFEASIBLE
        )

    def test_infeasible_constant_row_returns_without_simplex(self, monkeypatch):
        self._raising_lp(monkeypatch)
        from repro.ilp.bnb import solve_form_bnb
        from repro.ilp.model import MatrixForm

        form = MatrixForm(
            c=np.array([1.0]),
            rows_ub=[({}, -1.0)],  # 0 <= -1: constant and infeasible
            rows_eq=[],
            lb=np.zeros(1),
            ub=np.ones(1),
            integrality=np.ones(1),
            obj_const=0.0,
            minimize=True,
        )
        status, x = solve_form_bnb(form, use_scipy_lp=False)
        assert status is SolveStatus.INFEASIBLE
        assert x is None

    def test_crossed_bounds_return_without_simplex(self, monkeypatch):
        self._raising_lp(monkeypatch)
        m = Model("crossed")
        x = m.add_var("x", 0, 5, integer=True)
        m.add_constraint(x >= 4)
        m.add_constraint(x <= 2)
        m.minimize(x)
        assert solve_bnb(m, use_scipy_lp=False).status is SolveStatus.INFEASIBLE


class TestDeterministicBranching:
    def test_most_fractional_ties_break_by_lowest_index(self):
        from repro.ilp.bnb import _most_fractional

        mask = np.array([True, True, True])
        assert _most_fractional(np.array([0.5, 0.5, 0.5]), mask) == 0
        # near-ties within 1e-12 also go to the lowest index
        assert _most_fractional(np.array([0.5, 0.5 + 1e-13, 0.5]), mask) == 0
        # a genuinely more fractional variable still wins
        assert _most_fractional(np.array([0.3, 0.5, 0.4]), mask) == 1
        # continuous variables are never branched on
        assert (
            _most_fractional(np.array([0.5, 0.5]), np.array([False, True])) == 1
        )


class TestSolveStats:
    def test_bnb_reports_kernel_counters(self):
        m = _knapsack([6, 5, 4, 3], [3, 2, 2, 2], 5)
        sol = solve_bnb(m, use_scipy_lp=False)
        assert sol.nodes >= 1
        assert sol.iterations > 0
        # children inherit the parent basis, so warm offers happen whenever
        # the search branches at all
        if sol.nodes > 1:
            assert sol.warm_lp_solves > 0
            assert sol.warm_lp_hits <= sol.warm_lp_solves

    def test_scipy_backend_reports_counters(self):
        m = _knapsack([6, 5, 4], [3, 2, 2], 4)
        sol = solve_scipy(m)
        assert sol.nodes >= 0
        assert sol.iterations == 0  # scipy.optimize.milp exposes no pivot count
        assert sol.warm_lp_solves == 0

    def test_collector_receives_counters(self):
        from repro.ilp.stats import StatsCollector

        collector = StatsCollector()
        m = _knapsack([6, 5, 4], [3, 2, 2], 4)
        m.solve(backend="bnb", collector=collector)
        (record,) = collector.records
        assert record.iterations > 0
        assert record.nodes >= 1
        assert record.objective == pytest.approx(9.0)
        assert collector.total_iterations == record.iterations
        assert collector.total_nodes == record.nodes


@st.composite
def random_binary_program(draw):
    """A random small 0-1 program with bounded coefficients."""
    n = draw(st.integers(2, 5))
    rows = draw(st.integers(1, 4))
    coeffs = draw(
        st.lists(
            st.lists(st.integers(-4, 4), min_size=n, max_size=n),
            min_size=rows,
            max_size=rows,
        )
    )
    rhs = draw(st.lists(st.integers(0, 8), min_size=rows, max_size=rows))
    objective = draw(st.lists(st.integers(-5, 5), min_size=n, max_size=n))
    return coeffs, rhs, objective


class TestPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(random_binary_program())
    def test_backends_agree_on_random_programs(self, spec):
        coeffs, rhs, objective = spec
        m = Model("random")
        xs = [m.add_binary(f"x{i}") for i in range(len(objective))]
        for row, b in zip(coeffs, rhs):
            m.add_constraint(lin_sum(a * x for a, x in zip(row, xs)) <= b)
        m.maximize(lin_sum(c * x for c, x in zip(objective, xs)))
        # rhs >= 0 with binary vars: x = 0 is always feasible.
        a = m.solve(backend="scipy")
        b = m.solve(backend="bnb")
        assert a.objective == pytest.approx(b.objective, abs=1e-6)
        # Both solutions must satisfy every constraint.
        assert not m.check(a)
        assert not m.check(b)

    @settings(max_examples=25, deadline=None)
    @given(random_binary_program())
    def test_bnb_solution_is_integral(self, spec):
        coeffs, rhs, objective = spec
        m = Model("random")
        xs = [m.add_binary(f"x{i}") for i in range(len(objective))]
        for row, b in zip(coeffs, rhs):
            m.add_constraint(lin_sum(a * x for a, x in zip(row, xs)) <= b)
        m.maximize(lin_sum(c * x for c, x in zip(objective, xs)))
        sol = m.solve(backend="bnb")
        for x in xs:
            assert sol[x] in (0.0, 1.0)
