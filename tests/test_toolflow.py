"""Tests for the end-to-end tool flow, experiment harness and reports."""

import pytest

from repro import parallelize_source
from repro.toolflow.experiments import (
    FIGURES,
    FigureResult,
    prepare_benchmark,
    run_benchmark,
    run_figure,
    run_table1,
)
from repro.toolflow.flow import ToolFlow
from repro.toolflow.report import render_figure, render_table1
from repro.platforms import config_a

from tests.conftest import SMALL_FIR


class TestToolFlow:
    def test_end_to_end_hetero(self, platform_a_acc):
        flow = ToolFlow(platform_a_acc, approach="heterogeneous")
        outcome = flow.run(SMALL_FIR)
        assert outcome.speedup > 1.0
        assert outcome.evaluation.theoretical_limit == pytest.approx(13.5)
        assert outcome.speedup <= outcome.evaluation.theoretical_limit + 1e-6

    def test_end_to_end_homo(self, platform_a_acc):
        flow = ToolFlow(platform_a_acc, approach="homogeneous")
        outcome = flow.run(SMALL_FIR)
        assert outcome.speedup > 0.0

    def test_parallelize_source_wrapper(self, platform_a_acc):
        result, evaluation = parallelize_source(SMALL_FIR, platform_a_acc)
        assert result.approach == "heterogeneous"
        assert evaluation.speedup > 1.0

    def test_unknown_approach_rejected(self, platform_a_acc):
        with pytest.raises(ValueError):
            ToolFlow(platform_a_acc, approach="magic")

    def test_custom_entry_point(self, platform_a_acc):
        source = SMALL_FIR.replace("void main(void)", "void kernel(void)")
        result, evaluation = parallelize_source(
            source, platform_a_acc, entry="kernel"
        )
        assert evaluation.speedup > 1.0


class TestExperimentHarness:
    def test_figures_registry(self):
        assert set(FIGURES) == {"7a", "7b", "8a", "8b"}

    def test_prepare_benchmark_cached(self):
        p1, h1 = prepare_benchmark("fir_256")
        p2, h2 = prepare_benchmark("fir_256")
        assert p1 is p2 and h1 is h2

    def test_run_benchmark_hetero(self, platform_a_acc):
        run = run_benchmark("fir_256", platform_a_acc, "heterogeneous")
        assert run.speedup > 1.0
        assert run.stats.num_ilps > 0
        assert run.num_tasks >= 1

    def test_run_figure_subset(self):
        fig = run_figure("7a", benchmarks=["fir_256"])
        assert isinstance(fig, FigureResult)
        assert fig.theoretical_limit == pytest.approx(13.5)
        homo = fig.runs["fir_256"]["homogeneous"]
        hetero = fig.runs["fir_256"]["heterogeneous"]
        assert hetero.speedup > homo.speedup

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            run_figure("9z")

    def test_run_table1_subset(self):
        table = run_table1(benchmarks=["fir_256"])
        assert len(table.rows) == 1
        row = table.rows[0]
        assert row.heterogeneous.num_ilps > row.homogeneous.num_ilps
        factor = row.factor
        assert factor.ilp_factor > 1.0
        assert factor.variable_factor > 1.0
        assert factor.constraint_factor > 1.0


class TestReports:
    def test_render_figure(self):
        fig = run_figure("7a", benchmarks=["fir_256"])
        text = render_figure(fig)
        assert "Fig. 7(a)" in text
        assert "fir_256" in text
        assert "13.50x" in text
        assert "average" in text

    def test_render_table1(self):
        table = run_table1(benchmarks=["fir_256"])
        text = render_table1(table)
        assert "TABLE I" in text
        assert "fir_256" in text
        assert "average" in text
        assert "x" in text  # factors
