"""Tests for the pipeline-parallelism extension."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfront.defuse import DefUse
from repro.cfront.deps import DepKind
from repro.core.pipeline import (
    _fuse_recurrences,
    _min_bottleneck_partition,
    extract_pipeline,
)
from repro.htg.nodes import HierarchicalNode, HTGEdge, SimpleNode
from repro.platforms import Platform, ProcessorClass
from repro.platforms.description import Interconnect


def loop_node(children, edges=(), iterations=100.0):
    node = HierarchicalNode(
        label="loop",
        construct="loop",
        exec_count=1.0,
        defuse=DefUse(),
        children=list(children),
        edges=[],
    )
    for child in children:
        child.exec_count = iterations
    node.edges = list(edges)
    return node


def stage_leaf(label, cycles):
    return SimpleNode(label, 100.0, DefUse(), cycles)


def pipeline_platform():
    return Platform(
        "pipe",
        (
            ProcessorClass("slow", 100.0, 2),
            ProcessorClass("fast", 400.0, 2),
        ),
        interconnect=Interconnect(bandwidth_bytes_per_us=1000.0, latency_us=0.1),
        task_creation_overhead_us=1.0,
        main_class_name="slow",
    )


class TestPartitionDP:
    def test_even_split(self):
        bounds = _min_bottleneck_partition([10, 10, 10, 10], 2)
        assert bounds == [0, 2]

    def test_heavy_item_isolated(self):
        bounds = _min_bottleneck_partition([1, 100, 1], 3)
        assert bounds == [0, 1, 2]

    @given(
        st.lists(st.integers(1, 50), min_size=1, max_size=10),
        st.integers(1, 5),
    )
    @settings(max_examples=100, deadline=None)
    def test_bounds_are_valid_partition(self, costs, k):
        bounds = _min_bottleneck_partition(costs, k)
        k_eff = min(k, len(costs))
        assert len(bounds) == k_eff
        assert bounds[0] == 0
        assert all(a < b for a, b in zip(bounds, bounds[1:]))
        assert all(0 <= b < len(costs) for b in bounds)

    @given(st.lists(st.integers(1, 50), min_size=2, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_bottleneck_never_below_max_item(self, costs):
        bounds = _min_bottleneck_partition(costs, 3)
        bounds.append(len(costs))
        bottleneck = max(
            sum(costs[a:b]) for a, b in zip(bounds, bounds[1:])
        )
        assert bottleneck >= max(costs)


class TestRecurrenceFusion:
    def test_no_backward_edges_no_fusion(self):
        children = [stage_leaf(f"s{i}", 100.0) for i in range(4)]
        node = loop_node(children)
        groups = _fuse_recurrences(node, children)
        assert len(groups) == 4

    def test_backward_edge_fuses_range(self):
        children = [stage_leaf(f"s{i}", 100.0) for i in range(4)]
        edges = [
            HTGEdge(children[2], children[1], DepKind.FLOW, frozenset(), 0.0, backward=True)
        ]
        node = loop_node(children, edges)
        groups = _fuse_recurrences(node, children)
        assert len(groups) == 3
        assert len(groups[1]) == 2  # s1+s2 fused

    def test_overlapping_recurrences_merge(self):
        children = [stage_leaf(f"s{i}", 100.0) for i in range(5)]
        edges = [
            HTGEdge(children[2], children[0], DepKind.FLOW, frozenset(), 0.0, backward=True),
            HTGEdge(children[3], children[2], DepKind.FLOW, frozenset(), 0.0, backward=True),
        ]
        node = loop_node(children, edges)
        groups = _fuse_recurrences(node, children)
        assert len(groups) == 2  # s0..s3 fused, s4 alone


class TestExtractPipeline:
    def test_balanced_stages_pipeline(self):
        children = [stage_leaf(f"s{i}", 50_000.0) for i in range(4)]
        edges = [
            HTGEdge(children[i], children[i + 1], DepKind.FLOW, frozenset({"v"}), 400.0)
            for i in range(3)
        ]
        node = loop_node(children, edges)
        sol = extract_pipeline(node, pipeline_platform())
        assert sol is not None
        assert sol.num_stages >= 2
        assert sol.estimated_speedup > 1.0
        assert sol.exec_time_us < sol.sequential_time_us

    def test_heaviest_stage_on_fastest_class(self):
        children = [
            stage_leaf("light", 10_000.0),
            stage_leaf("heavy", 200_000.0),
        ]
        edges = [HTGEdge(children[0], children[1], DepKind.FLOW, frozenset(), 100.0)]
        node = loop_node(children, edges)
        sol = extract_pipeline(node, pipeline_platform())
        assert sol is not None
        heavy_stage = next(
            s for s in sol.stages if any(c.label == "heavy" for c in s.nodes)
        )
        assert heavy_stage.proc_class == "fast"

    def test_non_loop_rejected(self):
        node = loop_node([stage_leaf("a", 100.0), stage_leaf("b", 100.0)])
        node.construct = "block"
        assert extract_pipeline(node, pipeline_platform()) is None

    def test_single_group_rejected(self):
        children = [stage_leaf(f"s{i}", 100.0) for i in range(3)]
        edges = [
            HTGEdge(children[2], children[0], DepKind.FLOW, frozenset(), 0.0, backward=True)
        ]
        node = loop_node(children, edges)
        assert extract_pipeline(node, pipeline_platform()) is None

    def test_unprofitable_pipeline_rejected(self):
        # tiny stages: spawn + fill overheads exceed any gain
        children = [stage_leaf(f"s{i}", 10.0) for i in range(2)]
        node = loop_node(children, iterations=2.0)
        assert extract_pipeline(node, pipeline_platform()) is None

    def test_stage_count_bounded_by_cores(self):
        children = [stage_leaf(f"s{i}", 50_000.0) for i in range(8)]
        node = loop_node(children)
        sol = extract_pipeline(node, pipeline_platform())
        if sol is not None:
            assert sol.num_stages <= pipeline_platform().total_cores

    def test_latnrm_like_loop_pipelines(self):
        """A serial sample loop with chained stages — the paper's motivating
        case for pipeline parallelism (latnrm/spectral)."""
        from tests.conftest import prepare

        source = """
        float x[2048]; float y[2048]; float z[2048]; float w[2048];
        void main(void) {
            int i;
            float a; float b;
            a = 0.0f;
            b = 0.0f;
            for (i = 0; i < 2048; i++) {
                a = x[i] * 0.5f + a * 0.5f;
                y[i] = a;
                b = y[i] + b * 0.25f;
                z[i] = b;
                w[i] = sqrt(fabs(z[i]));
            }
        }
        """
        _, _, htg = prepare(source)
        loops = [
            n
            for n in htg.walk()
            if isinstance(n, HierarchicalNode) and n.construct == "loop"
        ]
        assert loops
        sol = extract_pipeline(loops[0], pipeline_platform())
        assert sol is not None
        assert sol.estimated_speedup > 1.0
