"""Property-based unparser roundtrips.

Random expression trees are rendered to C, wrapped in a function,
re-parsed and evaluated; the value must match direct evaluation of the
original tree. This pins down precedence/parenthesization bugs the
hand-written cases could miss.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfront import ir, parse_c_source
from repro.cfront.loops import eval_const_expr
from repro.codegen.unparse import unparse_expr
from repro.timing.interp import run_function

_SAFE_BINOPS = ["+", "-", "*"]


@st.composite
def int_expr(draw, depth=0):
    """Random integer expression over constants and two variables."""
    choices = ["const", "var"]
    if depth < 3:
        choices += ["bin", "bin", "neg"]
    kind = draw(st.sampled_from(choices))
    if kind == "const":
        return ir.Const(draw(st.integers(-9, 9)), "int")
    if kind == "var":
        return ir.VarRef(draw(st.sampled_from(["va", "vb"])))
    if kind == "neg":
        return ir.UnOp("-", draw(int_expr(depth=depth + 1)))
    op = draw(st.sampled_from(_SAFE_BINOPS))
    return ir.BinOp(op, draw(int_expr(depth=depth + 1)), draw(int_expr(depth=depth + 1)))


def evaluate_direct(expr: ir.Expr, env) -> int:
    value = eval_const_expr(expr, env)
    assert value is not None
    return value


class TestRoundtrip:
    @settings(max_examples=120, deadline=None)
    @given(int_expr(), st.integers(-5, 5), st.integers(-5, 5))
    def test_reparsed_expression_evaluates_identically(self, expr, va, vb):
        text = unparse_expr(expr)
        source = (
            f"int g(int va, int vb) {{ return {text}; }}"
        )
        program = parse_c_source(source)
        reparsed = run_function(program, "g", [va, vb]).return_value
        direct = evaluate_direct(expr, {"va": va, "vb": vb})
        assert reparsed == direct

    @settings(max_examples=60, deadline=None)
    @given(int_expr())
    def test_unparse_is_stable(self, expr):
        """unparse(parse(unparse(e))) == unparse(e): a fixed point."""
        text = unparse_expr(expr)
        program = parse_c_source(f"int g(void) {{ return {text.replace('va', '1').replace('vb', '2')}; }}")
        stmt = program.entry("g").body.stmts[0]
        again = unparse_expr(stmt.expr)
        program2 = parse_c_source(f"int g(void) {{ return {again}; }}")
        stmt2 = program2.entry("g").body.stmts[0]
        assert unparse_expr(stmt2.expr) == again
