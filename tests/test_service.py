"""Solver service: parallel determinism, memoization, cache invalidation."""

from __future__ import annotations

import pytest

import repro.ilp.service as service_mod
from repro.core.parallelize import HeterogeneousParallelizer, ParallelizeOptions
from repro.ilp import Model, SolveStatus, lin_sum
from repro.ilp.service import SolverService, SolveSpec, form_fingerprint
from repro.platforms import config_a, config_b
from repro.toolflow.experiments import prepare_benchmark


def _signature(result):
    """Everything observable about a parallelization outcome."""
    candidates = []
    for uid in sorted(result.solution_sets):
        for cand in result.solution_sets[uid].all():
            candidates.append(
                (
                    uid,
                    cand.main_class,
                    cand.exec_time_us,
                    cand.is_sequential,
                    tuple(sorted(cand.used_procs.items())),
                    tuple(
                        (seg.index, seg.role, seg.proc_class,
                         tuple(ch.uid for ch in seg.children))
                        for seg in cand.segments
                    ),
                )
            )
    stats = result.stats
    return (
        result.best.exec_time_us,
        tuple(candidates),
        stats.num_ilps,
        stats.total_variables,
        stats.total_constraints,
    )


def _run(name, platform, **options):
    _program, htg = prepare_benchmark(name, platform.total_cores)
    parallelizer = HeterogeneousParallelizer(platform, ParallelizeOptions(**options))
    return parallelizer.parallelize(htg)


class TestParallelDeterminism:
    @pytest.mark.parametrize("bench", ["fir_256", "mult_10"])
    def test_jobs4_matches_serial(self, bench):
        platform = config_a("accelerator")
        serial = _run(bench, platform, jobs=1)
        pooled = _run(bench, platform, jobs=4)
        assert _signature(pooled) == _signature(serial)
        # The pool must actually have been exercised (or cleanly fallen
        # back to inline solving in pool-less sandboxes).
        pool = pooled.stats.pool
        assert pool is not None and pool.jobs == 4
        assert pool.dispatched + pool.inline_solves == pooled.stats.num_ilps

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        platform = config_a("accelerator")

        def broken_pool(*args, **kwargs):
            raise OSError("no process pool in this sandbox")

        monkeypatch.setattr(service_mod, "ProcessPoolExecutor", broken_pool)
        result = _run("fir_256", platform, jobs=4)
        assert _signature(result) == _signature(_run("fir_256", platform, jobs=1))
        assert result.stats.pool.dispatched == 0
        assert result.stats.pool.inline_solves == result.stats.num_ilps


class TestCache:
    def test_warm_disk_cache_hits_everything(self, tmp_path):
        platform = config_a("accelerator")
        cold = _run("fir_256", platform, cache=True, cache_dir=str(tmp_path))
        warm = _run("fir_256", platform, cache=True, cache_dir=str(tmp_path))
        assert _signature(warm) == _signature(cold)
        assert cold.stats.cache_hits == 0
        assert warm.stats.cache_hits == warm.stats.num_ilps
        # Table-I accounting is caching-invariant: hits still count as ILPs.
        assert warm.stats.num_ilps == cold.stats.num_ilps

    def test_schema_bump_invalidates_disk_entries(self, tmp_path, monkeypatch):
        platform = config_a("accelerator")
        _run("fir_256", platform, cache=True, cache_dir=str(tmp_path))
        monkeypatch.setattr(service_mod, "CACHE_SCHEMA", "repro-ilp-vNEXT")
        rerun = _run("fir_256", platform, cache=True, cache_dir=str(tmp_path))
        assert rerun.stats.cache_hits == 0

    def test_platform_change_misses(self, tmp_path):
        a = config_a("accelerator")
        b = config_b("accelerator")
        _run("fir_256", a, cache=True, cache_dir=str(tmp_path))
        other = _run("fir_256", b, cache=True, cache_dir=str(tmp_path))
        assert other.stats.cache_hits == 0

    def test_memory_cache_dedupes_identical_models(self):
        with SolverService(jobs=1, memory_cache=True) as service:
            def make_model():
                m = Model("twin")
                xs = [m.add_binary(f"x{i}") for i in range(3)]
                m.add_constraint(lin_sum(xs) <= 2)
                m.maximize(lin_sum((i + 1) * x for i, x in enumerate(xs)))
                return m

            first = service.solve(make_model(), SolveSpec())
            second = service.solve(make_model(), SolveSpec())
            assert first.status is SolveStatus.OPTIMAL
            assert second.objective == first.objective
            assert service.cache_hits == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        m = Model("single")
        x = m.add_binary("x")
        m.maximize(x)
        spec = SolveSpec()
        key = form_fingerprint(m.to_matrix_form(), spec)
        with SolverService(cache_dir=str(tmp_path), memory_cache=False) as service:
            path = service._disk_path(key)
            path.parent.mkdir(parents=True)
            path.write_text("not json", encoding="utf-8")
            solution = service.solve(m, spec)
            assert solution.status is SolveStatus.OPTIMAL
            assert service.cache_hits == 0


class TestFingerprint:
    def _model(self, cap):
        m = Model("fp")
        xs = [m.add_binary(f"x{i}") for i in range(3)]
        m.add_constraint(lin_sum(xs) <= cap)
        m.maximize(lin_sum(xs))
        return m.to_matrix_form()

    def test_stable_for_identical_models(self):
        assert form_fingerprint(self._model(2), SolveSpec()) == form_fingerprint(
            self._model(2), SolveSpec()
        )

    def test_sensitive_to_model_and_keyed_options(self):
        base = form_fingerprint(self._model(2), SolveSpec())
        assert form_fingerprint(self._model(1), SolveSpec()) != base
        assert form_fingerprint(self._model(2), SolveSpec(backend="bnb")) != base
        assert (
            form_fingerprint(self._model(2), SolveSpec(mip_rel_gap=0.1)) != base
        )
        assert (
            form_fingerprint(self._model(2), SolveSpec(incumbent_obj=-1.0)) != base
        )

    def test_lower_bound_is_not_keyed(self):
        # A pure search accelerator must share the cache entry of the
        # unaccelerated solve — it provably returns the same solution.
        assert form_fingerprint(
            self._model(2), SolveSpec(lower_bound=-3.0)
        ) == form_fingerprint(self._model(2), SolveSpec())
