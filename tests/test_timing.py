"""Tests for the cost model, trip counts and the cost estimator."""

import pytest

from repro.cfront import parse_c_source
from repro.cfront import ir
from repro.cfront.loops import eval_const_expr, trip_count
from repro.timing.costmodel import CostModel, OperationCosts
from repro.timing.estimator import annotate_costs
from repro.timing.interp import run_function


def parse_expr(text: str, prelude: str = "float fx[8];"):
    program = parse_c_source(
        f"{prelude}\nvoid f(void) {{ int i; i = 0; fx[0] = {text}; }}"
    )
    assign = program.entry("f").body.stmts[-1]
    return assign.rhs, program


class TestTripCounts:
    def _loop(self, header: str):
        program = parse_c_source(f"void f(void) {{ int i; for ({header}) {{ }} }}")
        return next(
            s for s in program.entry("f").body.walk() if isinstance(s, ir.ForLoop)
        )

    def test_simple(self):
        assert trip_count(self._loop("i = 0; i < 10; i++")) == 10

    def test_with_step(self):
        assert trip_count(self._loop("i = 0; i < 10; i += 3")) == 4

    def test_le_bound(self):
        assert trip_count(self._loop("i = 0; i <= 9; i++")) == 10

    def test_empty(self):
        assert trip_count(self._loop("i = 5; i < 5; i++")) == 0

    def test_symbolic_with_env(self):
        loop = self._loop("i = 0; i < n; i++")
        assert trip_count(loop) is None
        assert trip_count(loop, {"n": 12}) == 12

    def test_nonconstant_unknown(self):
        loop = self._loop("i = 0; i < n; i++")
        assert trip_count(loop, {}) is None


class TestEvalConstExpr:
    def test_arithmetic(self):
        expr, _ = parse_expr("(3 + 4) * 2 - 6 / 2")
        assert eval_const_expr(expr) == 11

    def test_env_lookup(self):
        expr, _ = parse_expr("n + 1")
        assert eval_const_expr(expr, {"n": 4}) == 5
        assert eval_const_expr(expr) is None

    def test_division_by_zero_is_none(self):
        expr, _ = parse_expr("1 / 0")
        assert eval_const_expr(expr) is None


class TestCostModel:
    def test_float_ops_cost_more(self):
        fexpr, fprog = parse_expr("fx[0] * fx[1]", "float fx[8];")
        iexpr, iprog = parse_expr("ix[0] * ix[1]", "int ix[8]; float fx[8];")
        fmodel = CostModel.for_function(fprog, fprog.entry("f"))
        imodel = CostModel.for_function(iprog, iprog.entry("f"))
        assert fmodel.expr_cycles(fexpr) > imodel.expr_cycles(iexpr)

    def test_division_expensive(self):
        model = CostModel()
        div, _ = parse_expr("1.0f / 3.0f")
        mul, _ = parse_expr("1.0f * 3.0f")
        assert model.expr_cycles(div) > model.expr_cycles(mul)

    def test_array_access_charges_load_and_address(self):
        model = CostModel()
        arr, _ = parse_expr("fx[0]")
        costs = model.costs
        assert model.expr_cycles(arr) == pytest.approx(costs.load + costs.address)

    def test_builtin_math_cost(self):
        model = CostModel()
        call, _ = parse_expr("sin(1.0f)")
        assert model.expr_cycles(call) == pytest.approx(model.costs.builtin_math)

    def test_constants_free(self):
        model = CostModel()
        const, _ = parse_expr("42")
        assert model.expr_cycles(const) == 0.0

    def test_scaled_costs(self):
        base = OperationCosts()
        double = base.scaled(2.0)
        assert double.int_mul == pytest.approx(2 * base.int_mul)
        assert double.load == pytest.approx(2 * base.load)

    def test_type_inference_through_binop(self):
        model = CostModel(type_env={"a": "float", "b": "int"})
        expr = ir.BinOp("+", ir.VarRef("a"), ir.VarRef("b"))
        assert model.expr_type(expr) == "float"


class TestEstimator:
    SRC = """
    float x[10];
    void f(void) {
        int i;
        for (i = 0; i < 10; i++) { x[i] = i * 2.0f; }
    }
    """

    def test_counts_from_interpreter(self):
        program = parse_c_source(self.SRC)
        db = annotate_costs(program, "f")
        func = program.entry("f")
        loop = next(s for s in func.body.walk() if isinstance(s, ir.ForLoop))
        assign = loop.body.stmts[0]
        assert db.exec_count(assign) == 10
        assert db.exec_count(loop) == 1

    def test_subtree_composition(self):
        program = parse_c_source(self.SRC)
        db = annotate_costs(program, "f")
        func = program.entry("f")
        loop = next(s for s in func.body.walk() if isinstance(s, ir.ForLoop))
        # subtree cost of body is part of subtree cost of loop
        assert db.subtree_cycles(loop) > db.subtree_cycles(loop.body)
        assert db.subtree_cycles(func.body) >= db.subtree_cycles(loop)

    def test_loop_header_charged_per_iteration(self):
        program = parse_c_source(self.SRC)
        db = annotate_costs(program, "f")
        func = program.entry("f")
        loop = next(s for s in func.body.walk() if isinstance(s, ir.ForLoop))
        own = db.own_cycles(loop)
        assert own == pytest.approx(db.cost_model.costs.loop_overhead * 10)

    def test_time_scales_with_class(self):
        from repro.platforms import ProcessorClass

        program = parse_c_source(self.SRC)
        db = annotate_costs(program, "f")
        func = program.entry("f")
        slow = ProcessorClass("s", 100.0, 1)
        fast = ProcessorClass("f", 500.0, 1)
        assert db.subtree_time_us(func.body, slow) == pytest.approx(
            5 * db.subtree_time_us(func.body, fast)
        )

    def test_static_fallback_for_parameterized_function(self):
        program = parse_c_source(
            """
            float x[64];
            void f(int n) {
                int i;
                for (i = 0; i < 64; i++) { x[i] = n * 1.0f; }
            }
            """
        )
        db = annotate_costs(program, "f")
        func = program.entry("f")
        loop = next(s for s in func.body.walk() if isinstance(s, ir.ForLoop))
        # static estimation: loop body counted via the constant trip count
        assert db.exec_count(loop.body.stmts[0]) == 64

    def test_explicit_profile_used(self):
        program = parse_c_source(self.SRC)
        profile = run_function(program, "f")
        db = annotate_costs(program, "f", profile=profile)
        func = program.entry("f")
        assert db.exec_count(func.body) == 1
