"""Tests for the independent solution validator."""

import pytest

from repro.core.ilppar import ilp_parallelize_node
from repro.core.solution import SolutionCandidate, TaskSegment
from repro.core.validation import validate_candidate, validate_result
from repro.core.parallelize import HeterogeneousParallelizer, HomogeneousParallelizer
from repro.platforms import config_a

from tests.test_ilppar import leaf, make_node, seed_sets, two_class_platform


class TestValidCandidates:
    def test_ilp_output_validates(self):
        platform = two_class_platform()
        children = [leaf(f"w{i}", 40_000.0) for i in range(4)]
        node = make_node(children)
        cand = ilp_parallelize_node(
            node, "slow", 4, platform, seed_sets(platform, children)
        )
        assert cand is not None
        assert validate_candidate(cand, platform, node) == []

    def test_sequential_validates(self):
        platform = two_class_platform()
        cand = SolutionCandidate(
            node=leaf("x", 100.0), main_class="slow", exec_time_us=1.0,
            is_sequential=True,
        )
        assert validate_candidate(cand, platform) == []

    def test_full_results_validate(self, fir_hetero_result, fir_homo_result):
        assert validate_result(fir_hetero_result) == []
        assert validate_result(fir_homo_result) == []

    def test_all_candidate_sets_validate(self, fir_hetero_result, platform_a_acc):
        htg = fir_hetero_result.htg
        node_of = {n.uid: n for n in htg.walk()}
        for uid, sset in fir_hetero_result.solution_sets.items():
            for cand in sset.all():
                node = node_of[uid]
                if not cand.is_sequential:
                    problems = validate_candidate(cand, platform_a_acc, node)
                    assert problems == [], (node.label, problems)


class TestViolationsDetected:
    def _broken_candidate(self, platform):
        children = [leaf(f"w{i}", 40_000.0) for i in range(2)]
        node = make_node(children)
        cand = ilp_parallelize_node(
            node, "slow", 4, platform, seed_sets(platform, children)
        )
        assert cand is not None
        return node, cand

    def test_missing_child_detected(self):
        platform = two_class_platform()
        node, cand = self._broken_candidate(platform)
        # drop all children from segments
        broken = SolutionCandidate(
            node=cand.node,
            main_class=cand.main_class,
            exec_time_us=cand.exec_time_us,
            segments=tuple(
                TaskSegment(s.index, s.role, s.proc_class, ()) for s in cand.segments
            ),
            child_choice=cand.child_choice,
            used_procs=cand.used_procs,
            is_sequential=False,
        )
        problems = validate_candidate(broken, platform, node)
        assert any("segments (expected 1)" in p for p in problems)

    def test_wrong_main_class_detected(self):
        platform = two_class_platform()
        node, cand = self._broken_candidate(platform)
        broken = SolutionCandidate(
            node=cand.node,
            main_class="fast",  # lie: segments still say 'slow'
            exec_time_us=cand.exec_time_us,
            segments=cand.segments,
            child_choice=cand.child_choice,
            used_procs=cand.used_procs,
            is_sequential=False,
        )
        problems = validate_candidate(broken, platform, node)
        assert any("tagged" in p for p in problems)

    def test_overclaimed_budget_detected(self):
        platform = two_class_platform()
        node, cand = self._broken_candidate(platform)
        broken = SolutionCandidate(
            node=cand.node,
            main_class=cand.main_class,
            exec_time_us=cand.exec_time_us,
            segments=cand.segments,
            child_choice=cand.child_choice,
            used_procs={"fast": 99},
            is_sequential=False,
        )
        problems = validate_candidate(broken, platform, node)
        assert any("processors" in p or "used_procs" in p for p in problems)

    def test_impossible_time_detected(self):
        platform = two_class_platform()
        node, cand = self._broken_candidate(platform)
        broken = SolutionCandidate(
            node=cand.node,
            main_class=cand.main_class,
            exec_time_us=0.001,  # cannot be faster than any single task
            segments=cand.segments,
            child_choice=cand.child_choice,
            used_procs=cand.used_procs,
            is_sequential=False,
        )
        problems = validate_candidate(broken, platform, node)
        assert any("claims" in p for p in problems)

    def test_deep_chain_does_not_recurse(self):
        import sys

        from repro.core.validation import _has_cycle

        depth = sys.getrecursionlimit() * 3
        chain = {i: {i + 1} for i in range(depth)}
        assert not _has_cycle(chain)
        chain[depth] = {0}  # close the loop
        assert _has_cycle(chain)

    def test_diamond_is_acyclic(self):
        from repro.core.validation import _has_cycle

        assert not _has_cycle({0: {1, 2}, 1: {3}, 2: {3}})
        assert _has_cycle({0: {1}, 1: {2}, 2: {1}})

    def test_sequential_with_segments_rejected(self):
        platform = two_class_platform()
        cand = SolutionCandidate(
            node=leaf("x", 100.0),
            main_class="slow",
            exec_time_us=1.0,
            segments=(TaskSegment(0, "fork", "slow", ()),),
            is_sequential=True,
        )
        assert validate_candidate(cand, platform)
