"""Integration tests asserting the paper's headline claims (shape, not
absolute numbers — see DESIGN.md §4 "shape criteria").

These run the full pipeline on a representative subset of benchmarks: one
data-parallel (fir_256), one serial/offload (latnrm_32). The full ten-
benchmark sweeps live in the benchmark harness (``benchmarks/``).
"""

import pytest

from repro.platforms import config_a, config_b
from repro.toolflow.experiments import run_benchmark


@pytest.fixture(scope="module")
def fir_runs():
    """fir_256 on every platform/scenario for both approaches."""
    out = {}
    for fig, factory, scenario in [
        ("7a", config_a, "accelerator"),
        ("7b", config_a, "slower-cores"),
        ("8a", config_b, "accelerator"),
        ("8b", config_b, "slower-cores"),
    ]:
        platform = factory(scenario)
        out[fig] = {
            "limit": platform.theoretical_speedup(),
            "homo": run_benchmark("fir_256", platform, "homogeneous"),
            "hetero": run_benchmark("fir_256", platform, "heterogeneous"),
        }
    return out


class TestHeadlineClaims:
    def test_hetero_beats_homo_everywhere(self, fir_runs):
        """Paper result 4: the heterogeneous approach significantly
        outperforms the homogeneous one on heterogeneous platforms."""
        for fig, data in fir_runs.items():
            assert data["hetero"].speedup > data["homo"].speedup, fig

    def test_hetero_never_below_one(self, fir_runs):
        """Paper result 4: the heterogeneous approach never produced a
        slowdown on any benchmark."""
        for fig, data in fir_runs.items():
            assert data["hetero"].speedup > 1.0, fig

    def test_homo_below_one_in_scenario_two(self, fir_runs):
        """Figure 7(b): with a fast main core, the uniform partition of the
        homogeneous tool makes the fast cores wait for the slow ones —
        speedup less than one."""
        assert fir_runs["7b"]["homo"].speedup < 1.0

    def test_speedups_below_theoretical_limit(self, fir_runs):
        for fig, data in fir_runs.items():
            assert data["hetero"].speedup <= data["limit"] + 1e-6, fig
            assert data["homo"].speedup <= data["limit"] + 1e-6, fig

    def test_hetero_approaches_limit_for_data_parallel(self, fir_runs):
        """Figure 7(a): data-parallel kernels get close to the dashed line
        (paper: 11-12x of 13.5x ~ 85%; we require >60%)."""
        data = fir_runs["7a"]
        assert data["hetero"].speedup >= 0.6 * data["limit"]

    def test_homo_uniform_balance_in_scenario_one(self, fir_runs):
        """Figure 7(a): the homogeneous tool balances uniformly over four
        cores — speedup in the 3-4x band for data-parallel kernels."""
        homo = fir_runs["7a"]["homo"].speedup
        assert 2.5 <= homo <= 4.0 + 1e-6

    def test_platform_a_beats_platform_b_scenario_one(self, fir_runs):
        """Section VI-A: speedups on (A) exceed (B) in scenario I because
        the performance variance is larger (13.5x vs 7x headroom)."""
        assert fir_runs["7a"]["hetero"].speedup > fir_runs["8a"]["hetero"].speedup

    def test_scenario_two_bands(self, fir_runs):
        """Figures 7(b)/8(b): hetero within (1, limit]."""
        for fig in ("7b", "8b"):
            data = fir_runs[fig]
            assert 1.0 < data["hetero"].speedup <= data["limit"] + 1e-6


class TestSerialKernel:
    def test_offload_only_kernel(self):
        """latnrm: inherently serial — hetero still gains by offloading to
        a fast core (accelerator scenario), homo gains almost nothing."""
        platform = config_a("accelerator")
        hetero = run_benchmark("latnrm_32", platform, "heterogeneous")
        homo = run_benchmark("latnrm_32", platform, "homogeneous")
        assert hetero.speedup > 1.5
        assert hetero.speedup > homo.speedup
        # offload cannot exceed the fastest-core clock ratio by much
        assert hetero.speedup <= 5.5

    def test_serial_kernel_scenario_two_no_slowdown(self):
        platform = config_a("slower-cores")
        hetero = run_benchmark("latnrm_32", platform, "heterogeneous")
        assert hetero.speedup >= 1.0 - 1e-9


class TestTable1Claims:
    def test_ilp_statistics_direction(self):
        """Table I: the heterogeneous approach creates more ILPs, more
        variables and more constraints (factors > 1)."""
        from repro.toolflow.experiments import run_table1

        table = run_table1(benchmarks=["fir_256", "latnrm_32"])
        for row in table.rows:
            f = row.factor
            assert f.ilp_factor > 1.0, row.benchmark
            assert f.variable_factor > 1.0, row.benchmark
            assert f.constraint_factor > 1.0, row.benchmark

    def test_estimated_vs_simulated_consistency(self):
        """The ILP's cost model must track the simulator within 2x."""
        platform = config_a("accelerator")
        run = run_benchmark("fir_256", platform, "heterogeneous")
        ratio = run.estimated_speedup / run.speedup
        assert 0.5 <= ratio <= 2.0
