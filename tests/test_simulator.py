"""Tests for the discrete-event MPSoC simulator."""

import pytest

from repro.core.flatten import AtomicTask, FlatEdge, FlatTaskGraph
from repro.platforms import Platform, ProcessorClass, config_a
from repro.platforms.description import Interconnect
from repro.simulator.engine import SimOptions, simulate_graph


def graph_of(tasks, edges, entry, exit_):
    return FlatTaskGraph(tasks=tasks, edges=edges, entry=entry, exit=exit_)


def simple_platform():
    return Platform(
        "sim",
        (
            ProcessorClass("slow", 100.0, 1),
            ProcessorClass("fast", 200.0, 2),
        ),
        interconnect=Interconnect(bandwidth_bytes_per_us=100.0, latency_us=1.0),
        task_creation_overhead_us=0.0,
        main_class_name="slow",
    )


class TestChainAndForkJoin:
    def test_single_task_duration(self):
        g = graph_of([AtomicTask(0, "t", 1000.0, "slow")], [], 0, 0)
        res = simulate_graph(g, simple_platform())
        assert res.makespan_us == pytest.approx(10.0)  # 1000 cycles @ 100MHz

    def test_chain_serializes(self):
        tasks = [
            AtomicTask(0, "a", 1000.0, "fast"),
            AtomicTask(1, "b", 1000.0, "fast"),
        ]
        g = graph_of(tasks, [FlatEdge(0, 1)], 0, 1)
        res = simulate_graph(g, simple_platform())
        assert res.makespan_us == pytest.approx(10.0)

    def test_fork_join_parallelizes(self):
        tasks = [
            AtomicTask(0, "entry", 0.0, "slow"),
            AtomicTask(1, "a", 2000.0, "fast"),
            AtomicTask(2, "b", 2000.0, "fast"),
            AtomicTask(3, "exit", 0.0, "slow"),
        ]
        edges = [FlatEdge(0, 1), FlatEdge(0, 2), FlatEdge(1, 3), FlatEdge(2, 3)]
        res = simulate_graph(graph_of(tasks, edges, 0, 3), simple_platform())
        assert res.makespan_us == pytest.approx(10.0)  # both on fast cores

    def test_class_capacity_queues_work(self):
        tasks = [AtomicTask(i, f"t{i}", 2000.0, "fast") for i in range(4)]
        g = graph_of(tasks, [], 0, 3)
        res = simulate_graph(g, simple_platform())
        # 4 tasks, 2 fast cores -> two waves of 10us
        assert res.makespan_us == pytest.approx(20.0)

    def test_spawn_overhead_added(self):
        t = AtomicTask(0, "t", 1000.0, "slow", spawn_overhead_us=5.0)
        res = simulate_graph(graph_of([t], [], 0, 0), simple_platform())
        assert res.makespan_us == pytest.approx(15.0)


class TestCommunication:
    def test_cross_core_transfer_delay(self):
        tasks = [
            AtomicTask(0, "a", 1000.0, "slow"),
            AtomicTask(1, "b", 1000.0, "fast"),
        ]
        # 100 bytes at 100 B/us + 1us latency = 2us delay
        edges = [FlatEdge(0, 1, bytes_volume=100.0, transfers=1.0)]
        res = simulate_graph(graph_of(tasks, edges, 0, 1), simple_platform())
        assert res.makespan_us == pytest.approx(10.0 + 2.0 + 5.0)

    def test_same_core_transfer_free(self):
        tasks = [
            AtomicTask(0, "a", 1000.0, "slow"),
            AtomicTask(1, "b", 1000.0, "slow"),
        ]
        edges = [FlatEdge(0, 1, bytes_volume=100.0, transfers=1.0)]
        res = simulate_graph(graph_of(tasks, edges, 0, 1), simple_platform())
        # only one slow core: both run there, transfer free
        assert res.makespan_us == pytest.approx(20.0)

    def test_bus_contention_serializes_transfers(self):
        tasks = [
            AtomicTask(0, "src0", 1000.0, "fast"),
            AtomicTask(1, "src1", 1000.0, "fast"),
            AtomicTask(2, "dst0", 100.0, "slow"),
            AtomicTask(3, "dst1", 100.0, "slow"),
        ]
        edges = [
            FlatEdge(0, 2, bytes_volume=1000.0),
            FlatEdge(1, 3, bytes_volume=1000.0),
        ]
        free = simulate_graph(
            graph_of(tasks, edges, 0, 3), simple_platform(),
            SimOptions(bus_contention=False),
        )
        contended = simulate_graph(
            graph_of(tasks, edges, 0, 3), simple_platform(),
            SimOptions(bus_contention=True),
        )
        assert contended.makespan_us >= free.makespan_us
        assert contended.bus_busy_us > 0


class TestClassBlindPolicy:
    def blind_platform(self):
        return Platform(
            "blind",
            (
                ProcessorClass("slow", 100.0, 2),
                ProcessorClass("fast", 500.0, 2),
            ),
            main_class_name="slow",
        )

    def test_blind_placement_hits_slow_cores(self):
        # four equal class-less tasks: the blind runtime spreads them over
        # all four cores, so the slow cores set the makespan
        tasks = [AtomicTask(i, f"t{i}", 5000.0, None) for i in range(4)]
        res = simulate_graph(
            graph_of(tasks, [], 0, 3),
            self.blind_platform(),
            SimOptions(anyclass_policy="blind"),
        )
        assert res.makespan_us == pytest.approx(50.0)  # 5000 cyc @ 100MHz

    def test_speed_aware_policy_beats_blind(self):
        tasks = [AtomicTask(i, f"t{i}", 5000.0, None) for i in range(4)]
        blind = simulate_graph(
            graph_of(list(tasks), [], 0, 3),
            self.blind_platform(),
            SimOptions(anyclass_policy="blind"),
        )
        aware = simulate_graph(
            graph_of(list(tasks), [], 0, 3),
            self.blind_platform(),
            SimOptions(anyclass_policy="speed-aware"),
        )
        assert aware.makespan_us < blind.makespan_us


class TestRobustness:
    def test_cycle_detected(self):
        tasks = [AtomicTask(0, "a", 10.0, "slow"), AtomicTask(1, "b", 10.0, "slow")]
        edges = [FlatEdge(0, 1), FlatEdge(1, 0)]
        with pytest.raises(ValueError):
            simulate_graph(graph_of(tasks, edges, 0, 1), simple_platform())

    def test_unknown_class_rejected(self):
        g = graph_of([AtomicTask(0, "t", 10.0, "gpu")], [], 0, 0)
        with pytest.raises(ValueError):
            simulate_graph(g, simple_platform())

    def test_determinism(self):
        tasks = [AtomicTask(i, f"t{i}", 1000.0 + i, "fast") for i in range(6)]
        edges = [FlatEdge(0, 5), FlatEdge(1, 5)]
        a = simulate_graph(graph_of(list(tasks), list(edges), 0, 5), simple_platform())
        b = simulate_graph(graph_of(list(tasks), list(edges), 0, 5), simple_platform())
        assert a.makespan_us == b.makespan_us
        assert {t: s.core for t, s in a.schedule.items()} == {
            t: s.core for t, s in b.schedule.items()
        }

    def test_utilization_bounded(self):
        tasks = [AtomicTask(i, f"t{i}", 2000.0, "fast") for i in range(4)]
        res = simulate_graph(graph_of(tasks, [], 0, 3), simple_platform())
        for value in res.utilization().values():
            assert 0.0 <= value <= 1.0 + 1e-9
