"""Suite-level solve orchestration: shared service, determinism, caching.

The contract under test: running a whole experiment suite through one
shared :class:`~repro.ilp.service.SolverService` — with any combination
of worker count and batched compact dispatch — produces **bit-identical**
speedups and Table-I statistics to the serial per-cell path, and the
suite degrades cleanly to inline solving when no process pool can be
created.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

import repro.ilp.service as service_mod
from repro.core.parallelize import ParallelizeOptions, shared_service
from repro.ilp import Model, lin_sum
from repro.ilp.service import SolverService, pack_form, unpack_form
from repro.platforms import config_a
from repro.toolflow import experiments
from repro.toolflow.experiments import run_benchmark, run_figure, run_table1

BENCH = ["fir_256"]


@pytest.fixture(autouse=True)
def _isolated_run_cache(monkeypatch):
    """Each test sees an empty default-option run cache."""
    monkeypatch.setattr(experiments, "_RUN_CACHE", {})


def _table_signature(table):
    """Everything Table I reports, minus wall-clock timing."""
    return [
        (
            row.benchmark,
            (row.homogeneous.num_ilps, row.homogeneous.total_variables,
             row.homogeneous.total_constraints),
            (row.heterogeneous.num_ilps, row.heterogeneous.total_variables,
             row.heterogeneous.total_constraints),
        )
        for row in table.rows
    ]


def _figure_signature(figure):
    return [
        (name, approach, run.speedup, run.parallel_us, run.sequential_us,
         run.estimated_speedup, run.num_tasks)
        for name, by_approach in figure.runs.items()
        for approach, run in by_approach.items()
    ]


class TestSuiteDeterminism:
    def test_table1_bit_identical_across_configs(self):
        serial = run_table1(BENCH, parallelize_options=ParallelizeOptions(jobs=1))
        configs = [
            ParallelizeOptions(jobs=2),              # shared pool, batched
            ParallelizeOptions(jobs=2, batch_size=1),  # singleton dispatch
        ]
        for options in configs:
            experiments._RUN_CACHE.clear()
            table = run_table1(BENCH, parallelize_options=options)
            assert _table_signature(table) == _table_signature(serial)
            assert table.suite is not None
            assert table.suite.cells == 2 * len(BENCH)
            pool = table.suite.pool
            # Every generated ILP went through the shared service, either
            # pooled or inline (pool-less sandboxes).
            total_ilps = sum(
                r.homogeneous.num_ilps + r.heterogeneous.num_ilps
                for r in table.rows
            )
            assert (
                pool.dispatched + pool.inline_solves + pool.cache_hits
                == total_ilps
            )

    def test_figure_speedups_bit_identical_pooled(self):
        serial = run_figure("7a", benchmarks=BENCH)
        experiments._RUN_CACHE.clear()
        pooled = run_figure(
            "7a", benchmarks=BENCH,
            parallelize_options=ParallelizeOptions(jobs=2),
        )
        assert _figure_signature(pooled) == _figure_signature(serial)

    def test_batching_telemetry_recorded(self):
        table = run_table1(
            BENCH, parallelize_options=ParallelizeOptions(jobs=2)
        )
        pool = table.suite.pool
        if pool.dispatched:  # pool actually came up in this sandbox
            assert pool.batches > 0
            assert pool.max_batch_size >= 1
            assert pool.bytes_shipped > 0
            assert pool.busy_seconds > 0.0

    def test_pool_unavailable_degrades_to_inline(self, monkeypatch):
        serial = run_table1(BENCH)
        experiments._RUN_CACHE.clear()

        def broken_pool(*args, **kwargs):
            raise OSError("no process pool in this sandbox")

        monkeypatch.setattr(service_mod, "ProcessPoolExecutor", broken_pool)
        degraded = run_table1(
            BENCH, parallelize_options=ParallelizeOptions(jobs=4)
        )
        assert _table_signature(degraded) == _table_signature(serial)
        assert degraded.suite.pool.dispatched == 0
        assert degraded.suite.pool.inline_solves > 0


class TestRunCache:
    def test_table1_reuses_figure_runs(self):
        figure = run_figure("7a", benchmarks=BENCH)
        assert figure.suite is not None and figure.suite.cells == 2 * len(BENCH)
        table = run_table1(BENCH)
        # Every cell came from the run cache: no service was spun up.
        assert table.suite is None
        assert table.rows[0].heterogeneous == (
            figure.runs[BENCH[0]]["heterogeneous"].stats
        )

    def test_same_name_different_specs_do_not_collide(self):
        platform = config_a("accelerator")
        # Same display name, different class specs: a name-keyed cache
        # would serve `faster`'s results for `platform` (or vice versa).
        faster = replace(
            platform,
            processor_classes=tuple(
                replace(pc, frequency_mhz=pc.frequency_mhz * 2)
                for pc in platform.processor_classes
            ),
        )
        assert faster.name == platform.name
        assert faster.fingerprint() != platform.fingerprint()
        base = run_benchmark(BENCH[0], platform, "heterogeneous")
        other = run_benchmark(BENCH[0], faster, "heterogeneous")
        # Twice the clock halves every sequential/parallel time estimate;
        # a collision would have returned the identical cached object.
        assert other is not base
        assert other.parallel_us != base.parallel_us

    def test_fingerprint_sensitive_to_every_spec_field(self):
        platform = config_a("accelerator")
        base = platform.fingerprint()
        assert replace(platform, task_creation_overhead_us=99.0).fingerprint() != base
        tweaked_classes = (
            replace(platform.processor_classes[0], count=7),
        ) + tuple(platform.processor_classes[1:])
        assert replace(platform, processor_classes=tweaked_classes).fingerprint() != base


class TestSharedServiceInjection:
    def test_injected_service_is_shared_and_not_closed(self):
        with SolverService(jobs=1) as service:
            options = ParallelizeOptions(service=service)
            run_table1(BENCH, parallelize_options=options)
            # The injector keeps ownership: the suite must not close it.
            assert service.closed is False
            first_solves = service.inline_solves + service.dispatched
            assert first_solves > 0
            # A second suite through the same service hits its memo table.
            experiments._RUN_CACHE.clear()
            run_table1(BENCH, parallelize_options=options)
            assert service.cache_hits >= first_solves

    def test_shared_service_context_round_trip(self):
        options = ParallelizeOptions(jobs=1)
        with shared_service(options) as bound:
            assert bound.service is not None
            inner_service = bound.service
            with shared_service(bound) as rebound:
                # Already bound: yielded unchanged, ownership untouched.
                assert rebound is bound
            assert inner_service.closed is False
        assert inner_service.closed is True


class TestCompactWire:
    def _form(self):
        m = Model("wire")
        xs = [m.add_binary(f"x{i}") for i in range(5)]
        y = m.add_var("y", lb=0.0, ub=7.0, integer=True)
        m.add_constraint(lin_sum(xs) + 2.0 * y <= 9.0)
        m.add_constraint(xs[3] + xs[1] + xs[4] <= 2.0)  # scrambled term order
        m.add_constraint(xs[0] + y == 1.0)
        m.maximize(lin_sum(xs) + 3.0 * y)
        return m.to_matrix_form()

    def test_roundtrip_preserves_rows_and_term_order(self):
        form = self._form()
        back = unpack_form(pack_form(form))
        assert list(back.c) == list(form.c)
        assert list(back.lb) == list(form.lb)
        assert list(back.ub) == list(form.ub)
        assert list(back.integrality) == list(form.integrality)
        assert back.minimize == form.minimize
        assert back.obj_const == form.obj_const
        assert back.rows_ub == form.rows_ub
        assert back.rows_eq == form.rows_eq
        # Bit-identical solving relies on replaying the exact pivot order,
        # which depends on within-row term *insertion* order.
        for original, restored in zip(form.rows_ub, back.rows_ub):
            assert list(original[0].items()) == list(restored[0].items())

    def test_nbytes_is_positive_and_counts_payload(self):
        compact = pack_form(self._form())
        assert compact.nbytes > 0
