"""Benchmark-suite validation: parsing, semantics vs. numpy, classification."""

import math

import numpy as np
import pytest

from repro.bench_suite import BENCHMARKS, benchmark_names, get_benchmark
from repro.cfront import parse_c_source
from repro.cfront import ir
from repro.cfront.defuse import compute_call_summaries
from repro.cfront.deps import LoopParallelism, classify_loop
from repro.timing.interp import Interpreter


@pytest.fixture(scope="module")
def interpreted():
    """Run every benchmark once; cache the interpreter states."""
    out = {}
    for name, bench in BENCHMARKS.items():
        program = parse_c_source(bench.source)
        interp = Interpreter(program)
        interp.run("main")
        out[name] = (program, interp)
    return out


class TestRegistry:
    def test_ten_benchmarks(self):
        assert len(BENCHMARKS) == 10

    def test_names_in_paper_order(self):
        names = benchmark_names()
        assert names[0] == "adpcm_enc"
        assert names[-1] == "spectral"

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get_benchmark("nope")


class TestAllBenchmarks:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_parses(self, name):
        program = parse_c_source(BENCHMARKS[name].source)
        assert "main" in program.functions

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_runs_and_produces_checksum(self, name, interpreted):
        _program, interp = interpreted[name]
        checksum = interp.globals["checksum"]
        assert math.isfinite(checksum)
        assert checksum != 0.0

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_character_classification(self, name, interpreted):
        """The dominant loop's classification matches the metadata."""
        program, _ = interpreted[name]
        bench = BENCHMARKS[name]
        func = program.entry("main")
        summaries = compute_call_summaries(program)
        top_loops = [s for s in func.body.stmts if isinstance(s, ir.ForLoop)]
        classes = [classify_loop(l, summaries).parallelism for l in top_loops]
        if bench.character in ("data-parallel", "block-parallel"):
            assert LoopParallelism.PARALLEL in classes
        else:  # serial: the compute loop must NOT be parallel
            # serial kernels still have parallel init loops; the heaviest
            # loop must be serial
            from repro.timing.estimator import annotate_costs

            db = annotate_costs(program, func)
            heaviest = max(top_loops, key=db.subtree_cycles)
            assert (
                classify_loop(heaviest, summaries).parallelism
                is LoopParallelism.SERIAL
            )


class TestSemanticsAgainstNumpy:
    def test_fir_256(self, interpreted):
        _, interp = interpreted["fir_256"]
        x = (0.001 * np.arange(64 + 256, dtype=np.float64) - 0.05).astype(np.float32)
        h = (1.0 / (np.arange(256, dtype=np.float64) + 1)).astype(np.float32)
        y = np.array(
            [np.dot(x[i : i + 256].astype(np.float64), h.astype(np.float64))
             for i in range(64)]
        )
        np.testing.assert_allclose(interp.globals["y"], y, rtol=1e-3)

    def test_mult_10(self, interpreted):
        _, interp = interpreted["mult_10"]
        a = interp.globals["a"].astype(np.float64)
        b = interp.globals["b"].astype(np.float64)
        c = interp.globals["c"].astype(np.float64)
        expected = np.einsum("mik,mkj->mij", a, b)
        np.testing.assert_allclose(c, expected, rtol=1e-3)

    def test_bound_value_boundaries_fixed(self, interpreted):
        _, interp = interpreted["bound_value"]
        u = interp.globals["u"]
        assert u[0] == pytest.approx(1.0)
        assert u[-1] == pytest.approx(2.0)

    def test_bound_value_sweep(self, interpreted):
        _, interp = interpreted["bound_value"]
        u = interp.globals["u"].astype(np.float64)
        npts = len(u)
        f = (0.0001 * np.arange(npts)).astype(np.float32).astype(np.float64)
        ref = np.zeros(npts)
        ref[0], ref[-1] = 1.0, 2.0
        cur = ref.copy()
        for _ in range(8):
            new = cur.copy()
            new[1:-1] = 0.5 * (cur[:-2] + cur[2:]) - 0.5 * f[1:-1]
            cur = new
        np.testing.assert_allclose(u, cur, atol=1e-3)

    def test_edge_detect_binary_output(self, interpreted):
        _, interp = interpreted["edge_detect"]
        out = interp.globals["out"]
        values = set(np.unique(out))
        assert values <= {0.0, 255.0}

    def test_filterbank_matches_numpy(self, interpreted):
        _, interp = interpreted["filterbank"]
        inp = interp.globals["input"].astype(np.float64)
        coeff = interp.globals["coeff"].astype(np.float64)
        bankout = interp.globals["bankout"].astype(np.float64)
        for b in range(8):
            expected = np.array(
                [np.dot(inp[n : n + 32], coeff[b]) for n in range(256)]
            )
            np.testing.assert_allclose(bankout[b], expected, rtol=1e-3)

    def test_iir_stability(self, interpreted):
        _, interp = interpreted["iir_4"]
        out = interp.globals["output"]
        assert np.all(np.isfinite(out))
        assert np.max(np.abs(out)) < 1e3

    def test_spectral_peaks_at_signal_frequencies(self, interpreted):
        _, interp = interpreted["spectral"]
        p = interp.globals["p"].astype(np.float64)
        # the signal has components at w = 0.07, 0.23, 0.41 rad/sample;
        # frequency bin f corresponds to w = pi*f/NFREQ
        for w in (0.07, 0.23, 0.41):
            f_bin = int(round(w * 96 / math.pi))
            window = p[max(0, f_bin - 2) : f_bin + 3]
            assert window.max() > np.median(p) * 2

    def test_adpcm_codes_in_range(self, interpreted):
        _, interp = interpreted["adpcm_enc"]
        code = interp.globals["code"]
        assert np.all(np.abs(code) <= 7.0)

    def test_latnrm_output_finite(self, interpreted):
        _, interp = interpreted["latnrm_32"]
        out = interp.globals["output"]
        assert np.all(np.isfinite(out))

    def test_compress_thresholding_applied(self, interpreted):
        _, interp = interpreted["compress"]
        coef = interp.globals["coef"].astype(np.float64)
        nonzero = coef[coef != 0.0]
        # thresholding zeroes small coefficients
        assert np.all(np.abs(nonzero) >= 4.0 * 0.99)
        assert (coef == 0.0).sum() > 0
