"""Tests for IR constant folding and simplification passes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfront import ir, parse_c_source
from repro.cfront.transform import fold_constants, simplify_program, simplify_stmt
from repro.timing.interp import Interpreter, run_function


def expr_of(text: str, prelude: str = "float fx[16]; int ix[16];"):
    program = parse_c_source(
        f"{prelude}\nvoid f(void) {{ int v; v = 0; ix[0] = {text}; }}"
    )
    return program.entry("f").body.stmts[-1].rhs


class TestFolding:
    def test_arithmetic(self):
        folded = fold_constants(expr_of("2 + 3 * 4"))
        assert isinstance(folded, ir.Const) and folded.value == 14

    def test_c_integer_division(self):
        folded = fold_constants(expr_of("(0 - 7) / 2"))
        assert folded.value == -3  # truncation toward zero

    def test_comparison(self):
        folded = fold_constants(expr_of("3 < 5"))
        assert folded.value == 1

    def test_mul_by_one_identity(self):
        folded = fold_constants(expr_of("ix[v] * 1"))
        assert isinstance(folded, ir.ArrayRef)

    def test_add_zero_identity(self):
        folded = fold_constants(expr_of("0 + ix[v]"))
        assert isinstance(folded, ir.ArrayRef)

    def test_mul_by_zero_pure(self):
        folded = fold_constants(expr_of("ix[v] * 0"))
        assert isinstance(folded, ir.Const) and folded.value == 0

    def test_mul_by_zero_with_call_not_folded(self):
        # sqrt() calls stay (cannot prove side-effect freedom in general)
        folded = fold_constants(expr_of("sqrt(2.0) * 0"))
        assert isinstance(folded, ir.BinOp)

    def test_double_negation(self):
        folded = fold_constants(expr_of("-(-ix[v])"))
        assert isinstance(folded, ir.ArrayRef)

    def test_cast_folds(self):
        folded = fold_constants(expr_of("(int)2.75"))
        assert folded.value == 2

    def test_subscript_folding(self):
        program = parse_c_source(
            "float x[16];\nvoid f(void) { x[2 + 3] = 1.0f; }"
        )
        stmt = program.entry("f").body.stmts[0]
        simplify_stmt(stmt)
        assert isinstance(stmt.lhs.indices[0], ir.Const)
        assert stmt.lhs.indices[0].value == 5

    def test_shift_and_bitops(self):
        assert fold_constants(expr_of("1 << 4")).value == 16
        assert fold_constants(expr_of("12 & 10")).value == 8

    def test_division_by_zero_not_folded(self):
        folded = fold_constants(expr_of("1 / 0"))
        assert isinstance(folded, ir.BinOp)


class TestSimplifyProgram:
    def test_dead_branch_pruned(self):
        program = parse_c_source(
            """
            int out;
            void f(void) {
                if (1 < 0) { out = 1; } else { out = 2; }
            }
            """
        )
        simplify_program(program)
        stmts = program.entry("f").body.stmts
        assert not any(isinstance(s, ir.If) for s in stmts)
        assert run_function(program, "f").steps > 0
        interp = Interpreter(program)
        interp.run("f")
        assert interp.globals["out"] == 2

    def test_loop_bounds_folded(self):
        program = parse_c_source(
            "#define N 8\nfloat x[N * 2];\n"
            "void f(void) { int i; for (i = 0; i < N * 2; i++) { x[i] = i; } }"
        )
        simplify_program(program)
        loop = next(
            s for s in program.entry("f").body.walk() if isinstance(s, ir.ForLoop)
        )
        assert isinstance(loop.upper, ir.Const) and loop.upper.value == 16

    def test_sids_preserved(self):
        program = parse_c_source(
            "int out;\nvoid f(void) { out = 1 + 2; }"
        )
        before = [s.sid for s in program.entry("f").body.walk()]
        simplify_program(program)
        after = [s.sid for s in program.entry("f").body.walk()]
        assert before == after

    def test_semantics_preserved_on_benchmark(self):
        from repro.bench_suite import get_benchmark

        source = get_benchmark("fir_256").source
        plain = parse_c_source(source)
        folded = simplify_program(parse_c_source(source))
        i1, i2 = Interpreter(plain), Interpreter(folded)
        i1.run("main")
        i2.run("main")
        assert i1.globals["checksum"] == pytest.approx(i2.globals["checksum"])

    def test_folding_reduces_cost_estimate(self):
        from repro.timing.estimator import annotate_costs

        source = (
            "float x[32];\n"
            "void main(void) { int i;"
            " for (i = 0; i < 16 + 16; i++) { x[i] = i * (2.0f * 1.0f); } }"
        )
        plain = parse_c_source(source)
        folded = simplify_program(parse_c_source(source))
        plain_cycles = annotate_costs(plain, "main").subtree_cycles(
            plain.entry("main").body
        )
        folded_cycles = annotate_costs(folded, "main").subtree_cycles(
            folded.entry("main").body
        )
        assert folded_cycles <= plain_cycles


@st.composite
def const_int_expr(draw, depth=0):
    """Random constant integer expression trees."""
    if depth >= 3 or draw(st.booleans()):
        return ir.Const(draw(st.integers(-20, 20)), "int")
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(const_int_expr(depth=depth + 1))
    right = draw(const_int_expr(depth=depth + 1))
    return ir.BinOp(op, left, right)


class TestFoldingProperties:
    @settings(max_examples=150, deadline=None)
    @given(const_int_expr())
    def test_fold_matches_direct_evaluation(self, expr):
        from repro.cfront.loops import eval_const_expr

        folded = fold_constants(expr)
        assert isinstance(folded, ir.Const)
        assert folded.value == eval_const_expr(expr)

    @settings(max_examples=100, deadline=None)
    @given(const_int_expr())
    def test_fold_idempotent(self, expr):
        once = fold_constants(expr)
        twice = fold_constants(once)
        assert isinstance(twice, ir.Const)
        assert once.value == twice.value
