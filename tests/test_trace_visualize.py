"""Tests for schedule traces, Gantt rendering and graph exports."""

import networkx as nx
import pytest

from repro.core.flatten import AtomicTask, FlatEdge, FlatTaskGraph, flatten_solution
from repro.htg.visualize import (
    flat_graph_to_dot,
    flat_graph_to_networkx,
    htg_to_dot,
    htg_to_networkx,
)
from repro.simulator.engine import simulate_graph
from repro.simulator.trace import (
    build_timelines,
    render_gantt,
    render_utilization,
    schedule_table,
)

from tests.test_simulator import graph_of, simple_platform


@pytest.fixture()
def small_sim():
    tasks = [
        AtomicTask(0, "entry", 0.0, "slow"),
        AtomicTask(1, "a", 2000.0, "fast"),
        AtomicTask(2, "b", 2000.0, "fast"),
        AtomicTask(3, "exit", 0.0, "slow"),
    ]
    edges = [FlatEdge(0, 1), FlatEdge(0, 2), FlatEdge(1, 3), FlatEdge(2, 3)]
    graph = graph_of(tasks, edges, 0, 3)
    return graph, simulate_graph(graph, simple_platform())


class TestTrace:
    def test_timelines_cover_all_work(self, small_sim):
        graph, result = small_sim
        timelines = build_timelines(result, graph)
        busy = sum(t.busy_us for t in timelines)
        assert busy == pytest.approx(20.0)  # two 10us tasks

    def test_markers_skipped(self, small_sim):
        graph, result = small_sim
        timelines = build_timelines(result, graph)
        labels = [
            label for t in timelines for (_s, _f, label) in t.intervals
        ]
        assert "entry" not in labels and "exit" not in labels

    def test_gantt_renders_all_cores(self, small_sim):
        graph, result = small_sim
        text = render_gantt(result, graph)
        assert "slow[0]" in text
        assert "fast[0]" in text and "fast[1]" in text
        assert "#" in text

    def test_utilization_table(self, small_sim):
        _graph, result = small_sim
        text = render_utilization(result)
        assert "fast[0]" in text
        assert "%" in text

    def test_schedule_table(self, small_sim):
        graph, result = small_sim
        text = schedule_table(result, graph)
        assert "a" in text and "b" in text

    def test_schedule_table_limit(self, small_sim):
        graph, result = small_sim
        text = schedule_table(result, graph, limit=1)
        assert "more)" in text

    def test_gantt_on_real_solution(self, fir_hetero_result, platform_a_acc):
        graph = flatten_solution(fir_hetero_result.best, platform_a_acc)
        result = simulate_graph(graph, platform_a_acc)
        text = render_gantt(result, graph)
        assert "arm500[0]" in text
        assert "makespan" in text


class TestHtgExport:
    def test_networkx_nodes_match(self, small_fir):
        _, _, htg = small_fir
        graph = htg_to_networkx(htg)
        # every walked node plus comm nodes must be present
        walked = {n.uid for n in htg.walk()}
        assert walked <= set(graph.nodes)
        assert graph.graph["function"] == "main"

    def test_networkx_hierarchy_is_forest(self, small_fir):
        _, _, htg = small_fir
        graph = htg_to_networkx(htg)
        contains = nx.DiGraph(
            (u, v)
            for u, v, d in graph.edges(data=True)
            if d.get("kind") == "contains"
        )
        assert nx.is_directed_acyclic_graph(contains)

    def test_dataflow_edges_carry_bytes(self, small_fir):
        _, _, htg = small_fir
        graph = htg_to_networkx(htg)
        dataflow = [
            d for _u, _v, d in graph.edges(data=True) if d.get("kind") == "dataflow"
        ]
        assert dataflow
        assert any(d["bytes"] > 0 for d in dataflow)

    def test_dot_output_parses_shape(self, small_fir):
        _, _, htg = small_fir
        dot = htg_to_dot(htg)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert "->" in dot


class TestFlatExport:
    def test_flat_networkx(self, fir_hetero_result, platform_a_acc):
        graph = flatten_solution(fir_hetero_result.best, platform_a_acc)
        nxg = flat_graph_to_networkx(graph)
        assert nx.is_directed_acyclic_graph(nxg)
        assert set(nxg.nodes) == {t.tid for t in graph.tasks}
        assert nxg.graph["entry"] == graph.entry

    def test_flat_dot(self, fir_hetero_result, platform_a_acc):
        graph = flatten_solution(fir_hetero_result.best, platform_a_acc)
        dot = flat_graph_to_dot(graph)
        assert "digraph" in dot
        assert "arm500" in dot or "fillcolor" in dot
