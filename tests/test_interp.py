"""Tests for the concrete interpreter (the profiling substitute)."""

import math

import numpy as np
import pytest

from repro.cfront import parse_c_source
from repro.cfront import ir
from repro.timing.interp import (
    Interpreter,
    InterpreterError,
    InterpreterLimitExceeded,
    run_function,
    _c_div,
    _c_mod,
)


class TestScalarSemantics:
    def test_int_truncation_on_assign(self):
        program = parse_c_source("void f(void) { int a; a = 7 / 2; }")
        interp = Interpreter(program)
        interp.run("f")
        # executed without error; C semantics: 7/2 == 3
        program2 = parse_c_source("int g(void) { return 7 / 2; }")
        assert run_function(program2, "g").return_value == 3

    def test_negative_division_truncates_toward_zero(self):
        program = parse_c_source("int g(void) { int a; a = -7; return a / 2; }")
        assert run_function(program, "g").return_value == -3

    def test_modulo_c99(self):
        program = parse_c_source("int g(void) { int a; a = -7; return a % 3; }")
        assert run_function(program, "g").return_value == -1

    @pytest.mark.parametrize("a,b", [(7, 2), (-7, 2), (7, -2), (-7, -2), (0, 5)])
    def test_cdiv_cmod_identity(self, a, b):
        assert _c_div(a, b) * b + _c_mod(a, b) == a

    def test_float_arithmetic(self):
        program = parse_c_source("double g(void) { return 1.0 / 4.0 + 0.25; }")
        assert run_function(program, "g").return_value == pytest.approx(0.5)

    def test_comparisons_and_logic(self):
        program = parse_c_source(
            "int g(void) { int a; a = 3; if (a > 1 && a < 5) { return 1; } return 0; }"
        )
        assert run_function(program, "g").return_value == 1

    def test_shifts_and_bitops(self):
        program = parse_c_source(
            "int g(void) { int a; a = 1 << 4; return (a | 3) & 0xFF; }"
        )
        assert run_function(program, "g").return_value == 19

    def test_unary_ops(self):
        program = parse_c_source("int g(void) { int a; a = 5; return -a + !0; }")
        assert run_function(program, "g").return_value == -4

    def test_cast(self):
        program = parse_c_source("int g(void) { return (int)2.9; }")
        assert run_function(program, "g").return_value == 2


class TestControlFlow:
    def test_for_loop_count(self):
        program = parse_c_source(
            "int g(void) { int i; int s; s = 0;"
            " for (i = 0; i < 10; i += 3) { s = s + 1; } return s; }"
        )
        assert run_function(program, "g").return_value == 4

    def test_while_loop(self):
        program = parse_c_source(
            "int g(void) { int i; i = 0; while (i < 5) { i = i + 1; } return i; }"
        )
        assert run_function(program, "g").return_value == 5

    def test_if_else_branches(self):
        program = parse_c_source(
            "int g(int v) { if (v > 0) { return 1; } else { return -1; } }"
        )
        assert run_function(program, "g", [5]).return_value == 1
        assert run_function(program, "g", [-5]).return_value == -1

    def test_early_return_stops_loop(self):
        program = parse_c_source(
            "int g(void) { int i; for (i = 0; i < 100; i++) {"
            " if (i == 3) { return i; } } return -1; }"
        )
        assert run_function(program, "g").return_value == 3

    def test_execution_counts(self):
        program = parse_c_source(
            "float x[6];\n"
            "void f(void) { int i; for (i = 0; i < 6; i++) { x[i] = i; } }"
        )
        func = program.entry("f")
        loop = next(s for s in func.body.walk() if isinstance(s, ir.ForLoop))
        body_assign = loop.body.stmts[0]
        profile = run_function(program, "f")
        assert profile.count(loop.sid) == 1
        assert profile.count(body_assign.sid) == 6


class TestArrays:
    def test_global_array_persistence(self):
        program = parse_c_source(
            "float x[4];\n"
            "void f(void) { x[2] = 7.5f; }\n"
        )
        interp = Interpreter(program)
        interp.run("f")
        assert interp.globals["x"][2] == pytest.approx(7.5)

    def test_multidim(self):
        program = parse_c_source(
            "float m[3][4];\nfloat g(void) { m[1][2] = 9.0f; return m[1][2]; }"
        )
        assert run_function(program, "g").return_value == pytest.approx(9.0)

    def test_local_array(self):
        program = parse_c_source(
            "float g(void) { float t[4]; t[0] = 1.5f; return t[0]; }"
        )
        assert run_function(program, "g").return_value == pytest.approx(1.5)

    def test_bounds_check(self):
        program = parse_c_source("float x[4];\nvoid f(void) { x[4] = 1.0f; }")
        with pytest.raises(InterpreterError):
            run_function(program, "f")

    def test_negative_index_rejected(self):
        program = parse_c_source(
            "float x[4];\nvoid f(void) { int i; i = -1; x[i] = 1.0f; }"
        )
        with pytest.raises(InterpreterError):
            run_function(program, "f")

    def test_wrong_arity_rejected(self):
        program = parse_c_source("float x[4][4];\nvoid f(void) { x[1] = 1.0f; }")
        with pytest.raises(InterpreterError):
            run_function(program, "f")


class TestCalls:
    def test_builtin_math(self):
        program = parse_c_source("double g(void) { return sqrt(16.0); }")
        assert run_function(program, "g").return_value == pytest.approx(4.0)

    def test_user_function_call(self):
        program = parse_c_source(
            "int sq(int v) { return v * v; }\n"
            "int g(void) { return sq(6); }"
        )
        assert run_function(program, "g").return_value == 36

    def test_array_passed_by_reference(self):
        program = parse_c_source(
            "float buf[4];\n"
            "void fill(float *dst, int n) { int i;"
            " for (i = 0; i < n; i++) { dst[i] = i * 2.0f; } }\n"
            "float g(void) { fill(buf, 4); return buf[3]; }"
        )
        assert run_function(program, "g").return_value == pytest.approx(6.0)

    def test_undefined_function_rejected(self):
        program = parse_c_source("void f(void) { mystery(); }")
        with pytest.raises(InterpreterError):
            run_function(program, "f")

    def test_wrong_argument_count(self):
        program = parse_c_source("int sq(int v) { return v * v; }")
        with pytest.raises(InterpreterError):
            run_function(program, "sq", [])


class TestLimitsAndErrors:
    def test_step_limit(self):
        program = parse_c_source(
            "void f(void) { int i; i = 0; while (i < 1000000) { i = i + 1; } }"
        )
        with pytest.raises(InterpreterLimitExceeded):
            run_function(program, "f", max_steps=1000)

    def test_division_by_zero(self):
        program = parse_c_source("int g(void) { int a; a = 0; return 1 / a; }")
        with pytest.raises(InterpreterError):
            run_function(program, "g")

    def test_undefined_variable(self):
        # The parser allows use of an undeclared name; the interpreter flags it.
        program = parse_c_source("int g(void) { return nope; }")
        with pytest.raises(InterpreterError):
            run_function(program, "g")


class TestNumericalAgreement:
    def test_fir_matches_numpy(self):
        program = parse_c_source(
            """
            #define N 8
            #define T 16
            float x[N + T];
            float h[T];
            float y[N];
            void f(void) {
                int i; int j; float s;
                for (i = 0; i < N + T; i++) { x[i] = 0.1f * i; }
                for (i = 0; i < T; i++) { h[i] = 1.0f / (i + 1); }
                for (i = 0; i < N; i++) {
                    s = 0.0f;
                    for (j = 0; j < T; j++) { s = s + x[i + j] * h[j]; }
                    y[i] = s;
                }
            }
            """
        )
        interp = Interpreter(program)
        interp.run("f")
        x = 0.1 * np.arange(24, dtype=np.float64)
        h = 1.0 / (np.arange(16, dtype=np.float64) + 1)
        expected = np.array([np.dot(x[i : i + 16], h) for i in range(8)])
        np.testing.assert_allclose(interp.globals["y"], expected, rtol=1e-5)

    def test_matmul_matches_numpy(self):
        program = parse_c_source(
            """
            float a[5][5]; float b[5][5]; float c[5][5];
            void f(void) {
                int i; int j; int k; float s;
                for (i = 0; i < 5; i++) { for (j = 0; j < 5; j++) {
                    a[i][j] = 0.3f * i - 0.2f * j;
                    b[i][j] = 0.1f * (i + j);
                } }
                for (i = 0; i < 5; i++) { for (j = 0; j < 5; j++) {
                    s = 0.0f;
                    for (k = 0; k < 5; k++) { s = s + a[i][k] * b[k][j]; }
                    c[i][j] = s;
                } }
            }
            """
        )
        interp = Interpreter(program)
        interp.run("f")
        i = np.arange(5).reshape(-1, 1)
        j = np.arange(5).reshape(1, -1)
        a = (0.3 * i - 0.2 * j).astype(np.float32)
        b = (0.1 * (i + j)).astype(np.float32)
        np.testing.assert_allclose(
            interp.globals["c"], a.astype(np.float64) @ b.astype(np.float64),
            rtol=1e-4,
        )
