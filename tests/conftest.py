"""Shared fixtures: platforms, small programs, cached parallelization runs."""

from __future__ import annotations

import pytest

from repro.cfront import parse_c_source
from repro.cfront.defuse import compute_call_summaries
from repro.core.parallelize import (
    HeterogeneousParallelizer,
    HomogeneousParallelizer,
    ParallelizeOptions,
)
from repro.htg.builder import BuildOptions, build_htg
from repro.platforms import config_a, config_b, homogeneous
from repro.timing.estimator import annotate_costs

#: A small FIR-like program exercising parallel loops, a reduction tail and
#: inter-loop data flow; fast to parse/profile/parallelize.
SMALL_FIR = """
#define N 32
#define T 64
float x[N + T];
float h[T];
float y[N];
float checksum;

void main(void) {
    int i;
    int j;
    float sum;
    for (i = 0; i < N + T; i++) { x[i] = 0.01f * i; }
    for (i = 0; i < T; i++) { h[i] = 1.0f / (i + 1); }
    for (i = 0; i < N; i++) {
        sum = 0.0f;
        for (j = 0; j < T; j++) { sum = sum + x[i + j] * h[j]; }
        y[i] = sum;
    }
    checksum = 0.0f;
    for (i = 0; i < N; i++) { checksum = checksum + y[i]; }
}
"""

#: A fully serial recurrence program (offload is the only option).
SMALL_SERIAL = """
float y[256];
float checksum;

void main(void) {
    int i;
    y[0] = 1.0f;
    for (i = 1; i < 256; i++) {
        y[i] = 0.9f * y[i - 1] + 0.1f;
    }
    checksum = y[255];
}
"""


@pytest.fixture(scope="session")
def platform_a_acc():
    return config_a("accelerator")


@pytest.fixture(scope="session")
def platform_a_slow():
    return config_a("slower-cores")


@pytest.fixture(scope="session")
def platform_b_acc():
    return config_b("accelerator")


@pytest.fixture(scope="session")
def platform_homo4():
    return homogeneous(4, 500.0)


def prepare(source: str, total_cores: int = 4, entry: str = "main",
            build_options: BuildOptions | None = None):
    """Parse + profile + build an AHTG for a source string."""
    program = parse_c_source(source)
    func = program.entry(entry)
    summaries = compute_call_summaries(program)
    cost_db = annotate_costs(program, func)
    htg = build_htg(
        program,
        func,
        cost_db=cost_db,
        options=build_options or BuildOptions(),
        total_cores=total_cores,
        summaries=summaries,
    )
    return program, cost_db, htg


@pytest.fixture(scope="session")
def small_fir():
    return prepare(SMALL_FIR)


@pytest.fixture(scope="session")
def small_serial():
    return prepare(SMALL_SERIAL)


@pytest.fixture(scope="session")
def fir_hetero_result(small_fir, platform_a_acc):
    _, _, htg = small_fir
    return HeterogeneousParallelizer(platform_a_acc).parallelize(htg)


@pytest.fixture(scope="session")
def fir_homo_result(small_fir, platform_a_acc):
    _, _, htg = small_fir
    return HomogeneousParallelizer(platform_a_acc).parallelize(htg)
