"""Def/use soundness against observed behavior.

The dependence analysis is conservative by design; the one direction it
must never get wrong is *missing* a write: every global the interpreter
actually mutates must appear in the computed def set of the function
body. Checked across the full benchmark suite (paper set + extended).
"""

import numpy as np
import pytest

from repro.bench_suite import BENCHMARKS
from repro.bench_suite.extended import EXTENDED_BENCHMARKS
from repro.cfront import parse_c_source
from repro.cfront.defuse import compute_call_summaries, compute_defuse
from repro.timing.interp import Interpreter

ALL = {**BENCHMARKS, **EXTENDED_BENCHMARKS}


def observed_written_globals(program):
    """Run the program; return the globals whose values changed."""
    interp = Interpreter(program)
    before = {
        name: (value.copy() if isinstance(value, np.ndarray) else value)
        for name, value in interp.globals.items()
    }
    interp.run("main")
    changed = set()
    for name, new in interp.globals.items():
        old = before[name]
        if isinstance(new, np.ndarray):
            if not np.array_equal(old, new):
                changed.add(name)
        elif old != new:
            changed.add(name)
    return changed


class TestDefSoundness:
    @pytest.mark.parametrize("name", sorted(ALL))
    def test_observed_writes_covered_by_defs(self, name):
        program = parse_c_source(ALL[name].source)
        summaries = compute_call_summaries(program)
        du = compute_defuse(program.entry("main").body, summaries)
        written = observed_written_globals(program)
        assert written <= du.all_defs, (
            f"{name}: interpreter mutated {written - du.all_defs} "
            f"but the analysis missed them"
        )

    @pytest.mark.parametrize("name", sorted(ALL))
    def test_read_globals_covered_by_uses(self, name):
        """Any global array that influences the checksum must be in the
        use set (weaker check: all declared input arrays that are read
        at least appear somewhere in uses ∪ defs)."""
        program = parse_c_source(ALL[name].source)
        summaries = compute_call_summaries(program)
        du = compute_defuse(program.entry("main").body, summaries)
        for gname, decl in program.globals.items():
            if decl.is_array:
                assert gname in (du.all_defs | du.all_uses), (
                    f"{name}: array {gname!r} untouched by def/use"
                )
