"""Energy model tests: ILP estimates vs. simulated energy.

The energy objective (paper future work) is only trustworthy if the
candidate's ``energy_nj`` bookkeeping matches what the simulator charges
for the same placement — these tests close that loop.
"""

import pytest

from repro.core.flatten import flatten_solution
from repro.core.parallelize import (
    HeterogeneousParallelizer,
    ParallelizeOptions,
)
from repro.platforms import Platform, ProcessorClass
from repro.platforms.description import Interconnect
from repro.simulator.engine import simulate_graph

from tests.conftest import prepare, SMALL_FIR


def energy_platform(main="eff"):
    return Platform(
        "energy-test",
        (
            ProcessorClass("eff", 100.0, 2, energy_per_cycle_nj=0.5),
            ProcessorClass("burn", 400.0, 2, energy_per_cycle_nj=4.0),
        ),
        interconnect=Interconnect(),
        task_creation_overhead_us=5.0,
        main_class_name=main,
    )


class TestEnergyAccounting:
    def test_sequential_energy_exact(self):
        _, _, htg = prepare(SMALL_FIR)
        platform = energy_platform()
        result = HeterogeneousParallelizer(
            platform, ParallelizeOptions()
        ).parallelize(htg)
        # pick the sequential candidate explicitly
        seq = result.solution_sets[htg.root.uid].sequential_for_class("eff")
        assert seq is not None
        graph = flatten_solution(seq, platform)
        sim = simulate_graph(graph, platform)
        assert sim.energy_nj == pytest.approx(seq.energy_nj, rel=1e-9)
        assert sim.energy_nj == pytest.approx(htg.root.total_cycles() * 0.5)

    def test_parallel_candidate_energy_matches_simulation(self):
        _, _, htg = prepare(SMALL_FIR)
        platform = energy_platform()
        result = HeterogeneousParallelizer(platform).parallelize(htg)
        graph = flatten_solution(result.best, platform)
        sim = simulate_graph(graph, platform)
        if not result.best.is_sequential:
            assert sim.energy_nj == pytest.approx(result.best.energy_nj, rel=1e-6)

    def test_energy_objective_reduces_simulated_energy(self):
        _, _, htg = prepare(SMALL_FIR)
        platform = energy_platform()

        def simulated_energy(options):
            result = HeterogeneousParallelizer(platform, options).parallelize(htg)
            graph = flatten_solution(result.best, platform)
            return simulate_graph(graph, platform).energy_nj

        time_energy = simulated_energy(ParallelizeOptions())
        eco_energy = simulated_energy(
            ParallelizeOptions(objective="energy", energy_deadline_factor=1.0)
        )
        assert eco_energy <= time_energy + 1e-6

    def test_energy_deadline_respected(self):
        _, _, htg = prepare(SMALL_FIR)
        platform = energy_platform()
        result = HeterogeneousParallelizer(
            platform,
            ParallelizeOptions(objective="energy", energy_deadline_factor=1.0),
        ).parallelize(htg)
        seq_time = platform.main_class.time_us(htg.root.total_cycles())
        assert result.best.exec_time_us <= seq_time + 1e-6

    def test_cpi_scale_enters_energy(self):
        """A class with CPI scale 2 burns twice the cycles (and energy)."""
        from repro.core.flatten import AtomicTask, FlatTaskGraph

        platform = Platform(
            "cpi",
            (ProcessorClass("c", 100.0, 1, cpi_scale=2.0, energy_per_cycle_nj=1.0),),
        )
        graph = FlatTaskGraph(
            tasks=[AtomicTask(0, "t", 1000.0, "c")], edges=[], entry=0, exit=0
        )
        sim = simulate_graph(graph, platform)
        assert sim.energy_nj == pytest.approx(2000.0)
