"""Tests for AHTG construction: structure, edges, privatization, inlining."""

import pytest

from repro.cfront import parse_c_source
from repro.cfront.defuse import compute_call_summaries
from repro.cfront.deps import DepKind
from repro.htg import (
    BuildOptions,
    ChunkNode,
    HierarchicalNode,
    SimpleNode,
    build_htg,
)
from repro.timing.estimator import annotate_costs

from tests.conftest import prepare, SMALL_FIR, SMALL_SERIAL


def build(source: str, entry: str = "main", **options):
    return prepare(source, build_options=BuildOptions(**options) if options else None)


class TestStructure:
    def test_root_is_function_node(self, small_fir):
        _, _, htg = small_fir
        root = htg.get_root_node()
        assert isinstance(root, HierarchicalNode)
        assert root.construct == "function"

    def test_validation_clean(self, small_fir):
        _, _, htg = small_fir
        assert htg.validate() == []

    def test_comm_nodes_exist(self, small_fir):
        _, _, htg = small_fir
        root = htg.get_root_node()
        assert root.comm_in is not None and root.comm_out is not None
        assert root.comm_in.total_cycles() == 0.0

    def test_total_cycles_composition(self, small_fir):
        _, _, htg = small_fir
        root = htg.get_root_node()
        assert root.total_cycles() == pytest.approx(
            root.control_overhead_cycles
            + sum(c.total_cycles() for c in root.children)
        )

    def test_counts(self, small_fir):
        _, _, htg = small_fir
        assert htg.num_nodes == htg.num_simple_nodes + htg.num_hierarchical_nodes
        assert htg.depth >= 2

    def test_pretty_contains_labels(self, small_fir):
        _, _, htg = small_fir
        assert "function main" in htg.pretty()

    def test_uninitialized_decls_skipped(self):
        _, _, htg = build(
            "void main(void) { int a; int b; a = 1; b = a; }"
        )
        labels = [c.label for c in htg.root.children]
        assert len(htg.root.children) == 2  # two assigns, no decl nodes


class TestChunking:
    def test_parallel_loop_chunked(self, small_fir):
        _, _, htg = small_fir
        chunked = [
            n
            for n in htg.walk()
            if isinstance(n, HierarchicalNode) and n.construct == "loop-chunked"
        ]
        assert chunked, "the main FIR loop should be chunked"
        loop = chunked[0]
        assert all(isinstance(c, ChunkNode) for c in loop.children)

    def test_chunk_ranges_partition_iterations(self, small_fir):
        _, _, htg = small_fir
        for node in htg.walk():
            if isinstance(node, HierarchicalNode) and node.construct == "loop-chunked":
                chunks = sorted(node.children, key=lambda c: c.iter_lo)
                assert chunks[0].iter_lo == 0
                for a, b in zip(chunks, chunks[1:]):
                    assert a.iter_hi == b.iter_lo

    def test_chunk_costs_sum_to_loop(self, small_fir):
        _, cost_db, htg = small_fir
        for node in htg.walk():
            if isinstance(node, HierarchicalNode) and node.construct == "loop-chunked":
                total = sum(c.cycles for c in node.children)
                assert total == pytest.approx(cost_db.subtree_cycles(node.stmt))

    def test_serial_loop_not_chunked(self, small_serial):
        _, _, htg = small_serial
        assert not any(
            isinstance(n, HierarchicalNode) and n.construct == "loop-chunked"
            for n in htg.walk()
        )

    def test_chunking_disabled(self):
        _, _, htg = build(SMALL_FIR, enable_chunking=False)
        assert not any(
            isinstance(n, HierarchicalNode) and n.construct == "loop-chunked"
            for n in htg.walk()
        )

    def test_tiny_loop_not_chunked(self):
        _, _, htg = build(
            "float x[4];\nvoid main(void) { int i;"
            " for (i = 0; i < 4; i++) { x[i] = i; } }"
        )
        assert not any(
            isinstance(n, HierarchicalNode) and n.construct == "loop-chunked"
            for n in htg.walk()
        )

    def test_max_chunks_respected(self):
        _, _, htg = build(SMALL_FIR, max_chunks=4)
        for node in htg.walk():
            if isinstance(node, HierarchicalNode) and node.construct == "loop-chunked":
                assert len(node.children) <= 4


class TestEdges:
    def test_producer_consumer_edge(self, small_fir):
        _, _, htg = small_fir
        root = htg.get_root_node()
        # init loop for x feeds the main FIR loop
        inner = root.edges_between_children()
        assert any(e.bytes_volume > 0 for e in inner)

    def test_all_children_join_comm_out(self, small_fir):
        _, _, htg = small_fir
        root = htg.get_root_node()
        out_sources = {e.src.uid for e in root.out_edges()}
        assert {c.uid for c in root.children} <= out_sources

    def test_privatized_counters_create_no_edges(self):
        _, _, htg = build(
            """
            float a[2048]; float b[2048];
            void main(void) {
                int i;
                for (i = 0; i < 2048; i++) { a[i] = i * 1.0f; }
                for (i = 0; i < 2048; i++) { b[i] = i * 2.0f; }
            }
            """
        )
        root = htg.get_root_node()
        # the two loops share only the counter: no inter-loop edges
        assert root.edges_between_children() == []

    def test_backward_edge_for_carried_value(self):
        _, _, htg = build(
            """
            float y[512]; float z[512];
            void main(void) {
                int i;
                float carry;
                carry = 0.0f;
                for (i = 0; i < 512; i++) {
                    y[i] = carry * 0.5f;
                    carry = y[i] + z[i];
                }
            }
            """
        )
        loops = [
            n
            for n in htg.walk()
            if isinstance(n, HierarchicalNode) and n.construct == "loop"
        ]
        assert loops
        assert any(e.backward for e in loops[0].edges_between_children())

    def test_edge_bytes_capped_at_array_size(self, small_fir):
        # Array traffic is capped at the array's size; scalar FIFO traffic
        # (one transfer per write) is not, so only check array-only edges.
        _, _, htg = small_fir
        checked = 0
        for node in htg.walk():
            if not isinstance(node, HierarchicalNode):
                continue
            for edge in node.edges:
                infos = [htg.symbols.get(v) for v in edge.variables]
                if not infos or not all(i is not None and i.is_array for i in infos):
                    continue
                checked += 1
                assert edge.bytes_volume <= sum(i.total_bytes for i in infos) + 1e-9
        assert checked > 0


class TestIfNodes:
    SRC = """
    float x[1024];
    void main(void) {
        int i;
        for (i = 0; i < 1024; i++) {
            if (x[i] > 0.5f) { x[i] = 1.0f; } else { x[i] = 0.0f; }
        }
    }
    """

    def test_branch_ordering_edge(self):
        _, _, htg = build(self.SRC, enable_chunking=False)
        ifs = [
            n
            for n in htg.walk()
            if isinstance(n, HierarchicalNode) and n.construct == "if"
        ]
        assert ifs
        node = ifs[0]
        if len(node.children) == 2:
            kinds = [e.kind for e in node.edges_between_children()]
            assert DepKind.ANTI in kinds


class TestCallInlining:
    SRC = """
    float buf[4096];
    void fill(float *dst) {
        int i;
        for (i = 0; i < 4096; i++) { dst[i] = i * 0.5f; }
    }
    float total;
    void main(void) {
        int i;
        fill(buf);
        total = 0.0f;
        for (i = 0; i < 4096; i++) { total = total + buf[i]; }
    }
    """

    def test_single_call_site_inlined(self):
        _, _, htg = build(self.SRC)
        calls = [
            n
            for n in htg.walk()
            if isinstance(n, HierarchicalNode) and n.construct == "call"
        ]
        assert len(calls) == 1
        assert calls[0].children  # the callee's loop

    def test_inlining_disabled(self):
        _, _, htg = build(self.SRC, inline_calls=False)
        calls = [
            n for n in htg.walk() if isinstance(n, SimpleNode) and "call" in n.label
        ]
        assert calls

    def test_call_node_defuse_is_argument_level(self):
        _, _, htg = build(self.SRC)
        call = next(
            n
            for n in htg.walk()
            if isinstance(n, HierarchicalNode) and n.construct == "call"
        )
        assert "buf" in call.defuse.array_defs
