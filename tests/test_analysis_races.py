"""Adversarial tests of the static race detector.

Each mutation drops or weakens exactly one fact of a correct solution —
a precedence edge, the communicated byte volume, the intra-task
placement of a recurrence — and the detector must answer with exactly
one diagnostic naming the offending edge.
"""

from __future__ import annotations

import pytest

from repro.analysis.certifier import check_solution_tree_races
from repro.analysis.races import check_candidate_races, recompute_dependences
from repro.cfront.deps import DepKind
from repro.core.solution import SolutionCandidate, TaskSegment
from repro.htg.nodes import HTGEdge

from tests.conftest import prepare

#: Three independent producer loops feeding one consumer; distinct loop
#: counters keep the only cross-loop dependences on the array data.
PRODUCER_CONSUMER = """
float x[64];
float y[64];
float z[64];

void main(void) {
    int i;
    int j;
    int k;
    for (i = 0; i < 64; i++) { x[i] = 0.5f * i; }
    for (j = 0; j < 64; j++) { y[j] = 2.0f * j; }
    for (k = 0; k < 64; k++) { z[k] = x[k] + y[k]; }
}
"""

#: An iir-style two-statement recurrence: the second statement writes
#: what the first reads on the next iteration.
RECURRENCE = """
float x[64];
float s;
float t;

void main(void) {
    int i;
    s = 0.0f;
    t = 0.0f;
    for (i = 1; i < 64; i++) {
        t = s * 0.5f;
        s = t + x[i];
    }
}
"""


def _find_child(node, needle):
    for child in node.children:
        if needle in child.label:
            return child
    raise AssertionError(f"no child matching {needle!r} in {node.label!r}")


def _sequential(child, proc_class):
    return SolutionCandidate(
        node=child, main_class=proc_class,
        exec_time_us=1.0, is_sequential=True,
    )


def _two_task_candidate(node, main_children, extra_children):
    """Hand-build a fork/extra split with sequential child choices."""
    choice = {}
    for child in main_children:
        choice[child.uid] = _sequential(child, "arm500")
    for child in extra_children:
        choice[child.uid] = _sequential(child, "arm500")
    return SolutionCandidate(
        node=node,
        main_class="arm500",
        exec_time_us=1_000.0,
        segments=(
            TaskSegment(0, "fork", "arm500", tuple(main_children)),
            TaskSegment(1, "extra", "arm500", tuple(extra_children)),
        ),
        child_choice=choice,
        used_procs={"arm500": 1},
        is_sequential=False,
    )


@pytest.fixture(scope="module")
def producer_consumer():
    return prepare(PRODUCER_CONSUMER)


@pytest.fixture(scope="module")
def recurrence():
    return prepare(RECURRENCE)


class TestRecomputedDependences:
    def test_flow_deps_found(self, producer_consumer):
        _, _, htg = producer_consumer
        root = htg.root
        deps = recompute_dependences(root)
        flows = {
            (d.src.label, d.dst.label): d.variables
            for d in deps
            if d.kind is DepKind.FLOW and not d.backward
        }
        consumer = _find_child(root, "for k").label
        x_loop = _find_child(root, "for i").label
        y_loop = _find_child(root, "for j").label
        assert flows[(x_loop, consumer)] == frozenset({"x"})
        assert flows[(y_loop, consumer)] == frozenset({"y"})

    def test_loop_carried_dep_found(self, recurrence):
        _, _, htg = recurrence
        loop = _find_child(htg.root, "for i")
        backward = [d for d in recompute_dependences(loop) if d.backward]
        assert len(backward) == 1
        assert backward[0].variables == frozenset({"s"})


class TestLegalSplitsCertify:
    def test_valid_split_has_no_diagnostics(self, producer_consumer):
        _, _, htg = producer_consumer
        root = htg.root
        x_loop = _find_child(root, "for i")
        y_loop = _find_child(root, "for j")
        consumer = _find_child(root, "for k")
        candidate = _two_task_candidate(root, [x_loop, consumer], [y_loop])
        assert check_candidate_races(candidate, htg.symbols) == []

    def test_real_solutions_certify(self, fir_hetero_result, fir_homo_result):
        assert check_solution_tree_races(fir_hetero_result) == []
        assert check_solution_tree_races(fir_homo_result) == []


class TestDroppedPrecedenceEdge:
    def test_exactly_one_uncovered_dependence(self):
        # fresh AHTG: this test mutates the edge list
        _, _, htg = prepare(PRODUCER_CONSUMER)
        root = htg.root
        x_loop = _find_child(root, "for i")
        y_loop = _find_child(root, "for j")
        consumer = _find_child(root, "for k")
        # drop the y-producer -> consumer precedence edge
        root.edges = [
            e for e in root.edges
            if not (e.src.uid == y_loop.uid and e.dst.uid == consumer.uid)
        ]
        candidate = _two_task_candidate(root, [x_loop, consumer], [y_loop])
        diags = check_candidate_races(candidate, htg.symbols)
        assert len(diags) == 1, [d.message for d in diags]
        diag = diags[0]
        assert diag.code == "race.uncovered-dependence"
        assert diag.context["src"] == y_loop.label
        assert diag.context["dst"] == consumer.label
        assert diag.context["variables"] == ["y"]


class TestUnderReportedBytes:
    def test_exactly_one_comm_underflow(self):
        # fresh AHTG: this test rewrites the edge list
        _, _, htg = prepare(PRODUCER_CONSUMER)
        root = htg.root
        x_loop = _find_child(root, "for i")
        y_loop = _find_child(root, "for j")
        consumer = _find_child(root, "for k")
        # report the y flow edge as carrying zero bytes
        rewritten = []
        for edge in root.edges:
            if (
                edge.src.uid == y_loop.uid
                and edge.dst.uid == consumer.uid
                and edge.kind is DepKind.FLOW
            ):
                edge = HTGEdge(
                    edge.src, edge.dst, edge.kind, edge.variables, 0.0,
                    backward=edge.backward,
                )
            rewritten.append(edge)
        root.edges = rewritten
        candidate = _two_task_candidate(root, [x_loop, consumer], [y_loop])
        diags = check_candidate_races(candidate, htg.symbols)
        assert len(diags) == 1, [d.message for d in diags]
        diag = diags[0]
        assert diag.code == "race.comm-underflow"
        assert diag.context["src"] == y_loop.label
        assert diag.context["dst"] == consumer.label
        assert diag.context["bytes_volume"] == 0.0
        assert diag.context["required_bytes"] > 0.0


class TestRecurrenceSplit:
    def test_exactly_one_loop_carried_split(self, recurrence):
        _, _, htg = recurrence
        loop = _find_child(htg.root, "for i")
        first, second = loop.children
        candidate = _two_task_candidate(loop, [first], [second])
        diags = [
            d for d in check_candidate_races(candidate, htg.symbols)
            if d.code == "race.loop-carried-split"
        ]
        assert len(diags) == 1, [d.message for d in diags]
        diag = diags[0]
        assert diag.context["variables"] == ["s"]
        assert diag.context["src"] == second.label
        assert diag.context["dst"] == first.label

    def test_intra_task_recurrence_is_legal(self, recurrence):
        _, _, htg = recurrence
        loop = _find_child(htg.root, "for i")
        first, second = loop.children
        candidate = SolutionCandidate(
            node=loop,
            main_class="arm500",
            exec_time_us=1_000.0,
            segments=(TaskSegment(0, "fork", "arm500", (first, second)),),
            child_choice={
                first.uid: _sequential(first, "arm500"),
                second.uid: _sequential(second, "arm500"),
            },
            is_sequential=False,
        )
        assert check_candidate_races(candidate, htg.symbols) == []
