"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.toolflow.cli import main

DEMO_SOURCE = """
float x[1024];
float y[1024];
void main(void) {
    int i;
    for (i = 0; i < 1024; i++) { x[i] = i * 0.5f; }
    for (i = 0; i < 1024; i++) { y[i] = x[i] * x[i] + 1.0f; }
}
"""


@pytest.fixture()
def demo_file(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(DEMO_SOURCE, encoding="utf-8")
    return path


class TestParallelize:
    def test_basic_run(self, demo_file, capsys):
        assert main(["parallelize", str(demo_file)]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "config-a-accelerator" in out

    def test_outputs_written(self, demo_file, tmp_path, capsys):
        annotated = tmp_path / "out.c"
        mapping = tmp_path / "map.json"
        assert (
            main(
                [
                    "parallelize",
                    str(demo_file),
                    "--annotate",
                    str(annotated),
                    "--mapping",
                    str(mapping),
                ]
            )
            == 0
        )
        assert "#pragma repro" in annotated.read_text() or "sequential" in annotated.read_text()
        spec = json.loads(mapping.read_text())
        assert spec["format"] == "repro-premapping"

    def test_gantt_flag(self, demo_file, capsys):
        assert main(["parallelize", str(demo_file), "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out

    def test_homogeneous_approach(self, demo_file, capsys):
        assert (
            main(["parallelize", str(demo_file), "--approach", "homogeneous"]) == 0
        )
        assert "speedup" in capsys.readouterr().out

    def test_platform_b_slower_cores(self, demo_file, capsys):
        assert (
            main(
                [
                    "parallelize",
                    str(demo_file),
                    "--platform",
                    "config-b",
                    "--scenario",
                    "slower-cores",
                ]
            )
            == 0
        )
        assert "config-b" in capsys.readouterr().out

    def test_homogeneous_platform_spec(self, demo_file, capsys):
        assert (
            main(["parallelize", str(demo_file), "--platform", "homogeneous:4:500"])
            == 0
        )

    def test_unknown_platform(self, demo_file):
        with pytest.raises(SystemExit):
            main(["parallelize", str(demo_file), "--platform", "quantum"])


class TestInspect:
    def test_inspect_output(self, demo_file, capsys):
        assert main(["inspect", str(demo_file)]) == 0
        out = capsys.readouterr().out
        assert "AHTG nodes" in out
        assert "loop classifications" in out
        assert "parallel" in out

    def test_dot_export(self, demo_file, tmp_path, capsys):
        dot = tmp_path / "g.dot"
        assert main(["inspect", str(demo_file), "--dot", str(dot)]) == 0
        assert dot.read_text().startswith("digraph")


class TestListing:
    def test_benchmarks_listed(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        for name in ("fir_256", "latnrm_32", "spectral"):
            assert name in out

    def test_figure_subset(self, capsys):
        assert main(["figure", "7a", "--benchmarks", "fir_256"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 7(a)" in out and "fir_256" in out

    def test_table1_subset(self, capsys):
        assert main(["table1", "--benchmarks", "fir_256"]) == 0
        assert "TABLE I" in capsys.readouterr().out
