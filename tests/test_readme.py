"""The README's quickstart snippet must actually run."""

import pathlib
import re

import pytest

README = pathlib.Path(__file__).parent.parent / "README.md"


def python_blocks(text: str):
    return re.findall(r"```python\n(.*?)```", text, re.DOTALL)


class TestReadme:
    def test_quickstart_snippet_executes(self, capsys):
        blocks = python_blocks(README.read_text(encoding="utf-8"))
        assert blocks, "README must contain a python quickstart block"
        snippet = blocks[0]
        namespace: dict = {}
        exec(compile(snippet, "README.md", "exec"), namespace)  # noqa: S102
        out = capsys.readouterr().out
        assert "x of" in out or "speedup" in out.lower()

    def test_readme_mentions_all_subpackages(self):
        text = README.read_text(encoding="utf-8")
        for name in (
            "repro.cfront",
            "repro.timing",
            "repro.htg",
            "repro.ilp",
            "repro.core",
            "repro.platforms",
            "repro.simulator",
            "repro.codegen",
            "repro.bench_suite",
            "repro.toolflow",
        ):
            assert name in text, name

    def test_experiments_doc_exists_with_measurements(self):
        experiments = README.parent / "EXPERIMENTS.md"
        text = experiments.read_text(encoding="utf-8")
        # the four figures and the table are all recorded
        for marker in ("7(a)", "7(b)", "8(a)", "8(b)", "Table I"):
            assert marker in text, marker

    def test_design_doc_has_substitution_table(self):
        design = README.parent / "DESIGN.md"
        text = design.read_text(encoding="utf-8")
        assert "CoMET" in text
        assert "UTDSP" in text
        assert "Substitutions" in text or "substitution" in text.lower()
