"""Tests for the unparser, annotator and pre-mapping specification."""

import json

import pytest

from repro.cfront import parse_c_source
from repro.codegen import annotate_solution, mapping_spec, unparse_program
from repro.codegen.mapping_spec import mapping_spec_json
from repro.codegen.unparse import unparse_expr, unparse_stmt
from repro.timing.interp import Interpreter

from tests.conftest import SMALL_FIR


class TestUnparseRoundtrip:
    @pytest.mark.parametrize(
        "source",
        [
            SMALL_FIR,
            """
            float m[4][4];
            float r;
            void main(void) {
                int i; int j;
                for (i = 0; i < 4; i++) {
                    for (j = 0; j < 4; j++) {
                        if (i == j) { m[i][j] = 1.0f; } else { m[i][j] = 0.0f; }
                    }
                }
                r = 0.0f;
                i = 0;
                while (i < 4) { r = r + m[i][i]; i = i + 1; }
            }
            """,
            """
            float out;
            float helper(float v) { return v * v + 1.0f; }
            void main(void) { out = helper(3.0f) - sqrt(4.0); }
            """,
        ],
    )
    def test_roundtrip_preserves_semantics(self, source):
        program1 = parse_c_source(source)
        regenerated = unparse_program(program1)
        program2 = parse_c_source(regenerated)

        interp1 = Interpreter(program1)
        interp1.run("main")
        interp2 = Interpreter(program2)
        interp2.run("main")
        for name, value in interp1.globals.items():
            import numpy as np

            if isinstance(value, np.ndarray):
                np.testing.assert_allclose(value, interp2.globals[name], rtol=1e-6)
            else:
                assert interp2.globals[name] == pytest.approx(value)

    def test_operator_precedence_preserved(self):
        program = parse_c_source(
            "int g(void) { return (1 + 2) * 3 - 8 / (2 + 2); }"
        )
        regenerated = unparse_program(program)
        program2 = parse_c_source(regenerated)
        from repro.timing.interp import run_function

        assert run_function(program2, "g").return_value == 7

    def test_unary_and_cast(self):
        program = parse_c_source("int g(void) { int a; a = -3; return (int)(-a * 2); }")
        regenerated = unparse_program(program)
        from repro.timing.interp import run_function

        assert run_function(parse_c_source(regenerated), "g").return_value == 6

    def test_pointer_parameter_signature(self):
        program = parse_c_source("void f(float *x, int n) { x[0] = n; }")
        text = unparse_program(program)
        assert "float *x" in text


class TestAnnotator:
    def test_annotated_source_structure(self, fir_hetero_result):
        text = annotate_solution(fir_hetero_result)
        assert "#pragma repro parallel" in text
        assert "#pragma repro task" in text
        assert "chunk" in text
        assert "main_class(arm100)" in text

    def test_chunk_loops_have_adjusted_bounds(self, fir_hetero_result):
        text = annotate_solution(fir_hetero_result)
        # at least one non-zero chunk start must appear
        assert "/* chunk" in text

    def test_header_mentions_speedup(self, fir_hetero_result):
        text = annotate_solution(fir_hetero_result)
        assert "speedup" in text


class TestMappingSpec:
    def test_structure(self, fir_hetero_result):
        spec = mapping_spec(fir_hetero_result)
        assert spec["format"] == "repro-premapping"
        assert spec["platform"]["main_class"] == "arm100"
        assert spec["tasks"]
        classes = {pc["name"] for pc in spec["platform"]["classes"]}
        assert classes == {"arm100", "arm250", "arm500"}

    def test_tasks_have_classes(self, fir_hetero_result):
        spec = mapping_spec(fir_hetero_result)

        def check(tasks):
            for task in tasks:
                assert task["class"] in ("arm100", "arm250", "arm500")
                for sub in task.get("subtasks", []):
                    check([sub])

        check(spec["tasks"])

    def test_chunk_ranges_recorded(self, fir_hetero_result):
        text = mapping_spec_json(fir_hetero_result)
        spec = json.loads(text)

        def iter_statements(tasks):
            for task in tasks:
                yield from task.get("statements", [])
                yield from iter_statements(task.get("subtasks", []))

        ranges = [
            s["iteration_range"]
            for s in iter_statements(spec["tasks"])
            if "iteration_range" in s
        ]
        assert ranges, "chunked statements must record their iteration ranges"
        for lo, hi in ranges:
            assert 0 <= lo < hi

    def test_json_serializable(self, fir_hetero_result):
        json.loads(mapping_spec_json(fir_hetero_result))
