"""Property-based tests of the discrete-event simulator.

Invariants any correct schedule must satisfy, checked over random task
DAGs:

* work conservation: makespan ≥ total work / total capacity;
* critical path: makespan ≥ the longest dependence chain executed on the
  fastest core;
* precedence: every task starts after all predecessors finish;
* capacity: no core ever runs two tasks at once.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.flatten import AtomicTask, FlatEdge, FlatTaskGraph
from repro.platforms import Platform, ProcessorClass
from repro.simulator.engine import simulate_graph


def platform_2x2():
    return Platform(
        "prop",
        (
            ProcessorClass("slow", 100.0, 2),
            ProcessorClass("fast", 300.0, 2),
        ),
    )


@st.composite
def random_dag(draw):
    n = draw(st.integers(2, 10))
    tasks = []
    for tid in range(n):
        cycles = draw(st.integers(100, 20_000))
        cls = draw(st.sampled_from(["slow", "fast", None]))
        tasks.append(AtomicTask(tid, f"t{tid}", float(cycles), cls))
    edges = []
    for dst in range(1, n):
        for src in range(dst):
            if draw(st.booleans()) and draw(st.booleans()):
                bytes_volume = float(draw(st.integers(0, 4096)))
                edges.append(FlatEdge(src, dst, bytes_volume))
    return FlatTaskGraph(tasks=tasks, edges=edges, entry=0, exit=n - 1)


class TestScheduleInvariants:
    @settings(max_examples=60, deadline=None)
    @given(random_dag())
    def test_work_conservation(self, graph):
        platform = platform_2x2()
        result = simulate_graph(graph, platform)
        capacity_mhz = sum(
            pc.count * pc.effective_mhz for pc in platform.processor_classes
        )
        lower_bound = graph.total_cycles() / capacity_mhz
        assert result.makespan_us >= lower_bound - 1e-9

    @settings(max_examples=60, deadline=None)
    @given(random_dag())
    def test_critical_path_bound(self, graph):
        platform = platform_2x2()
        result = simulate_graph(graph, platform)
        fastest = max(pc.effective_mhz for pc in platform.processor_classes)
        # longest chain in cycles via DP over the DAG
        longest = {t.tid: t.cycles for t in graph.tasks}
        for task in graph.tasks:  # tids are topologically ordered by content
            for edge in graph.predecessors(task.tid):
                longest[task.tid] = max(
                    longest[task.tid], longest[edge.src] + task.cycles
                )
        chain = max(longest.values())
        assert result.makespan_us >= chain / fastest - 1e-6

    @settings(max_examples=60, deadline=None)
    @given(random_dag())
    def test_precedence_respected(self, graph):
        result = simulate_graph(graph, platform_2x2())
        for edge in graph.edges:
            src = result.schedule[edge.src]
            dst = result.schedule[edge.dst]
            assert dst.start_us >= src.finish_us - 1e-9

    @settings(max_examples=60, deadline=None)
    @given(random_dag())
    def test_no_core_overlap(self, graph):
        result = simulate_graph(graph, platform_2x2())
        by_core = {}
        for scheduled in result.schedule.values():
            by_core.setdefault(scheduled.core, []).append(scheduled)
        for intervals in by_core.values():
            intervals.sort(key=lambda s: s.start_us)
            for a, b in zip(intervals, intervals[1:]):
                assert b.start_us >= a.finish_us - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(random_dag())
    def test_class_requirements_enforced(self, graph):
        result = simulate_graph(graph, platform_2x2())
        tasks = {t.tid: t for t in graph.tasks}
        for tid, scheduled in result.schedule.items():
            required = tasks[tid].proc_class
            if required is not None:
                assert scheduled.core[0] == required

    @settings(max_examples=30, deadline=None)
    @given(random_dag())
    def test_energy_is_placement_consistent(self, graph):
        platform = platform_2x2()
        result = simulate_graph(graph, platform)
        expected = 0.0
        tasks = {t.tid: t for t in graph.tasks}
        for tid, scheduled in result.schedule.items():
            pc = platform.get_class(scheduled.core[0])
            expected += tasks[tid].cycles * pc.cpi_scale * pc.energy_per_cycle_nj
        assert result.energy_nj == pytest.approx(expected)
