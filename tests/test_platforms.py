"""Tests for platform descriptions and presets."""

import pytest

from repro.platforms import (
    Interconnect,
    Platform,
    ProcessorClass,
    big_little,
    config_a,
    config_b,
    homogeneous,
)


class TestProcessorClass:
    def test_time_scaling(self):
        pc = ProcessorClass("c", 100.0, 1)
        assert pc.time_us(100.0) == pytest.approx(1.0)  # cycles/MHz = µs

    def test_cpi_scale(self):
        pc = ProcessorClass("c", 100.0, 1, cpi_scale=2.0)
        assert pc.time_us(100.0) == pytest.approx(2.0)
        assert pc.effective_mhz == pytest.approx(50.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"frequency_mhz": 0.0},
            {"frequency_mhz": -5.0},
            {"count": 0},
            {"cpi_scale": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        base = {"name": "c", "frequency_mhz": 100.0, "count": 1}
        base.update(kwargs)
        with pytest.raises(ValueError):
            ProcessorClass(**base)


class TestInterconnect:
    def test_transfer_time(self):
        ic = Interconnect(bandwidth_bytes_per_us=100.0, latency_us=2.0)
        assert ic.transfer_time_us(400) == pytest.approx(6.0)

    def test_zero_bytes_free(self):
        assert Interconnect().transfer_time_us(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Interconnect(bandwidth_bytes_per_us=0)
        with pytest.raises(ValueError):
            Interconnect(latency_us=-1)


class TestPlatform:
    def test_duplicate_class_names_rejected(self):
        with pytest.raises(ValueError):
            Platform(
                "p",
                (ProcessorClass("a", 100, 1), ProcessorClass("a", 200, 1)),
            )

    def test_unknown_main_class_rejected(self):
        with pytest.raises(ValueError):
            Platform("p", (ProcessorClass("a", 100, 1),), main_class_name="b")

    def test_default_main_is_slowest(self):
        p = Platform(
            "p", (ProcessorClass("fast", 500, 1), ProcessorClass("slow", 100, 1))
        )
        assert p.main_class.name == "slow"

    def test_with_main_class(self):
        p = config_a("accelerator").with_main_class("arm500")
        assert p.main_class.name == "arm500"

    def test_cores_enumeration(self):
        p = config_a("accelerator")
        assert list(p.cores()) == [
            ("arm100", 0),
            ("arm250", 0),
            ("arm500", 0),
            ("arm500", 1),
        ]

    def test_total_cores(self):
        assert config_a("accelerator").total_cores == 4
        assert config_b("accelerator").total_cores == 4

    def test_is_homogeneous(self):
        assert homogeneous(4, 500).is_homogeneous
        assert not config_a("accelerator").is_homogeneous

    def test_num_procs(self):
        p = config_a("accelerator")
        assert p.num_procs("arm500") == 2
        with pytest.raises(KeyError):
            p.num_procs("nope")

    def test_describe_mentions_classes(self):
        text = config_b("accelerator").describe()
        assert "200" in text and "500" in text


class TestPaperLimits:
    """The dashed-line limits of Figures 7/8 (paper footnotes 2-5)."""

    def test_config_a_accelerator_limit(self):
        assert config_a("accelerator").theoretical_speedup() == pytest.approx(13.5)

    def test_config_a_slower_cores_limit(self):
        assert config_a("slower-cores").theoretical_speedup() == pytest.approx(2.7)

    def test_config_b_accelerator_limit(self):
        assert config_b("accelerator").theoretical_speedup() == pytest.approx(7.0)

    def test_config_b_slower_cores_limit(self):
        assert config_b("slower-cores").theoretical_speedup() == pytest.approx(2.8)

    def test_scenario_aliases(self):
        assert config_a("I").main_class.name == "arm100"
        assert config_a("II").main_class.name == "arm500"
        with pytest.raises(ValueError):
            config_a("III")

    def test_big_little_ratio(self):
        p = big_little()
        fast = p.get_class("big").frequency_mhz
        slow = p.get_class("little").frequency_mhz
        assert fast / slow == pytest.approx(2.5)
