"""Tests for def/use analysis and call summaries."""

import pytest

from repro.cfront import parse_c_source
from repro.cfront.defuse import (
    PURE_BUILTINS,
    compute_call_summaries,
    compute_defuse,
)


def body_defuse(body: str, prelude: str = ""):
    program = parse_c_source(f"{prelude}\nvoid f(void) {{ {body} }}")
    func = program.entry("f")
    summaries = compute_call_summaries(program)
    return compute_defuse(func.body, summaries)


class TestScalars:
    def test_simple_assign(self):
        du = body_defuse("int a; int b; a = 1; b = a + 2;")
        assert "a" in du.scalar_defs and "b" in du.scalar_defs
        assert "a" in du.scalar_uses
        assert "b" not in du.scalar_uses

    def test_decl_with_init_is_def(self):
        du = body_defuse("int a = 3;")
        assert "a" in du.scalar_defs

    def test_decl_init_reads(self):
        du = body_defuse("int a; a = 1; int b = a;")
        assert "a" in du.scalar_uses

    def test_condition_reads(self):
        du = body_defuse("int a; a = 1; if (a > 0) { a = 2; }")
        assert "a" in du.scalar_uses

    def test_loop_var_def_and_use(self):
        du = body_defuse("int i; for (i = 0; i < 4; i++) { }")
        assert "i" in du.scalar_defs and "i" in du.scalar_uses

    def test_return_reads(self):
        program = parse_c_source("int g(void) { int a; a = 1; return a; }")
        du = compute_defuse(program.entry("g").body)
        assert "a" in du.scalar_uses
        assert du.has_return


class TestArrays:
    def test_array_write(self):
        du = body_defuse("x[0] = 1.0f;", prelude="float x[4];")
        assert "x" in du.array_defs
        assert "x" not in du.array_uses

    def test_array_read(self):
        du = body_defuse("float a; a = x[1];", prelude="float x[4];")
        assert "x" in du.array_uses

    def test_index_expression_reads(self):
        du = body_defuse("int i; i = 1; x[i + 1] = 0.0f;", prelude="float x[4];")
        assert "i" in du.scalar_uses

    def test_accesses_recorded(self):
        du = body_defuse(
            "int i; for (i = 0; i < 3; i++) { x[i] = x[i + 1]; }",
            prelude="float x[4];",
        )
        writes = [a for a in du.accesses if a.is_write]
        reads = [a for a in du.accesses if not a.is_write]
        assert len(writes) == 1 and writes[0].name == "x"
        assert len(reads) == 1


class TestCalls:
    def test_pure_builtin_reads_only(self):
        du = body_defuse("float a; a = sin(1.0f);")
        assert not du.has_unknown_call
        assert "sin" not in du.scalar_uses

    def test_unknown_call_conservative(self):
        du = body_defuse("mystery(x);", prelude="float x[4];")
        assert du.has_unknown_call
        assert "x" in du.array_defs and "x" in du.array_uses

    def test_known_call_summary_writes(self):
        program = parse_c_source(
            """
            void fill(float *dst, int n) {
                int i;
                for (i = 0; i < n; i++) { dst[i] = i; }
            }
            void f(void) { fill(buf, 4); }
            float buf[4];
            """
        )
        summaries = compute_call_summaries(program)
        du = compute_defuse(program.entry("f").body, summaries)
        assert "buf" in du.array_defs
        assert "buf" not in du.array_uses

    def test_known_call_summary_reads(self):
        program = parse_c_source(
            """
            float total(float *src, int n) {
                int i;
                float s;
                s = 0.0f;
                for (i = 0; i < n; i++) { s = s + src[i]; }
                return s;
            }
            float buf[4];
            void f(void) { float t; t = total(buf, 4); }
            """
        )
        summaries = compute_call_summaries(program)
        du = compute_defuse(program.entry("f").body, summaries)
        assert "buf" in du.array_uses
        assert "buf" not in du.array_defs

    def test_global_access_through_call(self):
        program = parse_c_source(
            """
            float acc;
            void bump(void) { acc = acc + 1.0f; }
            void f(void) { bump(); }
            """
        )
        summaries = compute_call_summaries(program)
        du = compute_defuse(program.entry("f").body, summaries)
        assert "acc" in du.all_defs

    def test_nested_call_summaries_converge(self):
        program = parse_c_source(
            """
            float data[8];
            void inner(void) { data[0] = 1.0f; }
            void outer(void) { inner(); }
            void f(void) { outer(); }
            """
        )
        summaries = compute_call_summaries(program)
        du = compute_defuse(program.entry("f").body, summaries)
        assert "data" in du.array_defs


class TestMerge:
    def test_merge_unions(self):
        a = body_defuse("int p; p = 1;")
        b = body_defuse("int q; q = 2;")
        a.merge(b)
        assert {"p", "q"} <= a.scalar_defs

    def test_all_defs_uses(self):
        du = body_defuse("int a; a = 1; x[a] = 2.0f;", prelude="float x[4];")
        assert du.all_defs == {"a", "x"}
        assert "a" in du.all_uses
