"""Tests of the ILP certificate checker (assignment replay)."""

from __future__ import annotations

import pytest

from repro.analysis.certificate import check_solution_certificate
from repro.core.ilppar import build_ilppar_model, extract_ilppar_candidate
from repro.core.parallelize import HeterogeneousParallelizer, ParallelizeOptions

from tests.test_ilppar import leaf, make_node, seed_sets, two_class_platform


@pytest.fixture(scope="module")
def solved_instance():
    platform = two_class_platform()
    children = [leaf(f"w{i}", 40_000.0) for i in range(4)]
    node = make_node(children)
    inst = build_ilppar_model(
        node, "slow", 4, platform, seed_sets(platform, children)
    )
    assert inst is not None
    solution = inst.model.solve()
    candidate = extract_ilppar_candidate(inst, solution)
    return inst, solution, candidate


def _copy_solution(solution):
    from dataclasses import replace

    return replace(solution, values=dict(solution.values))


class TestCleanCertificates:
    def test_optimal_solve_certifies(self, solved_instance):
        inst, solution, candidate = solved_instance
        assert check_solution_certificate(inst, solution, candidate) == []

    def test_solve_time_verification_collects_nothing(self, small_fir, platform_a_acc):
        _, _, htg = small_fir
        options = ParallelizeOptions(verify=True)
        result = HeterogeneousParallelizer(platform_a_acc, options).parallelize(htg)
        assert result.certificates == []
        assert result.certificate_seconds > 0.0

    def test_verify_off_by_default(self, fir_hetero_result):
        assert fir_hetero_result.certificates == []
        assert fir_hetero_result.certificate_seconds == 0.0


class TestTamperedAssignments:
    def test_duplicated_task_assignment(self, solved_instance):
        inst, solution, candidate = solved_instance
        bad = _copy_solution(solution)
        # assign child 0 to every task: Eq. 1 wants exactly one
        for var in inst.x[0]:
            bad.values[var] = 1.0
        codes = {d.code for d in check_solution_certificate(inst, bad, candidate)}
        assert "certificate.ambiguous-task" in codes
        assert "certificate.constraint-violation" in codes

    def test_fractional_binary(self, solved_instance):
        inst, solution, candidate = solved_instance
        bad = _copy_solution(solution)
        chosen = next(v for v in inst.x[0] if solution.values.get(v, 0) > 0.5)
        bad.values[chosen] = 0.5
        codes = {d.code for d in check_solution_certificate(inst, bad, candidate)}
        assert "certificate.fractional-integer" in codes

    def test_objective_mismatch(self, solved_instance):
        inst, solution, candidate = solved_instance
        from dataclasses import replace

        bad = replace(
            solution,
            values=dict(solution.values),
            objective=solution.objective + 1_000.0,
        )
        codes = {d.code for d in check_solution_certificate(inst, bad)}
        assert "certificate.objective-mismatch" in codes

    def test_exec_time_mismatch(self, solved_instance):
        inst, solution, candidate = solved_instance
        from dataclasses import replace

        lying = replace(candidate, exec_time_us=candidate.exec_time_us / 2.0)
        codes = {d.code for d in check_solution_certificate(inst, solution, lying)}
        assert "certificate.exec-time-mismatch" in codes

    def test_missing_variable(self, solved_instance):
        inst, solution, candidate = solved_instance
        bad = _copy_solution(solution)
        del bad.values[inst.model.variables[0]]
        codes = {d.code for d in check_solution_certificate(inst, bad)}
        assert "certificate.missing-variable" in codes

    def test_bound_violation(self, solved_instance):
        inst, solution, candidate = solved_instance
        bad = _copy_solution(solution)
        var = next(v for v in inst.model.variables if v.ub < float("inf"))
        bad.values[var] = var.ub + 1.0
        codes = {d.code for d in check_solution_certificate(inst, bad)}
        assert "certificate.bound-violation" in codes
