"""Tests for the ILP modelling layer (expressions, constraints, gadgets)."""

import math

import pytest

from repro.ilp import (
    Constraint,
    InfeasibleError,
    LinExpr,
    Model,
    Sense,
    SolveStatus,
    UnboundedError,
    Variable,
    lin_sum,
)


class TestLinExpr:
    def test_variable_plus_constant(self):
        m = Model()
        x = m.add_var("x")
        expr = x + 3
        assert expr.terms[x] == 1.0
        assert expr.const == 3.0

    def test_radd_rsub(self):
        m = Model()
        x = m.add_var("x")
        expr = 5 - x
        assert expr.terms[x] == -1.0
        assert expr.const == 5.0
        expr2 = 5 + x * 2
        assert expr2.terms[x] == 2.0

    def test_scaling(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_var("y")
        expr = 2 * (x + y) - 0.5 * y
        assert expr.terms[x] == 2.0
        assert expr.terms[y] == 1.5

    def test_negation(self):
        m = Model()
        x = m.add_var("x")
        expr = -(x + 1)
        assert expr.terms[x] == -1.0
        assert expr.const == -1.0

    def test_nonconstant_multiplication_rejected(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_var("y")
        with pytest.raises(TypeError):
            (x + 0) * (y + 0)

    def test_lin_sum_collects_terms(self):
        m = Model()
        xs = [m.add_var(f"x{i}") for i in range(5)]
        expr = lin_sum(x * (i + 1) for i, x in enumerate(xs))
        assert expr.terms[xs[4]] == 5.0
        assert len(expr.terms) == 5

    def test_lin_sum_with_constants(self):
        expr = lin_sum([1, 2, 3])
        assert expr.const == 6.0

    def test_value_evaluation(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_var("y")
        expr = 2 * x - y + 7
        assert expr.value({x: 3.0, y: 1.0}) == 12.0


class TestConstraints:
    def test_le_constraint_normalization(self):
        m = Model()
        x = m.add_var("x")
        cons = x + 1 <= 5
        assert cons.sense is Sense.LE
        assert cons.rhs == 4.0

    def test_eq_constraint(self):
        m = Model()
        x = m.add_var("x")
        cons = x == 3
        assert isinstance(cons, Constraint)
        assert cons.sense is Sense.EQ

    def test_satisfied(self):
        m = Model()
        x = m.add_var("x")
        cons = x <= 5
        assert cons.satisfied({x: 5.0})
        assert not cons.satisfied({x: 6.0})

    def test_ge_satisfied(self):
        m = Model()
        x = m.add_var("x")
        assert (x >= 2).satisfied({x: 2.0})
        assert not (x >= 2).satisfied({x: 1.0})


class TestModel:
    def test_duplicate_names_rejected(self):
        m = Model()
        m.add_var("x")
        with pytest.raises(ValueError):
            m.add_var("x")

    def test_invalid_bounds_rejected(self):
        m = Model()
        with pytest.raises(ValueError):
            m.add_var("x", lb=2, ub=1)

    def test_add_constraint_rejects_bool(self):
        m = Model()
        m.add_var("x")
        with pytest.raises(TypeError):
            m.add_constraint(True)  # type: ignore[arg-type]

    def test_counts(self):
        m = Model()
        x = m.add_binary("x")
        m.add_constraint(x <= 1)
        assert m.num_variables == 1
        assert m.num_constraints == 1

    def test_check_reports_violations(self):
        m = Model()
        x = m.add_var("x")
        m.add_constraint(x <= 1, name="cap")
        m.minimize(x)
        from repro.ilp.model import Solution

        bad = Solution(SolveStatus.OPTIMAL, 5.0, {x: 5.0})
        violated = m.check(bad)
        assert len(violated) == 1
        assert violated[0].name == "cap"

    def test_matrix_form_shapes(self):
        m = Model()
        x = m.add_binary("x")
        y = m.add_var("y", 0, 10)
        m.add_constraint(x + y <= 5)
        m.add_constraint(x - y >= -2)
        m.add_constraint(x + 2 * y == 3)
        m.minimize(x + y)
        form = m.to_matrix_form()
        assert len(form.rows_ub) == 2  # LE + flipped GE
        assert len(form.rows_eq) == 1
        assert list(form.integrality) == [1, 0]


class TestGadgets:
    @pytest.mark.parametrize("a,b", [(0, 0), (0, 1), (1, 0), (1, 1)])
    def test_and_gadget_truth_table(self, a, b):
        m = Model()
        x = m.add_binary("x")
        y = m.add_binary("y")
        z = m.add_and(x, y)
        m.add_constraint(x == a)
        m.add_constraint(y == b)
        # maximize z to make sure upper constraints bind, then minimize for
        # the lower constraint.
        m.maximize(z)
        assert m.solve()[z] == float(a and b)
        m.minimize(z)
        assert m.solve()[z] == float(a and b)

    def test_implication_active(self):
        m = Model()
        g = m.add_binary("g")
        v = m.add_var("v", 0, 100)
        m.add_constraint(g == 1)
        m.add_implication_ge(g, v, 42, big_m=1000)
        m.minimize(v)
        assert m.solve().objective == pytest.approx(42)

    def test_implication_inactive(self):
        m = Model()
        g = m.add_binary("g")
        v = m.add_var("v", 0, 100)
        m.add_constraint(g == 0)
        m.add_implication_ge(g, v, 42, big_m=1000)
        m.minimize(v)
        assert m.solve().objective == pytest.approx(0)


class TestSolveOutcomes:
    def test_simple_optimum(self):
        m = Model()
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add_constraint(x + y <= 1)
        m.maximize(2 * x + y)
        sol = m.solve()
        assert sol.objective == pytest.approx(2)
        assert sol[x] == 1.0 and sol[y] == 0.0

    def test_infeasible_raises(self):
        m = Model()
        x = m.add_binary("x")
        m.add_constraint(x >= 2)
        m.minimize(x)
        with pytest.raises(InfeasibleError):
            m.solve()

    def test_unbounded_raises(self):
        m = Model()
        x = m.add_var("x")  # default ub = inf
        m.maximize(x)
        with pytest.raises(UnboundedError):
            m.solve()

    def test_as_name_dict(self):
        m = Model()
        x = m.add_binary("flag")
        m.maximize(x)
        sol = m.solve()
        assert sol.as_name_dict() == {"flag": 1.0}

    def test_solution_value_of_expression(self):
        m = Model()
        x = m.add_var("x", 0, 4, integer=True)
        m.maximize(x)
        sol = m.solve()
        assert sol.value(2 * x + 1) == pytest.approx(9)

    def test_objective_constant_only(self):
        m = Model()
        x = m.add_binary("x")
        m.add_constraint(x == 1)
        m.minimize(LinExpr({}, 5.0))
        assert m.solve().objective == pytest.approx(5.0)
