"""Tests for static task-to-core mapping (the paper's mapping-tool stage)."""

import pytest

from repro.core.flatten import AtomicTask, FlatEdge, FlatTaskGraph, flatten_solution
from repro.core.mapping import compute_static_mapping
from repro.platforms import config_a
from repro.simulator.engine import SimOptions, simulate_graph

from tests.test_simulator import graph_of, simple_platform


class TestComputeMapping:
    def test_respects_class_requirements(self):
        tasks = [AtomicTask(i, f"t{i}", 1000.0, "fast") for i in range(3)]
        graph = graph_of(tasks, [], 0, 2)
        platform = simple_platform()
        mapping = compute_static_mapping(graph, platform)
        assert mapping.validate(graph, platform) == []
        assert all(core[0] == "fast" for core in mapping.assignment.values())

    def test_all_tasks_mapped(self, fir_hetero_result, platform_a_acc):
        graph = flatten_solution(fir_hetero_result.best, platform_a_acc)
        mapping = compute_static_mapping(graph, platform_a_acc)
        assert mapping.validate(graph, platform_a_acc) == []
        assert set(mapping.assignment) == {t.tid for t in graph.tasks}

    def test_parallel_work_spread_over_cores(self):
        tasks = [AtomicTask(i, f"t{i}", 5000.0, "fast") for i in range(2)]
        graph = graph_of(tasks, [], 0, 1)
        mapping = compute_static_mapping(graph, simple_platform())
        cores_used = set(mapping.assignment.values())
        assert len(cores_used) == 2

    def test_unknown_class_rejected(self):
        graph = graph_of([AtomicTask(0, "t", 10.0, "gpu")], [], 0, 0)
        with pytest.raises(ValueError):
            compute_static_mapping(graph, simple_platform())

    def test_cycle_rejected(self):
        tasks = [AtomicTask(0, "a", 10.0, "slow"), AtomicTask(1, "b", 10.0, "slow")]
        graph = graph_of(tasks, [FlatEdge(0, 1), FlatEdge(1, 0)], 0, 1)
        with pytest.raises(ValueError):
            compute_static_mapping(graph, simple_platform())


class TestFixedMappingExecution:
    def test_static_equals_predicted(self, fir_hetero_result, platform_a_acc):
        graph = flatten_solution(fir_hetero_result.best, platform_a_acc)
        mapping = compute_static_mapping(graph, platform_a_acc)
        sim = simulate_graph(
            graph, platform_a_acc, SimOptions(fixed_mapping=mapping.assignment)
        )
        assert sim.makespan_us == pytest.approx(
            mapping.predicted_makespan_us, rel=1e-9
        )

    def test_dynamic_never_worse_than_static(self, fir_hetero_result, platform_a_acc):
        graph = flatten_solution(fir_hetero_result.best, platform_a_acc)
        mapping = compute_static_mapping(graph, platform_a_acc)
        static = simulate_graph(
            graph, platform_a_acc, SimOptions(fixed_mapping=mapping.assignment)
        )
        dynamic = simulate_graph(graph, platform_a_acc)
        assert dynamic.makespan_us <= static.makespan_us + 1e-6

    def test_schedule_follows_mapping(self):
        tasks = [AtomicTask(i, f"t{i}", 1000.0, "fast") for i in range(4)]
        graph = graph_of(tasks, [], 0, 3)
        platform = simple_platform()
        mapping = compute_static_mapping(graph, platform)
        sim = simulate_graph(
            graph, platform, SimOptions(fixed_mapping=mapping.assignment)
        )
        for tid, scheduled in sim.schedule.items():
            assert scheduled.core == mapping.assignment[tid]

    def test_incomplete_mapping_rejected(self):
        tasks = [AtomicTask(0, "a", 10.0, "slow"), AtomicTask(1, "b", 10.0, "slow")]
        graph = graph_of(tasks, [], 0, 1)
        with pytest.raises(ValueError):
            simulate_graph(
                graph, simple_platform(),
                SimOptions(fixed_mapping={0: ("slow", 0)}),
            )

    def test_class_violation_rejected(self):
        graph = graph_of([AtomicTask(0, "t", 10.0, "fast")], [], 0, 0)
        with pytest.raises(ValueError):
            simulate_graph(
                graph, simple_platform(),
                SimOptions(fixed_mapping={0: ("slow", 0)}),
            )

    def test_full_benchmark_static_vs_dynamic(self):
        """The paper's static binding loses nothing on a real solution."""
        from repro.toolflow.experiments import prepare_benchmark
        from repro.core.parallelize import HeterogeneousParallelizer

        platform = config_a("accelerator")
        _, htg = prepare_benchmark("fir_256")
        result = HeterogeneousParallelizer(platform).parallelize(htg)
        graph = flatten_solution(result.best, platform)
        mapping = compute_static_mapping(graph, platform)
        static = simulate_graph(
            graph, platform, SimOptions(fixed_mapping=mapping.assignment)
        )
        dynamic = simulate_graph(graph, platform)
        assert static.makespan_us == pytest.approx(dynamic.makespan_us, rel=0.05)
