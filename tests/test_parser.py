"""Tests for the pycparser-based C frontend."""

import pytest

from repro.cfront import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    CallStmt,
    Const,
    Decl,
    ForLoop,
    If,
    Return,
    UnsupportedCError,
    VarRef,
    WhileLoop,
    parse_c_source,
)
from repro.cfront import ir


def parse_body(body: str, prelude: str = ""):
    program = parse_c_source(f"{prelude}\nvoid f(void) {{ {body} }}")
    return program.entry("f").body.stmts


class TestBasicParsing:
    def test_assignment(self):
        (stmt,) = parse_body("int a; a = 3;")[1:]
        assert isinstance(stmt, Assign)
        assert isinstance(stmt.lhs, VarRef) and stmt.lhs.name == "a"
        assert isinstance(stmt.rhs, Const) and stmt.rhs.value == 3

    def test_compound_assignment_normalized(self):
        stmts = parse_body("int a; a = 1; a += 2;")
        last = stmts[-1]
        assert isinstance(last.rhs, BinOp) and last.rhs.op == "+"

    def test_increment_normalized(self):
        stmts = parse_body("int a; a = 1; a++;")
        last = stmts[-1]
        assert isinstance(last.rhs, BinOp)
        assert last.rhs.op == "+"

    def test_array_multidim(self):
        stmts = parse_body("x[1][2] = 3;", prelude="float x[4][5];")
        assert isinstance(stmts[0].lhs, ArrayRef)
        assert len(stmts[0].lhs.indices) == 2

    def test_global_array_dims(self):
        program = parse_c_source("float x[4][5];\nvoid f(void) { }")
        assert program.globals["x"].dims == (4, 5)

    def test_char_and_hex_constants(self):
        stmts = parse_body("int a; a = 0x10; a = 'A';")
        assert stmts[1].rhs.value == 16
        assert stmts[2].rhs.value == 65

    def test_float_suffix(self):
        stmts = parse_body("float a; a = 1.5f;")
        assign = stmts[-1]
        assert assign.rhs.value == pytest.approx(1.5)
        assert assign.rhs.ctype == "float"

    def test_if_else(self):
        (stmt,) = parse_body("int a; if (a > 0) { a = 1; } else { a = 2; }")[1:]
        assert isinstance(stmt, If)
        assert stmt.else_block is not None

    def test_return_value(self):
        program = parse_c_source("int g(void) { return 42; }")
        (stmt,) = program.entry("g").body.stmts
        assert isinstance(stmt, Return)
        assert stmt.expr.value == 42

    def test_call_statement(self):
        stmts = parse_body("helper(1, 2);")
        assert isinstance(stmts[0], CallStmt)
        assert stmts[0].call.name == "helper"

    def test_comments_stripped(self):
        stmts = parse_body("int a; /* block */ a = 1; // line\n a = 2;")
        assert len(stmts) == 3


class TestDefines:
    def test_simple_define(self):
        program = parse_c_source("#define N 8\nfloat x[N];\nvoid f(void) { }")
        assert program.globals["x"].dims == (8,)

    def test_define_in_expression(self):
        program = parse_c_source(
            "#define N 8\nfloat x[N + 2];\nvoid f(void) { }"
        )
        assert program.globals["x"].dims == (10,)

    def test_chained_defines(self):
        program = parse_c_source(
            "#define A 4\n#define B (A * 2)\nfloat x[B];\nvoid f(void) { }"
        )
        assert program.globals["x"].dims == (8,)


class TestForLoopCanonicalization:
    def test_simple_for(self):
        (loop,) = parse_body("int i; for (i = 0; i < 10; i++) { }")[1:]
        assert isinstance(loop, ForLoop)
        assert loop.step == 1
        assert loop.lower.value == 0

    def test_le_bound_normalized(self):
        (loop,) = parse_body("int i; for (i = 0; i <= 9; i++) { }")[1:]
        assert isinstance(loop, ForLoop)
        # upper becomes 9 + 1
        assert isinstance(loop.upper, BinOp)

    def test_step_plus_equals(self):
        (loop,) = parse_body("int i; for (i = 0; i < 10; i += 2) { }")[1:]
        assert loop.step == 2

    def test_step_i_equals_i_plus(self):
        (loop,) = parse_body("int i; for (i = 0; i < 10; i = i + 3) { }")[1:]
        assert loop.step == 3

    def test_decl_in_init(self):
        (loop,) = parse_body("for (int i = 0; i < 4; i++) { }")
        assert isinstance(loop, ForLoop)
        assert loop.var == "i"

    def test_downward_loop_falls_back_to_while(self):
        stmts = parse_body("int i; for (i = 10; i > 0; i = i - 1) { }")
        kinds = [type(s) for s in stmts]
        assert WhileLoop in kinds or any(isinstance(s, Block) for s in stmts)

    def test_while_loop(self):
        (loop,) = parse_body("int i; i = 0; while (i < 5) { i++; }")[2:]
        assert isinstance(loop, WhileLoop)


class TestUnsupportedConstructs:
    @pytest.mark.parametrize(
        "source",
        [
            "void f(void) { int *p; }",  # pointer declaration
            "void f(void) { goto end; end: ; }",  # goto
            "typedef int myint; void f(void) { }",  # typedef
            "void f(void) { int a[2] = {1, 2}; }",  # initializer list
            "void f(int n, ...) { }",  # varargs
        ],
    )
    def test_rejected(self, source):
        with pytest.raises(UnsupportedCError):
            parse_c_source(source)

    def test_ternary_rejected(self):
        with pytest.raises(UnsupportedCError):
            parse_c_source("void f(void) { int a; a = 1 ? 2 : 3; }")

    def test_syntax_error_wrapped(self):
        with pytest.raises(UnsupportedCError):
            parse_c_source("void f( {")


class TestProgramStructure:
    def test_entry_by_name(self):
        program = parse_c_source("void a(void) { }\nvoid b(void) { }")
        assert program.entry("b").name == "b"
        with pytest.raises(KeyError):
            program.entry("main")

    def test_entry_single_function_fallback(self):
        program = parse_c_source("void only(void) { }")
        assert program.entry("main").name == "only"

    def test_pointer_parameters(self):
        program = parse_c_source("void f(float *x, int n) { x[0] = n; }")
        params = program.entry("f").params
        assert params[0].is_pointer and not params[1].is_pointer

    def test_array_parameter_is_pointerlike(self):
        program = parse_c_source("void f(float x[16]) { x[0] = 1.0f; }")
        assert program.entry("f").params[0].is_pointer

    def test_global_constant_recorded(self):
        program = parse_c_source("int n = 7;\nvoid f(void) { }")
        assert program.constants["n"] == 7

    def test_sid_uniqueness(self):
        program = parse_c_source(
            "void f(void) { int a; a = 1; a = 2; if (a) { a = 3; } }"
        )
        sids = [s.sid for s in program.entry("f").body.walk()]
        assert len(sids) == len(set(sids))
