"""End-to-end tests of the heuristic/exact solve portfolio.

Covers the three ``ParallelizeOptions.portfolio`` modes, graceful
degradation when the worker pool dies mid-race, seed reproducibility
across dispatch configurations, and the telemetry counters.
"""

from __future__ import annotations

from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

import repro.ilp.service as service_mod
from repro.analysis import certify_run
from repro.core.parallelize import HeterogeneousParallelizer, ParallelizeOptions
from repro.platforms import config_a
from repro.toolflow.experiments import prepare_benchmark


def _run(name, platform, **options):
    _program, htg = prepare_benchmark(name, platform.total_cores)
    parallelizer = HeterogeneousParallelizer(platform, ParallelizeOptions(**options))
    return parallelizer.parallelize(htg)


def _signature(result):
    """Everything observable about the produced solution sets."""
    candidates = []
    for uid in sorted(result.solution_sets):
        for cand in result.solution_sets[uid].all():
            candidates.append(
                (
                    uid,
                    cand.main_class,
                    cand.exec_time_us,
                    cand.source,
                    cand.opt_gap,
                    tuple(sorted(cand.used_procs.items())),
                    tuple(
                        (seg.index, seg.role, seg.proc_class,
                         tuple(ch.uid for ch in seg.children))
                        for seg in cand.segments
                    ),
                )
            )
    return (result.best.exec_time_us, tuple(candidates))


class _DyingPool:
    """A pool that comes up fine but whose every future dies."""

    def __init__(self, *args, **kwargs):
        pass

    def submit(self, fn, *args, **kwargs):
        future: Future = Future()
        future.set_exception(BrokenProcessPool("worker died mid-race"))
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestRaceMode:
    def test_race_matches_exact_objective(self):
        platform = config_a("accelerator")
        exact = _run("fir_256", platform, backend="bnb")
        race = _run("fir_256", platform, backend="bnb", portfolio="race")
        assert race.best.exec_time_us == pytest.approx(exact.best.exec_time_us)
        pool = race.stats.pool
        assert pool.heuristic_solves > 0
        assert pool.incumbents_injected > 0
        assert pool.degraded_solves == 0

    def test_race_with_scipy_backend(self):
        # scipy has no incumbent channel: the race is decided post-solve,
        # keeping whichever answer is better.
        platform = config_a("accelerator")
        exact = _run("mult_10", platform, backend="scipy")
        race = _run("mult_10", platform, backend="scipy", portfolio="race")
        assert race.best.exec_time_us == pytest.approx(exact.best.exec_time_us)
        assert race.stats.pool.incumbents_injected == 0

    def test_pool_death_degrades_to_heuristic(self, monkeypatch):
        # Satellite: kill the worker pool mid-race. The run must finish
        # with the heuristic answers — gap-annotated and diagnosed, not
        # raised as an exception.
        monkeypatch.setattr(service_mod, "ProcessPoolExecutor", _DyingPool)
        platform = config_a("accelerator")
        result = _run(
            "fir_256", platform, jobs=2, backend="bnb", portfolio="race"
        )
        pool = result.stats.pool
        assert pool.degraded_solves > 0
        assert result.best is not None
        assert result.best.source == "heuristic"
        assert result.best.opt_gap is not None and result.best.opt_gap >= 0.0
        codes = {d.code for d in result.portfolio_diagnostics}
        assert codes == {"portfolio.degraded-to-heuristic"}
        assert all(d.severity == "warning" for d in result.portfolio_diagnostics)
        # Degraded answers are anytime-legitimate: certification keeps
        # the warnings visible but stays OK.
        report = certify_run(result)
        assert report.ok
        assert report.by_analysis("portfolio")
        # The records carry the provenance for the report table.
        by_source = result.stats.solves_by_source()
        assert by_source.get("heuristic", 0) == pool.degraded_solves

    def test_pool_death_solution_is_certified_feasible(self, monkeypatch):
        monkeypatch.setattr(service_mod, "ProcessPoolExecutor", _DyingPool)
        platform = config_a("accelerator")
        degraded = _run(
            "mult_10", platform, jobs=2, backend="bnb", portfolio="race"
        )
        exact = _run("mult_10", platform, backend="bnb")
        # Heuristic answers are feasible, never better than the optimum.
        assert degraded.best.exec_time_us >= exact.best.exec_time_us - 1e-6


class TestHeuristicMode:
    def test_no_exact_solves_and_gap_annotations(self):
        platform = config_a("accelerator")
        result = _run("fir_256", platform, portfolio="heuristic")
        pool = result.stats.pool
        assert pool.heuristic_solves > 0
        assert pool.dispatched == 0 and pool.inline_solves == 0
        by_source = result.stats.solves_by_source()
        assert by_source.get("exact", 0) == 0
        assert by_source.get("heuristic", 0) == pool.heuristic_solves
        assert result.best.source == "heuristic"
        assert result.best.opt_gap is not None

    def test_heuristic_certifies_clean(self):
        # Every heuristic solution must pass the full certification
        # pipeline (structural, races, trace, mapping) like an exact one.
        platform = config_a("accelerator")
        result = _run("fir_256", platform, portfolio="heuristic")
        report = certify_run(result)
        assert report.ok

    def test_heuristic_never_better_than_exact(self):
        platform = config_a("accelerator")
        exact = _run("fir_256", platform, backend="bnb")
        heur = _run("fir_256", platform, portfolio="heuristic")
        assert heur.best.exec_time_us >= exact.best.exec_time_us - 1e-6


class TestReproducibility:
    @pytest.mark.parametrize("jobs,batch_size", [(1, 8), (2, 1), (2, 8)])
    def test_seed_makes_runs_bit_identical(self, jobs, batch_size):
        # Satellite: a fixed --seed must make heuristic answers
        # bit-identical regardless of --jobs/--batch-size, because the
        # rng is keyed on (seed, model name), not solve order.
        platform = config_a("accelerator")
        base = _run("fir_256", platform, portfolio="heuristic", seed=5)
        other = _run(
            "fir_256", platform, portfolio="heuristic", seed=5,
            jobs=jobs, batch_size=batch_size,
        )
        assert _signature(other) == _signature(base)

    def test_race_mode_deterministic_across_jobs(self):
        platform = config_a("accelerator")
        serial = _run("mult_10", platform, backend="bnb", portfolio="race")
        pooled = _run(
            "mult_10", platform, backend="bnb", portfolio="race", jobs=2
        )
        assert _signature(pooled) == _signature(serial)


class TestOptionValidation:
    def test_unknown_mode_rejected(self):
        platform = config_a("accelerator")
        with pytest.raises(ValueError, match="portfolio"):
            _run("fir_256", platform, portfolio="fastest")

    def test_energy_objective_stays_exact(self):
        platform = config_a("accelerator")
        result = _run(
            "fir_256", platform, portfolio="heuristic", objective="energy"
        )
        pool = result.stats.pool
        assert pool.heuristic_solves == 0
        assert result.stats.solves_by_source().get("heuristic", 0) == 0


class TestTelemetry:
    def test_suite_stats_portfolio_block(self):
        platform = config_a("accelerator")
        result = _run("fir_256", platform, backend="bnb", portfolio="race")
        pool = result.stats.pool
        assert pool.races_won_by_heuristic <= pool.heuristic_solves
        assert 0.0 <= pool.mean_gap
        from repro.ilp.stats import SuiteStats

        block = SuiteStats(cells=1, wall_seconds=1.0, pool=pool).as_dict()[
            "portfolio"
        ]
        assert block["heuristic_solves"] == pool.heuristic_solves
        assert block["incumbents_injected"] == pool.incumbents_injected
        assert block["races_won_by_heuristic"] == pool.races_won_by_heuristic
        assert block["degraded_solves"] == 0
        assert block["mean_gap"] == pytest.approx(pool.mean_gap, abs=1e-6)
