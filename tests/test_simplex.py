"""Tests for the self-contained bounded-variable revised simplex LP solver."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linprog

from repro.ilp.simplex import SimplexBasis, solve_lp

_EMPTY = np.zeros((0, 0))


def _solve(c, a_ub=None, b_ub=None, a_eq=None, b_eq=None, lb=None, ub=None):
    n = len(c)
    c = np.asarray(c, dtype=float)
    a_ub = np.asarray(a_ub, dtype=float) if a_ub is not None else np.zeros((0, n))
    b_ub = np.asarray(b_ub, dtype=float) if b_ub is not None else np.zeros(0)
    a_eq = np.asarray(a_eq, dtype=float) if a_eq is not None else np.zeros((0, n))
    b_eq = np.asarray(b_eq, dtype=float) if b_eq is not None else np.zeros(0)
    lb = np.asarray(lb, dtype=float) if lb is not None else np.zeros(n)
    ub = np.asarray(ub, dtype=float) if ub is not None else np.full(n, math.inf)
    return solve_lp(c, a_ub, b_ub, a_eq, b_eq, lb, ub)


class TestBasics:
    def test_simple_maximization(self):
        # min -x - 2y st x+y<=3, 0<=x,y<=2 -> x=1,y=2, obj=-5
        res = _solve([-1, -2], [[1, 1]], [3], ub=[2, 2])
        assert res.status == "optimal"
        assert res.objective == pytest.approx(-5)
        assert res.x == pytest.approx([1, 2])

    def test_equality_constraint(self):
        res = _solve([1, 1], a_eq=[[1, -1]], b_eq=[1], ub=[10, 10])
        assert res.status == "optimal"
        assert res.objective == pytest.approx(1)  # x=1, y=0

    def test_infeasible(self):
        res = _solve([1], [[1]], [1], a_eq=[[1]], b_eq=[5], ub=[2])
        assert res.status == "infeasible"

    def test_unbounded(self):
        res = _solve([-1])
        assert res.status == "unbounded"

    def test_empty_constraints_optimum_at_lb(self):
        res = _solve([2, 3], lb=[1, 1], ub=[5, 5])
        assert res.status == "optimal"
        assert res.x == pytest.approx([1, 1])

    def test_shifted_lower_bounds(self):
        res = _solve([1], [[1]], [10], lb=[4], ub=[8])
        assert res.status == "optimal"
        assert res.x[0] == pytest.approx(4)

    def test_free_variable_split(self):
        # min x st x >= -3 (via ub on -x), x free
        res = _solve(
            [1],
            a_ub=[[-1]],
            b_ub=[3],
            lb=[-math.inf],
            ub=[math.inf],
        )
        assert res.status == "optimal"
        assert res.x[0] == pytest.approx(-3)

    def test_conflicting_bounds_infeasible(self):
        res = _solve([1], lb=[3], ub=[2])
        assert res.status == "infeasible"

    def test_negative_rhs_rows(self):
        # x >= 2 encoded as -x <= -2
        res = _solve([1], [[-1]], [-2], ub=[10])
        assert res.status == "optimal"
        assert res.x[0] == pytest.approx(2)

    def test_degenerate_does_not_cycle(self):
        # Classic degenerate LP; Bland's rule must terminate.
        res = _solve(
            [-0.75, 150, -0.02, 6],
            [
                [0.25, -60, -0.04, 9],
                [0.5, -90, -0.02, 3],
                [0, 0, 1, 0],
            ],
            [0, 0, 1],
            ub=[math.inf] * 4,
        )
        assert res.status == "optimal"
        assert res.objective == pytest.approx(-0.05)


class TestWarmStart:
    def _args(self, c, a, b, lb, ub):
        n = len(c)
        return (
            np.asarray(c, dtype=float),
            np.asarray(a, dtype=float),
            np.asarray(b, dtype=float),
            np.zeros((0, n)),
            np.zeros(0),
            np.asarray(lb, dtype=float),
            np.asarray(ub, dtype=float),
        )

    def test_warm_resolve_after_bound_tightening(self):
        # Parent: min -x-2y st x+y<=3, box [0,2]^2 -> (1,2), obj -5.
        cold = solve_lp(*self._args([-1, -2], [[1, 1]], [3], [0, 0], [2, 2]))
        assert cold.status == "optimal"
        assert cold.basis is not None
        # Child tightens y's upper bound (a B&B floor branch): the parent
        # basis stays dual-feasible and must be accepted.
        warm = solve_lp(
            *self._args([-1, -2], [[1, 1]], [3], [0, 0], [2, 1]),
            basis=cold.basis,
        )
        assert warm.status == "optimal"
        assert warm.warm_used
        assert warm.objective == pytest.approx(-4)  # (2, 1)
        # the whole point: a handful of pivots, not a fresh two-phase solve
        assert warm.pivots <= cold.pivots

    def test_warm_start_detects_child_infeasibility(self):
        cold = solve_lp(*self._args([1], [[-1]], [-2], [0], [10]))  # x >= 2
        assert cold.basis is not None
        warm = solve_lp(
            *self._args([1], [[-1]], [-2], [0], [1]), basis=cold.basis
        )
        assert warm.status == "infeasible"

    def test_invalid_basis_falls_back_to_cold(self):
        bogus = SimplexBasis(basic=(0, 1, 2), status=(2, 2))
        res = solve_lp(
            *self._args([-1, -2], [[1, 1]], [3], [0, 0], [2, 2]), basis=bogus
        )
        assert res.status == "optimal"
        assert not res.warm_used
        assert res.objective == pytest.approx(-5)

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_warm_equals_cold_on_random_children(self, data):
        a, b, c, ub = data.draw(random_lp())
        n = len(c)
        parent = solve_lp(*self._args(c, a, b, [0] * n, ub))
        assert parent.status == "optimal"
        if parent.basis is None:
            return
        j = data.draw(st.integers(0, n - 1))
        tight_ub = list(map(float, ub))
        tight_ub[j] = math.floor(parent.x[j] / 2.0)
        warm = solve_lp(
            *self._args(c, a, b, [0] * n, tight_ub), basis=parent.basis
        )
        cold = solve_lp(*self._args(c, a, b, [0] * n, tight_ub))
        assert warm.status == cold.status
        if cold.status == "optimal":
            assert warm.objective == pytest.approx(cold.objective, abs=1e-6)


class TestGeneralBounds:
    """The bounded-variable kernel handles lb != 0 and == rows natively."""

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(-3, 3), min_size=3, max_size=3),
            min_size=1,
            max_size=3,
        ),
        st.lists(st.integers(-4, 0), min_size=3, max_size=3),
        st.lists(st.integers(1, 5), min_size=3, max_size=3),
        st.lists(st.integers(-5, 5), min_size=3, max_size=3),
    )
    def test_negative_lower_bounds_match_highs(self, a, lb, width, c):
        ub = [l + w for l, w in zip(lb, width)]
        b = [10] * len(a)
        ours = _solve(c, a, b, lb=lb, ub=ub)
        ref = linprog(
            c,
            A_ub=np.array(a, dtype=float),
            b_ub=np.array(b, dtype=float),
            bounds=list(zip(lb, ub)),
            method="highs",
        )
        if ref.status == 2:
            assert ours.status == "infeasible"
        else:
            assert ref.status == 0
            assert ours.status == "optimal"
            assert ours.objective == pytest.approx(ref.fun, abs=1e-6)

    def test_equality_with_shifted_bounds(self):
        # min x+y st x+y == 3, x in [-1, 2], y in [0, 5]
        res = _solve(
            [1, 1], a_eq=[[1, 1]], b_eq=[3], lb=[-1, 0], ub=[2, 5]
        )
        assert res.status == "optimal"
        assert res.objective == pytest.approx(3)

    def test_pivot_count_reported(self):
        res = _solve([-1, -2], [[1, 1]], [3], ub=[2, 2])
        assert res.pivots > 0
        assert not res.warm_used


@st.composite
def random_lp(draw):
    n = draw(st.integers(1, 4))
    rows = draw(st.integers(1, 4))
    a = draw(
        st.lists(
            st.lists(st.integers(-3, 3), min_size=n, max_size=n),
            min_size=rows,
            max_size=rows,
        )
    )
    b = draw(st.lists(st.integers(0, 10), min_size=rows, max_size=rows))
    c = draw(st.lists(st.integers(-5, 5), min_size=n, max_size=n))
    ub = draw(st.lists(st.integers(1, 6), min_size=n, max_size=n))
    return a, b, c, ub


class TestAgainstScipy:
    @settings(max_examples=60, deadline=None)
    @given(random_lp())
    def test_matches_highs_on_random_bounded_lps(self, spec):
        a, b, c, ub = spec
        ours = _solve(c, a, b, ub=ub)
        ref = linprog(
            c,
            A_ub=np.array(a, dtype=float),
            b_ub=np.array(b, dtype=float),
            bounds=[(0, u) for u in ub],
            method="highs",
        )
        # b >= 0 and x >= 0 means x=0 is feasible: both must be optimal.
        assert ours.status == "optimal"
        assert ref.status == 0
        assert ours.objective == pytest.approx(ref.fun, abs=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(random_lp())
    def test_solution_is_feasible(self, spec):
        a, b, c, ub = spec
        res = _solve(c, a, b, ub=ub)
        assert res.status == "optimal"
        x = res.x
        a_mat = np.array(a, dtype=float)
        assert np.all(a_mat @ x <= np.array(b) + 1e-7)
        assert np.all(x >= -1e-9)
        assert np.all(x <= np.array(ub) + 1e-9)
