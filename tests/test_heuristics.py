"""Behavioral tests of the anytime heuristic portfolio (repro.heuristics)."""

import pytest

from repro.cfront.deps import DepKind
from repro.core.ilppar import build_ilppar_model
from repro.heuristics import (
    check_feasible,
    complete_solution,
    critical_path_bound,
    evaluate,
    fallback_assignment,
    heuristic_rng,
    list_schedule,
    relative_gap,
    solve_heuristic,
)
from repro.htg.nodes import HTGEdge
from repro.ilp.model import SolveStatus
from repro.platforms import Interconnect, Platform, ProcessorClass
from tests.test_ilppar import leaf, make_node, seed_sets, two_class_platform


def build(cycles, budget=4, chain_bytes=None, tco=1.0):
    """One ILPPAR instance over independent leaves (or a flow chain)."""
    platform = two_class_platform(tco=tco)
    children = [leaf(f"w{i}", c) for i, c in enumerate(cycles)]
    edges = None
    if chain_bytes is not None:
        edges = [
            HTGEdge(a, b, DepKind.FLOW, frozenset(), chain_bytes)
            for a, b in zip(children, children[1:])
        ]
    node = make_node(children, edges=edges)
    inst = build_ilppar_model(
        node, "slow", budget, platform, seed_sets(platform, children)
    )
    assert inst is not None
    return inst


SHAPES = [
    {"cycles": [40_000.0] * 3},
    {"cycles": [40_000.0] * 8},
    {"cycles": [5_000.0, 80_000.0, 5_000.0, 80_000.0]},
    {"cycles": [40_000.0] * 4, "chain_bytes": 2_000.0},
    {"cycles": [100.0] * 4, "tco": 100.0},  # spawning never pays off
    {"cycles": [400_000.0], "budget": 2},
]


class TestConstruction:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_list_schedule_is_feasible(self, shape):
        inst = build(**shape)
        a = list_schedule(inst)
        assert check_feasible(inst, a.task_of, a.class_map(), a.cand_of) is None

    @pytest.mark.parametrize("shape", SHAPES)
    def test_fallback_is_feasible(self, shape):
        inst = build(**shape)
        a = fallback_assignment(inst)
        assert check_feasible(inst, a.task_of, a.class_map(), a.cand_of) is None
        # the fallback is the all-sequential structure: everything on fork
        assert set(a.task_of) == {0}


class TestDependenceCycles:
    def test_cyclic_pair_solves_clean(self):
        # Jacobi-style double-buffer swap: the two children depend on
        # each other (order pairs both ways at child granularity). Any
        # structure splitting them across tasks is model-infeasible; the
        # heuristic must keep them together and stay certificate-clean.
        platform = two_class_platform()
        a, b = leaf("fwd", 40_000.0), leaf("bwd", 40_000.0)
        edges = [
            HTGEdge(a, b, DepKind.FLOW, frozenset(), 100.0),
            HTGEdge(b, a, DepKind.ANTI, frozenset(), 100.0),
        ]
        node = make_node([a, b], edges=edges)
        inst = build_ilppar_model(
            node, "slow", 4, platform, seed_sets(platform, [a, b])
        )
        assert inst is not None
        assert (1, 0) in inst.ctx.order_pairs  # the backward pair exists
        heur = solve_heuristic(inst, seed=0, budget=8)
        assert inst.model.check(heur.solution) == []
        ta, tb = heur.assignment.task_of
        assert ta == tb  # the cycle stays on one task

    def test_split_cycle_rejected(self):
        platform = two_class_platform()
        a, b = leaf("fwd", 40_000.0), leaf("bwd", 40_000.0)
        edges = [
            HTGEdge(a, b, DepKind.FLOW, frozenset(), 100.0),
            HTGEdge(b, a, DepKind.ANTI, frozenset(), 100.0),
        ]
        node = make_node([a, b], edges=edges)
        inst = build_ilppar_model(
            node, "slow", 4, platform, seed_sets(platform, [a, b])
        )
        base = fallback_assignment(inst)
        split = (0, 1)  # b spawned away from a: forces pred both ways
        reason = check_feasible(
            inst, split, {1: "fast"}, base.cand_of
        )
        assert reason is not None and "cycle" in reason


class TestCertificates:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_completion_is_certificate_clean(self, shape):
        # complete_solution must price *every* model variable so the
        # exact certificate replay (Model.check over Eq. 1-18) accepts
        # the heuristic answer with zero violations.
        inst = build(**shape)
        for a in (fallback_assignment(inst), list_schedule(inst)):
            solution = complete_solution(inst, a)
            assert solution.status is SolveStatus.FEASIBLE
            assert inst.model.check(solution) == []

    @pytest.mark.parametrize("shape", SHAPES)
    def test_objective_matches_closed_form(self, shape):
        inst = build(**shape)
        a = list_schedule(inst)
        solution = complete_solution(inst, a)
        closed = evaluate(inst, a.task_of, a.class_map(), a.cand_of)
        assert solution.objective == pytest.approx(closed)


class TestQuality:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_heuristic_matches_exact_on_small_instances(self, shape):
        inst = build(**shape)
        exact = inst.model.solve(backend="bnb")
        heur = solve_heuristic(inst, seed=0, budget=12)
        assert heur.objective >= exact.objective - 1e-6  # never "better"
        assert heur.objective == pytest.approx(exact.objective, rel=1e-6)

    @pytest.mark.parametrize("shape", SHAPES)
    def test_lower_bound_is_valid(self, shape):
        inst = build(**shape)
        exact = inst.model.solve(backend="bnb")
        assert critical_path_bound(inst) <= exact.objective + 1e-6
        heur = solve_heuristic(inst, seed=0, budget=4)
        assert heur.lower_bound is not None
        assert heur.lower_bound <= exact.objective + 1e-6
        assert heur.gap is not None and heur.gap >= 0.0

    def test_polish_escapes_saturated_slot_plateau(self):
        # Regression: 8 identical children, all extra slots occupied,
        # fork idle and one extra overloaded. The improving edit needs a
        # cost-neutral enabler first (fold a run into the fork to free a
        # slot, then split the overloaded run), which random mutation
        # reliably misses — the plateau-tolerant polish must find it.
        # Mirrors mult_10's chunked node under config B, where this
        # structure cost 26% before the polish existed.
        platform = Platform(
            "plateau",
            (
                ProcessorClass("slow", 100.0, 2),
                ProcessorClass("fast", 250.0, 2),
            ),
            interconnect=Interconnect(
                bandwidth_bytes_per_us=1000.0, latency_us=0.5
            ),
            task_creation_overhead_us=25.0,
            main_class_name="slow",
        )
        children = [leaf(f"w{i}", 40_000.0) for i in range(8)]
        node = make_node(children)
        inst = build_ilppar_model(
            node, "slow", 4, platform, seed_sets(platform, children)
        )
        assert inst is not None
        exact = inst.model.solve(backend="bnb")
        heur = solve_heuristic(inst, seed=0, budget=40)
        assert heur.objective == pytest.approx(exact.objective, rel=1e-6)
        # The optimum needs the fork segment working, not idle.
        assert heur.assignment.task_of[0] == 0

    def test_budget_zero_skips_refinement(self):
        inst = build([40_000.0] * 4)
        heur = solve_heuristic(inst, seed=0, budget=0)
        assert inst.model.check(heur.solution) == []
        ls = list_schedule(inst)
        assert heur.objective <= evaluate(
            inst, ls.task_of, ls.class_map(), ls.cand_of
        ) + 1e-9


class TestDeterminism:
    def test_same_seed_same_answer(self):
        inst = build([5_000.0, 80_000.0, 5_000.0, 80_000.0, 30_000.0])
        a = solve_heuristic(inst, seed=11, budget=20)
        b = solve_heuristic(inst, seed=11, budget=20)
        assert a.assignment == b.assignment
        assert a.vector == b.vector
        assert a.objective == b.objective

    def test_rng_keyed_by_model_name_not_call_order(self):
        # The stream for a model must not depend on what was solved
        # before it — that is what makes --jobs/--batch-size invisible.
        first = heuristic_rng(3, "node7:slow:4").random()
        heuristic_rng(3, "other").random()
        again = heuristic_rng(3, "node7:slow:4").random()
        assert first == again


class TestGap:
    def test_relative_gap_edge_cases(self):
        assert relative_gap(10.0, None) is None
        assert relative_gap(10.0, 10.0) == 0.0
        assert relative_gap(10.0, 12.0) == 0.0  # bound above: clamp, not negative
        assert relative_gap(10.0, 5.0) == pytest.approx(0.5)
        assert relative_gap(0.0, 0.0) == 0.0
