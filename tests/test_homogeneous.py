"""Tests for the homogeneous baseline ILP [6]."""

import pytest

from repro.cfront.defuse import DefUse
from repro.cfront.deps import DepKind
from repro.core.homogeneous import homogeneous_parallelize_node
from repro.core.solution import SolutionCandidate, SolutionSet
from repro.htg.nodes import HierarchicalNode, HTGEdge, SimpleNode
from repro.platforms import homogeneous, config_a

from tests.test_ilppar import leaf, make_node


def seed_ref_sets(platform, children, ref):
    sets = {}
    pc = platform.get_class(ref)
    for child in children:
        sset = SolutionSet()
        sset.add(
            SolutionCandidate(
                node=child,
                main_class=ref,
                exec_time_us=pc.time_us(child.total_cycles()),
                is_sequential=True,
            )
        )
        sets[child.uid] = sset
    return sets


class TestHomogeneousIlp:
    def test_uniform_split(self):
        platform = homogeneous(4, 100.0, task_creation_overhead_us=1.0)
        children = [leaf(f"w{i}", 10_000.0) for i in range(4)]
        node = make_node(children)
        cand = homogeneous_parallelize_node(
            node, 4, platform, seed_ref_sets(platform, children, "core")
        )
        assert cand is not None
        # 4 x 100us of work on 4 cores: near 100us + overheads
        assert cand.exec_time_us < 4 * 100.0
        assert cand.num_tasks >= 3

    def test_all_tasks_tagged_ref_class(self):
        platform = config_a("accelerator")
        children = [leaf(f"w{i}", 40_000.0) for i in range(4)]
        node = make_node(children)
        cand = homogeneous_parallelize_node(
            node, 4, platform, seed_ref_sets(platform, children, "arm100"),
            ref_class="arm100",
        )
        assert cand is not None
        assert cand.main_class == "arm100"
        for segment in cand.segments:
            assert segment.proc_class == "arm100"

    def test_dependence_respected(self):
        platform = homogeneous(4, 100.0, task_creation_overhead_us=1.0)
        a = leaf("a", 10_000.0)
        b = leaf("b", 10_000.0)
        node = make_node([a, b])
        node.edges.insert(0, HTGEdge(a, b, DepKind.FLOW, frozenset({"v"}), 4.0))
        cand = homogeneous_parallelize_node(
            node, 4, platform, seed_ref_sets(platform, [a, b], "core")
        )
        assert cand is not None
        # chained work cannot beat the sum of both costs
        assert cand.exec_time_us >= 200.0 - 1e-6

    def test_budget_respected(self):
        platform = homogeneous(4, 100.0, task_creation_overhead_us=1.0)
        children = [leaf(f"w{i}", 10_000.0) for i in range(6)]
        node = make_node(children)
        cand = homogeneous_parallelize_node(
            node, 2, platform, seed_ref_sets(platform, children, "core")
        )
        assert cand is not None
        assert cand.total_procs <= 2

    def test_none_without_budget(self):
        platform = homogeneous(4, 100.0)
        children = [leaf("a", 1000.0)]
        node = make_node(children)
        assert (
            homogeneous_parallelize_node(
                node, 1, platform, seed_ref_sets(platform, children, "core")
            )
            is None
        )

    def test_smaller_than_hetero_model(self):
        """The homogeneous formulation builds smaller ILPs (Table I)."""
        from repro.core.ilppar import ilp_parallelize_node
        from repro.ilp.stats import StatsCollector
        from tests.test_ilppar import seed_sets

        platform = config_a("accelerator")
        children = [leaf(f"w{i}", 40_000.0) for i in range(4)]
        node = make_node(children)

        homo_stats = StatsCollector()
        homogeneous_parallelize_node(
            node, 4, platform, seed_ref_sets(platform, children, "arm100"),
            collector=homo_stats,
        )
        het_stats = StatsCollector()
        ilp_parallelize_node(
            node, "arm100", 4, platform, seed_sets(platform, children),
            collector=het_stats,
        )
        assert het_stats.total_variables > homo_stats.total_variables
        assert het_stats.total_constraints > homo_stats.total_constraints
