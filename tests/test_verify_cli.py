"""Tests of the ``repro verify`` subcommand and the certifier entry point."""

from __future__ import annotations

import json

import pytest

from repro.analysis import certify_run
from repro.analysis.diagnostics import ANALYSES, REPORT_SCHEMA
from repro.toolflow.cli import main
from repro.toolflow.verify import (
    resolve_verify_benchmarks,
    resolve_verify_platforms,
    run_verify,
)


class TestNameResolution:
    def test_unknown_benchmark_is_a_clear_error(self):
        with pytest.raises(SystemExit) as excinfo:
            resolve_verify_benchmarks("fir_256,no_such_kernel")
        assert "no_such_kernel" in str(excinfo.value)
        assert "choose from" in str(excinfo.value)

    def test_unknown_platform_is_a_clear_error(self):
        with pytest.raises(SystemExit) as excinfo:
            resolve_verify_platforms("config-z")
        assert "config-z" in str(excinfo.value)

    def test_known_names_resolve(self):
        assert resolve_verify_benchmarks("fir_256") == ["fir_256"]
        assert resolve_verify_benchmarks(None)  # all ten
        assert len(resolve_verify_platforms("both")) == 2

    def test_cli_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", "--benchmarks", "no_such_kernel"])
        assert "no_such_kernel" in str(excinfo.value)

    def test_cli_rejects_unknown_benchmark_in_table1(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "--benchmarks", "no_such_kernel"])
        assert "no_such_kernel" in str(excinfo.value)


class TestCertifyRun:
    def test_report_shape(self, fir_hetero_result):
        report = certify_run(fir_hetero_result)
        assert report.ok
        assert set(report.timings_s) == set(ANALYSES)
        payload = report.to_dict()
        assert payload["schema"] == REPORT_SCHEMA
        assert payload["ok"] is True
        assert payload["num_diagnostics"] == 0
        json.loads(report.to_json())  # serializable

    def test_homogeneous_result_certifies(self, fir_homo_result):
        assert certify_run(fir_homo_result).ok


class TestVerifyEndToEnd:
    def test_single_cell_suite(self):
        suite = run_verify(
            benchmarks=["fir_256"],
            platforms=resolve_verify_platforms("config-a"),
            backends=["scipy"],
        )
        assert suite.ok
        assert len(suite.cells) == 1
        payload = suite.to_dict()
        assert payload["ok"] is True
        assert payload["cells"][0]["benchmark"] == "fir_256"
        assert payload["cells"][0]["report"]["num_diagnostics"] == 0

    def test_cli_json_output(self, tmp_path, capsys):
        out = tmp_path / "verify.json"
        code = main(
            [
                "verify",
                "--benchmarks", "fir_256",
                "--platform", "config-a",
                "--backend", "scipy",
                "--format", "json",
                "--out", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert json.loads(out.read_text()) == payload
