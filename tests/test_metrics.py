"""Tests for AHTG parallelism metrics and speedup bounds."""

import pytest

from repro.cfront.defuse import DefUse
from repro.cfront.deps import DepKind
from repro.htg.metrics import analyze_parallelism, critical_path_cycles, render_report
from repro.htg.nodes import HTGEdge
from repro.platforms import config_a

from tests.conftest import prepare, SMALL_FIR, SMALL_SERIAL
from tests.test_ilppar import leaf, make_node


class TestCriticalPath:
    def test_leaf_is_own_cost(self):
        assert critical_path_cycles(leaf("x", 500.0)) == 500.0

    def test_independent_children_max(self):
        node = make_node([leaf("a", 100.0), leaf("b", 300.0)])
        assert critical_path_cycles(node) == 300.0

    def test_chain_adds(self):
        a, b = leaf("a", 100.0), leaf("b", 300.0)
        node = make_node([a, b])
        node.edges.insert(0, HTGEdge(a, b, DepKind.FLOW, frozenset({"v"}), 0.0))
        assert critical_path_cycles(node) == 400.0

    def test_diamond(self):
        a, b, c, d = (leaf(x, 100.0) for x in "abcd")
        node = make_node([a, b, c, d])
        for src, dst in [(a, b), (a, c), (b, d), (c, d)]:
            node.edges.insert(0, HTGEdge(src, dst, DepKind.FLOW, frozenset({"v"}), 0.0))
        assert critical_path_cycles(node) == 300.0  # a -> b|c -> d

    def test_backward_edge_serializes(self):
        a, b = leaf("a", 100.0), leaf("b", 300.0)
        node = make_node([a, b])
        node.edges.insert(
            0, HTGEdge(b, a, DepKind.FLOW, frozenset({"v"}), 0.0, backward=True)
        )
        assert critical_path_cycles(node) == 400.0


class TestAnalyze:
    def test_parallel_program_high_parallelism(self, small_fir):
        _, _, htg = small_fir
        report = analyze_parallelism(htg)
        assert report.available_parallelism > 3.0
        assert report.chunked_loops >= 1
        assert report.total_cycles >= report.critical_path_cycles

    def test_serial_program_low_parallelism(self, small_serial):
        _, _, htg = small_serial
        report = analyze_parallelism(htg)
        assert report.available_parallelism < 1.5
        assert report.chunked_loops == 0

    def test_render(self, small_fir, platform_a_acc):
        _, _, htg = small_fir
        text = render_report(analyze_parallelism(htg), platform_a_acc)
        assert "critical path" in text
        assert "speedup bound" in text


class TestBoundsHold:
    def test_ilp_speedup_below_structural_bound(
        self, small_fir, fir_hetero_result, platform_a_acc
    ):
        _, _, htg = small_fir
        report = analyze_parallelism(htg)
        bound = report.bounded_speedup(platform_a_acc)
        assert fir_hetero_result.estimated_speedup <= bound + 1e-6

    def test_serial_program_bound_is_clock_ratio(
        self, small_serial, platform_a_acc
    ):
        _, _, htg = small_serial
        report = analyze_parallelism(htg)
        bound = report.bounded_speedup(platform_a_acc)
        # nearly-serial program: bound ≈ parallelism * (500/100) < limit
        assert bound < platform_a_acc.theoretical_speedup()

    @pytest.mark.parametrize("bench", ["fir_256", "latnrm_32", "iir_4"])
    def test_benchmark_bounds(self, bench):
        from repro.toolflow.experiments import prepare_benchmark, run_benchmark

        platform = config_a("accelerator")
        _, htg = prepare_benchmark(bench)
        report = analyze_parallelism(htg)
        run = run_benchmark(bench, platform, "heterogeneous")
        assert run.estimated_speedup <= report.bounded_speedup(platform) + 1e-6
