"""Property-based and unit tests for loop chunk planning."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfront import parse_c_source
from repro.cfront import ir
from repro.cfront.defuse import compute_call_summaries
from repro.cfront.deps import classify_loop
from repro.htg.chunking import make_chunk_nodes, plan_chunks
from repro.htg.graph import SymbolInfo
from repro.timing.estimator import annotate_costs


class TestPlanChunks:
    @given(st.integers(1, 10_000), st.integers(1, 64))
    @settings(max_examples=200, deadline=None)
    def test_ranges_partition_iteration_space(self, trips, num_chunks):
        plan = plan_chunks(trips, num_chunks)
        assert plan.total_trips == trips
        assert plan.ranges[0][0] == 0
        assert plan.ranges[-1][1] == trips
        for (l0, h0), (l1, _h1) in zip(plan.ranges, plan.ranges[1:]):
            assert h0 == l1
            assert h0 > l0

    @given(st.integers(1, 10_000), st.integers(1, 64))
    @settings(max_examples=200, deadline=None)
    def test_near_equal_sizes(self, trips, num_chunks):
        plan = plan_chunks(trips, num_chunks)
        sizes = [hi - lo for lo, hi in plan.ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_trips_clamped(self):
        plan = plan_chunks(3, 16)
        assert plan.num_chunks == 3

    def test_exact_division(self):
        plan = plan_chunks(64, 8)
        assert all(hi - lo == 8 for lo, hi in plan.ranges)


class TestMakeChunkNodes:
    SRC = """
    float x[64]; float y[64];
    float total;
    void main(void) {
        int i;
        for (i = 0; i < 64; i++) { x[i] = i * 1.0f; }
        total = 0.0f;
        for (i = 0; i < 64; i++) { total = total + x[i]; }
    }
    """

    def _setup(self, loop_index: int):
        program = parse_c_source(self.SRC)
        func = program.entry("main")
        summaries = compute_call_summaries(program)
        cost_db = annotate_costs(program, func)
        loops = [s for s in func.body.stmts if isinstance(s, ir.ForLoop)]
        loop = loops[loop_index]
        cls = classify_loop(loop, summaries)
        symbols = {
            name: SymbolInfo(name, d.ctype, d.dims)
            for name, d in program.globals.items()
        }
        return loop, cls, cost_db, symbols

    def test_parallel_loop_chunks(self):
        loop, cls, cost_db, symbols = self._setup(0)
        chunks, in_b, out_b = make_chunk_nodes(
            loop, cls, 64, cost_db, symbols, 8, loop_exec_count=1.0
        )
        assert len(chunks) == 8
        assert sum(c.cycles for c in chunks) == pytest.approx(
            cost_db.subtree_cycles(loop)
        )
        assert all(c.trips == 8 for c in chunks)
        # x is written: out bytes must be positive and proportional
        assert all(b > 0 for b in out_b)
        assert out_b[0] == pytest.approx(out_b[-1])

    def test_reduction_chunks_carry_partial_results(self):
        loop, cls, cost_db, symbols = self._setup(1)
        assert cls.reduction_vars == ("total",)
        chunks, _in_b, out_b = make_chunk_nodes(
            loop, cls, 64, cost_db, symbols, 4, loop_exec_count=1.0
        )
        assert all(c.reduction_vars == ("total",) for c in chunks)
        # each chunk ships at least the partial scalar
        assert all(b >= 4 for b in out_b)

    def test_reads_show_in_in_bytes(self):
        loop, cls, cost_db, symbols = self._setup(1)
        chunks, in_b, _ = make_chunk_nodes(
            loop, cls, 64, cost_db, symbols, 4, loop_exec_count=1.0
        )
        # the reduction loop reads x: in-bytes must cover a share of it
        assert sum(in_b) >= 64 * 4 * 0.9

    def test_chunk_defuse_includes_loop_var(self):
        loop, cls, cost_db, symbols = self._setup(0)
        chunks, _, _ = make_chunk_nodes(
            loop, cls, 64, cost_db, symbols, 4, loop_exec_count=1.0
        )
        assert all("i" in c.defuse.scalar_uses for c in chunks)
