"""Tests for IR node mechanics not covered elsewhere."""

import pytest

from repro.cfront import ir, parse_c_source


class TestExprNodes:
    def test_walk_covers_subtree(self):
        expr = ir.BinOp(
            "+",
            ir.ArrayRef("a", (ir.VarRef("i"),)),
            ir.UnOp("-", ir.Const(3)),
        )
        kinds = [type(node).__name__ for node in expr.walk()]
        assert kinds == ["BinOp", "ArrayRef", "VarRef", "UnOp", "Const"]

    def test_str_rendering(self):
        expr = ir.BinOp("*", ir.VarRef("x"), ir.Const(2))
        assert str(expr) == "(x * 2)"
        assert str(ir.ArrayRef("m", (ir.Const(1), ir.Const(2)))) == "m[1][2]"
        assert str(ir.Cast("int", ir.VarRef("f"))) == "((int)f)"
        assert str(ir.CallExpr("sqrt", (ir.Const(4),))) == "sqrt(4)"

    def test_const_equality(self):
        assert ir.Const(1) == ir.Const(1)
        assert ir.Const(1) != ir.Const(2)


class TestStmtNodes:
    def test_expressions_of_each_kind(self):
        program = parse_c_source(
            """
            float x[4];
            int g(int n) {
                int i;
                float s;
                s = 0.0f;
                for (i = 0; i < n; i++) { s = s + x[i]; }
                if (s > 1.0f) { s = 1.0f; }
                while (s > 0.5f) { s = s - 0.1f; }
                return n;
            }
            """
        )
        func = program.entry("g")
        for stmt in func.body.walk():
            exprs = stmt.expressions()
            for expr in exprs:
                assert expr is None or isinstance(expr, ir.Expr)

    def test_is_hierarchical(self):
        program = parse_c_source(
            "void f(void) { int i; for (i = 0; i < 2; i++) { i = i; } }"
        )
        stmts = program.entry("f").body.stmts
        loop = next(s for s in stmts if isinstance(s, ir.ForLoop))
        assert loop.is_hierarchical()
        assert not loop.body.stmts[0].is_hierarchical()

    def test_for_loop_negative_step_rejected(self):
        with pytest.raises(ir.UnsupportedCError):
            ir.ForLoop("i", ir.Const(0), ir.Const(4), 0, ir.Block([]))

    def test_repr_smoke(self):
        program = parse_c_source(
            "float x[2];\nvoid f(void) { int a = 1; x[0] = a; return; }"
        )
        for stmt in program.entry("f").body.walk():
            assert repr(stmt)


class TestSizeof:
    @pytest.mark.parametrize(
        "ctype,size",
        [("char", 1), ("short", 2), ("int", 4), ("long", 8),
         ("float", 4), ("double", 8), ("void", 0)],
    )
    def test_known_types(self, ctype, size):
        assert ir.sizeof(ctype) == size

    def test_unknown_defaults_to_four(self):
        assert ir.sizeof("mystruct") == 4


class TestProgram:
    def test_array_decl_lookup_global(self):
        program = parse_c_source("float g[8];\nvoid f(void) { }")
        decl = program.array_decl("g")
        assert decl is not None and decl.dims == (8,)

    def test_array_decl_lookup_local_scope(self):
        program = parse_c_source("void f(void) { float t[4]; t[0] = 1.0f; }")
        func = program.entry("f")
        decl = program.array_decl("t", scope=func)
        assert decl is not None and decl.dims == (4,)
        assert program.array_decl("t") is None  # not global

    def test_function_walk_statements(self):
        program = parse_c_source(
            "void f(void) { int a; a = 1; if (a) { a = 2; } }"
        )
        count = sum(1 for _ in program.entry("f").walk_statements())
        assert count >= 4  # body block, decl, assign, if, inner block, assign
