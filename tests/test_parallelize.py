"""Tests for the global bottom-up Algorithm 1."""

import pytest

from repro.core.parallelize import (
    HeterogeneousParallelizer,
    HomogeneousParallelizer,
    ParallelizeOptions,
)
from repro.htg.nodes import HierarchicalNode

from tests.conftest import prepare, SMALL_FIR, SMALL_SERIAL


class TestHeterogeneous:
    def test_best_solution_on_main_class(self, fir_hetero_result, platform_a_acc):
        assert fir_hetero_result.best.main_class == platform_a_acc.main_class.name

    def test_solution_sets_cover_every_node(self, fir_hetero_result):
        htg = fir_hetero_result.htg
        for node in htg.walk():
            assert node.uid in fir_hetero_result.solution_sets

    def test_sequential_candidate_per_class(self, fir_hetero_result, platform_a_acc):
        htg = fir_hetero_result.htg
        for node in htg.walk():
            sset = fir_hetero_result.solution_sets[node.uid]
            for pc in platform_a_acc.processor_classes:
                assert sset.sequential_for_class(pc.name) is not None

    def test_estimated_speedup_above_one(self, fir_hetero_result):
        assert fir_hetero_result.estimated_speedup > 1.5

    def test_estimate_not_above_theoretical_limit(
        self, fir_hetero_result, platform_a_acc
    ):
        assert (
            fir_hetero_result.estimated_speedup
            <= platform_a_acc.theoretical_speedup() + 1e-6
        )

    def test_stats_populated(self, fir_hetero_result):
        stats = fir_hetero_result.stats
        assert stats.num_ilps > 0
        assert stats.total_variables > 0
        assert stats.total_constraints > 0
        assert stats.total_solve_seconds > 0

    def test_serial_program_offloaded(self, small_serial, platform_a_acc):
        _, _, htg = small_serial
        result = HeterogeneousParallelizer(platform_a_acc).parallelize(htg)
        # the recurrence cannot be split, but it can run on a faster core:
        # speedup strictly above 1, bounded by the 5x clock ratio
        assert 1.0 < result.estimated_speedup <= 5.0

    def test_min_parallelize_threshold_prunes_ilps(self, small_fir, platform_a_acc):
        _, _, htg = small_fir
        cheap = HeterogeneousParallelizer(
            platform_a_acc,
            ParallelizeOptions(min_parallelize_us=10_000_000.0),
        ).parallelize(htg)
        assert cheap.stats.num_ilps == 0
        assert cheap.best.is_sequential


class TestHomogeneous:
    def test_best_is_ref_class(self, fir_homo_result, platform_a_acc):
        assert fir_homo_result.best.main_class == platform_a_acc.main_class.name

    def test_fewer_ilps_than_hetero(self, fir_homo_result, fir_hetero_result):
        assert fir_homo_result.stats.num_ilps < fir_hetero_result.stats.num_ilps

    def test_fewer_variables_than_hetero(self, fir_homo_result, fir_hetero_result):
        assert (
            fir_homo_result.stats.total_variables
            < fir_hetero_result.stats.total_variables
        )

    def test_homo_estimate_assumes_uniform_cores(
        self, fir_homo_result, platform_a_acc
    ):
        # the homogeneous tool believes all 4 cores run at the main clock:
        # its own estimate is bounded by 4x
        assert fir_homo_result.estimated_speedup <= 4.0 + 1e-6


class TestSolutionSetsQuality:
    def test_parallel_candidates_exist_for_chunked_loop(
        self, fir_hetero_result, platform_a_acc
    ):
        htg = fir_hetero_result.htg
        # the dominant (most expensive) chunked loop must have profitable
        # parallel candidates; tiny chunked loops may legitimately keep
        # only sequential ones (spawn overhead dominates)
        chunked = max(
            (
                n
                for n in htg.walk()
                if isinstance(n, HierarchicalNode) and n.construct == "loop-chunked"
            ),
            key=lambda n: n.total_cycles(),
        )
        sset = fir_hetero_result.solution_sets[chunked.uid]
        assert any(not c.is_sequential for c in sset.all())

    def test_candidates_respect_platform_capacity(
        self, fir_hetero_result, platform_a_acc
    ):
        for sset in fir_hetero_result.solution_sets.values():
            for cand in sset.all():
                for pc in platform_a_acc.processor_classes:
                    own = 1 if cand.main_class == pc.name else 0
                    assert cand.used_procs_of(pc.name) + own <= pc.count
                assert cand.total_procs <= platform_a_acc.total_cores
