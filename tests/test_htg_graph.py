"""Tests for the HTG container, symbol table and flat-graph helpers."""

import pytest

from repro.core.flatten import AtomicTask, FlatEdge, FlatTaskGraph
from repro.htg.graph import HTG, SymbolInfo
from repro.htg.nodes import HierarchicalNode

from tests.conftest import prepare


class TestSymbolInfo:
    def test_scalar(self):
        info = SymbolInfo("a", "float")
        assert not info.is_array
        assert info.element_bytes == 4
        assert info.total_bytes == 4

    def test_array(self):
        info = SymbolInfo("m", "double", (4, 8))
        assert info.is_array
        assert info.element_bytes == 8
        assert info.total_bytes == 4 * 8 * 8

    def test_char_array(self):
        info = SymbolInfo("s", "char", (100,))
        assert info.total_bytes == 100

    def test_unknown_type_defaults(self):
        info = SymbolInfo("x", "mystery")
        assert info.element_bytes == 4


class TestHtgSymbols:
    def test_globals_in_symbol_table(self, small_fir):
        _, _, htg = small_fir
        assert "x" in htg.symbols and htg.symbols["x"].is_array
        assert htg.symbols["h"].dims == (64,)

    def test_locals_in_symbol_table(self):
        _, _, htg = prepare(
            "void main(void) { float t[8]; int i;"
            " for (i = 0; i < 8; i++) { t[i] = i; } }"
        )
        assert "t" in htg.symbols
        assert htg.symbols["t"].dims == (8,)


class TestHtgQueries:
    def test_walk_includes_root(self, small_fir):
        _, _, htg = small_fir
        nodes = list(htg.walk())
        assert nodes[0] is htg.root

    def test_depth_positive(self, small_fir):
        _, _, htg = small_fir
        assert htg.depth >= 2

    def test_pretty_max_depth_limits(self, small_fir):
        _, _, htg = small_fir
        shallow = htg.pretty(max_depth=0)
        deep = htg.pretty(max_depth=10)
        assert len(shallow.splitlines()) < len(deep.splitlines())

    def test_comm_edge_queries(self, small_fir):
        _, _, htg = small_fir
        root = htg.root
        assert len(root.out_edges()) == len(root.children)
        for child in root.children:
            assert root.out_bytes(child) >= 0.0
            assert root.in_bytes(child) >= 0.0


class TestFlatGraphHelpers:
    def _graph(self):
        tasks = [
            AtomicTask(0, "entry", 0.0, None),
            AtomicTask(1, "w", 100.0, None),
            AtomicTask(2, "exit", 0.0, None),
        ]
        edges = [FlatEdge(0, 1, 64.0), FlatEdge(1, 2)]
        return FlatTaskGraph(tasks=tasks, edges=edges, entry=0, exit=2)

    def test_successors_predecessors(self):
        graph = self._graph()
        assert [e.dst for e in graph.successors(0)] == [1]
        assert [e.src for e in graph.predecessors(2)] == [1]

    def test_num_work_tasks(self):
        assert self._graph().num_work_tasks == 1

    def test_total_cycles(self):
        assert self._graph().total_cycles() == 100.0

    def test_validate_dangling_edge(self):
        graph = self._graph()
        graph.edges.append(FlatEdge(0, 99))
        assert any("dangling" in p for p in graph.validate())

    def test_validate_bad_entry(self):
        graph = self._graph()
        graph.entry = 42
        assert any("entry/exit" in p for p in graph.validate())

    def test_marker_property(self):
        graph = self._graph()
        assert graph.tasks[0].is_marker
        assert not graph.tasks[1].is_marker
