"""Tests for ILP presolve and timing-model calibration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cfront import parse_c_source
from repro.ilp import Model, lin_sum
from repro.ilp.presolve import presolve
from repro.timing.calibration import (
    CalibrationSample,
    PARAMETERS,
    calibrate,
    operation_counts,
    samples_from_profile,
)
from repro.timing.costmodel import CostModel, OperationCosts


class TestPresolve:
    def test_singleton_row_tightens_bound(self):
        # x0 <= 3 with ub=10
        result = presolve(
            np.array([[1.0, 0.0]]), np.array([3.0]),
            np.zeros(2), np.array([10.0, 10.0]), np.zeros(2),
        )
        assert result.status == "reduced"
        assert result.ub[0] == pytest.approx(3.0)
        assert result.ub[1] == pytest.approx(10.0)

    def test_integer_rounding(self):
        result = presolve(
            np.array([[2.0]]), np.array([5.0]),
            np.zeros(1), np.array([10.0]), np.array([1]),
        )
        assert result.ub[0] == pytest.approx(2.0)  # floor(2.5)

    def test_infeasible_detected(self):
        # x >= 4 (as -x <= -4) with ub = 2
        result = presolve(
            np.array([[-1.0]]), np.array([-4.0]),
            np.zeros(1), np.array([2.0]), np.zeros(1),
        )
        assert result.status == "infeasible"

    def test_constant_row_infeasible(self):
        result = presolve(
            np.zeros((1, 1)), np.array([-1.0]),
            np.zeros(1), np.array([1.0]), np.zeros(1),
        )
        assert result.status == "infeasible"

    def test_fixed_variables_reported(self):
        result = presolve(
            np.array([[1.0]]), np.array([0.0]),
            np.zeros(1), np.array([5.0]), np.zeros(1),
        )
        assert result.fixed == {0: 0.0}

    def test_propagation_chain(self):
        # x + y <= 2, binary-ish bounds: both get tightened to <= 2
        result = presolve(
            np.array([[1.0, 1.0]]), np.array([2.0]),
            np.zeros(2), np.array([10.0, 10.0]), np.zeros(2),
        )
        assert result.ub[0] <= 2.0 + 1e-9
        assert result.ub[1] <= 2.0 + 1e-9

    def test_empty_constraint_matrix(self):
        result = presolve(
            np.zeros((0, 3)), np.zeros(0),
            np.zeros(3), np.array([1.0, 2.0, 3.0]), np.zeros(3),
        )
        assert result.status == "reduced"
        assert result.ub == pytest.approx([1.0, 2.0, 3.0])
        assert result.fixed == {}

    def test_ordering_chain_propagates_upper_bounds(self):
        # x0 <= x1 <= x2 (prefix rows a la ILPPAR used_order) and x2 <= 0:
        # the whole chain collapses to 0 without any branching.
        a = np.array([
            [1.0, -1.0, 0.0],
            [0.0, 1.0, -1.0],
            [0.0, 0.0, 1.0],
        ])
        b = np.array([0.0, 0.0, 0.0])
        result = presolve(a, b, np.zeros(3), np.ones(3), np.ones(3))
        assert result.status == "reduced"
        assert result.fixed == {0: 0.0, 1: 0.0, 2: 0.0}
        assert result.implied_fixings >= 2

    def test_ordering_chain_propagates_lower_bounds(self):
        # x0 <= x1 with x0 fixed to 1 forces x1 = 1.
        a = np.array([[1.0, -1.0], [-1.0, 0.0]])
        b = np.array([0.0, -1.0])  # second row: x0 >= 1
        result = presolve(a, b, np.zeros(2), np.ones(2), np.ones(2))
        assert result.status == "reduced"
        assert result.fixed == {0: 1.0, 1: 1.0}
        assert result.implied_fixings >= 1

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(-3, 3), min_size=3, max_size=3),
            min_size=1,
            max_size=3,
        ),
        st.lists(st.integers(0, 6), min_size=3, max_size=3),
    )
    def test_presolve_preserves_optimum(self, rows, ubs):
        """The presolved box must contain every optimal solution."""
        rhs = [4] * len(rows)
        m = Model("p")
        xs = [m.add_var(f"x{i}", 0, ubs[i], integer=True) for i in range(3)]
        for row in rows:
            m.add_constraint(lin_sum(a * x for a, x in zip(row, xs)) <= 4)
        m.maximize(lin_sum(xs))
        a = m.solve(backend="scipy")

        form = m.to_matrix_form()
        from repro.ilp.model import MatrixForm

        dense = np.zeros((len(form.rows_ub), 3))
        b = np.zeros(len(form.rows_ub))
        for i, (row, r) in enumerate(form.rows_ub):
            b[i] = r
            for j, c in row.items():
                dense[i, j] = c
        result = presolve(dense, b, form.lb, form.ub, form.integrality)
        assert result.status == "reduced"
        # the known optimum stays inside the tightened box
        for j, x in enumerate(xs):
            assert result.lb[j] - 1e-9 <= a[x] <= result.ub[j] + 1e-9


class TestOperationCounts:
    def _stmt(self, body, prelude="float fx[8]; int ix[8];"):
        program = parse_c_source(f"{prelude}\nvoid f(void) {{ {body} }}")
        return program.entry("f").body.stmts[-1], program

    def test_counts_match_cost_model(self):
        """Feature counts dotted with the cost table must equal the cost
        model's direct statement cost — the linearity the fit relies on."""
        for body in [
            "fx[0] = fx[1] * fx[2] + 3.0f;",
            "ix[0] = ix[1] / (ix[2] + 1);",
            "fx[3] = sqrt(fx[1]);",
        ]:
            stmt, program = self._stmt(body)
            model = CostModel.for_function(program, program.entry("f"))
            counts = operation_counts(stmt, model.type_env)
            dotted = sum(
                counts[name] * getattr(model.costs, name) for name in PARAMETERS
            )
            assert dotted == pytest.approx(model.stmt_cycles(stmt))

    def test_float_vs_int_ops_distinguished(self):
        stmt_f, prog_f = self._stmt("fx[0] = fx[1] * fx[2];")
        model = CostModel.for_function(prog_f, prog_f.entry("f"))
        counts = operation_counts(stmt_f, model.type_env)
        assert counts["float_mul"] == 1
        assert counts["int_mul"] == 0


class TestCalibration:
    SRC = """
    float x[64]; float y[64]; float z[64];
    void main(void) {
        int i;
        for (i = 0; i < 64; i++) { x[i] = i * 0.5f; }
        for (i = 0; i < 64; i++) { y[i] = x[i] * x[i] + 1.0f; }
        for (i = 0; i < 64; i++) { z[i] = y[i] / (x[i] + 2.0f); }
        for (i = 0; i < 64; i++) { z[i] = z[i] + sqrt(y[i]); }
    }
    """

    @staticmethod
    def _models(program, fitted_costs, reference):
        func = program.entry("main")
        return (
            CostModel.for_function(program, func, costs=fitted_costs),
            CostModel.for_function(program, func, costs=reference),
        )

    def test_recovers_reference_costs_exactly(self):
        program = parse_c_source(self.SRC)
        reference = OperationCosts(float_mul=9.0, float_div=55.0, load=3.0)
        samples = samples_from_profile(program, "main", reference)
        result = calibrate(samples)
        assert result.residual_rms < 1e-6
        # parameters exercised by the program are recovered
        model, ref_model = self._models(program, result.costs, reference)
        for sample in samples:
            assert model.stmt_cycles(sample.stmt) == pytest.approx(
                ref_model.stmt_cycles(sample.stmt), rel=1e-6
            )

    def test_noisy_fit_stays_close(self):
        program = parse_c_source(self.SRC)
        reference = OperationCosts()
        samples = samples_from_profile(program, "main", reference, noise=0.05, seed=7)
        result = calibrate(samples)
        model, ref_model = self._models(program, result.costs, reference)
        for sample in samples:
            fitted = model.stmt_cycles(sample.stmt)
            true = ref_model.stmt_cycles(sample.stmt)
            assert fitted == pytest.approx(true, rel=0.35)

    def test_costs_never_negative(self):
        program = parse_c_source(self.SRC)
        samples = samples_from_profile(
            program, "main", OperationCosts(), noise=0.5, seed=3
        )
        result = calibrate(samples)
        for name in PARAMETERS:
            assert getattr(result.costs, name) >= 0.0

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            calibrate([])
