"""Tests of the mapping-spec / annotation / OpenMP lint."""

from __future__ import annotations

import pytest

from repro.analysis.maplint import (
    lint_annotations,
    lint_mapping_spec,
    lint_openmp,
)
from repro.codegen.annotate import annotate_solution
from repro.codegen.mapping_spec import mapping_spec
from repro.codegen.openmp import emit_openmp


@pytest.fixture(scope="module")
def artifacts(fir_hetero_result):
    return {
        "spec": mapping_spec(fir_hetero_result),
        "annotated": annotate_solution(fir_hetero_result),
        "openmp": emit_openmp(fir_hetero_result),
    }


class TestCleanArtifacts:
    def test_mapping_spec_lints_clean(self, fir_hetero_result, artifacts):
        diags = lint_mapping_spec(
            artifacts["spec"], fir_hetero_result.best, fir_hetero_result.platform
        )
        assert diags == []

    def test_annotations_lint_clean(self, fir_hetero_result, artifacts):
        diags = lint_annotations(
            artifacts["annotated"],
            fir_hetero_result.best,
            fir_hetero_result.platform,
        )
        assert diags == []

    def test_openmp_lints_clean(self, fir_hetero_result, artifacts):
        diags = lint_openmp(
            artifacts["openmp"], fir_hetero_result.best, fir_hetero_result.platform
        )
        assert diags == []


def _first_task_entry(spec):
    tasks = spec["tasks"]
    assert tasks, "expected a parallel pre-mapping"
    return tasks[0]


class TestMutatedArtifacts:
    def test_dangling_spec_task(self, fir_hetero_result, artifacts):
        import copy

        spec = copy.deepcopy(artifacts["spec"])
        ghost = copy.deepcopy(_first_task_entry(spec))
        ghost["path"] = "root/T99"
        spec["tasks"].append(ghost)
        codes = {
            d.code
            for d in lint_mapping_spec(
                spec, fir_hetero_result.best, fir_hetero_result.platform
            )
        }
        assert "mapping.dangling-task" in codes

    def test_missing_spec_task(self, fir_hetero_result, artifacts):
        import copy

        spec = copy.deepcopy(artifacts["spec"])
        spec["tasks"].pop()
        codes = {
            d.code
            for d in lint_mapping_spec(
                spec, fir_hetero_result.best, fir_hetero_result.platform
            )
        }
        assert "mapping.missing-task" in codes

    def test_invalid_spec_class(self, fir_hetero_result, artifacts):
        import copy

        spec = copy.deepcopy(artifacts["spec"])
        _first_task_entry(spec)["class"] = "not-a-class"
        codes = {
            d.code
            for d in lint_mapping_spec(
                spec, fir_hetero_result.best, fir_hetero_result.platform
            )
        }
        assert "mapping.invalid-class" in codes

    def test_dangling_annotation_task_id(self, fir_hetero_result, artifacts):
        text = artifacts["annotated"].replace(
            "#pragma repro task(0)", "#pragma repro task(9)", 1
        )
        assert text != artifacts["annotated"], "expected a task(0) pragma"
        codes = {
            d.code
            for d in lint_annotations(
                text, fir_hetero_result.best, fir_hetero_result.platform
            )
        }
        assert "mapping.dangling-task-id" in codes

    def test_invalid_omp_class(self, fir_hetero_result, artifacts):
        text = artifacts["openmp"]
        needle = "#pragma omp section /* repro:class("
        start = text.index(needle) + len(needle)
        end = text.index(")", start)
        mutated = text[:start] + "bogus" + text[end:]
        codes = {
            d.code
            for d in lint_openmp(
                mutated, fir_hetero_result.best, fir_hetero_result.platform
            )
        }
        assert "mapping.invalid-class" in codes or "mapping.class-mismatch" in codes
