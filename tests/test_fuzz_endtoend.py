"""End-to-end fuzzing: random kernels through the whole pipeline.

A small generator builds random (but well-formed) C kernels from a menu
of loop templates — elementwise maps, stencils on read-only inputs,
reductions, and serial recurrences — wired over a shared pool of global
arrays. Every generated program is:

1. interpreted (ground truth),
2. parallelized (heterogeneous, platform (A)),
3. flattened + simulated (speedup sanity: ≤ theoretical limit, ≥ ~1),
4. validated structurally (:mod:`repro.core.validation`),
5. re-emitted as transformed source, re-parsed and re-run — globals must
   match the ground truth bit-for-bit up to float tolerance.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cfront import parse_c_source
from repro.codegen import annotate_solution
from repro.core.parallelize import HeterogeneousParallelizer
from repro.core.validation import validate_result
from repro.platforms import config_a
from repro.simulator.run import evaluate_solution
from repro.timing.interp import Interpreter

from tests.conftest import prepare
from tests.test_transform_semantics import assert_same_globals, strip_pragmas

ARRAYS = ["ga", "gb", "gc", "gd"]
N = 256

_TEMPLATES = [
    # (needs_input, body) — {dst} written, {src}/{src2} read-only
    "for (i = 0; i < %d; i++) {{ {dst}[i] = {src}[i] * 1.5f + 2.0f; }}" % N,
    "for (i = 0; i < %d; i++) {{ {dst}[i] = {src}[i] * {src2}[i]; }}" % N,
    "for (i = 1; i < %d - 1; i++) {{ {dst}[i] = 0.5f * ({src}[i - 1] + {src}[i + 1]); }}" % N,
    "acc = 0.0f;\n    for (i = 0; i < %d; i++) {{ acc = acc + {src}[i]; }}\n"
    "    {dst}[0] = acc;" % N,
    "for (i = 1; i < %d; i++) {{ {dst}[i] = 0.9f * {dst}[i - 1] + 0.1f * {src}[i]; }}" % N,
    "for (i = 0; i < %d; i++) {{ if ({src}[i] > 0.0f) {{ {dst}[i] = {src}[i]; }} "
    "else {{ {dst}[i] = -{src}[i]; }} }}" % N,
]


@st.composite
def random_kernel(draw):
    num_stages = draw(st.integers(2, 5))
    stages = []
    for _ in range(num_stages):
        template = draw(st.sampled_from(_TEMPLATES))
        dst = draw(st.sampled_from(ARRAYS))
        src = draw(st.sampled_from([a for a in ARRAYS if a != dst]))
        src2 = draw(st.sampled_from([a for a in ARRAYS if a != dst]))
        stages.append(template.format(dst=dst, src=src, src2=src2))
    body = "\n    ".join(stages)
    decls = "\n".join(f"float {name}[{N}];" for name in ARRAYS)
    return f"""
{decls}
float checksum;
void main(void) {{
    int i;
    float acc;
    for (i = 0; i < {N}; i++) {{
        ga[i] = sin(0.01f * i);
        gb[i] = cos(0.02f * i);
        gc[i] = 0.001f * i - 0.1f;
        gd[i] = 0.0f;
    }}
    {body}
    checksum = 0.0f;
    for (i = 0; i < {N}; i++) {{
        checksum = checksum + ga[i] + gb[i] + gc[i] + gd[i];
    }}
}}
"""


def run_globals(source: str):
    program = parse_c_source(source)
    interp = Interpreter(program)
    interp.run("main")
    return interp.globals


class TestFuzzPipeline:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(random_kernel())
    def test_random_kernels_end_to_end(self, source):
        baseline = run_globals(source)

        program, _db, htg = prepare(source)
        assert htg.validate() == []
        platform = config_a("accelerator")
        result = HeterogeneousParallelizer(platform).parallelize(htg)

        # structural validity of every chosen candidate
        assert validate_result(result) == []

        # simulated performance sanity
        evaluation = evaluate_solution(result)
        assert evaluation.speedup <= platform.theoretical_speedup() + 1e-6
        assert evaluation.speedup > 0.9  # never a catastrophic slowdown

        # transformed source preserves semantics
        transformed = strip_pragmas(annotate_solution(result, program=program))
        assert_same_globals(baseline, run_globals(transformed))
