"""Tests for solution flattening into atomic-task DAGs."""

import pytest

from repro.cfront.defuse import DefUse
from repro.cfront.deps import DepKind
from repro.core.flatten import flatten_solution
from repro.core.solution import SolutionCandidate, TaskSegment
from repro.htg.nodes import HierarchicalNode, HTGEdge, SimpleNode

from tests.test_ilppar import leaf, make_node, seed_sets, two_class_platform
from repro.core.ilppar import ilp_parallelize_node


def parallel_candidate(platform):
    children = [leaf(f"w{i}", 40_000.0) for i in range(4)]
    node = make_node(children)
    cand = ilp_parallelize_node(
        node, "slow", 4, platform, seed_sets(platform, children)
    )
    assert cand is not None and not cand.is_sequential
    return node, cand


class TestSequentialFlattening:
    def test_single_task(self):
        platform = two_class_platform()
        child = leaf("only", 1000.0)
        cand = SolutionCandidate(
            node=child, main_class="slow", exec_time_us=10.0, is_sequential=True
        )
        graph = flatten_solution(cand, platform)
        assert graph.validate() == []
        assert len(graph.tasks) == 1
        assert graph.tasks[0].cycles == 1000.0
        assert graph.tasks[0].proc_class == "slow"


class TestParallelFlattening:
    def test_dag_valid(self):
        platform = two_class_platform()
        _node, cand = parallel_candidate(platform)
        graph = flatten_solution(cand, platform)
        assert graph.validate() == []

    def test_work_conserved(self):
        platform = two_class_platform()
        node, cand = parallel_candidate(platform)
        graph = flatten_solution(cand, platform)
        assert graph.total_cycles() == pytest.approx(
            sum(c.total_cycles() for c in node.children)
        )

    def test_extra_tasks_pay_spawn_overhead(self):
        platform = two_class_platform(tco=5.0)
        node, cand = parallel_candidate(platform)
        graph = flatten_solution(cand, platform)
        spawned = [t for t in graph.tasks if t.spawn_overhead_us > 0]
        used_extras = sum(
            1 for s in cand.segments if s.role == "extra" and s.children
        )
        assert len(spawned) == used_extras

    def test_class_requirements_preserved(self):
        platform = two_class_platform()
        node, cand = parallel_candidate(platform)
        graph = flatten_solution(cand, platform)
        for segment in cand.segments:
            for child in segment.children:
                tasks = [t for t in graph.tasks if t.node_uid == child.uid]
                assert tasks
                assert tasks[0].proc_class == segment.proc_class

    def test_class_blind_strips_classes(self):
        platform = two_class_platform()
        _node, cand = parallel_candidate(platform)
        graph = flatten_solution(cand, platform, class_blind=True)
        assert all(t.proc_class is None for t in graph.tasks)

    def test_entry_exit_markers(self):
        platform = two_class_platform()
        _node, cand = parallel_candidate(platform)
        graph = flatten_solution(cand, platform)
        entry = next(t for t in graph.tasks if t.tid == graph.entry)
        exit_ = next(t for t in graph.tasks if t.tid == graph.exit)
        assert entry.is_marker and exit_.is_marker
        # no predecessors of entry, no successors of exit
        assert not graph.predecessors(graph.entry)
        assert not graph.successors(graph.exit)

    def test_cross_task_edge_carries_bytes(self):
        platform = two_class_platform()
        a = leaf("a", 200_000.0)
        b = leaf("b", 200_000.0)
        node = make_node([a, b])
        node.edges.insert(0, HTGEdge(a, b, DepKind.FLOW, frozenset({"v"}), 512.0))
        cand = ilp_parallelize_node(
            node, "slow", 4, platform, seed_sets(platform, [a, b])
        )
        assert cand is not None
        graph = flatten_solution(cand, platform)
        if cand.task_of_child(a) != cand.task_of_child(b):
            assert any(e.bytes_volume == 512.0 for e in graph.edges)


class TestNestedFlattening:
    def test_two_level_solution_expands(self):
        platform = two_class_platform()
        inner_children = [leaf(f"in{i}", 40_000.0) for i in range(3)]
        inner = make_node(inner_children, label="inner")
        sets = seed_sets(platform, inner_children)
        inner_cand = ilp_parallelize_node(inner, "fast", 3, platform, sets)
        assert inner_cand is not None and not inner_cand.is_sequential

        outer_child = leaf("other", 40_000.0)
        outer = make_node([inner, outer_child], label="outer")
        outer_sets = seed_sets(platform, [outer_child])
        from repro.core.solution import SolutionSet

        inner_set = SolutionSet()
        for pc in platform.processor_classes:
            inner_set.add(
                SolutionCandidate(
                    node=inner,
                    main_class=pc.name,
                    exec_time_us=pc.time_us(inner.total_cycles()),
                    is_sequential=True,
                )
            )
        inner_set.add(inner_cand)
        outer_sets[inner.uid] = inner_set

        outer_cand = ilp_parallelize_node(outer, "slow", 4, platform, outer_sets)
        assert outer_cand is not None
        graph = flatten_solution(outer_cand, platform)
        assert graph.validate() == []
        # expansion must preserve total work
        assert graph.total_cycles() == pytest.approx(4 * 40_000.0)
