"""Tests for ILP statistics collection (Table I plumbing)."""

import pytest

from repro.ilp import Model, StatsCollector
from repro.ilp.model import SolveStatus
from repro.ilp.stats import StatsSummary


def _solve_one(collector, n_vars=3):
    m = Model("demo")
    xs = [m.add_binary(f"x{i}") for i in range(n_vars)]
    for x in xs:
        m.add_constraint(x <= 1)
    m.maximize(sum(xs[1:], xs[0] + 0))
    m.solve(collector=collector)


class TestCollector:
    def test_records_appended(self):
        collector = StatsCollector()
        _solve_one(collector)
        _solve_one(collector, n_vars=5)
        assert collector.num_ilps == 2
        assert collector.total_variables == 8
        assert collector.total_constraints == 8
        assert collector.total_solve_seconds > 0

    def test_record_fields(self):
        collector = StatsCollector()
        _solve_one(collector)
        record = collector.records[0]
        assert record.model_name == "demo"
        assert record.status is SolveStatus.OPTIMAL

    def test_merge(self):
        a = StatsCollector()
        b = StatsCollector()
        _solve_one(a)
        _solve_one(b)
        a.merge(b)
        assert a.num_ilps == 2

    def test_summary(self):
        collector = StatsCollector()
        _solve_one(collector)
        summary = collector.summary()
        assert summary.num_ilps == 1
        assert summary.total_variables == 3


class TestRatios:
    def test_ratio_computation(self):
        base = StatsSummary(10, 100, 200, 2.0)
        big = StatsSummary(35, 700, 1100, 28.0)
        ratios = big.ratio_to(base)
        assert ratios.ilp_factor == pytest.approx(3.5)
        assert ratios.variable_factor == pytest.approx(7.0)
        assert ratios.constraint_factor == pytest.approx(5.5)
        assert ratios.time_factor == pytest.approx(14.0)

    def test_zero_baseline_gives_inf(self):
        base = StatsSummary(0, 0, 0, 0.0)
        big = StatsSummary(1, 1, 1, 1.0)
        ratios = big.ratio_to(base)
        assert ratios.ilp_factor == float("inf")
