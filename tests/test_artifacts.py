"""Tests for the artifact bundle writer."""

import json

import pytest

from repro.platforms import config_a
from repro.toolflow.artifacts import write_artifacts
from repro.toolflow.flow import ToolFlow

from tests.conftest import SMALL_FIR

EXPECTED = {
    "annotated.c",
    "openmp.c",
    "premapping.json",
    "htg.dot",
    "taskgraph.dot",
    "schedule.txt",
    "parallelism.txt",
    "report.txt",
}


@pytest.fixture(scope="module")
def bundle(tmp_path_factory):
    outdir = tmp_path_factory.mktemp("artifacts")
    flow = ToolFlow(config_a("accelerator"))
    outcome = flow.run(SMALL_FIR)
    written = write_artifacts(outcome, outdir)
    return outdir, written, outcome


class TestBundle:
    def test_all_artifacts_written(self, bundle):
        outdir, written, _ = bundle
        assert set(written) == EXPECTED
        for path in written.values():
            assert path.exists() and path.stat().st_size > 0

    def test_premapping_is_valid_json(self, bundle):
        _outdir, written, _ = bundle
        spec = json.loads(written["premapping.json"].read_text())
        assert spec["format"] == "repro-premapping"

    def test_dot_files_well_formed(self, bundle):
        _outdir, written, _ = bundle
        for name in ("htg.dot", "taskgraph.dot"):
            text = written[name].read_text()
            assert text.startswith("digraph")
            assert text.rstrip().endswith("}")

    def test_schedule_contains_gantt_and_table(self, bundle):
        _outdir, written, _ = bundle
        text = written["schedule.txt"].read_text()
        assert "makespan" in text
        assert "utilization" in text

    def test_report_summary(self, bundle):
        _outdir, written, outcome = bundle
        text = written["report.txt"].read_text()
        assert "speedup" in text
        assert "ILPs solved" in text
        assert f"{outcome.result.best.num_tasks} " in text

    def test_annotated_source_reexecutes(self, bundle):
        from tests.test_transform_semantics import (
            assert_same_globals,
            run_globals,
            strip_pragmas,
        )

        _outdir, written, _ = bundle
        transformed = strip_pragmas(written["annotated.c"].read_text())
        assert_same_globals(run_globals(SMALL_FIR), run_globals(transformed))

    def test_directory_created_if_missing(self, tmp_path):
        flow = ToolFlow(config_a("accelerator"))
        outcome = flow.run(SMALL_FIR)
        nested = tmp_path / "a" / "b"
        written = write_artifacts(outcome, nested)
        assert nested.exists()
        assert set(written) == EXPECTED
