"""Semantic-equivalence verification of the source-to-source output.

The strongest possible check of the whole pipeline: parallelize a kernel,
emit the transformed source (task regions + split chunk loops), strip the
``#pragma repro`` lines (yielding the canonical sequential linearization
of the parallel program — task indices follow the topological child
order), re-parse, re-execute, and compare every global against the
original program's run.
"""

import numpy as np
import pytest

from repro.bench_suite import get_benchmark
from repro.cfront import parse_c_source
from repro.codegen import annotate_solution
from repro.core.parallelize import (
    HeterogeneousParallelizer,
    HomogeneousParallelizer,
)
from repro.platforms import config_a, config_b
from repro.timing.interp import Interpreter

from tests.conftest import prepare, SMALL_FIR


def strip_pragmas(text: str) -> str:
    return "\n".join(
        line for line in text.splitlines() if not line.strip().startswith("#pragma")
    )


def run_globals(source: str):
    program = parse_c_source(source)
    interp = Interpreter(program)
    interp.run("main")
    return interp.globals


def assert_same_globals(original, transformed):
    for name, value in original.items():
        if isinstance(value, np.ndarray):
            np.testing.assert_allclose(
                transformed[name], value, rtol=1e-5, atol=1e-7, err_msg=name
            )
        else:
            assert transformed[name] == pytest.approx(value, rel=1e-5), name


@pytest.mark.parametrize(
    "bench_name",
    ["fir_256", "mult_10", "bound_value", "edge_detect", "adpcm_enc", "spectral"],
)
def test_hetero_transformation_preserves_semantics(bench_name):
    source = get_benchmark(bench_name).source
    program, _db, htg = prepare(source)
    platform = config_a("accelerator")
    result = HeterogeneousParallelizer(platform).parallelize(htg)

    transformed = strip_pragmas(annotate_solution(result, program=program))
    assert_same_globals(run_globals(source), run_globals(transformed))


def test_homogeneous_transformation_preserves_semantics():
    source = get_benchmark("filterbank").source
    program, _db, htg = prepare(source)
    platform = config_b("accelerator")
    result = HomogeneousParallelizer(platform).parallelize(htg)

    transformed = strip_pragmas(annotate_solution(result, program=program))
    assert_same_globals(run_globals(source), run_globals(transformed))


def test_small_fir_roundtrip_all_scenarios():
    program, _db, htg = prepare(SMALL_FIR)
    baseline = run_globals(SMALL_FIR)
    for factory, scenario in [
        (config_a, "accelerator"),
        (config_a, "slower-cores"),
        (config_b, "slower-cores"),
    ]:
        platform = factory(scenario)
        result = HeterogeneousParallelizer(platform).parallelize(htg)
        transformed = strip_pragmas(annotate_solution(result, program=program))
        assert_same_globals(baseline, run_globals(transformed))
