"""Model-vs-simulator consistency.

The ILP optimizes a high-level cost model (Eq. 8-11); the discrete-event
simulator executes the chosen solution with its own bus/core timing. The
approach is only as good as the agreement between the two — these tests
bound the gap across kernels, platforms and approaches.
"""

import pytest

from repro.platforms import config_a, config_b
from repro.toolflow.experiments import run_benchmark

_KERNELS = ["fir_256", "mult_10", "latnrm_32", "edge_detect"]


class TestEstimateTracksSimulation:
    @pytest.mark.parametrize("bench", _KERNELS)
    def test_platform_a_accelerator(self, bench):
        run = run_benchmark(bench, config_a("accelerator"), "heterogeneous")
        ratio = run.estimated_speedup / run.speedup
        assert 0.5 <= ratio <= 2.0, (bench, run.estimated_speedup, run.speedup)

    def test_platform_b_slower_cores(self):
        run = run_benchmark("fir_256", config_b("slower-cores"), "heterogeneous")
        ratio = run.estimated_speedup / run.speedup
        assert 0.5 <= ratio <= 2.0

    def test_estimate_is_conservative_on_average(self):
        """The model chains tasks pessimistically (no overlap of dependent
        work), so across kernels the estimate should not be wildly more
        optimistic than the simulation."""
        ratios = []
        platform = config_a("accelerator")
        for bench in _KERNELS:
            run = run_benchmark(bench, platform, "heterogeneous")
            ratios.append(run.estimated_speedup / run.speedup)
        mean_ratio = sum(ratios) / len(ratios)
        assert mean_ratio <= 1.3

    def test_homogeneous_estimate_diverges_by_design(self):
        """The homogeneous tool's self-estimate assumes uniform cores; on
        the heterogeneous platform its *simulated* speedup must be lower
        than its belief in scenario II (the paper's core observation)."""
        run = run_benchmark("fir_256", config_a("slower-cores"), "homogeneous")
        assert run.speedup < run.estimated_speedup
        assert run.speedup < 1.0 < run.estimated_speedup
