"""Parallel solution candidates.

Each candidate describes one way to execute an AHTG node: the node→task
mapping of its direct children, the task→processor-class mapping, the
chosen sub-solution per child, the estimated whole-run execution time and
the processors consumed. Candidates are *tagged by the processor class
executing the main task* (Section III-B) — the sequential context around
the node runs on that class.

Task structure of a parallel candidate (see DESIGN.md):

* the **fork segment** and **join segment** are the main task's two
  halves (the master thread before spawning and after joining); they
  share the main processor;
* **extra segments** are newly spawned tasks, each occupying one
  processor of its mapped class for the node's duration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.htg.nodes import HTGNode


@dataclass
class TaskSegment:
    """One task of a parallel solution: an ordered run of child nodes."""

    index: int
    role: str  # 'fork' | 'extra' | 'join'
    proc_class: str
    children: Tuple[HTGNode, ...] = ()

    @property
    def is_main(self) -> bool:
        return self.role in ("fork", "join")


@dataclass
class SolutionCandidate:
    """One (possibly parallel) execution plan for an AHTG node."""

    node: HTGNode
    main_class: str
    exec_time_us: float
    segments: Tuple[TaskSegment, ...] = ()
    child_choice: Dict[int, "SolutionCandidate"] = field(default_factory=dict)
    used_procs: Dict[str, int] = field(default_factory=dict)
    is_sequential: bool = True
    #: total energy (nJ) under the per-class energy-per-cycle model; used
    #: by the energy objective extension (paper future work).
    energy_nj: float = 0.0
    #: Portfolio leg that produced the candidate: ``"exact"`` (an ILP
    #: backend, the default), ``"heuristic"`` (list scheduler + GA) or
    #: ``"portfolio"`` (exact solve warm-started by a heuristic
    #: incumbent). Sequentially seeded candidates keep ``"exact"``.
    source: str = "exact"
    #: Proven relative optimality gap of an anytime candidate (``None``
    #: for proved-optimal ones) — an upper bound on the true gap.
    opt_gap: Optional[float] = None

    @property
    def num_tasks(self) -> int:
        """Used tasks, counting the fork+join pair as the single main task."""
        if self.is_sequential:
            return 1
        extra = sum(
            1 for s in self.segments if s.role == "extra" and s.children
        )
        return 1 + extra

    @property
    def total_procs(self) -> int:
        """Processors used including the main one."""
        return 1 + sum(self.used_procs.values())

    def used_procs_of(self, class_name: str) -> int:
        return self.used_procs.get(class_name, 0)

    def task_of_child(self, child: HTGNode) -> Optional[int]:
        for segment in self.segments:
            if any(c.uid == child.uid for c in segment.children):
                return segment.index
        return None

    def describe(self) -> str:
        if self.is_sequential:
            return (
                f"sequential on {self.main_class} "
                f"({self.exec_time_us:,.1f} µs)"
            )
        parts = []
        for segment in self.segments:
            if not segment.children and segment.role == "extra":
                continue
            names = ", ".join(c.label for c in segment.children) or "-"
            parts.append(f"T{segment.index}[{segment.role}@{segment.proc_class}]: {names}")
        return (
            f"{self.num_tasks} tasks on main {self.main_class} "
            f"({self.exec_time_us:,.1f} µs; +procs {self.used_procs}) :: "
            + " | ".join(parts)
        )


def dominates(a: SolutionCandidate, b: SolutionCandidate) -> bool:
    """True if ``a`` is at least as good as ``b`` in time and in every
    per-class processor usage, and strictly better somewhere."""
    if a.main_class != b.main_class:
        return False
    classes = set(a.used_procs) | set(b.used_procs)
    not_worse = a.exec_time_us <= b.exec_time_us + 1e-9 and all(
        a.used_procs_of(c) <= b.used_procs_of(c) for c in classes
    )
    strictly_better = a.exec_time_us < b.exec_time_us - 1e-9 or any(
        a.used_procs_of(c) < b.used_procs_of(c) for c in classes
    )
    return not_worse and strictly_better


class SolutionSet:
    """The per-node *parallel set*: candidates grouped by main-task class.

    Guarantees at least one sequential candidate per processor class
    (the paper's feasibility note at the end of Section IV-K) and keeps
    the per-class Pareto frontier over (time, per-class processor usage).
    """

    def __init__(self) -> None:
        self._by_class: Dict[str, List[SolutionCandidate]] = {}

    def add(self, candidate: SolutionCandidate) -> bool:
        """Insert unless dominated; evict candidates it dominates."""
        bucket = self._by_class.setdefault(candidate.main_class, [])
        for existing in bucket:
            if dominates(existing, candidate) or (
                abs(existing.exec_time_us - candidate.exec_time_us) <= 1e-9
                and existing.used_procs == candidate.used_procs
            ):
                return False
        bucket[:] = [c for c in bucket if not dominates(candidate, c)]
        bucket.append(candidate)
        return True

    def for_class(self, class_name: str) -> List[SolutionCandidate]:
        return list(self._by_class.get(class_name, []))

    def classes(self) -> List[str]:
        return sorted(self._by_class)

    def all(self) -> List[SolutionCandidate]:
        return [c for bucket in self._by_class.values() for c in bucket]

    def best_for_class(self, class_name: str) -> Optional[SolutionCandidate]:
        bucket = self._by_class.get(class_name)
        if not bucket:
            return None
        return min(bucket, key=lambda c: c.exec_time_us)

    def sequential_for_class(self, class_name: str) -> Optional[SolutionCandidate]:
        for candidate in self._by_class.get(class_name, []):
            if candidate.is_sequential:
                return candidate
        return None

    def __len__(self) -> int:
        return sum(len(b) for b in self._by_class.values())
