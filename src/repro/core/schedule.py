"""Level scheduling of Algorithm 1's independent ILPs.

The bottom-up walk (paper Algorithm 1) has two sources of exploitable
independence:

* **Across nodes / classes**: within one AHTG level the per-node,
  per-main-task-class budget sweeps touch disjoint solution sets and only
  *read* the (already final) sets of the level below.
* **Within a sweep**: none — each budget's ILP consumes the previous
  budget's candidate (``i = min(i-1, |tasks|-1)``), so a sweep is an
  inherently serial chain.

The scheduler models exactly that: a :class:`Sweep` is a generator that
yields :class:`SolveJob` instances and receives solutions back (the serial
chain); :func:`run_sweeps` drives many sweeps concurrently against a
:class:`repro.ilp.service.SolverService`, parking a sweep while its job is
in flight in a worker process and resuming whichever sweep's solve lands
first. With a serial service (``jobs=1``) every submission resolves
inline, making the engine a plain nested loop that replays the exact solve
order of the recursive implementation — results are bit-identical either
way, because the candidates produced by a sweep are accumulated per sweep
and merged in deterministic (node, class, budget) order by the caller.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional

from repro.htg.nodes import HierarchicalNode, HTGNode
from repro.ilp.model import Model, Solution, SolveStatus
from repro.ilp.service import SolverService, SolveSpec
from repro.ilp.stats import StatsCollector


@dataclass
class SolveJob:
    """One ILP solve requested by a sweep."""

    model: Model
    spec: SolveSpec
    tag: str = ""


#: A sweep body: yields jobs, receives the solution (``None`` when the
#: model was infeasible), appends extracted candidates to the list it was
#: constructed with.
SweepGen = Generator[SolveJob, Optional[Solution], None]


class Sweep:
    """One budget sweep: a serial chain of solves with its own outputs.

    ``make_gen`` is called with the sweep's candidate output list so the
    generator can append extracted candidates as it goes; the engine never
    interprets candidates, it only shuttles jobs and solutions. Keeping
    candidates and statistics per sweep is what makes the concurrent
    execution deterministic: completion order influences neither.
    """

    def __init__(self, label: str, make_gen: Callable[[list], SweepGen]):
        self.label = label
        self.candidates: list = []
        self.collector = StatsCollector()
        self.gen: SweepGen = make_gen(self.candidates)
        self.pending = None  # PendingSolve while parked on a worker


def collect_levels(root: HTGNode) -> List[List[HTGNode]]:
    """Group the AHTG into levels, deepest first.

    Within a level, nodes appear in depth-first discovery order, which
    matches the child order the recursive walk used — the merge order of
    sweep results (and thus every solution set) is therefore identical to
    the recursive implementation's insertion order.
    """
    levels: Dict[int, List[HTGNode]] = {}

    def visit(node: HTGNode, depth: int) -> None:
        levels.setdefault(depth, []).append(node)
        if isinstance(node, HierarchicalNode):
            for child in node.children:
                visit(child, depth + 1)

    visit(root, 0)
    return [levels[d] for d in sorted(levels, reverse=True)]


def run_sweeps(sweeps: List[Sweep], service: SolverService) -> None:
    """Drive ``sweeps`` to completion against ``service``.

    Each sweep advances until its next job goes to a worker process (then
    it parks) or its generator finishes. Whenever a worker finishes, the
    owning sweep is resumed. Jobs that resolve synchronously — cache hits,
    serial execution, degenerate models — are fed back immediately, so at
    ``jobs=1`` this is an ordinary serial loop over the sweeps.
    """
    parked: Dict[object, Sweep] = {}  # future -> sweep

    def advance(sweep: Sweep, value: Optional[Solution]) -> None:
        while True:
            try:
                job = sweep.gen.send(value)
            except StopIteration:
                return
            pending = service.submit(
                job.model, job.spec, tag=job.tag, collector=sweep.collector
            )
            if pending.future is not None:
                sweep.pending = pending
                parked[pending.future] = sweep
                return
            value = _usable_or_none(pending.result(), pending.model.name)

    for sweep in sweeps:
        advance(sweep, None)

    while parked:
        done, _ = wait(list(parked), return_when=FIRST_COMPLETED)
        for future in done:
            sweep = parked.pop(future)
            pending, sweep.pending = sweep.pending, None
            solution = pending.result()
            advance(sweep, _usable_or_none(solution, pending.model.name))


def _usable_or_none(solution: Solution, name: str) -> Optional[Solution]:
    """Map a service solution to the sweep protocol value.

    Infeasible (including "nothing beats the cutoff") becomes ``None`` —
    the sweep ends its budget loop, mirroring the recursive code catching
    :class:`InfeasibleError`. Solver errors and unbounded verdicts raise,
    as :meth:`repro.ilp.model.Model.solve` does.
    """
    if solution.usable:
        return solution
    if solution.status is SolveStatus.INFEASIBLE:
        return None
    raise RuntimeError(f"solver failed ({solution.status.value}) on {name!r}")
