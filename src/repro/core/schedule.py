"""Level scheduling of Algorithm 1's independent ILPs.

The bottom-up walk (paper Algorithm 1) has two sources of exploitable
independence:

* **Across nodes / classes**: within one AHTG level the per-node,
  per-main-task-class budget sweeps touch disjoint solution sets and only
  *read* the (already final) sets of the level below.
* **Within a sweep**: none — each budget's ILP consumes the previous
  budget's candidate (``i = min(i-1, |tasks|-1)``), so a sweep is an
  inherently serial chain.

The scheduler models exactly that: a :class:`Sweep` is a generator that
yields :class:`SolveJob` instances and receives solutions back (the serial
chain); a :class:`SweepSet` advances many sweeps concurrently against a
:class:`repro.ilp.service.SolverService` *without blocking* — a sweep is
parked while its solve is queued or on a worker process, and resumed when
the solve lands. :func:`drive` is the blocking drain loop: it flushes the
service's batch queue and waits on the union of every driver's parked
futures, resuming whichever solve finishes first — across sweeps, levels,
**and entire parallelization runs**, so the straggler tail of one run's
level barrier is filled with another run's ILPs when several runs share
one service (see :class:`repro.core.parallelize.ParallelizeSession`).

With a serial service (``jobs=1``) every submission resolves inline,
making the engine a plain nested loop that replays the exact solve order
of the recursive implementation — results are bit-identical either way,
because the candidates produced by a sweep are accumulated per sweep and
merged in deterministic (node, class, budget) order by the caller.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass
from typing import Callable, Dict, Generator, Iterable, List, Optional, Tuple

from repro.htg.nodes import HierarchicalNode, HTGNode
from repro.ilp.model import Model, Solution, SolveStatus
from repro.ilp.service import PendingSolve, SolverService, SolveSpec
from repro.ilp.stats import StatsCollector


@dataclass
class SolveJob:
    """One ILP solve requested by a sweep.

    ``fallback`` (plus its proven ``fallback_gap``) is the portfolio's
    anytime answer for this model: the service substitutes it — tagged
    degraded, never cached — if the worker pool is lost before the exact
    solve completes. ``source`` labels the solve's record with the
    portfolio leg that produced it (``"exact"`` or ``"portfolio"`` for
    incumbent-warm-started races).
    """

    model: Model
    spec: SolveSpec
    tag: str = ""
    fallback: Optional[Solution] = None
    fallback_gap: Optional[float] = None
    source: str = "exact"


#: A sweep body: yields jobs, receives the solution (``None`` when the
#: model was infeasible), appends extracted candidates to the list it was
#: constructed with.
SweepGen = Generator[SolveJob, Optional[Solution], None]


class Sweep:
    """One budget sweep: a serial chain of solves with its own outputs.

    ``make_gen`` is called with the sweep's candidate output list and its
    statistics collector so the generator can append extracted candidates
    as it goes and record solves that never touch the service (the
    portfolio's heuristic-only answers); the engine never interprets
    candidates, it only shuttles jobs and solutions. Keeping candidates
    and statistics per sweep is what makes the concurrent execution
    deterministic: completion order influences neither.
    """

    def __init__(
        self, label: str, make_gen: Callable[[list, StatsCollector], SweepGen]
    ):
        self.label = label
        self.candidates: list = []
        self.collector = StatsCollector()
        self.gen: SweepGen = make_gen(self.candidates, self.collector)
        self.pending: Optional[PendingSolve] = None  # while parked


def collect_levels(root: HTGNode) -> List[List[HTGNode]]:
    """Group the AHTG into levels, deepest first.

    Within a level, nodes appear in depth-first discovery order, which
    matches the child order the recursive walk used — the merge order of
    sweep results (and thus every solution set) is therefore identical to
    the recursive implementation's insertion order.
    """
    levels: Dict[int, List[HTGNode]] = {}

    def visit(node: HTGNode, depth: int) -> None:
        levels.setdefault(depth, []).append(node)
        if isinstance(node, HierarchicalNode):
            for child in node.children:
                visit(child, depth + 1)

    visit(root, 0)
    return [levels[d] for d in sorted(levels, reverse=True)]


class SweepSet:
    """Non-blocking driver of a set of mutually independent sweeps.

    Construction advances every sweep until it parks on an unresolved
    :class:`PendingSolve` (queued or on a worker) or its generator
    finishes; with a serial service that completes the whole set
    synchronously. The cooperative protocol — :attr:`done`,
    :meth:`parked`, :meth:`resume` — is what :func:`drive` drains; a
    :class:`~repro.core.parallelize.ParallelizeSession` exposes the same
    protocol by delegating to its current level's sweep set.
    """

    def __init__(self, sweeps: List[Sweep], service: SolverService):
        self.service = service
        self.sweeps = sweeps
        self._blocked: Dict[PendingSolve, Sweep] = {}
        for sweep in sweeps:
            self._advance(sweep, None)

    @property
    def done(self) -> bool:
        return not self._blocked

    def parked(self) -> Iterable[PendingSolve]:
        """The unresolved pending solves this set is waiting on."""
        return self._blocked.keys()

    def resume(self, pending: PendingSolve) -> None:
        """Feed a finished solve back into its sweep and advance it."""
        sweep = self._blocked.pop(pending)
        sweep.pending = None
        solution = pending.result()
        self._advance(sweep, _usable_or_none(solution, pending.model.name))

    # -- internals -----------------------------------------------------------

    def _advance(self, sweep: Sweep, value: Optional[Solution]) -> None:
        while True:
            try:
                job = sweep.gen.send(value)
            except StopIteration:
                return
            pending = self.service.submit(
                job.model,
                job.spec,
                tag=job.tag,
                collector=sweep.collector,
                fallback=job.fallback,
                fallback_gap=job.fallback_gap,
                source=job.source,
            )
            if not pending.resolved:
                sweep.pending = pending
                self._blocked[pending] = sweep
                return
            value = _usable_or_none(pending.result(), pending.model.name)


def drive(drivers: List, service: SolverService) -> None:
    """Drain cooperative drivers against ``service`` until all are done.

    A driver is anything with the :class:`SweepSet` protocol (``done``,
    ``parked()``, ``resume(pending)``) — sweep sets and parallelization
    sessions alike. Each round flushes the service (assigning batched
    pool futures to every queued solve, largest-instance-first), blocks
    on the union of all drivers' futures, and resumes every solve whose
    batch completed. Because one batch future can carry solves of
    several drivers, a single completion may resume sweeps in multiple
    concurrent runs — that is the cross-run straggler filling.
    """
    while True:
        service.flush()
        futures: Dict[object, List[Tuple[object, PendingSolve]]] = {}
        resumed_inline = False
        for driver in drivers:
            if driver.done:
                continue
            for pending in list(driver.parked()):
                if pending.resolved:
                    # flush() fell back to in-process solving (pool died
                    # or never came up): feed the result straight back.
                    driver.resume(pending)
                    resumed_inline = True
                    continue
                assert pending.future is not None, "flush() left a solve queued"
                futures.setdefault(pending.future, []).append((driver, pending))
        if resumed_inline:
            continue  # the resumes may have queued fresh jobs
        if not futures:
            break
        done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
        for future in done:
            for driver, pending in futures[future]:
                driver.resume(pending)


def run_sweeps(sweeps: List[Sweep], service: SolverService) -> None:
    """Drive ``sweeps`` to completion against ``service`` (blocking).

    Each sweep advances until its next job is parked (queued for a batch
    or already on a worker) or its generator finishes; finished workers
    resume the owning sweeps. Jobs that resolve synchronously — cache
    hits, serial execution, degenerate models — are fed back immediately,
    so at ``jobs=1`` this is an ordinary serial loop over the sweeps.
    """
    drive([SweepSet(sweeps, service)], service)


def _usable_or_none(solution: Solution, name: str) -> Optional[Solution]:
    """Map a service solution to the sweep protocol value.

    Infeasible (including "nothing beats the cutoff") becomes ``None`` —
    the sweep ends its budget loop, mirroring the recursive code catching
    :class:`InfeasibleError`. Solver errors and unbounded verdicts raise,
    as :meth:`repro.ilp.model.Model.solve` does.
    """
    if solution.usable:
        return solution
    if solution.status is SolveStatus.INFEASIBLE:
        return None
    raise RuntimeError(f"solver failed ({solution.status.value}) on {name!r}")
