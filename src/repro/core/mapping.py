"""Static task-to-core mapping (the paper's "mapping tool" stage).

The paper's tool flow hands the pre-mapping specification to a mapping
tool that binds tasks to concrete processing units *before* execution —
"by taking advantage of platform information in the task extraction step,
it is possible to avoid additional scheduling overhead" (Section IV-I).
This module provides that stage:

* :func:`compute_static_mapping` — one offline list-scheduling pass over
  the flat task DAG produces a frozen ``task → (class, core index)``
  binding honouring each task's class requirement;
* the simulator's :class:`~repro.simulator.engine.SimOptions` accepts the
  frozen mapping (``fixed_mapping``), turning its dynamic scheduler into
  a pure executor of the static binding.

Dynamic (greedy earliest-finish) scheduling can only match or beat the
static binding on the model's deterministic costs, so the pair doubles
as an ablation: how much does online flexibility buy over the paper's
static approach? (Answer for the bundled benchmarks: nothing measurable —
the ILP already placed the work; see ``tests/test_mapping.py``.)
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.flatten import FlatTaskGraph
from repro.platforms.description import Platform

Core = Tuple[str, int]


@dataclass
class StaticMapping:
    """A frozen task→core binding for one flat task graph."""

    assignment: Dict[int, Core] = field(default_factory=dict)
    predicted_makespan_us: float = 0.0

    def core_of(self, tid: int) -> Core:
        return self.assignment[tid]

    def tasks_on(self, core: Core) -> List[int]:
        return [tid for tid, c in self.assignment.items() if c == core]

    def validate(self, graph: FlatTaskGraph, platform: Platform) -> List[str]:
        """Check completeness and class conformity."""
        problems: List[str] = []
        cores = set(platform.cores())
        for task in graph.tasks:
            core = self.assignment.get(task.tid)
            if core is None:
                problems.append(f"task {task.label!r} unmapped")
                continue
            if core not in cores:
                problems.append(f"task {task.label!r} on unknown core {core}")
                continue
            if task.proc_class is not None and core[0] != task.proc_class:
                problems.append(
                    f"task {task.label!r} requires {task.proc_class!r}, "
                    f"mapped to {core[0]!r}"
                )
        return problems


def compute_static_mapping(
    graph: FlatTaskGraph,
    platform: Platform,
) -> StaticMapping:
    """Bind every task to a concrete core by offline list scheduling.

    Uses the same earliest-finish heuristic as the simulator (class-
    constrained tasks pick among their class's cores; class-less tasks
    pick the earliest *available* core, modelling the paper's
    speed-unaware homogeneous runtime), then freezes the assignment.
    """
    problems = graph.validate()
    if problems:
        raise ValueError(f"invalid task graph: {problems}")

    tasks = {t.tid: t for t in graph.tasks}
    preds: Dict[int, List] = {tid: [] for tid in tasks}
    succs: Dict[int, List] = {tid: [] for tid in tasks}
    for edge in graph.edges:
        preds[edge.dst].append(edge)
        succs[edge.src].append(edge)

    core_free: Dict[Core, float] = {core: 0.0 for core in platform.cores()}
    by_class: Dict[str, List[Core]] = {}
    for core in core_free:
        by_class.setdefault(core[0], []).append(core)

    finish: Dict[int, float] = {}
    where: Dict[int, Core] = {}
    remaining = {tid: len(preds[tid]) for tid in tasks}
    ready = sorted(tid for tid, k in remaining.items() if k == 0)
    running: List[Tuple[float, int]] = []

    def transfer_us(edge) -> float:
        ic = platform.interconnect
        if edge.bytes_volume <= 0:
            return 0.0
        return ic.latency_us * max(1.0, edge.transfers) + (
            edge.bytes_volume / ic.bandwidth_bytes_per_us
        )

    def arrival(tid: int, core: Core) -> float:
        latest = 0.0
        for edge in preds[tid]:
            src_finish = finish[edge.src]
            if where[edge.src] == core:
                latest = max(latest, src_finish)
            else:
                latest = max(latest, src_finish + transfer_us(edge))
        return latest

    while ready or running:
        for tid in ready:
            task = tasks[tid]
            pool = (
                by_class.get(task.proc_class, [])
                if task.proc_class is not None
                else list(core_free)
            )
            if not pool:
                raise ValueError(
                    f"task {task.label!r} requires unknown class {task.proc_class!r}"
                )
            best_core: Optional[Core] = None
            best_finish = math.inf
            for core in pool:
                pc = platform.get_class(core[0])
                start = max(core_free[core], arrival(tid, core))
                if task.proc_class is None:
                    candidate_finish = start  # blind: availability only
                else:
                    candidate_finish = (
                        start + pc.time_us(task.cycles) + task.spawn_overhead_us
                    )
                if candidate_finish < best_finish - 1e-12:
                    best_finish = candidate_finish
                    best_core = core
            assert best_core is not None
            pc = platform.get_class(best_core[0])
            start = max(core_free[best_core], arrival(tid, best_core))
            end = start + pc.time_us(task.cycles) + task.spawn_overhead_us
            core_free[best_core] = end
            finish[tid] = end
            where[tid] = best_core
            heapq.heappush(running, (end, tid))
        ready = []
        if not running:
            break
        _now, done = heapq.heappop(running)
        for edge in succs[done]:
            remaining[edge.dst] -= 1
            if remaining[edge.dst] == 0:
                ready.append(edge.dst)
        ready.sort()

    return StaticMapping(
        assignment=dict(where),
        predicted_makespan_us=max(finish.values()) if finish else 0.0,
    )
