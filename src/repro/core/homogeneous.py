"""The homogeneous baseline ILP of [Cordes/Marwedel/Mallik, CODES+ISSS 2010].

This is the approach the paper compares against (its reference [6]): the
same hierarchical task-graph partitioning, but with **no processor-class
dimension** — all processing units are assumed identical, so the model
has no task→class mapping variables, no per-class candidate selection and
no per-class processor budgets. Costs are evaluated on a single reference
class (the class the tool profiles on — the platform's *main* class, as a
homogeneous tool has exactly one timing model).

On an actually heterogeneous platform the partition it produces is
uniformly balanced and therefore mis-balanced in reality — the effect the
paper's evaluation quantifies (Figures 7-8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.ilppar import IlpParOptions
from repro.core.solution import SolutionCandidate, SolutionSet, TaskSegment
from repro.ilp.model import InfeasibleError, LinExpr, Model, Variable, lin_sum
from repro.ilp.stats import StatsCollector
from repro.htg.nodes import HierarchicalNode, HTGNode
from repro.platforms.description import Platform


@dataclass
class HomoParInstance:
    """A built-but-unsolved homogeneous model plus decoding context.

    Counterpart of :class:`repro.core.ilppar.IlpParInstance` for the
    baseline ILP; see there for the build/solve/extract split rationale.
    """

    model: Model
    node: HierarchicalNode
    ref_class: str
    children: List[HTGNode]
    cand_table: List[List[SolutionCandidate]]
    tasks: List[int]
    fork: int
    join: int
    x: List[List[Variable]]
    p: List[List[Variable]]


def homogeneous_parallelize_node(
    node: HierarchicalNode,
    budget: int,
    platform: Platform,
    solution_sets: Mapping[int, SolutionSet],
    collector: Optional[StatsCollector] = None,
    options: Optional[IlpParOptions] = None,
    ref_class: Optional[str] = None,
) -> Optional[SolutionCandidate]:
    """Partition ``node``'s children assuming ``budget`` identical cores.

    ``ref_class`` names the class whose timing model is used for all
    costs (default: the platform's main class). The returned candidate is
    tagged with that class and carries class-agnostic extra-processor
    usage recorded under the reference class name.
    """
    options = options or IlpParOptions()
    inst = build_homopar_model(
        node, budget, platform, solution_sets, options, ref_class
    )
    if inst is None:
        return None
    try:
        solution = inst.model.solve(
            backend=options.backend,
            collector=collector,
            time_limit=options.time_limit_s,
            mip_rel_gap=options.mip_rel_gap,
        )
    except InfeasibleError:
        return None
    return extract_homopar_candidate(inst, solution)


def build_homopar_model(
    node: HierarchicalNode,
    budget: int,
    platform: Platform,
    solution_sets: Mapping[int, SolutionSet],
    options: Optional[IlpParOptions] = None,
    ref_class: Optional[str] = None,
) -> Optional[HomoParInstance]:
    """Construct the homogeneous baseline model without solving it."""
    options = options or IlpParOptions()
    children = node.topological_children()
    if not children or budget < 2:
        return None
    num_extra = min(budget - 1, len(children))
    if num_extra < 1:
        return None

    ref = ref_class or platform.main_class.name
    ec = max(1.0, node.exec_count)
    tco = platform.task_creation_overhead_us

    cand_table: List[List[SolutionCandidate]] = []
    for child in children:
        sset = solution_sets.get(child.uid)
        if sset is None:
            raise ValueError(f"child {child.label!r} has no solution set")
        entries = sset.for_class(ref)
        if not entries:
            raise ValueError(f"child {child.label!r} has no {ref!r} candidates")
        cand_table.append(entries)

    fork = 0
    join = num_extra + 1
    tasks = list(range(num_extra + 2))
    extras = tasks[1:-1]

    model = Model(f"homopar[{node.label}|i={budget}]")

    x = [
        [model.add_binary(f"x_n{ni}_t{t}") for t in tasks]
        for ni in range(len(children))
    ]
    for ni in range(len(children)):
        model.add_constraint(lin_sum(x[ni]) == 1, name=f"node{ni}_once")

    p = [
        [model.add_binary(f"p_n{ni}_s{si}") for si in range(len(cand_table[ni]))]
        for ni in range(len(children))
    ]
    for ni in range(len(children)):
        model.add_constraint(lin_sum(p[ni]) == 1, name=f"sol{ni}_once")

    used = {t: model.add_binary(f"used_t{t}") for t in extras}
    for t in extras:
        for ni in range(len(children)):
            model.add_constraint(used[t] >= x[ni][t], name=f"used{t}_n{ni}")
        if t + 1 in used:
            model.add_constraint(used[t] >= used[t + 1], name=f"used_order_{t}")

    def taskid_expr(ni: int) -> LinExpr:
        return lin_sum(t * x[ni][t] for t in tasks if t > 0)

    for ni in range(1, len(children)):
        model.add_constraint(taskid_expr(ni) >= taskid_expr(ni - 1), name=f"monotone_{ni}")

    def xfer_us(bytes_volume: float, transfers: float) -> float:
        if bytes_volume <= 0:
            return 0.0
        ic = platform.interconnect
        return ic.latency_us * max(1.0, transfers) + bytes_volume / ic.bandwidth_bytes_per_us

    index_of = {child.uid: ni for ni, child in enumerate(children)}
    inner_edges: List[Tuple[int, int, float]] = []
    out_edge_time = [0.0] * len(children)
    in_edge_time = [0.0] * len(children)
    order_pairs = set()
    for edge in node.edges:
        src_ni = index_of.get(edge.src.uid)
        dst_ni = index_of.get(edge.dst.uid)
        if edge.src is node.comm_in and dst_ni is not None:
            in_edge_time[dst_ni] += xfer_us(edge.bytes_volume, ec)
        elif edge.dst is node.comm_out and src_ni is not None:
            out_edge_time[src_ni] += xfer_us(edge.bytes_volume, ec)
        elif src_ni is not None and dst_ni is not None:
            transfers = max(1.0, edge.src.exec_count)
            inner_edges.append((src_ni, dst_ni, xfer_us(edge.bytes_volume, transfers)))
            order_pairs.add((src_ni, dst_ni))

    child_cost_const = [
        [cand.exec_time_us for cand in cand_table[ni]] for ni in range(len(children))
    ]
    max_child_cost = [max(row) for row in child_cost_const]
    childcost = []
    for ni in range(len(children)):
        var = model.add_var(f"childcost_{ni}", 0.0)
        model.add_constraint(
            var
            == lin_sum(
                child_cost_const[ni][si] * p[ni][si]
                for si in range(len(cand_table[ni]))
            ),
            name=f"childcost_def_{ni}",
        )
        childcost.append(var)

    contrib: Dict[Tuple[int, int], Variable] = {}
    for ni in range(len(children)):
        for t in tasks:
            var = model.add_var(f"contrib_n{ni}_t{t}", 0.0)
            model.add_implication_ge(
                x[ni][t], var, childcost[ni], big_m=max_child_cost[ni],
                name=f"contrib_gate_n{ni}_t{t}",
            )
            contrib[(ni, t)] = var

    control_us = platform.get_class(ref).time_us(
        getattr(node, "control_overhead_cycles", 0.0)
    )
    cost = {}
    for t in tasks:
        terms: List[LinExpr] = [contrib[(ni, t)]._as_expr() for ni in range(len(children))]
        if t == join and control_us > 0:
            terms.append(LinExpr({}, control_us))
        if t in extras:
            terms.append((ec * tco) * used[t])
            for ni in range(len(children)):
                if in_edge_time[ni] > 0:
                    terms.append(in_edge_time[ni] * x[ni][t])
        var = model.add_var(f"cost_t{t}", 0.0)
        model.add_constraint(var == lin_sum(terms), name=f"cost_def_t{t}")
        cost[t] = var

    commcost = {}
    for t in tasks:
        terms = []
        for src_ni, dst_ni, xt in inner_edges:
            if xt <= 0:
                continue
            both = model.add_and(x[src_ni][t], x[dst_ni][t], name=f"w_e{src_ni}_{dst_ni}_t{t}")
            expr = xt * (x[src_ni][t] - both)
            if t == fork:
                w2 = model.add_and(
                    x[src_ni][fork], x[dst_ni][join], name=f"w2_e{src_ni}_{dst_ni}"
                )
                expr = expr - xt * w2
            terms.append(expr)
        if t in extras:
            for ni in range(len(children)):
                if out_edge_time[ni] > 0:
                    terms.append(out_edge_time[ni] * x[ni][t])
        var = model.add_var(f"commcost_t{t}", 0.0)
        model.add_constraint(var >= lin_sum(terms) if terms else var >= 0,
                             name=f"commcost_def_t{t}")
        commcost[t] = var

    pred: Dict[Tuple[int, int], Variable] = {}
    for t in tasks:
        for u in tasks:
            if t != u:
                pred[(t, u)] = model.add_binary(f"pred_t{t}_u{u}")
    for src_ni, dst_ni in order_pairs:
        for t in tasks:
            for u in tasks:
                if t == u:
                    continue
                model.add_constraint(
                    pred[(t, u)] >= x[src_ni][t] + x[dst_ni][u] - 1,
                    name=f"pred_e{src_ni}_{dst_ni}_t{t}_u{u}",
                )
    for ni in range(len(children)):
        for t in tasks:
            if t != join:
                model.add_constraint(
                    pred[(t, join)] >= x[ni][t], name=f"join_pred_n{ni}_t{t}"
                )

    total_comm_bound = (
        sum(xt for *_s, xt in inner_edges) + sum(out_edge_time) + sum(in_edge_time)
    )
    big_m = sum(max_child_cost) + len(extras) * ec * tco + total_comm_bound + 1.0
    accum = {t: model.add_var(f"accum_t{t}", 0.0) for t in tasks}
    for t in tasks:
        model.add_constraint(accum[t] >= cost[t], name=f"accum_base_t{t}")
        for u in tasks:
            if u == t:
                continue
            model.add_implication_ge(
                pred[(u, t)],
                accum[t],
                cost[t] + accum[u] + commcost[u],
                big_m=big_m,
                name=f"path_t{t}_u{u}",
            )

    # single uniform processor budget
    max_inner = max(
        (cand.total_procs - 1 for row in cand_table for cand in row), default=0
    )
    childprocs = []
    for ni in range(len(children)):
        coeffs = [cand.total_procs - 1 for cand in cand_table[ni]]
        if not any(coeffs):
            childprocs.append(None)
            continue
        var = model.add_var(f"childprocs_n{ni}", 0.0)
        model.add_constraint(
            var == lin_sum(coeffs[si] * p[ni][si] for si in range(len(coeffs))),
            name=f"childprocs_def_n{ni}",
        )
        childprocs.append(var)

    budget_terms: List[LinExpr] = [used[t]._as_expr() for t in extras]
    for t in tasks:
        relevant = [ni for ni in range(len(children)) if childprocs[ni] is not None]
        if not relevant:
            continue
        var = model.add_var(f"procsused_t{t}", 0.0)
        for ni in relevant:
            model.add_implication_ge(
                x[ni][t], var, childprocs[ni], big_m=max_inner,
                name=f"procsused_gate_t{t}_n{ni}",
            )
        budget_terms.append(var._as_expr())
    model.add_constraint(lin_sum(budget_terms) <= budget - 1, name="global_budget")

    model.minimize(accum[join])

    return HomoParInstance(
        model=model,
        node=node,
        ref_class=ref,
        children=children,
        cand_table=cand_table,
        tasks=tasks,
        fork=fork,
        join=join,
        x=x,
        p=p,
    )


def extract_homopar_candidate(
    inst: HomoParInstance, solution
) -> SolutionCandidate:
    """Decode a solved :class:`HomoParInstance` into a candidate."""
    node = inst.node
    ref = inst.ref_class
    children = inst.children
    cand_table = inst.cand_table
    tasks = inst.tasks
    fork = inst.fork
    join = inst.join
    x = inst.x
    p = inst.p

    task_children: Dict[int, List[HTGNode]] = {t: [] for t in tasks}
    child_choice: Dict[int, SolutionCandidate] = {}
    for ni, child in enumerate(children):
        t_of = next(t for t in tasks if solution[x[ni][t]] > 0.5)
        task_children[t_of].append(child)
        si = next(si for si in range(len(cand_table[ni])) if solution[p[ni][si]] > 0.5)
        child_choice[child.uid] = cand_table[ni][si]

    segments = []
    for t in tasks:
        role = "fork" if t == fork else ("join" if t == join else "extra")
        segments.append(
            TaskSegment(index=t, role=role, proc_class=ref,
                        children=tuple(task_children[t]))
        )

    used_procs: Dict[str, int] = {}
    for segment in segments:
        if segment.role == "extra" and segment.children:
            used_procs[ref] = used_procs.get(ref, 0) + 1
        inner_max = 0
        for child in segment.children:
            chosen = child_choice[child.uid]
            inner_max = max(inner_max, chosen.total_procs - 1)
        if inner_max:
            used_procs[ref] = used_procs.get(ref, 0) + inner_max

    return SolutionCandidate(
        node=node,
        main_class=ref,
        exec_time_us=solution.objective,
        segments=tuple(segments),
        child_choice=child_choice,
        used_procs=used_procs,
        is_sequential=False,
        energy_nj=sum(chosen.energy_nj for chosen in child_choice.values()),
    )
