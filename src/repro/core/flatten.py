"""Flattening: hierarchical solution → global atomic-task DAG.

The paper implements the chosen solution by source-to-source
transformation and hands it to the MPSoC simulator. Here the chosen
:class:`~repro.core.solution.SolutionCandidate` tree is expanded into a
flat DAG of *atomic tasks* — contiguous sequential work segments with a
processor-class requirement — connected by precedence edges carrying
communication volumes. The DAG is what the discrete-event simulator
(:mod:`repro.simulator`) executes and what the code generator annotates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.solution import SolutionCandidate
from repro.htg.nodes import HierarchicalNode, HTGNode
from repro.platforms.description import Platform


@dataclass
class AtomicTask:
    """A contiguous sequential execution segment.

    ``proc_class`` is the required processor class, or ``None`` when the
    producing approach is class-blind (homogeneous baseline) and any core
    may execute the task. ``spawn_overhead_us`` is charged once at task
    start (task-creation overhead for newly spawned tasks).
    """

    tid: int
    label: str
    cycles: float
    proc_class: Optional[str]
    spawn_overhead_us: float = 0.0
    node_uid: Optional[int] = None

    @property
    def is_marker(self) -> bool:
        return self.cycles == 0.0 and self.spawn_overhead_us == 0.0


@dataclass
class FlatEdge:
    """Precedence between atomic tasks; bytes flow src → dst."""

    src: int
    dst: int
    bytes_volume: float = 0.0
    transfers: float = 1.0


@dataclass
class FlatTaskGraph:
    """The flattened DAG with a unique entry and exit marker."""

    tasks: List[AtomicTask] = field(default_factory=list)
    edges: List[FlatEdge] = field(default_factory=list)
    entry: int = 0
    exit: int = 0

    def successors(self, tid: int) -> List[FlatEdge]:
        return [e for e in self.edges if e.src == tid]

    def predecessors(self, tid: int) -> List[FlatEdge]:
        return [e for e in self.edges if e.dst == tid]

    @property
    def num_work_tasks(self) -> int:
        return sum(1 for t in self.tasks if t.cycles > 0)

    def total_cycles(self) -> float:
        return sum(t.cycles for t in self.tasks)

    def validate(self) -> List[str]:
        """Check the graph is a DAG with valid endpoints."""
        problems: List[str] = []
        ids = {t.tid for t in self.tasks}
        if self.entry not in ids or self.exit not in ids:
            problems.append("entry/exit not in task set")
        valid_edges = []
        for edge in self.edges:
            if edge.src not in ids or edge.dst not in ids:
                problems.append(f"dangling edge {edge.src}->{edge.dst}")
            else:
                valid_edges.append(edge)
        # Kahn's algorithm for cycle detection (over well-formed edges).
        indeg: Dict[int, int] = {t.tid: 0 for t in self.tasks}
        adj: Dict[int, List[int]] = {t.tid: [] for t in self.tasks}
        for edge in valid_edges:
            indeg[edge.dst] += 1
            adj[edge.src].append(edge.dst)
        queue = [tid for tid, d in indeg.items() if d == 0]
        visited = 0
        while queue:
            tid = queue.pop()
            visited += 1
            for nxt in adj[tid]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    queue.append(nxt)
        if visited != len(self.tasks):
            problems.append("task graph contains a cycle")
        return problems


class _FlattenError(RuntimeError):
    pass


def flatten_solution(
    candidate: SolutionCandidate,
    platform: Platform,
    class_blind: bool = False,
) -> FlatTaskGraph:
    """Expand a solution candidate into a :class:`FlatTaskGraph`.

    ``class_blind=True`` drops the class requirements (used for the
    homogeneous baseline, whose partition carries no real mapping).
    """
    builder = _Flattener(platform, class_blind)
    entry, exit_ = builder.flatten(candidate)
    graph = builder.graph
    graph.entry = entry
    graph.exit = exit_
    return graph


class _Flattener:
    def __init__(self, platform: Platform, class_blind: bool):
        self.platform = platform
        self.class_blind = class_blind
        self.graph = FlatTaskGraph()
        self._next_tid = 0

    def _new_task(
        self,
        label: str,
        cycles: float,
        proc_class: Optional[str],
        spawn_overhead_us: float = 0.0,
        node_uid: Optional[int] = None,
    ) -> int:
        tid = self._next_tid
        self._next_tid += 1
        if self.class_blind:
            proc_class = None
        self.graph.tasks.append(
            AtomicTask(tid, label, cycles, proc_class, spawn_overhead_us, node_uid)
        )
        return tid

    def _edge(self, src: int, dst: int, bytes_volume: float = 0.0, transfers: float = 1.0):
        self.graph.edges.append(FlatEdge(src, dst, bytes_volume, transfers))

    # -- recursion ------------------------------------------------------------

    def flatten(self, candidate: SolutionCandidate) -> Tuple[int, int]:
        """Returns (entry_tid, exit_tid) of the candidate's subgraph."""
        node = candidate.node
        if candidate.is_sequential:
            tid = self._new_task(
                f"seq:{node.label}", node.total_cycles(), candidate.main_class,
                node_uid=node.uid,
            )
            return tid, tid

        assert isinstance(node, HierarchicalNode)
        ec = max(1.0, node.exec_count)
        tco = self.platform.task_creation_overhead_us
        entry = self._new_task(f"fork:{node.label}", 0.0, candidate.main_class)
        exit_ = self._new_task(f"join:{node.label}", 0.0, candidate.main_class)

        # Expand each segment as a sequential chain of child subgraphs.
        endpoints: Dict[int, Tuple[int, int]] = {}  # child uid -> (entry, exit)
        segment_of: Dict[int, int] = {}
        for segment in candidate.segments:
            prev_exit: Optional[int] = None
            first = True
            for child in segment.children:
                chosen = candidate.child_choice[child.uid]
                c_entry, c_exit = self.flatten(chosen)
                endpoints[child.uid] = (c_entry, c_exit)
                segment_of[child.uid] = segment.index
                if first and segment.role == "extra":
                    self.graph.tasks[c_entry].spawn_overhead_us += ec * tco
                if prev_exit is not None:
                    self._edge(prev_exit, c_entry)
                else:
                    self._edge(entry, c_entry)
                prev_exit = c_exit
                first = False
            if prev_exit is not None:
                self._edge(prev_exit, exit_)

        # Dependence edges between children in different segments; bytes are
        # charged by the simulator when the endpoints run on distinct cores.
        for edge in node.edges:
            src_uid = edge.src.uid
            dst_uid = edge.dst.uid
            if edge.src is node.comm_in and dst_uid in endpoints:
                seg = segment_of[dst_uid]
                is_extra = self._segment_role(candidate, seg) == "extra"
                self._edge(
                    entry,
                    endpoints[dst_uid][0],
                    edge.bytes_volume if is_extra else 0.0,
                    transfers=ec,
                )
            elif edge.dst is node.comm_out and src_uid in endpoints:
                seg = segment_of[src_uid]
                is_extra = self._segment_role(candidate, seg) == "extra"
                self._edge(
                    endpoints[src_uid][1],
                    exit_,
                    edge.bytes_volume if is_extra else 0.0,
                    transfers=ec,
                )
            elif src_uid in endpoints and dst_uid in endpoints:
                same_segment = segment_of[src_uid] == segment_of[dst_uid]
                if edge.backward and not same_segment:
                    raise _FlattenError(
                        f"backward edge {edge} crosses tasks in the chosen "
                        f"solution — the ILP should have colocated the nodes"
                    )
                if same_segment:
                    continue  # already ordered by the segment chain
                transfers = max(1.0, edge.src.exec_count)
                self._edge(
                    endpoints[src_uid][1],
                    endpoints[dst_uid][0],
                    edge.bytes_volume,
                    transfers=transfers,
                )

        # The join must also wait for every segment (already wired above via
        # segment chains), and the entry precedes the exit even when all
        # segments are empty.
        self._edge(entry, exit_)
        return entry, exit_

    @staticmethod
    def _segment_role(candidate: SolutionCandidate, index: int) -> str:
        for segment in candidate.segments:
            if segment.index == index:
                return segment.role
        return "extra"
