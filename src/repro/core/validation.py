"""Solution validation: independent checking of ILP outputs.

The ILP solvers are trusted to optimize, but the *model* could be wrong;
this module re-checks every extracted candidate against the AHTG and the
platform description, independently of the ILP formulation:

* every child of the node appears in exactly one segment;
* chosen per-child candidates are tagged with their segment's class;
* main segments carry the candidate's tagged class;
* per-class and total processor budgets hold;
* precedence feasibility: no dependence cycle between distinct tasks
  (backward loop-carried edges must be intra-task);
* the reported execution time is at least the critical-path lower bound.

``validate_candidate`` returns a list of violation strings (empty = ok);
``validate_result`` walks a whole parallelization result.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.parallelize import ParallelizeResult
from repro.core.solution import SolutionCandidate
from repro.htg.nodes import HierarchicalNode
from repro.platforms.description import Platform


def validate_candidate(
    candidate: SolutionCandidate,
    platform: Platform,
    node: Optional[HierarchicalNode] = None,
    class_blind: bool = False,
) -> List[str]:
    """Check one candidate; returns human-readable violations.

    ``class_blind=True`` validates a homogeneous-baseline candidate: its
    tasks carry only the reference class, and the paper's point is
    precisely that such partitions ignore the real per-class capacities —
    so the per-class budget check is replaced by a total-core check.
    """
    problems: List[str] = []
    if candidate.is_sequential:
        if candidate.segments:
            problems.append("sequential candidate must not carry segments")
        return problems

    target = node or candidate.node
    if not isinstance(target, HierarchicalNode):
        return ["parallel candidate on a non-hierarchical node"]

    problems.extend(_check_coverage(candidate, target))
    problems.extend(_check_classes(candidate))
    if class_blind:
        if candidate.total_procs > platform.total_cores:
            problems.append(
                f"uses {candidate.total_procs} of {platform.total_cores} cores"
            )
    else:
        problems.extend(_check_budgets(candidate, platform))
    problems.extend(_check_precedence(candidate, target))
    problems.extend(_check_time_lower_bound(candidate, platform))
    return problems


def validate_result(result: ParallelizeResult) -> List[str]:
    """Validate the chosen best candidate and every nested choice."""
    problems: List[str] = []
    class_blind = result.approach == "homogeneous"

    def visit(candidate: SolutionCandidate, path: str) -> None:
        for problem in validate_candidate(
            candidate, result.platform, class_blind=class_blind
        ):
            problems.append(f"{path}: {problem}")
        for uid, chosen in candidate.child_choice.items():
            visit(chosen, f"{path}/{uid}")

    visit(result.best, "root")
    return problems


# ---------------------------------------------------------------------------


def _check_coverage(candidate: SolutionCandidate, node: HierarchicalNode) -> List[str]:
    problems = []
    placed: Dict[int, int] = {}
    for segment in candidate.segments:
        for child in segment.children:
            placed[child.uid] = placed.get(child.uid, 0) + 1
    for child in node.children:
        count = placed.get(child.uid, 0)
        if count != 1:
            problems.append(
                f"child {child.label!r} appears in {count} segments (expected 1)"
            )
    extras = set(placed) - {c.uid for c in node.children}
    for uid in extras:
        problems.append(f"segment contains unknown child uid {uid}")
    for child in node.children:
        if child.uid not in candidate.child_choice:
            problems.append(f"child {child.label!r} has no chosen sub-solution")
    return problems


def _check_classes(candidate: SolutionCandidate) -> List[str]:
    problems = []
    for segment in candidate.segments:
        if segment.is_main and segment.proc_class != candidate.main_class:
            problems.append(
                f"main segment {segment.index} on {segment.proc_class!r}, "
                f"candidate tagged {candidate.main_class!r}"
            )
        for child in segment.children:
            chosen = candidate.child_choice.get(child.uid)
            if chosen is not None and chosen.main_class != segment.proc_class:
                problems.append(
                    f"child {child.label!r} uses a {chosen.main_class!r} "
                    f"candidate inside a {segment.proc_class!r} task"
                )
    return problems


def _check_budgets(candidate: SolutionCandidate, platform: Platform) -> List[str]:
    problems = []
    # recompute per-class usage from the segments, independently
    usage: Dict[str, int] = {}
    for segment in candidate.segments:
        if segment.role == "extra" and segment.children:
            usage[segment.proc_class] = usage.get(segment.proc_class, 0) + 1
        inner: Dict[str, int] = {}
        for child in segment.children:
            chosen = candidate.child_choice[child.uid]
            for cname, k in chosen.used_procs.items():
                inner[cname] = max(inner.get(cname, 0), k)
        for cname, k in inner.items():
            usage[cname] = usage.get(cname, 0) + k
    for pc in platform.processor_classes:
        own = 1 if candidate.main_class == pc.name else 0
        if usage.get(pc.name, 0) + own > pc.count:
            problems.append(
                f"class {pc.name!r}: uses {usage.get(pc.name, 0)} + {own} (main) "
                f"of {pc.count} processors"
            )
    if usage != candidate.used_procs and any(
        usage.get(c, 0) != candidate.used_procs.get(c, 0)
        for c in set(usage) | set(candidate.used_procs)
    ):
        problems.append(
            f"reported used_procs {candidate.used_procs} != recomputed {usage}"
        )
    return problems


def _check_precedence(candidate: SolutionCandidate, node: HierarchicalNode) -> List[str]:
    problems = []
    segment_of: Dict[int, int] = {}
    for segment in candidate.segments:
        for child in segment.children:
            segment_of[child.uid] = segment.index
    # task-level dependence graph must be acyclic
    succ: Dict[int, Set[int]] = {}
    for edge in node.edges_between_children():
        src_seg = segment_of.get(edge.src.uid)
        dst_seg = segment_of.get(edge.dst.uid)
        if src_seg is None or dst_seg is None or src_seg == dst_seg:
            continue
        if edge.backward:
            problems.append(
                f"backward edge {edge.src.label!r}->{edge.dst.label!r} "
                f"crosses tasks {src_seg}->{dst_seg}"
            )
        succ.setdefault(src_seg, set()).add(dst_seg)
    if _has_cycle(succ):
        problems.append("task precedence graph contains a cycle")
    return problems


def _has_cycle(succ: Dict[int, Set[int]]) -> bool:
    # Iterative three-color DFS: flattened AHTGs can be deep enough that a
    # recursive walk overruns the interpreter's recursion limit.
    color: Dict[int, int] = {}
    for root in list(succ):
        if color.get(root, 0) != 0:
            continue
        stack: List[tuple] = [(root, None)]
        while stack:
            vertex, iterator = stack.pop()
            if iterator is None:
                if color.get(vertex, 0) == 2:
                    continue
                color[vertex] = 1
                iterator = iter(succ.get(vertex, ()))
            descended = False
            for nxt in iterator:
                state = color.get(nxt, 0)
                if state == 1:
                    return True
                if state == 0:
                    stack.append((vertex, iterator))
                    stack.append((nxt, None))
                    descended = True
                    break
            if not descended:
                color[vertex] = 2
    return False


def _check_time_lower_bound(
    candidate: SolutionCandidate, platform: Platform
) -> List[str]:
    problems = []
    # the candidate can never claim to finish before its most expensive task
    for segment in candidate.segments:
        total = sum(
            candidate.child_choice[c.uid].exec_time_us for c in segment.children
        )
        if total > candidate.exec_time_us + 1e-6:
            problems.append(
                f"task {segment.index} alone takes {total:.1f}us, candidate "
                f"claims {candidate.exec_time_us:.1f}us"
            )
    return problems
