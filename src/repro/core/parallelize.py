"""Algorithm 1: the global bottom-up parallelization.

``PARALLELIZE`` walks the AHTG bottom-up. Every node first receives its
*sequential* solution candidates (one per processor class — the paper's
``getSequentialSolutions``). For hierarchical nodes the ILP is then
invoked repeatedly: once per processor class hosting the main task and,
within a class, with a decreasing processor budget ``i`` (paper lines
14-20), so the parallel set offers the parent level a spectrum of
time/processor trade-offs. The most efficient root candidate (for the
platform's main class) is the implemented solution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.homogeneous import homogeneous_parallelize_node
from repro.core.ilppar import IlpParOptions, ilp_parallelize_node
from repro.core.solution import SolutionCandidate, SolutionSet
from repro.htg.graph import HTG
from repro.htg.nodes import HierarchicalNode, HTGNode
from repro.ilp.stats import StatsCollector
from repro.platforms.description import Platform


@dataclass
class ParallelizeOptions:
    """Knobs of the global algorithm."""

    backend: str = "scipy"
    time_limit_s: Optional[float] = 30.0
    mip_rel_gap: float = 0.0
    #: Skip the ILP for hierarchical nodes whose whole-run cost on the
    #: fastest class is below this (µs): spawning tasks there can never
    #: amortize the task-creation overhead.
    min_parallelize_us: float = 0.0
    #: "time" (paper objective) or "energy" (future-work extension).
    objective: str = "time"
    energy_deadline_factor: float = 1.0

    def ilp_options(self) -> IlpParOptions:
        return IlpParOptions(
            backend=self.backend,
            time_limit_s=self.time_limit_s,
            mip_rel_gap=self.mip_rel_gap,
            objective=self.objective,
            energy_deadline_factor=self.energy_deadline_factor,
        )


@dataclass
class ParallelizeResult:
    """Outcome of one global parallelization run."""

    best: SolutionCandidate
    solution_sets: Dict[int, SolutionSet]
    stats: StatsCollector
    wall_seconds: float
    htg: HTG
    platform: Platform
    approach: str

    @property
    def estimated_exec_time_us(self) -> float:
        return self.best.exec_time_us

    def sequential_time_us(self) -> float:
        """Sequential execution on one core of the platform's main class."""
        return self.platform.main_class.time_us(self.htg.root.total_cycles())

    @property
    def estimated_speedup(self) -> float:
        """Model-estimated speedup vs. sequential on the main core."""
        parallel = self.estimated_exec_time_us
        return self.sequential_time_us() / parallel if parallel > 0 else float("inf")


class _BaseParallelizer:
    def __init__(self, platform: Platform, options: Optional[ParallelizeOptions] = None):
        self.platform = platform
        self.options = options or ParallelizeOptions()

    def parallelize(self, htg: HTG) -> ParallelizeResult:
        start = time.perf_counter()
        stats = StatsCollector()
        solution_sets: Dict[int, SolutionSet] = {}
        self._parallelize_node(htg.get_root_node(), solution_sets, stats)
        best = self._select_best(htg, solution_sets)
        wall = time.perf_counter() - start
        return ParallelizeResult(
            best=best,
            solution_sets=solution_sets,
            stats=stats,
            wall_seconds=wall,
            htg=htg,
            platform=self.platform,
            approach=self.approach,
        )

    # -- template methods ---------------------------------------------------

    approach = "base"

    def _seed_sequential(self, node: HTGNode, sset: SolutionSet) -> None:
        raise NotImplementedError

    def _run_ilps(self, node, solution_sets, sset, stats) -> None:
        raise NotImplementedError

    def _select_best(self, htg, solution_sets) -> SolutionCandidate:
        raise NotImplementedError

    # -- recursion ------------------------------------------------------------

    def _parallelize_node(
        self,
        node: HTGNode,
        solution_sets: Dict[int, SolutionSet],
        stats: StatsCollector,
    ) -> None:
        if isinstance(node, HierarchicalNode):
            for child in node.children:
                self._parallelize_node(child, solution_sets, stats)
        sset = SolutionSet()
        self._seed_sequential(node, sset)
        if isinstance(node, HierarchicalNode) and node.children:
            if self._worth_parallelizing(node):
                self._run_ilps(node, solution_sets, sset, stats)
        solution_sets[node.uid] = sset

    def _worth_parallelizing(self, node: HierarchicalNode) -> bool:
        fastest = max(
            self.platform.processor_classes, key=lambda pc: pc.effective_mhz
        )
        return (
            fastest.time_us(node.total_cycles()) >= self.options.min_parallelize_us
        )


class HeterogeneousParallelizer(_BaseParallelizer):
    """The paper's new approach: per-class candidates + class mapping."""

    approach = "heterogeneous"

    def _seed_sequential(self, node: HTGNode, sset: SolutionSet) -> None:
        for pc in self.platform.processor_classes:
            sset.add(
                SolutionCandidate(
                    node=node,
                    main_class=pc.name,
                    exec_time_us=pc.time_us(node.total_cycles()),
                    is_sequential=True,
                    energy_nj=node.total_cycles() * pc.energy_per_cycle_nj,
                )
            )

    def _run_ilps(self, node, solution_sets, sset, stats) -> None:
        for pc in self.platform.processor_classes:
            budget = self.platform.total_cores
            while budget > 1:
                candidate = ilp_parallelize_node(
                    node,
                    pc.name,
                    budget,
                    self.platform,
                    solution_sets,
                    collector=stats,
                    options=self.options.ilp_options(),
                )
                if candidate is None:
                    break
                sset.add(candidate)
                budget = min(budget - 1, candidate.num_tasks - 1)

    def _select_best(self, htg, solution_sets) -> SolutionCandidate:
        main = self.platform.main_class.name
        best = solution_sets[htg.root.uid].best_for_class(main)
        assert best is not None, "sequential seeding guarantees a candidate"
        return best


class HomogeneousParallelizer(_BaseParallelizer):
    """The baseline [6]: class-blind partitioning on the main class's timing."""

    approach = "homogeneous"

    def __init__(
        self,
        platform: Platform,
        options: Optional[ParallelizeOptions] = None,
        ref_class: Optional[str] = None,
    ):
        super().__init__(platform, options)
        self.ref_class = ref_class or platform.main_class.name

    def _seed_sequential(self, node: HTGNode, sset: SolutionSet) -> None:
        pc = self.platform.get_class(self.ref_class)
        sset.add(
            SolutionCandidate(
                node=node,
                main_class=pc.name,
                exec_time_us=pc.time_us(node.total_cycles()),
                is_sequential=True,
                energy_nj=node.total_cycles() * pc.energy_per_cycle_nj,
            )
        )

    def _run_ilps(self, node, solution_sets, sset, stats) -> None:
        budget = self.platform.total_cores
        while budget > 1:
            candidate = homogeneous_parallelize_node(
                node,
                budget,
                self.platform,
                solution_sets,
                collector=stats,
                options=self.options.ilp_options(),
                ref_class=self.ref_class,
            )
            if candidate is None:
                break
            sset.add(candidate)
            budget = min(budget - 1, candidate.num_tasks - 1)

    def _select_best(self, htg, solution_sets) -> SolutionCandidate:
        best = solution_sets[htg.root.uid].best_for_class(self.ref_class)
        assert best is not None, "sequential seeding guarantees a candidate"
        return best
