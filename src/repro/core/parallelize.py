"""Algorithm 1: the global bottom-up parallelization.

``PARALLELIZE`` walks the AHTG bottom-up. Every node first receives its
*sequential* solution candidates (one per processor class — the paper's
``getSequentialSolutions``). For hierarchical nodes the ILP is then
invoked repeatedly: once per processor class hosting the main task and,
within a class, with a decreasing processor budget ``i`` (paper lines
14-20), so the parallel set offers the parent level a spectrum of
time/processor trade-offs. The most efficient root candidate (for the
platform's main class) is the implemented solution.

The walk is organized by levels (deepest first): all budget sweeps of one
level are mutually independent, so they are expressed as
:class:`repro.core.schedule.Sweep` chains and executed through a
:class:`repro.ilp.service.SolverService` — serially at ``jobs=1``, fanned
out to a process pool at ``jobs>1``, and memoized either way when caching
is enabled. Candidates are merged into the solution sets in deterministic
(node, class, budget) order, so the result is bit-identical to the
original recursive implementation regardless of ``jobs``/cache state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.homogeneous import build_homopar_model, extract_homopar_candidate
from repro.core.ilppar import (
    IlpParOptions,
    build_ilppar_model,
    extract_ilppar_candidate,
)
from repro.core.schedule import Sweep, SolveJob, collect_levels, run_sweeps
from repro.core.solution import SolutionCandidate, SolutionSet
from repro.htg.graph import HTG
from repro.htg.nodes import HierarchicalNode, HTGNode
from repro.ilp.model import SolveStatus
from repro.ilp.service import SolverService, SolveSpec
from repro.ilp.stats import StatsCollector
from repro.platforms.description import Platform

#: Default on-disk cache location when ``cache=True`` without a directory.
DEFAULT_CACHE_DIR = ".repro_cache"


@dataclass
class ParallelizeOptions:
    """Knobs of the global algorithm."""

    backend: str = "scipy"
    time_limit_s: Optional[float] = 30.0
    mip_rel_gap: float = 0.0
    #: Skip the ILP for hierarchical nodes whose whole-run cost on the
    #: fastest class is below this (µs): spawning tasks there can never
    #: amortize the task-creation overhead.
    min_parallelize_us: float = 0.0
    #: "time" (paper objective) or "energy" (future-work extension).
    objective: str = "time"
    energy_deadline_factor: float = 1.0
    #: Worker processes for independent ILP solves; ``1`` solves serially
    #: in-process. Results are identical for any value.
    jobs: int = 1
    #: Enable structural memoization of ILP solves; on-disk entries go to
    #: ``cache_dir`` (default ``.repro_cache/``) and persist across runs.
    cache: bool = False
    cache_dir: Optional[str] = None
    #: In-memory memoization layer (within one run); independent of
    #: ``cache`` so repeated identical subtrees are deduplicated even
    #: without a persistent store.
    memory_cache: bool = True

    def ilp_options(self) -> IlpParOptions:
        return IlpParOptions(
            backend=self.backend,
            time_limit_s=self.time_limit_s,
            mip_rel_gap=self.mip_rel_gap,
            objective=self.objective,
            energy_deadline_factor=self.energy_deadline_factor,
        )

    def make_service(self) -> SolverService:
        cache_dir = None
        if self.cache:
            cache_dir = self.cache_dir or DEFAULT_CACHE_DIR
        return SolverService(
            jobs=self.jobs, cache_dir=cache_dir, memory_cache=self.memory_cache
        )


@dataclass
class ParallelizeResult:
    """Outcome of one global parallelization run."""

    best: SolutionCandidate
    solution_sets: Dict[int, SolutionSet]
    stats: StatsCollector
    wall_seconds: float
    htg: HTG
    platform: Platform
    approach: str

    @property
    def estimated_exec_time_us(self) -> float:
        return self.best.exec_time_us

    def sequential_time_us(self) -> float:
        """Sequential execution on one core of the platform's main class."""
        return self.platform.main_class.time_us(self.htg.root.total_cycles())

    @property
    def estimated_speedup(self) -> float:
        """Model-estimated speedup vs. sequential on the main core."""
        parallel = self.estimated_exec_time_us
        return self.sequential_time_us() / parallel if parallel > 0 else float("inf")


class _BaseParallelizer:
    def __init__(self, platform: Platform, options: Optional[ParallelizeOptions] = None):
        self.platform = platform
        self.options = options or ParallelizeOptions()
        # The fastest class is a pure function of the platform; computing
        # it per node made _worth_parallelizing O(classes) on every node.
        self._fastest_class = max(
            platform.processor_classes, key=lambda pc: pc.effective_mhz
        )

    def parallelize(self, htg: HTG) -> ParallelizeResult:
        start = time.perf_counter()
        stats = StatsCollector()
        solution_sets: Dict[int, SolutionSet] = {}
        with self.options.make_service() as service:
            for level in collect_levels(htg.get_root_node()):
                self._process_level(level, solution_sets, stats, service)
            stats.pool = service.pool_stats()
        best = self._select_best(htg, solution_sets)
        wall = time.perf_counter() - start
        return ParallelizeResult(
            best=best,
            solution_sets=solution_sets,
            stats=stats,
            wall_seconds=wall,
            htg=htg,
            platform=self.platform,
            approach=self.approach,
        )

    # -- level engine ---------------------------------------------------------

    def _process_level(
        self,
        level: List[HTGNode],
        solution_sets: Dict[int, SolutionSet],
        stats: StatsCollector,
        service: SolverService,
    ) -> None:
        work = []
        for node in level:
            sset = SolutionSet()
            self._seed_sequential(node, sset)
            sweeps: List[Sweep] = []
            if (
                isinstance(node, HierarchicalNode)
                and node.children
                and self._worth_parallelizing(node)
            ):
                sweeps = self._node_sweeps(node, solution_sets)
            work.append((node, sset, sweeps))

        all_sweeps = [sweep for _n, _s, sweeps in work for sweep in sweeps]
        if all_sweeps:
            run_sweeps(all_sweeps, service)

        # Merge in construction order — (node, class, budget) — which is
        # exactly the insertion order of the recursive implementation.
        for node, sset, sweeps in work:
            for sweep in sweeps:
                for candidate in sweep.candidates:
                    sset.add(candidate)
                stats.merge(sweep.collector)
            solution_sets[node.uid] = sset

    def _solve_spec(self, prev_objective: Optional[float]) -> SolveSpec:
        """Spec for the next solve of a budget sweep.

        ``prev_objective`` — the previous (larger) budget's optimum — is a
        valid *lower* bound for the shrunken feasible region, letting the
        branch-and-bound backend stop as soon as it matches it. It is a
        search accelerator only, never a cutoff: seeding it as an
        incumbent would prune the true optimum (budgets decrease, so
        objectives only get worse along a sweep).
        """
        opts = self.options
        return SolveSpec(
            backend=opts.backend,
            time_limit_s=opts.time_limit_s,
            mip_rel_gap=opts.mip_rel_gap,
            lower_bound=prev_objective if opts.backend == "bnb" else None,
        )

    # -- template methods ---------------------------------------------------

    approach = "base"

    def _seed_sequential(self, node: HTGNode, sset: SolutionSet) -> None:
        raise NotImplementedError

    def _node_sweeps(
        self, node: HierarchicalNode, solution_sets: Dict[int, SolutionSet]
    ) -> List[Sweep]:
        raise NotImplementedError

    def _select_best(self, htg, solution_sets) -> SolutionCandidate:
        raise NotImplementedError

    def _worth_parallelizing(self, node: HierarchicalNode) -> bool:
        return (
            self._fastest_class.time_us(node.total_cycles())
            >= self.options.min_parallelize_us
        )


class HeterogeneousParallelizer(_BaseParallelizer):
    """The paper's new approach: per-class candidates + class mapping."""

    approach = "heterogeneous"

    def _seed_sequential(self, node: HTGNode, sset: SolutionSet) -> None:
        for pc in self.platform.processor_classes:
            sset.add(
                SolutionCandidate(
                    node=node,
                    main_class=pc.name,
                    exec_time_us=pc.time_us(node.total_cycles()),
                    is_sequential=True,
                    energy_nj=node.total_cycles() * pc.energy_per_cycle_nj,
                )
            )

    def _node_sweeps(self, node, solution_sets) -> List[Sweep]:
        sweeps = []
        for pc in self.platform.processor_classes:
            sweeps.append(
                Sweep(
                    label=f"n{node.uid}|{pc.name}",
                    make_gen=lambda out, seq_class=pc.name: self._sweep_gen(
                        node, seq_class, solution_sets, out
                    ),
                )
            )
        return sweeps

    def _sweep_gen(self, node, seq_class, solution_sets, out):
        budget = self.platform.total_cores
        prev_objective: Optional[float] = None
        while budget > 1:
            inst = build_ilppar_model(
                node, seq_class, budget, self.platform, solution_sets,
                options=self.options.ilp_options(),
            )
            if inst is None:
                return
            solution = yield SolveJob(
                inst.model,
                self._solve_spec(prev_objective),
                tag=f"n{node.uid}|{seq_class}",
            )
            if solution is None:
                return
            candidate = extract_ilppar_candidate(inst, solution)
            out.append(candidate)
            if solution.status is SolveStatus.OPTIMAL:
                # Only a proven optimum is a sound bound for the next
                # (smaller) budget; a timeout incumbent may overshoot it.
                prev_objective = solution.objective
            else:
                prev_objective = None
            budget = min(budget - 1, candidate.num_tasks - 1)

    def _select_best(self, htg, solution_sets) -> SolutionCandidate:
        main = self.platform.main_class.name
        best = solution_sets[htg.root.uid].best_for_class(main)
        assert best is not None, "sequential seeding guarantees a candidate"
        return best


class HomogeneousParallelizer(_BaseParallelizer):
    """The baseline [6]: class-blind partitioning on the main class's timing."""

    approach = "homogeneous"

    def __init__(
        self,
        platform: Platform,
        options: Optional[ParallelizeOptions] = None,
        ref_class: Optional[str] = None,
    ):
        super().__init__(platform, options)
        self.ref_class = ref_class or platform.main_class.name

    def _seed_sequential(self, node: HTGNode, sset: SolutionSet) -> None:
        pc = self.platform.get_class(self.ref_class)
        sset.add(
            SolutionCandidate(
                node=node,
                main_class=pc.name,
                exec_time_us=pc.time_us(node.total_cycles()),
                is_sequential=True,
                energy_nj=node.total_cycles() * pc.energy_per_cycle_nj,
            )
        )

    def _node_sweeps(self, node, solution_sets) -> List[Sweep]:
        return [
            Sweep(
                label=f"n{node.uid}|{self.ref_class}",
                make_gen=lambda out: self._sweep_gen(node, solution_sets, out),
            )
        ]

    def _sweep_gen(self, node, solution_sets, out):
        budget = self.platform.total_cores
        prev_objective: Optional[float] = None
        while budget > 1:
            inst = build_homopar_model(
                node, budget, self.platform, solution_sets,
                options=self.options.ilp_options(),
                ref_class=self.ref_class,
            )
            if inst is None:
                return
            solution = yield SolveJob(
                inst.model,
                self._solve_spec(prev_objective),
                tag=f"n{node.uid}|{self.ref_class}",
            )
            if solution is None:
                return
            candidate = extract_homopar_candidate(inst, solution)
            out.append(candidate)
            if solution.status is SolveStatus.OPTIMAL:
                prev_objective = solution.objective
            else:
                prev_objective = None
            budget = min(budget - 1, candidate.num_tasks - 1)

    def _select_best(self, htg, solution_sets) -> SolutionCandidate:
        best = solution_sets[htg.root.uid].best_for_class(self.ref_class)
        assert best is not None, "sequential seeding guarantees a candidate"
        return best
