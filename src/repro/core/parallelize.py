"""Algorithm 1: the global bottom-up parallelization.

``PARALLELIZE`` walks the AHTG bottom-up. Every node first receives its
*sequential* solution candidates (one per processor class — the paper's
``getSequentialSolutions``). For hierarchical nodes the ILP is then
invoked repeatedly: once per processor class hosting the main task and,
within a class, with a decreasing processor budget ``i`` (paper lines
14-20), so the parallel set offers the parent level a spectrum of
time/processor trade-offs. The most efficient root candidate (for the
platform's main class) is the implemented solution.

The walk is organized by levels (deepest first): all budget sweeps of one
level are mutually independent, so they are expressed as
:class:`repro.core.schedule.Sweep` chains and executed through a
:class:`repro.ilp.service.SolverService` — serially at ``jobs=1``, fanned
out to a process pool at ``jobs>1``, and memoized either way when caching
is enabled. Candidates are merged into the solution sets in deterministic
(node, class, budget) order, so the result is bit-identical to the
original recursive implementation regardless of ``jobs``/cache state.

Two execution shapes are offered on top of the same level engine:

* :meth:`_BaseParallelizer.parallelize` — run one AHTG to completion
  (creating a private service unless ``options.service`` injects a shared
  one).
* :meth:`_BaseParallelizer.start_session` — return a non-blocking
  :class:`ParallelizeSession` implementing the cooperative driver
  protocol of :mod:`repro.core.schedule`. A suite runner creates one
  session per benchmark cell against one shared service and drains them
  together with :func:`repro.core.schedule.drive`, so the ILPs of many
  runs interleave in one global queue and fill each other's level-barrier
  straggler tails.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.core.homogeneous import build_homopar_model, extract_homopar_candidate
from repro.core.ilppar import (
    IlpParOptions,
    build_ilppar_model,
    extract_ilppar_candidate,
)
from repro.core.schedule import (
    PendingSolve,
    Sweep,
    SweepSet,
    SolveJob,
    collect_levels,
    drive,
)
from repro.core.solution import SolutionCandidate, SolutionSet
from repro.htg.graph import HTG
from repro.htg.nodes import HierarchicalNode, HTGNode
from repro.ilp.model import SolveStatus
from repro.ilp.service import SolverService, SolveSpec
from repro.ilp.stats import StatsCollector
from repro.platforms.description import Platform

if TYPE_CHECKING:
    from repro.analysis.diagnostics import Diagnostic

#: Default on-disk cache location when ``cache=True`` without a directory.
DEFAULT_CACHE_DIR = ".repro_cache"


@dataclass
class ParallelizeOptions:
    """Knobs of the global algorithm."""

    backend: str = "scipy"
    time_limit_s: Optional[float] = 30.0
    mip_rel_gap: float = 0.0
    #: Skip the ILP for hierarchical nodes whose whole-run cost on the
    #: fastest class is below this (µs): spawning tasks there can never
    #: amortize the task-creation overhead.
    min_parallelize_us: float = 0.0
    #: "time" (paper objective) or "energy" (future-work extension).
    objective: str = "time"
    energy_deadline_factor: float = 1.0
    #: Worker processes for independent ILP solves; ``1`` solves serially
    #: in-process. Results are identical for any value.
    jobs: int = 1
    #: Enable structural memoization of ILP solves; on-disk entries go to
    #: ``cache_dir`` (default ``.repro_cache/``) and persist across runs.
    cache: bool = False
    cache_dir: Optional[str] = None
    #: In-memory memoization layer (within one run); independent of
    #: ``cache`` so repeated identical subtrees are deduplicated even
    #: without a persistent store.
    memory_cache: bool = True
    #: Replay every accepted ILP assignment against its own instance at
    #: solve time (the certificate tier of ``repro verify``): constraint
    #: residuals, bounds, integrality, objective and decode agreement.
    #: Diagnostics land on ``ParallelizeResult.certificates``. The check
    #: happens outside the solver, so candidates are unaffected.
    verify: bool = False
    #: Small-instance batching of pooled solves: up to ``batch_size``
    #: instances of at most ``batch_max_vars`` variables ship as one
    #: worker task. ``batch_size=1`` disables grouping (each solve is
    #: still dispatched in the compact wire format).
    batch_size: int = 8
    batch_max_vars: int = 96
    #: Scheduling portfolio mode (heterogeneous approach, time objective):
    #: ``"exact"`` (default) solves every ILP with the exact backend only;
    #: ``"heuristic"`` answers every node from the anytime heuristics
    #: (list scheduler + GA) without any exact solve, tagging candidates
    #: with their proven optimality gap; ``"race"`` runs the heuristic
    #: first and races the exact solver against it — the heuristic answer
    #: is injected as an incumbent into the ``bnb`` backend (turning
    #: cutoff-pruned searches into proved optima) and substituted, gap
    #: annotation included, when the exact solve times out or the worker
    #: pool is lost. The energy objective and the homogeneous baseline
    #: always solve exactly.
    portfolio: str = "exact"
    #: GA generation budget of each heuristic solve (0 = list scheduler
    #: only).
    heuristic_budget: int = 40
    #: Seed of the heuristic rngs. For a fixed seed, heuristic and
    #: portfolio runs are bit-reproducible across ``jobs``/``batch_size``
    #: configurations (the heuristics run inline in the parent process).
    seed: int = 0
    #: Externally owned shared :class:`SolverService`. When set, every
    #: ``parallelize()`` run with these options executes against it —
    #: sharing its process pool, in-memory memo table and on-disk cache —
    #: and the ``jobs``/``cache*``/``batch*`` fields above are ignored
    #: (they describe the service this object would *create*). The
    #: injector keeps ownership: the run never closes it.
    service: Optional[SolverService] = field(default=None, repr=False, compare=False)

    def ilp_options(self) -> IlpParOptions:
        return IlpParOptions(
            backend=self.backend,
            time_limit_s=self.time_limit_s,
            mip_rel_gap=self.mip_rel_gap,
            objective=self.objective,
            energy_deadline_factor=self.energy_deadline_factor,
        )

    def make_service(self) -> SolverService:
        cache_dir = None
        if self.cache:
            cache_dir = self.cache_dir or DEFAULT_CACHE_DIR
        return SolverService(
            jobs=self.jobs,
            cache_dir=cache_dir,
            memory_cache=self.memory_cache,
            batch_size=self.batch_size,
            batch_max_vars=self.batch_max_vars,
        )


@contextmanager
def shared_service(
    options: Optional[ParallelizeOptions],
) -> Iterator[ParallelizeOptions]:
    """Context manager yielding options bound to one long-lived service.

    When ``options`` already injects a service, it is yielded unchanged
    (the caller's owner keeps ownership). Otherwise a service is created
    from the options, a copy with it injected is yielded, and the service
    is closed on exit — the idiom every multi-run caller (experiment
    suites, parameter sweeps) uses to share one pool and one memo table
    across all of its runs.
    """
    options = options or ParallelizeOptions()
    if options.service is not None:
        yield options
        return
    service = options.make_service()
    try:
        yield replace(options, service=service)
    finally:
        service.close()


@dataclass
class ParallelizeResult:
    """Outcome of one global parallelization run."""

    best: SolutionCandidate
    solution_sets: Dict[int, SolutionSet]
    stats: StatsCollector
    wall_seconds: float
    htg: HTG
    platform: Platform
    approach: str
    #: ILP replay diagnostics collected at solve time when
    #: ``ParallelizeOptions.verify`` is on (empty otherwise); folded into
    #: the certificate tier by :func:`repro.analysis.certifier.certify_run`.
    certificates: List["Diagnostic"] = field(default_factory=list)
    #: Wall time spent replaying assignments (0.0 when ``verify`` is off).
    certificate_seconds: float = 0.0
    #: Portfolio degradation events (exact solve lost to a dead pool and
    #: replaced by the heuristic answer); folded into the ``portfolio``
    #: tier by :func:`repro.analysis.certifier.certify_run`.
    portfolio_diagnostics: List["Diagnostic"] = field(default_factory=list)

    @property
    def estimated_exec_time_us(self) -> float:
        return self.best.exec_time_us

    def sequential_time_us(self) -> float:
        """Sequential execution on one core of the platform's main class."""
        return self.platform.main_class.time_us(self.htg.root.total_cycles())

    @property
    def estimated_speedup(self) -> float:
        """Model-estimated speedup vs. sequential on the main core."""
        parallel = self.estimated_exec_time_us
        return self.sequential_time_us() / parallel if parallel > 0 else float("inf")


@dataclass
class _PortfolioContext:
    """Session-scoped state of the heuristic/exact scheduling portfolio.

    Threaded through the sweep builders exactly like the certificate
    sink: it carries the service whose portfolio telemetry counters the
    heuristic leg bumps (the heuristics run inline in the parent, outside
    the service) and collects the degradation diagnostics surfaced on
    :attr:`ParallelizeResult.portfolio_diagnostics`.
    """

    service: SolverService
    diagnostics: List["Diagnostic"] = field(default_factory=list)

    def note_degraded(
        self, node_uid: int, seq_class: str, budget: int, objective: float,
        gap: Optional[float],
    ) -> None:
        from repro.analysis.diagnostics import Diagnostic

        gap_text = "unknown" if gap is None else f"{gap:.1%}"
        self.diagnostics.append(
            Diagnostic(
                analysis="portfolio",
                code="portfolio.degraded-to-heuristic",
                severity="warning",
                message=(
                    f"node {node_uid} ({seq_class}, budget {budget}): worker "
                    f"pool lost, exact solve replaced by the heuristic answer "
                    f"(objective {objective:.1f} us, proven gap <= {gap_text})"
                ),
                context={
                    "node": node_uid,
                    "seq_class": seq_class,
                    "budget": budget,
                    "objective_us": objective,
                    "opt_gap": gap,
                },
            )
        )


class _CertificateSink:
    """Per-session collector for solve-time ILP replay diagnostics.

    The certificate check needs instance and assignment side by side, and
    that pairing only exists inside a budget sweep — so the session hands
    one sink down through the sweep generators instead of trying to
    reconstruct the instances afterwards.
    """

    def __init__(self) -> None:
        self.diagnostics: List["Diagnostic"] = []
        self.seconds = 0.0

    def check(self, inst, solution, candidate) -> None:
        # Lazy import: repro.analysis pulls this module in through the
        # certifier, so a top-level import would be circular.
        from repro.analysis.certificate import check_solution_certificate

        start = time.perf_counter()
        self.diagnostics.extend(check_solution_certificate(inst, solution, candidate))
        self.seconds += time.perf_counter() - start


class _BaseParallelizer:
    def __init__(self, platform: Platform, options: Optional[ParallelizeOptions] = None):
        self.platform = platform
        self.options = options or ParallelizeOptions()
        # The fastest class is a pure function of the platform; computing
        # it per node made _worth_parallelizing O(classes) on every node.
        self._fastest_class = max(
            platform.processor_classes, key=lambda pc: pc.effective_mhz
        )

    def parallelize(self, htg: HTG) -> ParallelizeResult:
        service = self.options.service
        owned = service is None
        if owned:
            service = self.options.make_service()
        try:
            session = self.start_session(htg, service)
            drive([session], service)
            return session.result
        finally:
            if owned:
                service.close()

    def start_session(
        self, htg: HTG, service: SolverService
    ) -> "ParallelizeSession":
        """Begin a non-blocking run of Algorithm 1 against ``service``.

        The returned session has already advanced as far as it can
        without waiting on a worker (with a serial service that is the
        whole run); drain it — possibly together with other sessions
        sharing the service — via :func:`repro.core.schedule.drive`.
        """
        return ParallelizeSession(self, htg, service)

    # -- level engine ---------------------------------------------------------

    _LevelWork = List[Tuple[HTGNode, SolutionSet, List[Sweep]]]

    def _build_level(
        self,
        level: List[HTGNode],
        solution_sets: Dict[int, SolutionSet],
        sink: Optional[_CertificateSink] = None,
        pctx: Optional[_PortfolioContext] = None,
    ) -> "_BaseParallelizer._LevelWork":
        """Seed sequential candidates and construct the level's sweeps."""
        work = []
        for node in level:
            sset = SolutionSet()
            self._seed_sequential(node, sset)
            sweeps: List[Sweep] = []
            if (
                isinstance(node, HierarchicalNode)
                and node.children
                and self._worth_parallelizing(node)
            ):
                sweeps = self._node_sweeps(node, solution_sets, sink, pctx)
            work.append((node, sset, sweeps))
        return work

    @staticmethod
    def _merge_level(
        work: "_BaseParallelizer._LevelWork",
        solution_sets: Dict[int, SolutionSet],
        stats: StatsCollector,
    ) -> None:
        # Merge in construction order — (node, class, budget) — which is
        # exactly the insertion order of the recursive implementation,
        # regardless of the order the solves completed in.
        for node, sset, sweeps in work:
            for sweep in sweeps:
                for candidate in sweep.candidates:
                    sset.add(candidate)
                stats.merge(sweep.collector)
            solution_sets[node.uid] = sset

    def _solve_spec(self, prev_objective: Optional[float]) -> SolveSpec:
        """Spec for the next solve of a budget sweep.

        ``prev_objective`` — the previous (larger) budget's optimum — is a
        valid *lower* bound for the shrunken feasible region, letting the
        branch-and-bound backend stop as soon as it matches it. It is a
        search accelerator only, never a cutoff: seeding it as an
        incumbent would prune the true optimum (budgets decrease, so
        objectives only get worse along a sweep).
        """
        opts = self.options
        return SolveSpec(
            backend=opts.backend,
            time_limit_s=opts.time_limit_s,
            mip_rel_gap=opts.mip_rel_gap,
            lower_bound=prev_objective if opts.backend == "bnb" else None,
        )

    # -- template methods ---------------------------------------------------

    approach = "base"

    def _seed_sequential(self, node: HTGNode, sset: SolutionSet) -> None:
        raise NotImplementedError

    def _node_sweeps(
        self,
        node: HierarchicalNode,
        solution_sets: Dict[int, SolutionSet],
        sink: Optional[_CertificateSink] = None,
        pctx: Optional[_PortfolioContext] = None,
    ) -> List[Sweep]:
        raise NotImplementedError

    def _select_best(self, htg, solution_sets) -> SolutionCandidate:
        raise NotImplementedError

    def _worth_parallelizing(self, node: HierarchicalNode) -> bool:
        return (
            self._fastest_class.time_us(node.total_cycles())
            >= self.options.min_parallelize_us
        )


class ParallelizeSession:
    """One in-flight parallelization run, advanced cooperatively.

    Implements the driver protocol of :func:`repro.core.schedule.drive`
    (``done`` / ``parked()`` / ``resume(pending)``): the session walks the
    AHTG levels deepest-first, keeps the level barrier *within* the run
    (a level's sweeps read the finalized solution sets of the level
    below), but never blocks the caller — while this run's last sweeps of
    a level drag on, the shared drain loop keeps other sessions' solves
    flowing through the same service. On ``resume`` the session refills
    as far as it can: it merges a finished level in deterministic (node,
    class, budget) order, builds the next level's sweeps, and submits
    their first jobs, so new work reaches the service queue the moment it
    becomes available.

    With a serial service the constructor runs the whole session to
    completion inline, replaying the exact solve order of the recursive
    implementation.
    """

    def __init__(
        self,
        parallelizer: "_BaseParallelizer",
        htg: HTG,
        service: SolverService,
    ):
        self._parallelizer = parallelizer
        self._htg = htg
        self._service = service
        self._start_time = time.perf_counter()
        self._stats = StatsCollector()
        self._solution_sets: Dict[int, SolutionSet] = {}
        self._levels = collect_levels(htg.get_root_node())
        self._sink = _CertificateSink() if parallelizer.options.verify else None
        self._pctx = _PortfolioContext(service)
        self._level_idx = 0
        self._work: Optional[_BaseParallelizer._LevelWork] = None
        self._sweepset: Optional[SweepSet] = None
        self._result: Optional[ParallelizeResult] = None
        self._advance()

    # -- cooperative driver protocol -----------------------------------------

    @property
    def done(self) -> bool:
        return self._result is not None

    def parked(self):
        return self._sweepset.parked() if self._sweepset is not None else ()

    def resume(self, pending: PendingSolve) -> None:
        assert self._sweepset is not None
        self._sweepset.resume(pending)
        self._advance()

    @property
    def result(self) -> ParallelizeResult:
        assert self._result is not None, "session still has solves in flight"
        return self._result

    # -- internals -----------------------------------------------------------

    def _advance(self) -> None:
        while True:
            if self._sweepset is not None:
                if not self._sweepset.done:
                    return  # parked on a worker; drive() resumes us
                assert self._work is not None
                self._parallelizer._merge_level(
                    self._work, self._solution_sets, self._stats
                )
                self._sweepset = None
                self._work = None
            if self._level_idx >= len(self._levels):
                self._finalize()
                return
            level = self._levels[self._level_idx]
            self._level_idx += 1
            self._work = self._parallelizer._build_level(
                level, self._solution_sets, self._sink, self._pctx
            )
            sweeps = [sweep for _n, _s, sws in self._work for sweep in sws]
            self._sweepset = SweepSet(sweeps, self._service)

    def _finalize(self) -> None:
        # With a shared service the pool snapshot is cumulative across
        # every run it served so far; suite-level callers report the
        # definitive totals through SuiteStats instead.
        self._stats.pool = self._service.pool_stats()
        best = self._parallelizer._select_best(self._htg, self._solution_sets)
        self._result = ParallelizeResult(
            best=best,
            solution_sets=self._solution_sets,
            stats=self._stats,
            wall_seconds=time.perf_counter() - self._start_time,
            htg=self._htg,
            platform=self._parallelizer.platform,
            approach=self._parallelizer.approach,
            certificates=list(self._sink.diagnostics) if self._sink else [],
            certificate_seconds=self._sink.seconds if self._sink else 0.0,
            portfolio_diagnostics=list(self._pctx.diagnostics),
        )


class HeterogeneousParallelizer(_BaseParallelizer):
    """The paper's new approach: per-class candidates + class mapping."""

    approach = "heterogeneous"

    def _seed_sequential(self, node: HTGNode, sset: SolutionSet) -> None:
        for pc in self.platform.processor_classes:
            sset.add(
                SolutionCandidate(
                    node=node,
                    main_class=pc.name,
                    exec_time_us=pc.time_us(node.total_cycles()),
                    is_sequential=True,
                    energy_nj=node.total_cycles() * pc.energy_per_cycle_nj,
                )
            )

    def _node_sweeps(self, node, solution_sets, sink=None, pctx=None) -> List[Sweep]:
        sweeps = []
        for pc in self.platform.processor_classes:
            sweeps.append(
                Sweep(
                    label=f"n{node.uid}|{pc.name}",
                    make_gen=lambda out, coll, seq_class=pc.name: self._sweep_gen(
                        node, seq_class, solution_sets, out, coll, sink, pctx
                    ),
                )
            )
        return sweeps

    def _portfolio_mode(self) -> str:
        """Effective portfolio mode: heuristics need the time objective."""
        mode = self.options.portfolio
        if mode not in ("exact", "heuristic", "race"):
            raise ValueError(f"unknown portfolio mode {mode!r}")
        if mode != "exact" and self.options.objective != "time":
            # The heuristics optimize the critical path; the energy
            # objective (deadline-constrained) stays exact-only.
            return "exact"
        return mode

    def _sweep_gen(
        self, node, seq_class, solution_sets, out, collector, sink=None, pctx=None
    ):
        opts = self.options
        mode = self._portfolio_mode()
        budget = self.platform.total_cores
        prev_objective: Optional[float] = None
        while budget > 1:
            inst = build_ilppar_model(
                node, seq_class, budget, self.platform, solution_sets,
                options=opts.ilp_options(),
            )
            if inst is None:
                return
            tag = f"n{node.uid}|{seq_class}"

            heur = None
            if mode != "exact" and inst.ctx is not None:
                from repro.heuristics import solve_heuristic

                heur = solve_heuristic(
                    inst, seed=opts.seed, budget=opts.heuristic_budget
                )
                if pctx is not None:
                    pctx.service.heuristic_solves += 1

            if heur is not None and mode == "heuristic":
                # Anytime-only: no exact solve at all. Record the solve
                # ourselves — it never touches the service.
                if pctx is not None and heur.gap is not None:
                    pctx.service.gap_sum += heur.gap
                    pctx.service.gap_count += 1
                collector.record(
                    model_name=inst.model.name,
                    num_variables=inst.model.num_variables,
                    num_constraints=inst.model.num_constraints,
                    solve_seconds=heur.seconds,
                    status=SolveStatus.FEASIBLE,
                    tag=tag,
                    objective=heur.objective,
                    source="heuristic",
                    opt_gap=heur.gap,
                )
                if sink is not None:
                    sink.check(inst, heur.solution, heur.candidate)
                candidate = replace(
                    heur.candidate, source="heuristic", opt_gap=heur.gap
                )
                out.append(candidate)
                prev_objective = None
                # No ladder skip here: skipping budgets below num_tasks
                # is only lossless when the candidate is a proven
                # optimum. A heuristic answer that under-uses its budget
                # must not prune the smaller budgets it never explored.
                budget -= 1
                continue

            spec = self._solve_spec(prev_objective)
            job_source = "exact"
            if heur is not None:  # race mode
                job_source = "portfolio"
                if opts.backend == "bnb":
                    # Warm-start the exact search: the heuristic solution
                    # becomes the incumbent (exhaustion now proves it or a
                    # better solution optimal) and the strongest known
                    # lower bound sharpens gap-based termination.
                    bounds = [
                        b for b in (spec.lower_bound, heur.lower_bound)
                        if b is not None
                    ]
                    spec = replace(
                        spec,
                        incumbent_obj=heur.objective,
                        incumbent_x=tuple(heur.vector),
                        lower_bound=max(bounds) if bounds else None,
                    )
                    if pctx is not None:
                        pctx.service.incumbents_injected += 1
            solution = yield SolveJob(
                inst.model,
                spec,
                tag=tag,
                fallback=heur.solution if heur is not None else None,
                fallback_gap=heur.gap if heur is not None else None,
                source=job_source,
            )
            if solution is None:
                return
            if heur is not None and solution.usable:
                if solution.degraded and pctx is not None:
                    pctx.note_degraded(
                        node.uid, seq_class, budget, heur.objective, heur.gap
                    )
                if (
                    not solution.degraded
                    and solution.objective > heur.objective + 1e-6
                ):
                    # A timed-out exact incumbent (scipy backend, which
                    # takes no seeded incumbent) can be worse than the
                    # heuristic: keep the better answer.
                    solution = heur.solution
                if (
                    pctx is not None
                    and solution.objective >= heur.objective - 1e-6
                ):
                    # The exact leg did not improve on the heuristic.
                    pctx.service.races_won_by_heuristic += 1
            candidate = extract_ilppar_candidate(inst, solution)
            if sink is not None:
                sink.check(inst, solution, candidate)
            if heur is not None and solution.status is not SolveStatus.OPTIMAL:
                gap = heur.gap if solution.objective >= heur.objective - 1e-6 else None
                candidate = replace(
                    candidate,
                    source="heuristic" if solution.degraded else "portfolio",
                    opt_gap=gap,
                )
            out.append(candidate)
            if solution.status is SolveStatus.OPTIMAL:
                # Only a proven optimum is a sound bound for the next
                # (smaller) budget; a timeout incumbent may overshoot
                # it. Likewise the ladder skip below num_tasks is only
                # lossless for optima: a timeout/degraded answer that
                # under-uses its budget must not prune budgets it never
                # explored.
                prev_objective = solution.objective
                budget = min(budget - 1, candidate.num_tasks - 1)
            else:
                prev_objective = None
                budget -= 1

    def _select_best(self, htg, solution_sets) -> SolutionCandidate:
        main = self.platform.main_class.name
        best = solution_sets[htg.root.uid].best_for_class(main)
        assert best is not None, "sequential seeding guarantees a candidate"
        return best


class HomogeneousParallelizer(_BaseParallelizer):
    """The baseline [6]: class-blind partitioning on the main class's timing."""

    approach = "homogeneous"

    def __init__(
        self,
        platform: Platform,
        options: Optional[ParallelizeOptions] = None,
        ref_class: Optional[str] = None,
    ):
        super().__init__(platform, options)
        self.ref_class = ref_class or platform.main_class.name

    def _seed_sequential(self, node: HTGNode, sset: SolutionSet) -> None:
        pc = self.platform.get_class(self.ref_class)
        sset.add(
            SolutionCandidate(
                node=node,
                main_class=pc.name,
                exec_time_us=pc.time_us(node.total_cycles()),
                is_sequential=True,
                energy_nj=node.total_cycles() * pc.energy_per_cycle_nj,
            )
        )

    def _node_sweeps(self, node, solution_sets, sink=None, pctx=None) -> List[Sweep]:
        # The baseline stays exact-only: the heuristics decode per-class
        # candidate structures the homogeneous model does not have.
        return [
            Sweep(
                label=f"n{node.uid}|{self.ref_class}",
                make_gen=lambda out, _coll: self._sweep_gen(
                    node, solution_sets, out, sink
                ),
            )
        ]

    def _sweep_gen(self, node, solution_sets, out, sink=None):
        budget = self.platform.total_cores
        prev_objective: Optional[float] = None
        while budget > 1:
            inst = build_homopar_model(
                node, budget, self.platform, solution_sets,
                options=self.options.ilp_options(),
                ref_class=self.ref_class,
            )
            if inst is None:
                return
            solution = yield SolveJob(
                inst.model,
                self._solve_spec(prev_objective),
                tag=f"n{node.uid}|{self.ref_class}",
            )
            if solution is None:
                return
            candidate = extract_homopar_candidate(inst, solution)
            if sink is not None:
                sink.check(inst, solution, candidate)
            out.append(candidate)
            if solution.status is SolveStatus.OPTIMAL:
                prev_objective = solution.objective
            else:
                prev_objective = None
            budget = min(budget - 1, candidate.num_tasks - 1)

    def _select_best(self, htg, solution_sets) -> SolutionCandidate:
        best = solution_sets[htg.root.uid].best_for_class(self.ref_class)
        assert best is not None, "sequential seeding guarantees a candidate"
        return best
