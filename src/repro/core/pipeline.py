"""Pipeline-parallelism extension (the paper's future work, Section VII).

The paper notes that communication-heavy benchmarks (latnrm, spectral)
"profit more from other parallelism types, like, e.g., pipeline
parallelism" and defers that to future work, citing DSWP-style approaches
[Raman et al., CGO 2008; Tournavitis & Franke, PACT 2010]. This module
implements the natural extension: splitting a *serial* loop's body
statements into pipeline stages executed by concurrent tasks coupled with
per-iteration FIFOs.

Stage formation constraints:

* stages are contiguous runs of the loop body's statements (FIFO flow
  only goes forward);
* statements connected by a *backward* (loop-carried) dependence edge
  must share a stage — the recurrence cannot cross a pipeline boundary.

Given the stages, throughput is set by the slowest stage, so the stage
partition minimizes the bottleneck (classic linear-partitioning DP) and
stages are greedily mapped to the fastest available processor classes,
heaviest stage first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.htg.nodes import HierarchicalNode, HTGNode
from repro.platforms.description import Platform, ProcessorClass


@dataclass
class PipelineStage:
    """One pipeline stage: a contiguous run of loop-body nodes."""

    index: int
    nodes: Tuple[HTGNode, ...]
    proc_class: str
    time_us: float  # whole-run execution time of the stage on its class


@dataclass
class PipelineSolution:
    """A pipelined execution plan for a serial loop node."""

    node: HierarchicalNode
    stages: Tuple[PipelineStage, ...]
    exec_time_us: float
    sequential_time_us: float

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def estimated_speedup(self) -> float:
        if self.exec_time_us <= 0:
            return float("inf")
        return self.sequential_time_us / self.exec_time_us


def extract_pipeline(
    node: HierarchicalNode,
    platform: Platform,
    max_stages: Optional[int] = None,
) -> Optional[PipelineSolution]:
    """Try to pipeline a serial loop node.

    Returns ``None`` when the node is not a loop, has fewer than two
    fusable statement groups, or pipelining cannot beat sequential
    execution on the main class.
    """
    if node.construct not in ("loop",):
        return None
    children = node.topological_children()
    if len(children) < 2:
        return None

    groups = _fuse_recurrences(node, children)
    if len(groups) < 2:
        return None

    max_stages = max_stages or platform.total_cores
    max_stages = min(max_stages, len(groups), platform.total_cores)

    # Group costs in reference cycles (whole-run totals).
    group_cycles = [sum(c.total_cycles() for c in group) for group in groups]

    best: Optional[PipelineSolution] = None
    seq_time = platform.main_class.time_us(node.total_cycles())
    for k in range(2, max_stages + 1):
        partition = _min_bottleneck_partition(group_cycles, k)
        stages = _assign_classes(groups, group_cycles, partition, platform)
        if stages is None:
            continue
        exec_time = _pipeline_time(stages, node, platform)
        if best is None or exec_time < best.exec_time_us:
            best = PipelineSolution(
                node=node,
                stages=tuple(stages),
                exec_time_us=exec_time,
                sequential_time_us=seq_time,
            )
    if best is None or best.exec_time_us >= seq_time:
        return None
    return best


# ---------------------------------------------------------------------------
# stage formation
# ---------------------------------------------------------------------------


def _fuse_recurrences(
    node: HierarchicalNode, children: Sequence[HTGNode]
) -> List[List[HTGNode]]:
    """Fuse children linked by backward edges into indivisible groups.

    Because a backward edge always points from a later to an earlier
    child, fusing the whole inclusive range keeps groups contiguous.
    """
    order = {c.uid: i for i, c in enumerate(children)}
    # union-find over contiguous ranges: group id = leftmost index
    group_start = list(range(len(children)))

    def find(i: int) -> int:
        while group_start[i] != i:
            group_start[i] = group_start[group_start[i]]
            i = group_start[i]
        return i

    def fuse_range(lo: int, hi: int) -> None:
        root = find(lo)
        for i in range(lo, hi + 1):
            group_start[find(i)] = root

    for edge in node.edges_between_children():
        if not edge.backward:
            continue
        src_i = order[edge.src.uid]
        dst_i = order[edge.dst.uid]
        lo, hi = min(src_i, dst_i), max(src_i, dst_i)
        fuse_range(lo, hi)

    groups: List[List[HTGNode]] = []
    current_root = None
    for i, child in enumerate(children):
        root = find(i)
        if root != current_root:
            groups.append([])
            current_root = root
        groups[-1].append(child)
    return groups


def _min_bottleneck_partition(costs: List[int], k: int) -> List[int]:
    """Split ``costs`` into ``k`` contiguous parts minimizing the largest
    part sum. Returns the part boundaries (start index of each part).

    Standard O(n^2 k) linear-partition dynamic program — n is tiny here.
    """
    n = len(costs)
    k = min(k, n)
    prefix = [0.0]
    for c in costs:
        prefix.append(prefix[-1] + c)

    def range_sum(i: int, j: int) -> float:
        return prefix[j] - prefix[i]

    inf = math.inf
    dp = [[inf] * (k + 1) for _ in range(n + 1)]
    cut = [[0] * (k + 1) for _ in range(n + 1)]
    dp[0][0] = 0.0
    for j in range(1, k + 1):
        for i in range(1, n + 1):
            for m in range(j - 1, i):
                candidate = max(dp[m][j - 1], range_sum(m, i))
                if candidate < dp[i][j]:
                    dp[i][j] = candidate
                    cut[i][j] = m
    # reconstruct boundaries
    bounds: List[int] = []
    i, j = n, k
    while j > 0:
        m = cut[i][j]
        bounds.append(m)
        i, j = m, j - 1
    bounds.reverse()
    return bounds


def _assign_classes(
    groups: List[List[HTGNode]],
    group_cycles: List[int],
    bounds: List[int],
    platform: Platform,
) -> Optional[List[PipelineStage]]:
    """Map stages to processor classes: heaviest stage → fastest free core."""
    stage_ranges: List[Tuple[int, int]] = []
    for si, start in enumerate(bounds):
        end = bounds[si + 1] if si + 1 < len(bounds) else len(groups)
        if start >= end:
            return None
        stage_ranges.append((start, end))

    free: Dict[str, int] = {
        pc.name: pc.count for pc in platform.processor_classes
    }
    classes_by_speed = sorted(
        platform.processor_classes, key=lambda pc: -pc.effective_mhz
    )
    stage_cycles = [
        sum(group_cycles[g] for g in range(start, end))
        for start, end in stage_ranges
    ]
    assignment: Dict[int, ProcessorClass] = {}
    for si in sorted(range(len(stage_ranges)), key=lambda s: -stage_cycles[s]):
        chosen = None
        for pc in classes_by_speed:
            if free[pc.name] > 0:
                chosen = pc
                break
        if chosen is None:
            return None
        free[chosen.name] -= 1
        assignment[si] = chosen

    stages: List[PipelineStage] = []
    for si, (start, end) in enumerate(stage_ranges):
        nodes: List[HTGNode] = []
        for g in range(start, end):
            nodes.extend(groups[g])
        pc = assignment[si]
        stages.append(
            PipelineStage(
                index=si,
                nodes=tuple(nodes),
                proc_class=pc.name,
                time_us=pc.time_us(stage_cycles[si]),
            )
        )
    return stages


def _pipeline_time(
    stages: List[PipelineStage],
    node: HierarchicalNode,
    platform: Platform,
) -> float:
    """Makespan of the pipelined loop.

    Steady state is set by the slowest stage; every other stage adds one
    per-iteration fill/drain contribution, and each stage boundary pays
    the FIFO communication for the values crossing it.
    """
    iterations = max(1.0, _loop_iterations(node))
    bottleneck = max(stage.time_us for stage in stages)
    fill = 0.0
    for stage in stages:
        if stage.time_us != bottleneck:
            fill += stage.time_us / iterations
    comm = _boundary_comm_us(stages, node, platform)
    spawn = len(stages) * max(1.0, node.exec_count) * (
        platform.task_creation_overhead_us
    )
    return bottleneck + fill + comm + spawn


def _loop_iterations(node: HierarchicalNode) -> float:
    if node.children:
        return max(c.exec_count for c in node.children) / max(1.0, node.exec_count)
    return 1.0


def _boundary_comm_us(
    stages: List[PipelineStage],
    node: HierarchicalNode,
    platform: Platform,
) -> float:
    stage_of: Dict[int, int] = {}
    for stage in stages:
        for child in stage.nodes:
            stage_of[child.uid] = stage.index
    total = 0.0
    ic = platform.interconnect
    for edge in node.edges_between_children():
        src_stage = stage_of.get(edge.src.uid)
        dst_stage = stage_of.get(edge.dst.uid)
        if src_stage is None or dst_stage is None or src_stage == dst_stage:
            continue
        transfers = max(1.0, edge.src.exec_count)
        # FIFO transfers overlap with compute; charge latency once per
        # boundary plus the volume at bus bandwidth.
        total += ic.latency_us * math.log2(transfers + 1) + (
            edge.bytes_volume / ic.bandwidth_bytes_per_us
        )
    return total
