"""The heterogeneous ILP (paper Section IV, Eq. 1-18).

One invocation parallelizes a single hierarchical AHTG node: it maps the
node's children into tasks (Eq. 1-2), picks one previously computed
solution candidate per child (Eq. 3-4, "parallel set"), tracks task
precedence induced by data-flow edges (Eq. 5-7), accumulates task costs
including task-creation overhead and per-class execution times (Eq. 8),
derives critical-path costs (Eq. 9), keeps the task graph cycle-free via
monotone task ids over the topological child order (Eq. 10), minimizes
the path cost of the task holding the Communication-Out node (Eq. 11),
and couples everything with a task→processor-class mapping under
per-class processor budgets (Eq. 12-18).

Deviations from the paper's literal formulation (see DESIGN.md §5):

* The main task is split into a *fork* and a *join* segment (the master
  thread before spawning and after joining). Both are pinned to the
  sequential processor class and share the main processor. The
  Communication-In node lives in the fork segment, Communication-Out in
  the join segment; ``exectime = accumcost(join)`` is exactly Eq. 11.
* Child-candidate costs enter task costs through per-child linear cost
  variables plus big-M gating instead of per-(task, candidate) AND
  variables — an equivalent but much smaller linearization of Eq. 8/14.
* Empty task slots neither pay task-creation overhead nor occupy
  processors (``used_t`` indicators); the paper instead re-solves with a
  decreasing task budget, which Algorithm 1's loop still does on top.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.cfront.deps import DepKind
from repro.core.solution import SolutionCandidate, SolutionSet, TaskSegment
from repro.ilp.model import InfeasibleError, LinExpr, Model, Variable, lin_sum
from repro.ilp.stats import StatsCollector
from repro.htg.nodes import HierarchicalNode, HTGNode
from repro.platforms.description import Platform


@dataclass
class IlpParOptions:
    """Solver knobs for one ILPPAR invocation."""

    backend: str = "scipy"
    time_limit_s: Optional[float] = 30.0
    mip_rel_gap: float = 0.0
    #: "time" minimizes the critical path (Eq. 11, the paper's objective);
    #: "energy" minimizes total energy under a deadline — the objective
    #: extension the paper lists as future work.
    objective: str = "time"
    #: Deadline for the energy objective, as a multiple of the node's
    #: sequential execution time on the main-task class.
    energy_deadline_factor: float = 1.0


@dataclass
class IlpParContext:
    """Everything a *non-ILP* solver needs to reason about an instance.

    :func:`build_ilppar_model` computes these quantities while emitting
    the MILP rows; retaining them lets the heuristic schedulers of
    :mod:`repro.heuristics` evaluate structural assignments (child→task,
    task→class, candidate choice) against the *same* cost semantics and
    complete them into full model vectors — every variable valued, every
    constraint satisfied by construction — without re-deriving the model.
    """

    #: Occupancy indicator per extra slot (``used_t``).
    used: Dict[int, Variable]
    #: Precedence binaries ``pred[(t, u)]`` for ``t != u``.
    pred: Dict[Tuple[int, int], Variable]
    #: Per-child chosen-candidate cost variables.
    childcost: List[Variable]
    #: Gated per-(child, task) cost contributions.
    contrib: Dict[Tuple[int, int], Variable]
    #: Per-task cost / outgoing-communication / path-cost variables.
    cost: Dict[int, Variable]
    commcost: Dict[int, Variable]
    accum: Dict[int, Variable]
    #: Per-(child, class) / per-(task, class) inner processor usage.
    childprocs: Dict[Tuple[int, str], Optional[Variable]]
    procsused: Dict[Tuple[int, str], Optional[Variable]]
    #: Inner data-flow edges ``(src_ni, dst_ni, xfer_us)``.
    inner_edges: List[Tuple[int, int, float]]
    #: Communication-In / -Out transfer times per child.
    in_edge_time: List[float]
    out_edge_time: List[float]
    #: Child index pairs needing task precedence.
    order_pairs: Set[Tuple[int, int]]
    #: Execution count, task-creation overhead, master control cost.
    ec: float
    tco: float
    control_us: float
    #: Algorithm 1's processor budget ``i`` and the per-class processor
    #: availability (main processor already deducted from ``seq_class``).
    budget: int
    available: Dict[str, int]


@dataclass
class IlpParInstance:
    """A built-but-unsolved ILPPAR model plus the context to decode it.

    Produced by :func:`build_ilppar_model`; the solver service solves
    ``model`` (possibly in a worker process) and
    :func:`extract_ilppar_candidate` turns the returned assignment into a
    :class:`SolutionCandidate`. Splitting build from solve is what lets
    Algorithm 1's independent ILPs run concurrently. ``ctx`` carries the
    scheduling context the heuristic portfolio evaluates assignments
    against (see :class:`IlpParContext`).
    """

    model: Model
    node: HierarchicalNode
    seq_class: str
    classes: List[str]
    children: List[HTGNode]
    cand_table: List[List[Tuple[str, SolutionCandidate]]]
    tasks: List[int]
    extras: List[int]
    join: int
    x: List[List[Variable]]
    p: List[List[Variable]]
    map_tc: Dict[Tuple[int, str], Optional[Variable]]
    accum_join: Variable
    ctx: Optional[IlpParContext] = None


def ilp_parallelize_node(
    node: HierarchicalNode,
    seq_class: str,
    budget: int,
    platform: Platform,
    solution_sets: Mapping[int, SolutionSet],
    collector: Optional[StatsCollector] = None,
    options: Optional[IlpParOptions] = None,
) -> Optional[SolutionCandidate]:
    """Run the heterogeneous ILP for one node (paper's ``ILPPar``).

    Args:
        node: hierarchical node whose children are partitioned.
        seq_class: processor class of the main task (the solution's tag).
        budget: upper bound on allocatable processing units, *including*
            the main processor (Algorithm 1's ``i``).
        platform: target platform description.
        solution_sets: per-child candidate sets (``uid -> SolutionSet``).
        collector: optional ILP statistics collector (Table I).
        options: solver options.

    Returns the optimal candidate, or ``None`` when no parallel structure
    is expressible (no children / no extra processor budget) or the model
    is infeasible.
    """
    options = options or IlpParOptions()
    inst = build_ilppar_model(node, seq_class, budget, platform, solution_sets, options)
    if inst is None:
        return None
    try:
        solution = inst.model.solve(
            backend=options.backend,
            collector=collector,
            time_limit=options.time_limit_s,
            mip_rel_gap=options.mip_rel_gap,
        )
    except InfeasibleError:
        return None
    return extract_ilppar_candidate(inst, solution)


def _dominance_prune(
    entries: List[Tuple[str, SolutionCandidate]], classes: Sequence[str]
) -> List[Tuple[str, SolutionCandidate]]:
    """Drop candidates dominated by a same-class alternative.

    A candidate enters the ILP only through its execution time, its
    per-class processor usage, and its energy (cost, budget and objective
    coefficients) — always gated by the class-consistency rows, which
    compare same-class candidates only. So if another candidate of the
    *same* class is no worse on every one of those metrics, any solution
    using the dominated one can swap in the dominator without raising the
    objective or violating a budget: the dominated candidate is never
    needed for the optimum and is removed before the model is built.

    Among metric-identical candidates the first (lowest index) survives,
    keeping the pruned table deterministic.
    """
    metrics = [
        (cand.exec_time_us, cand.energy_nj)
        + tuple(cand.used_procs_of(c) for c in classes)
        for _cname, cand in entries
    ]
    kept: List[Tuple[str, SolutionCandidate]] = []
    for i, (cname, _cand) in enumerate(entries):
        dominated = False
        for j, (oname, _other) in enumerate(entries):
            if j == i or oname != cname:
                continue
            if all(a <= b for a, b in zip(metrics[j], metrics[i])) and (
                metrics[j] != metrics[i] or j < i
            ):
                dominated = True
                break
        if not dominated:
            kept.append(entries[i])
    return kept


def build_ilppar_model(
    node: HierarchicalNode,
    seq_class: str,
    budget: int,
    platform: Platform,
    solution_sets: Mapping[int, SolutionSet],
    options: Optional[IlpParOptions] = None,
) -> Optional[IlpParInstance]:
    """Construct the ILPPAR model for one node without solving it.

    Returns ``None`` when no parallel structure is expressible (the same
    early-outs as :func:`ilp_parallelize_node`).
    """
    options = options or IlpParOptions()
    children = node.topological_children()
    if not children or budget < 2:
        return None

    num_extra = min(budget - 1, len(children))
    if num_extra < 1:
        return None

    classes = platform.class_names()
    ec = max(1.0, node.exec_count)
    tco = platform.task_creation_overhead_us

    # Candidate tables per child: list of (class, candidate), dominance-pruned.
    cand_table: List[List[Tuple[str, SolutionCandidate]]] = []
    for child in children:
        sset = solution_sets.get(child.uid)
        if sset is None:
            raise ValueError(f"child {child.label!r} has no solution set")
        entries: List[Tuple[str, SolutionCandidate]] = []
        for cname in classes:
            for cand in sset.for_class(cname):
                entries.append((cname, cand))
        if not entries:
            raise ValueError(f"child {child.label!r} has no candidates")
        cand_table.append(_dominance_prune(entries, classes))

    # Task layout: 0 = fork (main, pre-spawn), 1..E = extra, E+1 = join (main).
    fork = 0
    join = num_extra + 1
    tasks = list(range(num_extra + 2))
    extras = tasks[1:-1]

    model = Model(f"ilppar[{node.label}|{seq_class}|i={budget}]")

    # -- Eq. 1-2: node-in-task ------------------------------------------------
    x = [
        [model.add_binary(f"x_n{ni}_t{t}") for t in tasks]
        for ni in range(len(children))
    ]
    for ni in range(len(children)):
        model.add_constraint(lin_sum(x[ni]) == 1, name=f"node{ni}_once")

    # -- Eq. 3-4: parallel-set choice -------------------------------------------
    p = [
        [model.add_binary(f"p_n{ni}_s{si}") for si in range(len(cand_table[ni]))]
        for ni in range(len(children))
    ]
    for ni in range(len(children)):
        model.add_constraint(lin_sum(p[ni]) == 1, name=f"sol{ni}_once")

    # -- Eq. 12-13: task-to-class mapping ------------------------------------------
    # fork and join are pinned to the sequential class; extras choose freely.
    map_tc: Dict[Tuple[int, str], Optional[Variable]] = {}
    for t in extras:
        row = [model.add_binary(f"map_t{t}_{c}") for c in classes]
        for c, var in zip(classes, row):
            map_tc[(t, c)] = var
        model.add_constraint(lin_sum(row) == 1, name=f"task{t}_one_class")

    used = {t: model.add_binary(f"used_t{t}") for t in extras}
    for t in extras:
        for ni in range(len(children)):
            model.add_constraint(used[t] >= x[ni][t], name=f"used{t}_n{ni}")
        if t + 1 in used:
            model.add_constraint(used[t] >= used[t + 1], name=f"used_order_{t}")

    # -- symmetry breaking over interchangeable extra-task slots ----------------
    # Extra tasks are exchangeable: any permutation of the slots (with their
    # class choices) yields an equivalent solution, so B&B would explore each
    # assignment up to (num_extra)! times. Two reductions pick one canonical
    # representative per equivalence class without excluding any objective
    # value:
    # * ``used_prefix``: ``used[t]`` may be 1 only when some child actually
    #   lands on slot t. With the existing ``used[t] >= x[ni][t]`` and
    #   ``used_order`` rows this makes ``used`` the exact occupancy
    #   indicator and forces occupied slots to form a prefix — a solution
    #   with gaps renumbers order-preservingly to one without, with
    #   identical costs (a wastefully-reserved empty slot only ever adds
    #   task-creation overhead and budget usage, so dropping it never
    #   loses the optimum).
    # * ``idle_class``: an idle slot's class choice appears in no cost,
    #   consistency, or budget term (all are gated by ``x``/``used``), so
    #   pin it to the first class instead of letting the solver branch
    #   over |classes| indistinguishable relabelings.
    for t in extras:
        model.add_constraint(
            used[t] <= lin_sum(x[ni][t] for ni in range(len(children))),
            name=f"used_prefix_{t}",
        )
        model.add_constraint(
            map_tc[(t, classes[0])] + used[t] >= 1, name=f"idle_class_{t}"
        )

    # -- Eq. 17-18: candidate class consistent with the hosting task's class ----
    for ni in range(len(children)):
        for c in classes:
            chosen_c = lin_sum(
                p[ni][si]
                for si, (cname, _) in enumerate(cand_table[ni])
                if cname == c
            )
            on_c_terms: List[LinExpr] = []
            if c == seq_class:
                on_c_terms.append(x[ni][fork] + x[ni][join])
            for t in extras:
                xm = model.add_and(x[ni][t], map_tc[(t, c)], name=f"xm_n{ni}_t{t}_{c}")
                on_c_terms.append(xm._as_expr())
            model.add_constraint(
                chosen_c == lin_sum(on_c_terms), name=f"class_consistency_n{ni}_{c}"
            )

    # -- Eq. 10: cycle-free via monotone task ids over topological order ---------
    def taskid_expr(ni: int) -> LinExpr:
        return lin_sum(t * x[ni][t] for t in tasks if t > 0)

    for ni in range(1, len(children)):
        model.add_constraint(
            taskid_expr(ni) >= taskid_expr(ni - 1), name=f"monotone_{ni}"
        )

    # -- communication timing helpers -----------------------------------------------
    def xfer_us(bytes_volume: float, transfers: float) -> float:
        if bytes_volume <= 0:
            return 0.0
        ic = platform.interconnect
        return ic.latency_us * max(1.0, transfers) + bytes_volume / ic.bandwidth_bytes_per_us

    index_of = {child.uid: ni for ni, child in enumerate(children)}
    inner_edges = []   # (src_ni, dst_ni, xfer_time)
    out_edge_time = [0.0] * len(children)
    in_edge_time = [0.0] * len(children)
    order_pairs = set()  # (src_ni, dst_ni) needing precedence
    for edge in node.edges:
        src_ni = index_of.get(edge.src.uid)
        dst_ni = index_of.get(edge.dst.uid)
        if edge.src is node.comm_in and dst_ni is not None:
            in_edge_time[dst_ni] += xfer_us(edge.bytes_volume, ec)
        elif edge.dst is node.comm_out and src_ni is not None:
            out_edge_time[src_ni] += xfer_us(edge.bytes_volume, ec)
        elif src_ni is not None and dst_ni is not None:
            transfers = max(1.0, edge.src.exec_count)
            inner_edges.append((src_ni, dst_ni, xfer_us(edge.bytes_volume, transfers)))
            order_pairs.add((src_ni, dst_ni))

    # -- per-child cost of the chosen candidate ------------------------------------
    child_cost_const = [
        [cand.exec_time_us for (_c, cand) in cand_table[ni]]
        for ni in range(len(children))
    ]
    max_child_cost = [max(row) if row else 0.0 for row in child_cost_const]
    childcost = []
    for ni in range(len(children)):
        var = model.add_var(f"childcost_{ni}", 0.0)
        model.add_constraint(
            var
            == lin_sum(
                child_cost_const[ni][si] * p[ni][si]
                for si in range(len(cand_table[ni]))
            ),
            name=f"childcost_def_{ni}",
        )
        childcost.append(var)

    # -- Eq. 8: task costs -------------------------------------------------------------
    contrib: Dict[Tuple[int, int], Variable] = {}
    for ni in range(len(children)):
        for t in tasks:
            var = model.add_var(f"contrib_n{ni}_t{t}", 0.0)
            model.add_implication_ge(
                x[ni][t], var, childcost[ni], big_m=max_child_cost[ni],
                name=f"contrib_gate_n{ni}_t{t}",
            )
            contrib[(ni, t)] = var

    # The node's own control work (loop headers, branch evaluation) stays
    # with the master thread; charging it keeps parallel candidates
    # comparable with the sequential times used to seed solution sets.
    control_us = platform.get_class(seq_class).time_us(
        getattr(node, "control_overhead_cycles", 0.0)
    )
    cost = {}
    for t in tasks:
        terms: List[LinExpr] = [contrib[(ni, t)]._as_expr() for ni in range(len(children))]
        if t == join and control_us > 0:
            terms.append(LinExpr({}, control_us))
        if t in extras:
            terms.append((ec * tco) * used[t])
            for ni in range(len(children)):
                if in_edge_time[ni] > 0:
                    terms.append(in_edge_time[ni] * x[ni][t])
        var = model.add_var(f"cost_t{t}", 0.0)
        model.add_constraint(var == lin_sum(terms), name=f"cost_def_t{t}")
        cost[t] = var

    # -- outgoing communication per task (feeds Eq. 9) -----------------------------------
    commcost = {}
    for t in tasks:
        terms = []
        for src_ni, dst_ni, xt in inner_edges:
            if xt <= 0:
                continue
            both = model.add_and(x[src_ni][t], x[dst_ni][t], name=f"w_e{src_ni}_{dst_ni}_t{t}")
            expr = xt * (x[src_ni][t] - both)
            if t == fork:
                # fork -> join stays on the master thread: free.
                w2 = model.add_and(
                    x[src_ni][fork], x[dst_ni][join], name=f"w2_e{src_ni}_{dst_ni}"
                )
                expr = expr - xt * w2
            terms.append(expr)
        if t in extras:
            for ni in range(len(children)):
                if out_edge_time[ni] > 0:
                    terms.append(out_edge_time[ni] * x[ni][t])
        var = model.add_var(f"commcost_t{t}", 0.0)
        model.add_constraint(var >= lin_sum(terms) if terms else var >= 0,
                             name=f"commcost_def_t{t}")
        commcost[t] = var

    # -- Eq. 5-7: precedence --------------------------------------------------------------
    pred: Dict[Tuple[int, int], Variable] = {}
    for t in tasks:
        for u in tasks:
            if t != u:
                pred[(t, u)] = model.add_binary(f"pred_t{t}_u{u}")
    for src_ni, dst_ni in order_pairs:
        for t in tasks:
            for u in tasks:
                if t == u:
                    continue
                model.add_constraint(
                    pred[(t, u)] >= x[src_ni][t] + x[dst_ni][u] - 1,
                    name=f"pred_e{src_ni}_{dst_ni}_t{t}_u{u}",
                )
    # every child joins at the Communication-Out node's task:
    for ni in range(len(children)):
        for t in tasks:
            if t != join:
                model.add_constraint(
                    pred[(t, join)] >= x[ni][t], name=f"join_pred_n{ni}_t{t}"
                )

    # -- Eq. 9: path costs ------------------------------------------------------------------
    total_comm_bound = sum(xt for _s, _d, xt in inner_edges) + sum(out_edge_time) + sum(
        in_edge_time
    )
    big_m = (
        sum(max_child_cost)
        + len(extras) * ec * tco
        + total_comm_bound
        + 1.0
    )
    accum = {t: model.add_var(f"accum_t{t}", 0.0) for t in tasks}
    for t in tasks:
        model.add_constraint(accum[t] >= cost[t], name=f"accum_base_t{t}")
        for u in tasks:
            if u == t:
                continue
            model.add_implication_ge(
                pred[(u, t)],
                accum[t],
                cost[t] + accum[u] + commcost[u],
                big_m=big_m,
                name=f"path_t{t}_u{u}",
            )

    # -- Eq. 14-16: processor budgets ------------------------------------------------------------
    max_inner = {
        c: max(
            (cand.used_procs_of(c) for row in cand_table for (_cc, cand) in row),
            default=0,
        )
        for c in classes
    }
    childprocs: Dict[Tuple[int, str], Optional[Variable]] = {}
    for ni in range(len(children)):
        for c in classes:
            coeffs = [
                cand.used_procs_of(c) for (_cc, cand) in cand_table[ni]
            ]
            if not any(coeffs):
                childprocs[(ni, c)] = None
                continue
            var = model.add_var(f"childprocs_n{ni}_{c}", 0.0)
            model.add_constraint(
                var == lin_sum(coeffs[si] * p[ni][si] for si in range(len(coeffs))),
                name=f"childprocs_def_n{ni}_{c}",
            )
            childprocs[(ni, c)] = var

    procsused: Dict[Tuple[int, str], Optional[Variable]] = {}
    for t in tasks:
        for c in classes:
            relevant = [ni for ni in range(len(children)) if childprocs[(ni, c)] is not None]
            if not relevant:
                procsused[(t, c)] = None
                continue
            var = model.add_var(f"procsused_t{t}_{c}", 0.0)
            for ni in relevant:
                model.add_implication_ge(
                    x[ni][t], var, childprocs[(ni, c)], big_m=max_inner[c],
                    name=f"procsused_gate_t{t}_n{ni}_{c}",
                )
            procsused[(t, c)] = var

    for c in classes:
        available = platform.num_procs(c) - (1 if c == seq_class else 0)
        terms = []
        for t in extras:
            mu = model.add_and(map_tc[(t, c)], used[t], name=f"mu_t{t}_{c}")
            terms.append(mu._as_expr())
        for t in tasks:
            if procsused[(t, c)] is not None:
                terms.append(procsused[(t, c)]._as_expr())
        model.add_constraint(
            lin_sum(terms) <= available, name=f"class_budget_{c}"
        )

    global_terms: List[LinExpr] = [used[t]._as_expr() for t in extras]
    for t in tasks:
        for c in classes:
            if procsused[(t, c)] is not None:
                global_terms.append(procsused[(t, c)]._as_expr())
    model.add_constraint(lin_sum(global_terms) <= budget - 1, name="global_budget")

    # -- Eq. 11: objective -------------------------------------------------------------------------
    if options.objective == "energy":
        # Future-work extension: minimize energy under a deadline.
        energy_terms: List[LinExpr] = []
        for ni in range(len(children)):
            energies = [cand.energy_nj for (_c, cand) in cand_table[ni]]
            energy_terms.append(
                lin_sum(energies[si] * p[ni][si] for si in range(len(energies)))
            )
        seq_pc = platform.get_class(seq_class)
        deadline = options.energy_deadline_factor * seq_pc.time_us(
            node.total_cycles()
        )
        model.add_constraint(accum[join] <= deadline, name="energy_deadline")
        model.minimize(lin_sum(energy_terms))
    else:
        model.minimize(accum[join])

    ctx = IlpParContext(
        used=used,
        pred=pred,
        childcost=childcost,
        contrib=contrib,
        cost=cost,
        commcost=commcost,
        accum=accum,
        childprocs=childprocs,
        procsused=procsused,
        inner_edges=inner_edges,
        in_edge_time=in_edge_time,
        out_edge_time=out_edge_time,
        order_pairs=order_pairs,
        ec=ec,
        tco=tco,
        control_us=control_us,
        budget=budget,
        available={
            c: platform.num_procs(c) - (1 if c == seq_class else 0)
            for c in classes
        },
    )
    return IlpParInstance(
        model=model,
        node=node,
        seq_class=seq_class,
        classes=classes,
        children=children,
        cand_table=cand_table,
        tasks=tasks,
        extras=extras,
        join=join,
        x=x,
        p=p,
        map_tc=map_tc,
        accum_join=accum[join],
        ctx=ctx,
    )


def extract_ilppar_candidate(
    inst: IlpParInstance, solution
) -> SolutionCandidate:
    """Decode a solved :class:`IlpParInstance` into a candidate."""
    exec_time = float(solution[inst.accum_join])
    return _extract_candidate(
        inst.node, inst.seq_class, inst.classes, inst.children, inst.cand_table,
        inst.tasks, inst.extras, inst.join, inst.x, inst.p, inst.map_tc,
        solution, exec_time,
    )


def _extract_candidate(
    node, seq_class, classes, children, cand_table, tasks, extras, join,
    x, p, map_tc, solution, exec_time,
) -> SolutionCandidate:
    """Turn the ILP assignment into a :class:`SolutionCandidate`."""
    task_children: Dict[int, List[HTGNode]] = {t: [] for t in tasks}
    child_choice: Dict[int, SolutionCandidate] = {}
    for ni, child in enumerate(children):
        t_of = next(t for t in tasks if solution[x[ni][t]] > 0.5)
        task_children[t_of].append(child)
        si = next(
            si for si in range(len(cand_table[ni])) if solution[p[ni][si]] > 0.5
        )
        child_choice[child.uid] = cand_table[ni][si][1]

    segments: List[TaskSegment] = []
    for t in tasks:
        if t == 0:
            role, pclass = "fork", seq_class
        elif t == join:
            role, pclass = "join", seq_class
        else:
            role = "extra"
            pclass = next(
                c for c in classes if solution[map_tc[(t, c)]] > 0.5
            )
        segments.append(
            TaskSegment(index=t, role=role, proc_class=pclass,
                        children=tuple(task_children[t]))
        )

    used_procs: Dict[str, int] = {}
    for segment in segments:
        if segment.role == "extra" and segment.children:
            used_procs[segment.proc_class] = used_procs.get(segment.proc_class, 0) + 1
        inner_max: Dict[str, int] = {}
        for child in segment.children:
            chosen = child_choice[child.uid]
            for c, k in chosen.used_procs.items():
                inner_max[c] = max(inner_max.get(c, 0), k)
        for c, k in inner_max.items():
            used_procs[c] = used_procs.get(c, 0) + k

    energy = sum(chosen.energy_nj for chosen in child_choice.values())
    return SolutionCandidate(
        node=node,
        main_class=seq_class,
        exec_time_us=exec_time,
        segments=tuple(segments),
        child_choice=child_choice,
        used_procs=used_procs,
        is_sequential=False,
        energy_nj=energy,
    )
