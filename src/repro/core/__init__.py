"""The paper's primary contribution: ILP-based heterogeneous parallelization.

* :mod:`repro.core.solution` — parallel solution candidates (tagged by the
  processor class of the main task, carrying exec time, node→task and
  task→class mappings, and per-class processor usage).
* :mod:`repro.core.ilppar` — the heterogeneous ILP (Section IV, Eq. 1-18).
* :mod:`repro.core.homogeneous` — the baseline homogeneous ILP of
  [Cordes et al., CODES+ISSS 2010] used for comparison.
* :mod:`repro.core.parallelize` — the global bottom-up Algorithm 1.
* :mod:`repro.core.flatten` — expands the chosen hierarchical solution
  into a flat task DAG for simulation and code generation.
* :mod:`repro.core.pipeline` — pipeline-parallelism extension (paper
  future work).
"""

from repro.core.solution import SolutionCandidate, SolutionSet, TaskSegment
from repro.core.ilppar import IlpParOptions, ilp_parallelize_node
from repro.core.homogeneous import homogeneous_parallelize_node
from repro.core.parallelize import (
    HeterogeneousParallelizer,
    HomogeneousParallelizer,
    ParallelizeOptions,
    ParallelizeResult,
)
from repro.core.flatten import AtomicTask, FlatTaskGraph, flatten_solution
from repro.core.mapping import StaticMapping, compute_static_mapping
from repro.core.pipeline import PipelineSolution, PipelineStage, extract_pipeline
from repro.core.validation import validate_candidate, validate_result

__all__ = [
    "AtomicTask",
    "FlatTaskGraph",
    "HeterogeneousParallelizer",
    "HomogeneousParallelizer",
    "IlpParOptions",
    "ParallelizeOptions",
    "ParallelizeResult",
    "SolutionCandidate",
    "SolutionSet",
    "TaskSegment",
    "PipelineSolution",
    "StaticMapping",
    "compute_static_mapping",
    "PipelineStage",
    "extract_pipeline",
    "flatten_solution",
    "homogeneous_parallelize_node",
    "ilp_parallelize_node",
    "validate_candidate",
    "validate_result",
]
