"""Bounded-variable revised simplex for small LPs.

This is the self-contained LP engine under the pure-Python branch-and-bound
backend (:mod:`repro.ilp.bnb`). Unlike the earlier dense two-phase tableau
implementation it

* handles general bounds ``lb <= x <= ub`` **natively** in the basis logic
  — nonbasic variables rest at a finite bound and may "bound-flip" without
  a basis change, so finite upper bounds cost no extra rows and free
  variables need no positive/negative split;
* prices with **Dantzig's rule** (most negative reduced cost) and falls
  back to Bland's rule automatically when a long degenerate streak
  suggests cycling, so it keeps the termination guarantee without paying
  Bland's slow convergence on every solve;
* is a **revised** simplex: it maintains the basis inverse explicitly and
  updates it incrementally with an eta (product-form) transformation per
  pivot, refactorizing from scratch every :data:`_REFACTOR_EVERY` pivots
  to bound numerical drift;
* supports **warm starts**: :func:`solve_lp` accepts the
  :class:`SimplexBasis` returned by a previous solve of the same
  constraint matrix under different bounds. A primal-feasible warm basis
  resumes phase II directly; a primal-infeasible but dual-feasible basis
  (the branch-and-bound case — a child node only tightened one variable
  bound, which preserves reduced costs) is repaired by a bounded
  **dual simplex**; anything else falls back to a cold two-phase solve.

Numerical tolerances are deliberately loose (1e-7/1e-9) because the
parallelizer's models are integral and well-scaled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

#: Reduced-cost / zero tolerance.
_TOL = 1e-9
#: Primal bound-feasibility tolerance.
_FEAS = 1e-7
#: Minimum acceptable pivot magnitude.
_PIVOT_TOL = 1e-8
#: Rebuild the basis inverse from scratch this many pivots.
_REFACTOR_EVERY = 100
#: Consecutive degenerate pivots before Dantzig pricing yields to Bland.
_DEGEN_LIMIT = 40
#: Warm-start repair budget, in multiples of the row count: a parent basis
#: is only worth reusing if it re-solves in few pivots; past this leash a
#: cold two-phase solve is cheaper than fighting a degenerate crawl.
_WARM_LEASH_FACTOR = 3

# Column status codes.
_AT_LOWER = 0
_AT_UPPER = 1
_BASIC = 2
_FREE_NB = 3  # free nonbasic variable resting at 0


@dataclass(frozen=True)
class SimplexBasis:
    """A reusable optimal basis: basic column per row + status per column.

    Columns cover the structural variables followed by one slack per
    constraint row, so a basis is valid for any solve over the *same*
    constraint matrix — only the bounds may differ (the branch-and-bound
    warm-start contract).
    """

    basic: Tuple[int, ...]
    status: Tuple[int, ...]


@dataclass
class LPResult:
    """Result of an LP solve: ``status`` in {'optimal', 'infeasible', 'unbounded'}.

    ``basis`` is the final simplex basis of an optimal solve (``None``
    when it is not reusable), ``pivots`` counts simplex iterations
    including bound flips, and ``warm_used`` reports whether a supplied
    warm basis was actually accepted (vs. a cold restart).
    """

    status: str
    x: Optional[np.ndarray] = None
    objective: float = math.nan
    basis: Optional[SimplexBasis] = None
    pivots: int = 0
    warm_used: bool = False


def solve_lp(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    basis: Optional[SimplexBasis] = None,
    max_iter: int = 100_000,
) -> LPResult:
    """Minimize ``c @ x`` subject to ``a_ub x <= b_ub``, ``a_eq x == b_eq``,
    ``lb <= x <= ub`` (entries may be ``±inf``).

    ``basis`` optionally warm-starts the solve from a previous optimal
    basis of the same constraint matrix (see :class:`SimplexBasis`).
    Returns the optimum in the original variable space.
    """
    c = np.asarray(c, dtype=float)
    n = c.shape[0]
    a_ub = np.asarray(a_ub, dtype=float).reshape(-1, n) if np.size(a_ub) else np.zeros((0, n))
    b_ub = np.asarray(b_ub, dtype=float).ravel()
    a_eq = np.asarray(a_eq, dtype=float).reshape(-1, n) if np.size(a_eq) else np.zeros((0, n))
    b_eq = np.asarray(b_eq, dtype=float).ravel()
    lb = np.asarray(lb, dtype=float).ravel()
    ub = np.asarray(ub, dtype=float).ravel()

    if np.any(lb > ub + _TOL):
        return LPResult("infeasible")

    m_ub, m_eq = a_ub.shape[0], a_eq.shape[0]
    m = m_ub + m_eq
    if m == 0:
        return _solve_box(c, lb, ub)

    # Equality form: [A_ub; A_eq] x + I s = b with slack bounds [0, inf)
    # for <= rows and [0, 0] for == rows (a fixed slack never enters).
    a_full = np.hstack([np.vstack([a_ub, a_eq]), np.eye(m)])
    b = np.concatenate([b_ub, b_eq])
    lo = np.concatenate([lb, np.zeros(m)])
    hi = np.concatenate([ub, np.full(m_ub, math.inf), np.zeros(m_eq)])
    cost = np.concatenate([c, np.zeros(m)])

    kernel = _Kernel(a_full, b, lo, hi, cost, n, max_iter)
    return kernel.solve(basis)


def _solve_box(c: np.ndarray, lb: np.ndarray, ub: np.ndarray) -> LPResult:
    """Unconstrained box LP: optimum at a bound per the cost sign."""
    n = c.shape[0]
    x = np.zeros(n)
    status = np.full(n, _FREE_NB, dtype=np.int8)
    for j in range(n):
        if c[j] > _TOL:
            if math.isinf(lb[j]):
                return LPResult("unbounded")
            x[j] = lb[j]
            status[j] = _AT_LOWER
        elif c[j] < -_TOL:
            if math.isinf(ub[j]):
                return LPResult("unbounded")
            x[j] = ub[j]
            status[j] = _AT_UPPER
        elif not math.isinf(lb[j]):
            x[j] = lb[j]
            status[j] = _AT_LOWER
        elif not math.isinf(ub[j]):
            x[j] = ub[j]
            status[j] = _AT_UPPER
    return LPResult(
        "optimal", x, float(c @ x), SimplexBasis((), tuple(int(s) for s in status))
    )


class _Kernel:
    """One bounded-variable revised simplex solve over the equality form."""

    def __init__(self, a, b, lo, hi, cost, n_struct, max_iter):
        self.a = a
        self.b = b
        self.lo = lo
        self.hi = hi
        self.cost = cost
        self.n_struct = n_struct
        self.m, self.ncols = a.shape
        self.max_iter = max_iter
        self.pivots = 0
        self.pivots_since_refactor = 0
        self.bland = False
        self._degen_streak = 0
        # State set by _cold_start / _try_warm_start:
        self.basic: List[int] = []
        self.status = np.zeros(self.ncols, dtype=np.int8)
        self.binv = np.eye(self.m)
        self.xb = np.zeros(self.m)
        self.n_art = 0  # artificial columns appended past ncols

    # -- public entry --------------------------------------------------------

    def solve(self, warm: Optional[SimplexBasis]) -> LPResult:
        warm_used = False
        leash = max(200, _WARM_LEASH_FACTOR * self.m)
        if warm is not None and self._try_warm_start(warm):
            warm_used = True
            if not self._primal_feasible():
                verdict = self._dual(limit=leash)
                if verdict == "infeasible":
                    return LPResult("infeasible", pivots=self.pivots, warm_used=True)
                if verdict == "stalled":  # degenerate crawl: cold restart
                    warm_used = False
            if warm_used:
                verdict = self._primal(self._phase2_cost(), limit=leash)
                if verdict == "unbounded":
                    return LPResult("unbounded", pivots=self.pivots, warm_used=True)
                if verdict == "optimal":
                    return self._extract(warm_used=True)
                warm_used = False  # stalled: cold restart below

        verdict = self._cold_start()
        if verdict == "infeasible":
            return LPResult("infeasible", pivots=self.pivots, warm_used=warm_used)
        verdict = self._primal(self._phase2_cost())
        if verdict == "unbounded":
            return LPResult("unbounded", pivots=self.pivots, warm_used=warm_used)
        if verdict != "optimal":
            raise RuntimeError("simplex iteration limit exceeded")
        return self._extract(warm_used=warm_used)

    # -- start procedures -----------------------------------------------------

    def _initial_status(self) -> np.ndarray:
        status = np.empty(self.ncols, dtype=np.int8)
        for j in range(self.ncols):
            if not math.isinf(self.lo[j]):
                status[j] = _AT_LOWER
            elif not math.isinf(self.hi[j]):
                status[j] = _AT_UPPER
            else:
                status[j] = _FREE_NB
        return status

    def _nonbasic_value(self, j: int) -> float:
        st = self.status[j]
        if st == _AT_LOWER:
            return self.lo[j]
        if st == _AT_UPPER:
            return self.hi[j]
        return 0.0

    def _nonbasic_vector(self) -> np.ndarray:
        """Values of all columns with basic entries zeroed."""
        val = np.where(
            self.status == _AT_LOWER,
            self.lo,
            np.where(self.status == _AT_UPPER, self.hi, 0.0),
        )
        val = np.where(np.isfinite(val), val, 0.0)
        val[self.status == _BASIC] = 0.0
        return val

    def _matrix(self) -> np.ndarray:
        if self.n_art:
            return self._a_ext
        return self.a

    def _recompute_xb(self) -> None:
        mat = self._matrix()
        val = self._nonbasic_vector()
        self.xb = self.binv @ (self.b - mat @ val)

    def _refactor(self) -> bool:
        mat = self._matrix()
        cols = mat[:, self.basic]
        try:
            self.binv = np.linalg.inv(cols)
        except np.linalg.LinAlgError:
            return False
        self._recompute_xb()
        return True

    def _try_warm_start(self, warm: SimplexBasis) -> bool:
        if len(warm.basic) != self.m or len(warm.status) != self.ncols:
            return False
        basic = list(warm.basic)
        if len(set(basic)) != self.m or any(
            j < 0 or j >= self.ncols for j in basic
        ):
            return False
        status = np.array(warm.status, dtype=np.int8)
        if set(np.flatnonzero(status == _BASIC).tolist()) != set(basic):
            return False
        # Re-anchor nonbasic statuses to the *current* bounds: a bound that
        # became infinite cannot host a resting variable.
        for j in range(self.ncols):
            if status[j] == _BASIC:
                continue
            if status[j] == _AT_LOWER and math.isinf(self.lo[j]):
                status[j] = _AT_UPPER if not math.isinf(self.hi[j]) else _FREE_NB
            elif status[j] == _AT_UPPER and math.isinf(self.hi[j]):
                status[j] = _AT_LOWER if not math.isinf(self.lo[j]) else _FREE_NB
        self.basic = basic
        self.status = status
        self.n_art = 0
        return self._refactor()

    def _cold_start(self) -> str:
        """Phase I: artificial columns with unit costs drive infeasibility out."""
        self.status = self._initial_status()
        val = np.where(
            self.status == _AT_LOWER,
            self.lo,
            np.where(self.status == _AT_UPPER, self.hi, 0.0),
        )
        val = np.where(np.isfinite(val), val, 0.0)
        residual = self.b - self.a @ val
        signs = np.where(residual < 0.0, -1.0, 1.0)
        self._a_ext = np.hstack([self.a, np.diag(signs)])
        self.n_art = self.m
        self.basic = [self.ncols + i for i in range(self.m)]
        self.binv = np.diag(signs)  # inverse of a sign-diagonal is itself
        self.xb = np.abs(residual)
        self.status = np.concatenate(
            [self.status, np.full(self.m, _BASIC, dtype=np.int8)]
        )
        self.lo = np.concatenate([self.lo, np.zeros(self.m)])
        self.hi = np.concatenate([self.hi, np.full(self.m, math.inf)])

        phase1 = np.zeros(self.ncols + self.m)
        phase1[self.ncols :] = 1.0
        verdict = self._primal(phase1)
        if verdict != "optimal":
            raise RuntimeError("phase-I simplex failed to terminate")
        if float(phase1[self.basic] @ self.xb) > 1e-7:
            self._strip_artificials()
            return "infeasible"
        self._eliminate_basic_artificials()
        self._strip_artificials()
        return "feasible"

    def _eliminate_basic_artificials(self) -> None:
        """Pivot zero-valued artificials out of the basis where possible."""
        for i in range(self.m):
            if self.basic[i] < self.ncols:
                continue
            row = self.binv[i] @ self.a  # tableau row over real columns
            candidates = [
                j
                for j in range(self.ncols)
                if self.status[j] != _BASIC and abs(row[j]) > _PIVOT_TOL
            ]
            if not candidates:
                continue  # redundant row; artificial stays pinned at 0
            j = candidates[0]
            w = self.binv @ self._matrix()[:, j]
            self.status[self.basic[i]] = _AT_LOWER
            self.status[j] = _BASIC
            self.basic[i] = j
            self.xb[i] = self._nonbasic_value(j)  # degenerate: value unchanged (0)
            self._eta_update(w, i)
            self.pivots += 1
        self._recompute_xb()

    def _strip_artificials(self) -> None:
        """Freeze any artificial still in the basis at zero and drop the rest."""
        if not self.n_art:
            return
        # Columns that remain basic (redundant rows) are kept but pinned.
        self.lo[self.ncols :] = 0.0
        self.hi[self.ncols :] = 0.0

    def _phase2_cost(self) -> np.ndarray:
        if self.n_art:
            return np.concatenate([self.cost, np.zeros(self.n_art)])
        return self.cost

    def _primal_feasible(self) -> bool:
        lo_b = self.lo[self.basic]
        hi_b = self.hi[self.basic]
        return bool(
            np.all(self.xb >= lo_b - _FEAS) and np.all(self.xb <= hi_b + _FEAS)
        )

    # -- primal simplex --------------------------------------------------------

    def _primal(self, cvec: np.ndarray, limit: Optional[int] = None) -> str:
        mat = self._matrix()
        width = mat.shape[1]
        movable = (self.hi[:width] - self.lo[:width]) > _TOL
        for _ in range(limit if limit is not None else self.max_iter):
            y = cvec[self.basic] @ self.binv
            d = cvec - y @ mat
            nonbasic = self.status[:width] != _BASIC
            can_inc = (
                nonbasic
                & movable
                & ((self.status[:width] == _AT_LOWER) | (self.status[:width] == _FREE_NB))
                & (d < -_TOL)
            )
            can_dec = (
                nonbasic
                & movable
                & ((self.status[:width] == _AT_UPPER) | (self.status[:width] == _FREE_NB))
                & (d > _TOL)
            )
            score = np.where(can_inc, -d, np.where(can_dec, d, -math.inf))
            if self.bland:
                eligible = np.flatnonzero(score > 0.0)
                if eligible.size == 0:
                    return "optimal"
                q = int(eligible[0])
            else:
                q = int(np.argmax(score))
                if score[q] <= 0.0:
                    return "optimal"
            direction = 1.0 if can_inc[q] else -1.0

            w = self.binv @ mat[:, q]
            dw = direction * w
            lo_b = self.lo[self.basic]
            hi_b = self.hi[self.basic]
            with np.errstate(divide="ignore", invalid="ignore"):
                dec = np.where(dw > _PIVOT_TOL, (self.xb - lo_b) / dw, math.inf)
                inc = np.where(dw < -_PIVOT_TOL, (self.xb - hi_b) / dw, math.inf)
            ratios = np.minimum(dec, inc)
            ratios = np.where(np.isnan(ratios), math.inf, ratios)
            ratios = np.maximum(ratios, 0.0)
            r = -1
            t = math.inf
            if ratios.size:
                best = float(np.min(ratios))
                if best < math.inf:
                    ties = np.flatnonzero(ratios <= best + _TOL)
                    # Deterministic anti-cycling tie-break: lowest basic index.
                    r = int(min(ties, key=lambda i: self.basic[i]))
                    t = float(ratios[r])
            flip_limit = self.hi[q] - self.lo[q]  # inf when either bound is
            if flip_limit < t:
                # Bound flip: the entering variable traverses its whole range
                # and rests at the opposite bound; the basis is unchanged.
                self.xb = self.xb - flip_limit * dw
                self.status[q] = _AT_UPPER if direction > 0 else _AT_LOWER
                self._count_pivot(flip_limit)
                continue
            if r < 0:
                return "unbounded"
            self._pivot(q, r, w, t, direction)
        return "stalled"

    # -- dual simplex ----------------------------------------------------------

    def _dual(self, limit: Optional[int] = None) -> str:
        """Bounded dual simplex: restore primal feasibility from a
        dual-feasible basis (the warm-start repair path)."""
        cvec = self._phase2_cost()
        mat = self._matrix()
        width = mat.shape[1]
        movable = (self.hi[:width] - self.lo[:width]) > _TOL
        for _ in range(limit if limit is not None else self.max_iter):
            lo_b = self.lo[self.basic]
            hi_b = self.hi[self.basic]
            below = lo_b - self.xb
            above = self.xb - hi_b
            viol = np.maximum(below, above)
            viol = np.where(np.isfinite(viol), viol, -math.inf)
            if self.bland:
                rows = np.flatnonzero(viol > _FEAS)
                if rows.size == 0:
                    return "optimal"
                r = int(min(rows, key=lambda i: self.basic[i]))
            else:
                r = int(np.argmax(viol))
                if viol[r] <= _FEAS:
                    return "optimal"
            is_below = below[r] >= above[r]
            delta = self.xb[r] - (lo_b[r] if is_below else hi_b[r])

            y = cvec[self.basic] @ self.binv
            d = cvec - y @ mat
            alpha = self.binv[r] @ mat
            nonbasic = self.status[:width] != _BASIC
            at_lo = (self.status[:width] == _AT_LOWER) | (self.status[:width] == _FREE_NB)
            at_hi = (self.status[:width] == _AT_UPPER) | (self.status[:width] == _FREE_NB)
            if is_below:  # leaving variable exits at its lower bound
                eligible = nonbasic & movable & (
                    (at_lo & (alpha < -_PIVOT_TOL)) | (at_hi & (alpha > _PIVOT_TOL))
                )
            else:  # exits at its upper bound
                eligible = nonbasic & movable & (
                    (at_lo & (alpha > _PIVOT_TOL)) | (at_hi & (alpha < -_PIVOT_TOL))
                )
            idx = np.flatnonzero(eligible)
            if idx.size == 0:
                return "infeasible"
            with np.errstate(divide="ignore", invalid="ignore"):
                steps = np.abs(d[idx] / alpha[idx])
            best = float(np.min(steps))
            ties = idx[np.flatnonzero(steps <= best + _TOL)]
            q = int(ties[0])  # lowest index: deterministic, Bland-like

            w = self.binv @ mat[:, q]
            theta = delta / w[r]
            leave_status = _AT_LOWER if is_below else _AT_UPPER
            new_val = self._nonbasic_value(q) + theta
            self.status[self.basic[r]] = leave_status
            self.status[q] = _BASIC
            self.xb = self.xb - theta * w
            self.basic[r] = q
            self.xb[r] = new_val
            self._eta_update(w, r)
            self._count_pivot(abs(theta))
        return "stalled"

    # -- pivot machinery -------------------------------------------------------

    def _pivot(self, q: int, r: int, w: np.ndarray, t: float, direction: float) -> None:
        p = self.basic[r]
        dw_r = direction * w[r]
        # The leaving variable hits the bound the ratio test limited it to.
        self.status[p] = _AT_LOWER if dw_r > 0 else _AT_UPPER
        entering_val = self._nonbasic_value(q) + direction * t
        self.xb = self.xb - (direction * t) * w
        self.status[q] = _BASIC
        self.basic[r] = q
        self.xb[r] = entering_val
        self._eta_update(w, r)
        self._count_pivot(t)

    def _eta_update(self, w: np.ndarray, r: int) -> None:
        """Product-form update: B_new^-1 = E_r(w) @ B^-1."""
        pivot_val = w[r]
        self.binv[r] /= pivot_val
        others = np.arange(self.m) != r
        self.binv[others] -= np.outer(w[others], self.binv[r])
        self.pivots_since_refactor += 1
        if self.pivots_since_refactor >= _REFACTOR_EVERY:
            self.pivots_since_refactor = 0
            self._refactor()

    def _count_pivot(self, step: float) -> None:
        self.pivots += 1
        if step <= 1e-10:
            self._degen_streak += 1
            if self._degen_streak > _DEGEN_LIMIT:
                self.bland = True
        else:
            # Real progress: the anti-cycling guarantee is no longer needed,
            # so return to Dantzig pricing (Bland converges far too slowly
            # to leave on for the rest of the solve).
            self._degen_streak = 0
            self.bland = False

    # -- extraction ------------------------------------------------------------

    def _extract(self, warm_used: bool) -> LPResult:
        width = self._matrix().shape[1]
        x_full = np.where(
            self.status[:width] == _AT_LOWER,
            self.lo[:width],
            np.where(self.status[:width] == _AT_UPPER, self.hi[:width], 0.0),
        )
        x_full = np.where(np.isfinite(x_full), x_full, 0.0)
        for i, j in enumerate(self.basic):
            x_full[j] = self.xb[i]
        x = x_full[: self.n_struct].copy()
        objective = float(self.cost[: self.n_struct] @ x)
        basis = None
        if all(j < self.ncols for j in self.basic):
            basis = SimplexBasis(
                tuple(int(j) for j in self.basic),
                tuple(int(s) for s in self.status[: self.ncols]),
            )
        return LPResult(
            "optimal", x, objective, basis, pivots=self.pivots, warm_used=warm_used
        )
