"""Dense two-phase primal simplex for small LPs.

This is the self-contained LP engine under the pure-Python branch-and-bound
backend (:mod:`repro.ilp.bnb`). It is written for clarity and robustness on
the small relaxations produced per B&B node, not for large-scale speed:

* general variable bounds are normalized away (lower bounds are shifted
  out, free variables are split, upper bounds become rows),
* phase I drives artificial variables out of the basis,
* Bland's anti-cycling rule guarantees termination.

Numerical tolerances are deliberately loose (1e-9) because the
parallelizer's models are integral and well-scaled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

_TOL = 1e-9


@dataclass
class LPResult:
    """Result of an LP solve: ``status`` in {'optimal', 'infeasible', 'unbounded'}."""

    status: str
    x: Optional[np.ndarray] = None
    objective: float = math.nan


def solve_lp(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
) -> LPResult:
    """Minimize ``c @ x`` subject to ``a_ub x <= b_ub``, ``a_eq x == b_eq``,
    ``lb <= x <= ub`` (entries may be ``±inf``).

    Returns the optimum in the *original* variable space.
    """
    c = np.asarray(c, dtype=float)
    n = c.shape[0]
    a_ub = np.asarray(a_ub, dtype=float).reshape(-1, n) if np.size(a_ub) else np.zeros((0, n))
    b_ub = np.asarray(b_ub, dtype=float).ravel()
    a_eq = np.asarray(a_eq, dtype=float).reshape(-1, n) if np.size(a_eq) else np.zeros((0, n))
    b_eq = np.asarray(b_eq, dtype=float).ravel()
    lb = np.asarray(lb, dtype=float).ravel()
    ub = np.asarray(ub, dtype=float).ravel()

    if np.any(lb > ub + _TOL):
        return LPResult("infeasible")

    # --- normalize variables to x' >= 0 -------------------------------------
    # x_j = lb_j + x'_j            when lb_j finite
    # x_j = x'_j - x''_j           when lb_j = -inf (free split)
    # finite ub becomes a row      x'_j <= ub_j - lb_j
    col_map: List[Tuple[int, int]] = []  # (pos_col, neg_col or -1) per original var
    num_cols = 0
    for j in range(n):
        if math.isinf(lb[j]):
            col_map.append((num_cols, num_cols + 1))
            num_cols += 2
        else:
            col_map.append((num_cols, -1))
            num_cols += 1

    def expand_matrix(a: np.ndarray) -> np.ndarray:
        out = np.zeros((a.shape[0], num_cols))
        for j in range(n):
            pos, neg = col_map[j]
            out[:, pos] = a[:, j]
            if neg >= 0:
                out[:, neg] = -a[:, j]
        return out

    shift = np.where(np.isinf(lb), 0.0, lb)

    rows_a: List[np.ndarray] = []
    rows_b: List[float] = []
    rows_sense: List[str] = []  # 'le' or 'eq'

    if a_ub.shape[0]:
        a_ub_x = expand_matrix(a_ub)
        b_ub_x = b_ub - a_ub @ shift
        for i in range(a_ub.shape[0]):
            rows_a.append(a_ub_x[i])
            rows_b.append(float(b_ub_x[i]))
            rows_sense.append("le")
    if a_eq.shape[0]:
        a_eq_x = expand_matrix(a_eq)
        b_eq_x = b_eq - a_eq @ shift
        for i in range(a_eq.shape[0]):
            rows_a.append(a_eq_x[i])
            rows_b.append(float(b_eq_x[i]))
            rows_sense.append("eq")
    for j in range(n):
        if not math.isinf(ub[j]):
            pos, neg = col_map[j]
            row = np.zeros(num_cols)
            row[pos] = 1.0
            if neg >= 0:
                row[neg] = -1.0
            rows_a.append(row)
            rows_b.append(float(ub[j] - shift[j]))
            rows_sense.append("le")

    c_x = np.zeros(num_cols)
    for j in range(n):
        pos, neg = col_map[j]
        c_x[pos] = c[j]
        if neg >= 0:
            c_x[neg] = -c[j]
    obj_shift = float(c @ shift)

    result = _simplex_standard(c_x, rows_a, rows_b, rows_sense)
    if result.status != "optimal":
        return result

    x = np.empty(n)
    assert result.x is not None
    for j in range(n):
        pos, neg = col_map[j]
        val = result.x[pos] - (result.x[neg] if neg >= 0 else 0.0)
        x[j] = val + shift[j]
    return LPResult("optimal", x, result.objective + obj_shift)


def _simplex_standard(
    c: np.ndarray,
    rows_a: List[np.ndarray],
    rows_b: List[float],
    rows_sense: List[str],
) -> LPResult:
    """Two-phase simplex on ``min c@x, A x {<=,==} b, x >= 0``."""
    n = c.shape[0]
    m = len(rows_a)
    if m == 0:
        # Unconstrained nonnegative LP: optimum at 0 unless some c_j < 0.
        if np.any(c < -_TOL):
            return LPResult("unbounded")
        return LPResult("optimal", np.zeros(n), 0.0)

    # Build tableau with slacks for <= rows and artificials where needed.
    num_slacks = sum(1 for s in rows_sense if s == "le")
    a = np.zeros((m, n + num_slacks))
    b = np.zeros(m)
    slack_idx = 0
    slack_col_of_row = [-1] * m
    for i in range(m):
        a[i, :n] = rows_a[i]
        b[i] = rows_b[i]
        if rows_sense[i] == "le":
            col = n + slack_idx
            a[i, col] = 1.0
            slack_col_of_row[i] = col
            slack_idx += 1
        if b[i] < 0:
            a[i] = -a[i]
            b[i] = -b[i]

    total = a.shape[1]
    # Artificial variables: one per row unless the row's slack can serve as
    # the initial basic variable (slack coefficient +1 after sign fix).
    basis = [-1] * m
    art_cols: List[int] = []
    art_data: List[np.ndarray] = []
    for i in range(m):
        sc = slack_col_of_row[i]
        if sc >= 0 and a[i, sc] > 0.5:
            basis[i] = sc
        else:
            col = total + len(art_cols)
            art_cols.append(col)
            column = np.zeros(m)
            column[i] = 1.0
            art_data.append(column)
            basis[i] = col

    if art_cols:
        tab = np.hstack([a] + [col.reshape(m, 1) for col in art_data])
    else:
        tab = a
    width = tab.shape[1]

    # ---- phase I: minimize sum of artificials --------------------------------
    if art_cols:
        phase1_c = np.zeros(width)
        for col in art_cols:
            phase1_c[col] = 1.0
        status, obj = _run_simplex(tab, b, phase1_c, basis)
        if status == "unbounded":  # cannot happen for phase I, defensive
            return LPResult("infeasible")
        if obj > 1e-7:
            return LPResult("infeasible")
        # Drive any remaining artificial out of the basis.
        for i in range(m):
            if basis[i] in art_cols:
                pivoted = False
                for j in range(total):
                    if abs(tab[i, j]) > _TOL:
                        _pivot(tab, b, i, j, basis)
                        pivoted = True
                        break
                if not pivoted:
                    # Redundant row; harmless.
                    basis[i] = basis[i]

    # ---- phase II -----------------------------------------------------------
    phase2_c = np.zeros(width)
    phase2_c[: c.shape[0]] = c
    # Forbid artificials from re-entering by giving them huge cost columns:
    for col in art_cols:
        tab[:, col] = 0.0
    status, obj = _run_simplex(tab, b, phase2_c, basis, blocked=set(art_cols))
    if status == "unbounded":
        return LPResult("unbounded")

    x = np.zeros(width)
    for i in range(m):
        x[basis[i]] = b[i]
    return LPResult("optimal", x[:n], float(phase2_c @ x))


def _pivot(tab: np.ndarray, b: np.ndarray, row: int, col: int, basis: List[int]) -> None:
    pivot_val = tab[row, col]
    tab[row] /= pivot_val
    b[row] /= pivot_val
    for i in range(tab.shape[0]):
        if i != row and abs(tab[i, col]) > _TOL:
            factor = tab[i, col]
            tab[i] -= factor * tab[row]
            b[i] -= factor * b[row]
    basis[row] = col


def _run_simplex(
    tab: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    basis: List[int],
    blocked: Optional[set] = None,
    max_iter: int = 100_000,
) -> Tuple[str, float]:
    """Run primal simplex iterations in place; returns (status, objective)."""
    m, width = tab.shape
    blocked = blocked or set()
    for _ in range(max_iter):
        # Reduced costs: c_j - c_B @ B^-1 A_j  (tab already holds B^-1 A).
        cb = c[basis]
        reduced = c - cb @ tab
        entering = -1
        for j in range(width):  # Bland's rule: first negative reduced cost
            if j in blocked:
                continue
            if reduced[j] < -_TOL:
                entering = j
                break
        if entering < 0:
            obj = float(cb @ b)
            return "optimal", obj
        # Ratio test (Bland: smallest basis index among ties).
        leaving = -1
        best_ratio = math.inf
        for i in range(m):
            if tab[i, entering] > _TOL:
                ratio = b[i] / tab[i, entering]
                if ratio < best_ratio - _TOL or (
                    abs(ratio - best_ratio) <= _TOL
                    and (leaving < 0 or basis[i] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = i
        if leaving < 0:
            return "unbounded", -math.inf
        _pivot(tab, b, leaving, entering, basis)
    raise RuntimeError("simplex iteration limit exceeded")
