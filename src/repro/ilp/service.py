"""Solver service: parallel, memoized, batched execution of ILP solves.

The bottom-up parallelizer (Algorithm 1) generates many mutually
independent ILP instances — sibling hierarchical nodes of one AHTG level,
the per-class budget sweeps within a node, and (through the suite
orchestration layer) the runs of *other* benchmark cells executing
concurrently against the same service. This module provides the execution
layer that exploits that independence:

* **Deferred, batched process-pool fan-out.** A solve is packed into a
  compact CSR/numpy wire format (:class:`CompactForm` — the model object
  graph never crosses the process boundary, and neither does the pickled
  dict-of-rows :class:`repro.ilp.model.MatrixForm` anymore) and parked in
  a submit queue. :meth:`SolverService.flush` drains the queue
  largest-instance-first (LPT-style makespan shrinking), groups small
  instances into single worker tasks to amortize IPC, and ships each
  batch to a worker process; the worker returns the raw solution vectors
  and the :class:`Solution` objects are reconstructed against the
  original models in the parent. Both backends already derive their
  answer from the matrix form — and the packed form preserves the exact
  row/term ordering of the original — so the pooled path is bit-identical
  to the in-process path, and ``jobs=1`` (the default) degenerates to a
  serial in-process solve with no queueing at all.

* **Structural memoization.** Solves are cached under a canonical
  fingerprint of the fully ground model matrix plus the solver options.
  The matrix is a pure function of the inputs the paper's ILP is built
  from — subgraph structure, per-class child costs, edge byte volumes,
  main-task class, processor budget — so structurally identical subtrees
  (e.g. the chunks of one parallel loop, or repeated ``toolflow`` runs on
  the same program) resolve to the same key. An in-memory layer serves
  within-run repeats; an optional on-disk store under ``.repro_cache/``
  (versioned by :data:`CACHE_SCHEMA`) persists across runs. A cache hit
  is still recorded as a generated ILP so the Table-I statistics do not
  depend on cache state. Queued solves additionally dedupe *in flight*:
  a second submission of a fingerprint that is already queued or on a
  worker attaches to the first as a follower and resolves from its
  result, exactly as it would have resolved from the memo table had the
  two solves run serially.

* **Warm starts.** Callers may attach a known valid ``lower_bound`` (for
  the ``bnb`` backend) via :class:`SolveSpec`; the budget sweep uses the
  previous budget's objective, which is a valid bound because shrinking
  the processor budget only shrinks the feasible region. The bound is
  excluded from the cache key — it provably does not change the returned
  solution, only how fast it is found.

One long-lived service can (and for suite runs should) be shared across
many parallelization runs: the pool is spun up once, the memo table and
the on-disk store serve every run, and the cooperative schedulers of
:mod:`repro.core.schedule` interleave the ILPs of concurrent runs in this
service's single global queue.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ilp.model import MatrixForm, Model, Solution, SolveStatus
from repro.ilp.stats import PoolStats

#: Version key of the on-disk cache layout *and* the solve semantics.
#: Bump whenever the model construction or a backend changes behavior;
#: old entries become unreachable (different directory and fingerprint).
#: v2: ILPPAR models gained dominance pruning + symmetry-breaking rows.
#: v3: heuristic warm starts — ``incumbent_x`` joined the cache key.
CACHE_SCHEMA = "repro-ilp-v3"

#: Kernel counters reported for solves that never ran a solver (cache
#: hits, degenerate models).
_ZERO_INFO = {"iterations": 0, "nodes": 0, "warm_lp_solves": 0, "warm_lp_hits": 0}


@dataclass(frozen=True)
class SolveSpec:
    """Solver-side options of one ILP solve.

    Everything except ``lower_bound`` is part of the cache key.
    ``incumbent_obj`` (a cutoff — only strictly better solutions are
    sought) changes the outcome and is keyed; so does ``incumbent_x``
    (a seeded incumbent solution — it decides what a timed-out or
    exhausted ``bnb`` solve returns); ``lower_bound`` is a pure
    early-termination aid and is not.
    """

    backend: str = "scipy"
    time_limit_s: Optional[float] = None
    mip_rel_gap: float = 0.0
    incumbent_obj: Optional[float] = None
    lower_bound: Optional[float] = None
    incumbent_x: Optional[Tuple[float, ...]] = None


# ---------------------------------------------------------------------------
# Canonical fingerprint
# ---------------------------------------------------------------------------


def form_fingerprint(form: MatrixForm, spec: SolveSpec) -> str:
    """Canonical hash of a ground model matrix + the keyed solver options."""
    payload = {
        "schema": CACHE_SCHEMA,
        "backend": spec.backend,
        "time_limit": spec.time_limit_s,
        "gap": spec.mip_rel_gap,
        "incumbent": spec.incumbent_obj,
        "incumbent_x": (
            None if spec.incumbent_x is None
            else [float(v) for v in spec.incumbent_x]
        ),
        "minimize": form.minimize,
        "obj_const": form.obj_const,
        "c": [float(v) for v in form.c],
        "lb": [float(v) for v in form.lb],
        "ub": [float(v) for v in form.ub],
        "int": [int(v) for v in form.integrality],
        "rows_ub": [
            [sorted((int(j), float(a)) for j, a in row.items()), float(rhs)]
            for row, rhs in form.rows_ub
        ],
        "rows_eq": [
            [sorted((int(j), float(a)) for j, a in row.items()), float(rhs)]
            for row, rhs in form.rows_eq
        ],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Compact wire format
# ---------------------------------------------------------------------------


@dataclass
class CompactForm:
    """CSR/numpy-buffer encoding of a :class:`MatrixForm` for cheap IPC.

    The dict-of-rows representation pickles each coefficient as a boxed
    Python float keyed by a boxed int; this encoding ships seven flat
    numpy buffers instead (pickled as raw memory). Within-row term order
    is preserved exactly (the CSR ``indices`` are stored in the original
    dict insertion order, *not* sorted), so ``unpack`` rebuilds a
    :class:`MatrixForm` whose backend behavior — including pivot order in
    the pure-Python simplex — is identical to the original's.
    """

    num_vars: int
    c: "object"
    lb: "object"
    ub: "object"
    integrality: "object"
    obj_const: float
    minimize: bool
    ub_indptr: "object"
    ub_indices: "object"
    ub_data: "object"
    ub_rhs: "object"
    eq_indptr: "object"
    eq_indices: "object"
    eq_data: "object"
    eq_rhs: "object"

    @property
    def nbytes(self) -> int:
        """Payload bytes shipped over IPC (numpy buffers only)."""
        return sum(
            arr.nbytes
            for arr in (
                self.c, self.lb, self.ub, self.integrality,
                self.ub_indptr, self.ub_indices, self.ub_data, self.ub_rhs,
                self.eq_indptr, self.eq_indices, self.eq_data, self.eq_rhs,
            )
        )


def _pack_rows(rows: Sequence[Tuple[Dict[int, float], float]]):
    import numpy as np

    indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    rhs = np.zeros(len(rows))
    nnz = sum(len(row) for row, _ in rows)
    indices = np.zeros(nnz, dtype=np.int64)
    data = np.zeros(nnz)
    pos = 0
    for i, (row, b) in enumerate(rows):
        rhs[i] = b
        for j, a in row.items():
            indices[pos] = j
            data[pos] = a
            pos += 1
        indptr[i + 1] = pos
    return indptr, indices, data, rhs


def _unpack_rows(indptr, indices, data, rhs) -> List[Tuple[Dict[int, float], float]]:
    rows = []
    for i in range(len(rhs)):
        lo, hi = indptr[i], indptr[i + 1]
        row = {
            int(indices[p]): float(data[p]) for p in range(lo, hi)
        }
        rows.append((row, float(rhs[i])))
    return rows


def pack_form(form: MatrixForm) -> CompactForm:
    """Encode a matrix form into the compact wire format."""
    import numpy as np

    ub_indptr, ub_indices, ub_data, ub_rhs = _pack_rows(form.rows_ub)
    eq_indptr, eq_indices, eq_data, eq_rhs = _pack_rows(form.rows_eq)
    return CompactForm(
        num_vars=len(form.c),
        c=np.ascontiguousarray(form.c, dtype=float),
        lb=np.ascontiguousarray(form.lb, dtype=float),
        ub=np.ascontiguousarray(form.ub, dtype=float),
        integrality=np.ascontiguousarray(form.integrality, dtype=np.int8),
        obj_const=float(form.obj_const),
        minimize=bool(form.minimize),
        ub_indptr=ub_indptr, ub_indices=ub_indices,
        ub_data=ub_data, ub_rhs=ub_rhs,
        eq_indptr=eq_indptr, eq_indices=eq_indices,
        eq_data=eq_data, eq_rhs=eq_rhs,
    )


def unpack_form(compact: CompactForm) -> MatrixForm:
    """Decode the compact wire format back into a :class:`MatrixForm`."""
    import numpy as np

    return MatrixForm(
        c=np.asarray(compact.c, dtype=float),
        rows_ub=_unpack_rows(
            compact.ub_indptr, compact.ub_indices, compact.ub_data, compact.ub_rhs
        ),
        rows_eq=_unpack_rows(
            compact.eq_indptr, compact.eq_indices, compact.eq_data, compact.eq_rhs
        ),
        lb=np.asarray(compact.lb, dtype=float),
        ub=np.asarray(compact.ub, dtype=float),
        integrality=np.asarray(compact.integrality, dtype=np.int64),
        obj_const=compact.obj_const,
        minimize=compact.minimize,
    )


# ---------------------------------------------------------------------------
# Worker entry points (module-level so they pickle under ProcessPoolExecutor)
# ---------------------------------------------------------------------------

#: One solve's raw outcome: ``(status_name, x or None, seconds, info)``.
RawResult = Tuple[str, Optional[List[float]], float, Dict[str, int]]


def _execute_form(form: MatrixForm, spec: SolveSpec) -> RawResult:
    """Solve a matrix form; returns ``(status_name, x or None, seconds, info)``.

    Runs in a worker process (or inline at ``jobs=1``). Never raises:
    solver failures map to the ``"error"`` status so a crashed solve does
    not take the whole run down. ``info`` carries the solver kernel
    counters (``iterations``/``nodes``/``warm_lp_solves``/``warm_lp_hits``).
    """
    start = time.perf_counter()
    info = dict(_ZERO_INFO)
    try:
        if spec.backend == "scipy":
            from repro.ilp.scipy_backend import solve_form_scipy

            status, x, scipy_info = solve_form_scipy(
                form, time_limit=spec.time_limit_s, mip_rel_gap=spec.mip_rel_gap
            )
            info.update(scipy_info)
        elif spec.backend == "bnb":
            from repro.ilp.bnb import BnbStats, solve_form_bnb

            stats = BnbStats()
            status, x = solve_form_bnb(
                form,
                time_limit=spec.time_limit_s,
                mip_rel_gap=spec.mip_rel_gap,
                incumbent_obj=spec.incumbent_obj,
                incumbent_x=spec.incumbent_x,
                lower_bound=spec.lower_bound,
                stats=stats,
            )
            info = {
                "iterations": stats.pivots,
                "nodes": stats.nodes,
                "warm_lp_solves": stats.warm_lp_solves,
                "warm_lp_hits": stats.warm_lp_hits,
            }
        else:
            raise ValueError(f"unknown backend {spec.backend!r}")
    except Exception:
        return SolveStatus.ERROR.value, None, time.perf_counter() - start, info
    vector = None if x is None else [float(v) for v in x]
    return status.value, vector, time.perf_counter() - start, info


def _execute_batch(
    items: List[Tuple[CompactForm, SolveSpec]]
) -> List[RawResult]:
    """Worker entry point: solve a batch of compact forms sequentially.

    Batching amortizes the per-task IPC and scheduling overhead across
    several small instances; per-member wall times are measured inside
    :func:`_execute_form`, so the batch envelope adds nothing to the
    recorded solve seconds.
    """
    return [_execute_form(unpack_form(compact), spec) for compact, spec in items]


def _solution_from_vector(
    model: Model, status: SolveStatus, x: Optional[List[float]]
) -> Solution:
    """Rebuild a :class:`Solution` against the original model objects.

    Mirrors exactly what both backends do after solving — round integer
    entries, evaluate the model objective — so the reconstructed solution
    is identical to an in-process ``model.solve()``.
    """
    if status not in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE) or x is None:
        return Solution(status, float("nan"))
    values = {}
    for var in model.variables:
        value = float(x[var.index])
        if var.integer:
            value = float(round(value))
        values[var] = value
    return Solution(status, model.objective.value(values), values)


# ---------------------------------------------------------------------------
# Pending solve handle
# ---------------------------------------------------------------------------


class PendingSolve:
    """Handle for one submitted solve.

    A pending solve is in one of three states:

    * **resolved** — answered synchronously (cache hit, degenerate model,
      serial execution, or pool fallback); :attr:`resolved` is True.
    * **queued** — parked in the service's submit queue waiting for a
      :meth:`SolverService.flush`; ``future`` is still ``None``.
    * **dispatched** — part of a batch on a worker process; ``future`` is
      the batch's pool future and ``batch_index`` selects this solve's
      slot in the batch result.

    :meth:`result` finalizes the solve from any state: it flushes the
    queue if necessary, waits for the worker, caches the outcome, records
    statistics, and returns the reconstructed :class:`Solution`.
    """

    def __init__(
        self,
        service: "SolverService",
        model: Model,
        spec: SolveSpec,
        tag: str,
        collector,
        fallback: Optional[Solution] = None,
        fallback_gap: Optional[float] = None,
        source: str = "exact",
    ):
        self._service = service
        self._model = model
        self._spec = spec
        self._tag = tag
        self._collector = collector
        #: Anytime answer (the heuristic leg of the portfolio) substituted
        #: when the worker pool is lost before or during this solve.
        self._fallback = fallback
        self._fallback_gap = fallback_gap
        self._source = source
        self._key: Optional[str] = None
        self._form: Optional[MatrixForm] = None
        self._solution: Optional[Solution] = None
        self._resolved = False
        #: Queued pendings with this fingerprint that resolve from our raw
        #: result instead of dispatching a duplicate solve.
        self._followers: List["PendingSolve"] = []
        #: True when this solve resolves from another in-flight solve's
        #: result — recorded as a cache hit, exactly as the serial
        #: execution order would have produced.
        self._piggybacked = False
        self._pooled = False
        self.future = None
        self.batch_index = 0

    @property
    def resolved(self) -> bool:
        return self._resolved

    @property
    def model(self) -> Model:
        return self._model

    @property
    def num_variables(self) -> int:
        return self._model.num_variables

    def result(self) -> Solution:
        if not self._resolved:
            if self.future is None:
                # Still queued: force a flush so the batch gets dispatched.
                self._service.flush()
            if not self._resolved:
                assert self.future is not None
                try:
                    raw = self.future.result()[self.batch_index]
                except Exception:
                    # The pool died mid-flight (BrokenProcessPool or a
                    # cancelled batch). Mark it gone so later submits
                    # bypass it, then resolve locally: from the attached
                    # portfolio fallback when there is one, else by
                    # re-solving in-process.
                    self._service._note_completed()
                    self.future = None
                    self._service._mark_pool_broken()
                    self._resolve_without_pool()
                else:
                    self._service._note_completed()
                    self.future = None
                    if self._piggybacked:
                        self._finish_from_leader(raw)
                    else:
                        self._finish(raw, cache_hit=False)
        assert self._solution is not None
        return self._solution

    # -- internals -----------------------------------------------------------

    def _start(self) -> None:
        service = self._service
        start = time.perf_counter()
        if self._model.num_variables == 0:
            from repro.ilp.scipy_backend import solve_scipy

            solution = solve_scipy(self._model)
            self._settle(solution, time.perf_counter() - start, cache_hit=False)
            service.inline_solves += 1
            return
        form = self._model.to_matrix_form()
        self._key = form_fingerprint(form, self._spec)
        cached = service._cache_get(self._key)
        if cached is not None:
            status_name, x = cached
            # A cache hit ran no solver: kernel counters are genuinely 0,
            # matching solve_seconds being the lookup time.
            self._finish(
                (status_name, x, time.perf_counter() - start, dict(_ZERO_INFO)),
                cache_hit=True,
            )
            return
        if service.jobs <= 1 or service._pool_unavailable:
            if service.jobs > 1 and self._fallback is not None:
                # The caller asked for pooled solving but the pool is
                # gone: degrade to the portfolio fallback rather than
                # serializing a potentially unbounded exact solve.
                self._finish_degraded()
                return
            raw = _execute_form(form, self._spec)
            service.inline_solves += 1
            self._finish(raw, cache_hit=False)
            return
        leader = service._in_flight_leaders.get(self._key)
        if leader is not None:
            # Identical solve already queued or on a worker: ride along.
            self._piggybacked = True
            leader._followers.append(self)
            if leader.future is not None:
                self.future = leader.future
                self.batch_index = leader.batch_index
                service._note_dispatched(piggyback=True)
            return
        self._form = form
        service._enqueue(self)

    def _run_inline(self) -> None:
        """Pool-fallback path: solve a queued form in-process."""
        if self._fallback is not None:
            self._form = None
            self._finish_degraded()
            return
        assert self._form is not None
        raw = _execute_form(self._form, self._spec)
        self._form = None
        self._service.inline_solves += 1
        self._finish(raw, cache_hit=False)

    def _resolve_without_pool(self) -> None:
        """Resolve after a mid-flight pool loss: fallback or inline."""
        if self._fallback is not None:
            self._finish_degraded()
            return
        if self._form is None:
            self._form = self._model.to_matrix_form()
        self._run_inline()

    def _finish_degraded(self) -> None:
        """Substitute the attached portfolio fallback for the solve.

        The fallback is a feasible, certified heuristic solution with no
        optimality claim: it is tagged ``degraded``, recorded under the
        ``heuristic`` source with its proven gap, and never cached (a
        later run with a healthy pool must re-attempt the exact solve).
        """
        from dataclasses import replace

        assert self._fallback is not None
        service = self._service
        service.degraded_solves += 1
        if self._key is not None:
            service._in_flight_leaders.pop(self._key, None)
        solution = replace(self._fallback, degraded=True)
        self._source = "heuristic"
        self._settle(solution, 0.0, cache_hit=False, degraded=True)
        for follower in self._followers:
            if not follower._resolved and follower.future is None:
                follower._resolve_without_pool()
        self._followers = []

    def _finish(self, raw: RawResult, cache_hit: bool) -> None:
        status_name, x, seconds, info = raw
        status = SolveStatus(status_name)
        service = self._service
        if cache_hit:
            service.cache_hits += 1
        elif self._key is not None:
            service._cache_put(self._key, status, x)
        if self._key is not None:
            service._in_flight_leaders.pop(self._key, None)
        if self._pooled and not cache_hit:
            service.busy_seconds += seconds
        solution = _solution_from_vector(self._model, status, x)
        solution.iterations = info["iterations"]
        solution.nodes = info["nodes"]
        solution.warm_lp_solves = info["warm_lp_solves"]
        solution.warm_lp_hits = info["warm_lp_hits"]
        self._settle(solution, seconds, cache_hit)
        for follower in self._followers:
            if not follower._resolved and follower.future is None:
                # Never dispatched (we finished before a flush reached the
                # follower): resolve it here, as the memo table would have.
                follower._finish_from_leader(raw)
        self._followers = []

    def _finish_from_leader(self, raw: RawResult) -> None:
        """Resolve from an identical in-flight solve's raw result.

        Recorded as a cache hit with zero solve time and zero kernel
        counters — the exact accounting the serial execution order
        produces when the second identical solve hits the memo table.
        """
        status_name, x, _seconds, _info = raw
        self._service.cache_hits += 1
        solution = _solution_from_vector(
            self._model, SolveStatus(status_name), x
        )
        self._settle(solution, 0.0, cache_hit=True)

    def _settle(
        self,
        solution: Solution,
        seconds: float,
        cache_hit: bool,
        degraded: bool = False,
    ) -> None:
        self._solution = solution
        self._resolved = True
        opt_gap: Optional[float] = None
        if degraded:
            opt_gap = self._fallback_gap
        elif (
            solution.status is SolveStatus.FEASIBLE
            and self._spec.lower_bound is not None
            and solution.objective == solution.objective  # not NaN
        ):
            # Anytime exact answer (timeout): price it against the known
            # valid lower bound, exactly as the heuristic leg does.
            denom = abs(solution.objective)
            diff = solution.objective - float(self._spec.lower_bound)
            opt_gap = max(0.0, diff / denom) if denom > 1e-12 else 0.0
        if opt_gap is not None:
            self._service.gap_sum += opt_gap
            self._service.gap_count += 1
        if self._collector is not None:
            self._collector.record(
                model_name=self._model.name,
                num_variables=self._model.num_variables,
                num_constraints=self._model.num_constraints,
                solve_seconds=seconds,
                status=solution.status,
                cache_hit=cache_hit,
                tag=self._tag,
                objective=solution.objective,
                iterations=solution.iterations,
                nodes=solution.nodes,
                warm_lp_solves=solution.warm_lp_solves,
                warm_lp_hits=solution.warm_lp_hits,
                source=self._source,
                opt_gap=opt_gap,
            )


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------


class SolverService:
    """Memoizing, batching, optionally process-parallel ILP solve executor.

    Args:
        jobs: worker processes; ``1`` (default) solves inline with no pool.
        cache_dir: directory of the on-disk cache store, or ``None`` to
            keep memoization in-memory only.
        memory_cache: enable the in-memory layer (identical subtrees
            within one run resolve instantly). Safe to leave on: cache
            hits return the exact vector the solver would produce.
        batch_size: maximum number of *small* instances grouped into one
            worker task. ``1`` disables batching (every solve ships as
            its own task, still in the compact wire format).
        batch_max_vars: instances with at most this many variables are
            considered small enough to batch; larger ones always ship as
            singleton tasks so one long solve never delays the results
            of the quick ones sharing its batch.

    One service may serve many parallelization runs concurrently; the
    cooperative schedulers in :mod:`repro.core.schedule` park on the
    futures handed out by :meth:`flush` and interleave all runs' solves
    through this one queue.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        memory_cache: bool = True,
        batch_size: int = 8,
        batch_max_vars: int = 96,
    ):
        self.jobs = max(1, int(jobs))
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.batch_size = max(1, int(batch_size))
        self.batch_max_vars = max(0, int(batch_max_vars))
        self._mem: Optional[Dict[str, Tuple[str, Optional[List[float]]]]] = (
            {} if memory_cache else None
        )
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_unavailable = False
        self._closed = False
        self._queue: List[PendingSolve] = []
        self._in_flight_leaders: Dict[str, PendingSolve] = {}
        self.cache_hits = 0
        self.inline_solves = 0
        self.dispatched = 0
        self.batches = 0
        self.max_batch_size = 0
        self.peak_queue_depth = 0
        self.bytes_shipped = 0
        self.busy_seconds = 0.0
        self._in_flight = 0
        self.peak_in_flight = 0
        # Anytime-portfolio telemetry. ``heuristic_solves`` /
        # ``incumbents_injected`` / ``races_won_by_heuristic`` are bumped
        # by the parallelizer's portfolio driver (the heuristic leg runs
        # in the parent process, outside this service); the degraded and
        # gap counters are maintained by the pendings themselves.
        self.heuristic_solves = 0
        self.incumbents_injected = 0
        self.races_won_by_heuristic = 0
        self.degraded_solves = 0
        self.gap_sum = 0.0
        self.gap_count = 0

    # -- public API ----------------------------------------------------------

    def submit(
        self,
        model: Model,
        spec: SolveSpec,
        tag: str = "",
        collector=None,
        fallback: Optional[Solution] = None,
        fallback_gap: Optional[float] = None,
        source: str = "exact",
    ) -> PendingSolve:
        """Submit one solve; may resolve synchronously or park in the queue.

        Queued solves are not on a worker yet — call :meth:`flush` (the
        schedulers do this right before blocking) to dispatch them.
        ``fallback`` (with its proven ``fallback_gap``) is an anytime
        answer substituted — tagged degraded, never cached — if the
        worker pool is lost before this solve completes; ``source``
        labels the resulting :class:`~repro.ilp.stats.SolveRecord` with
        the portfolio leg that produced it.
        """
        pending = PendingSolve(
            self,
            model,
            spec,
            tag,
            collector,
            fallback=fallback,
            fallback_gap=fallback_gap,
            source=source,
        )
        pending._start()
        return pending

    def solve(
        self, model: Model, spec: SolveSpec, tag: str = "", collector=None
    ) -> Solution:
        """Synchronous convenience wrapper around :meth:`submit`."""
        pending = self.submit(model, spec, tag=tag, collector=collector)
        if not pending.resolved:
            self.flush()
        return pending.result()

    def flush(self) -> None:
        """Dispatch every queued solve to the pool as prioritized batches.

        The queue is drained largest-instance-first (by variable count;
        submission order breaks ties, keeping the order deterministic),
        so long solves start as early as possible and the tail of one
        level/run is filled by whatever else is queued. Small instances
        — at most :attr:`batch_max_vars` variables — are grouped into
        batches of up to :attr:`batch_size`; each batch is one worker
        task and one round of IPC.
        """
        if not self._queue:
            return
        queue, self._queue = self._queue, []
        pool = self._ensure_pool()
        if pool is None:
            # The pool died (or never came up) after these solves were
            # queued: degrade to in-process solving in submission order.
            for pending in queue:
                pending._run_inline()
            return
        queue.sort(key=lambda p: -p.num_variables)
        batch: List[PendingSolve] = []
        for pending in queue:
            if pending.num_variables > self.batch_max_vars:
                self._dispatch(pool, [pending])
            else:
                batch.append(pending)
                if len(batch) >= self.batch_size:
                    self._dispatch(pool, batch)
                    batch = []
        if batch:
            self._dispatch(pool, batch)

    def pool_stats(self) -> PoolStats:
        return PoolStats(
            jobs=self.jobs,
            dispatched=self.dispatched,
            inline_solves=self.inline_solves,
            cache_hits=self.cache_hits,
            peak_in_flight=self.peak_in_flight,
            batches=self.batches,
            max_batch_size=self.max_batch_size,
            peak_queue_depth=self.peak_queue_depth,
            bytes_shipped=self.bytes_shipped,
            busy_seconds=self.busy_seconds,
            heuristic_solves=self.heuristic_solves,
            incumbents_injected=self.incumbents_injected,
            races_won_by_heuristic=self.races_won_by_heuristic,
            degraded_solves=self.degraded_solves,
            gap_sum=self.gap_sum,
            gap_count=self.gap_count,
        )

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` ran (ownership checks in shared setups)."""
        return self._closed

    def close(self) -> None:
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- pool management -------------------------------------------------------

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        if self.jobs <= 1 or self._pool_unavailable:
            return None
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            except (OSError, PermissionError, ValueError):
                # Restricted environments (no /dev/shm, no fork): degrade
                # to serial solving rather than failing the run.
                self._pool_unavailable = True
                return None
        return self._pool

    def _mark_pool_broken(self) -> None:
        """Tear down a pool that died mid-flight; later solves degrade."""
        self._pool_unavailable = True
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _enqueue(self, pending: PendingSolve) -> None:
        self._queue.append(pending)
        assert pending._key is not None
        self._in_flight_leaders[pending._key] = pending
        self.peak_queue_depth = max(self.peak_queue_depth, len(self._queue))

    def _dispatch(self, pool: ProcessPoolExecutor, members: List[PendingSolve]) -> None:
        payload = []
        for index, pending in enumerate(members):
            assert pending._form is not None
            compact = pack_form(pending._form)
            pending._form = None
            pending._pooled = True
            pending.batch_index = index
            self.bytes_shipped += compact.nbytes
            payload.append((compact, pending._spec))
        future = pool.submit(_execute_batch, payload)
        self.batches += 1
        self.max_batch_size = max(self.max_batch_size, len(members))
        for pending in members:
            pending.future = future
            self._note_dispatched()
            for follower in pending._followers:
                follower.future = future
                follower.batch_index = pending.batch_index
                self._note_dispatched(piggyback=True)

    def _note_dispatched(self, piggyback: bool = False) -> None:
        if not piggyback:
            self.dispatched += 1
        self._in_flight += 1
        self.peak_in_flight = max(self.peak_in_flight, self._in_flight)

    def _note_completed(self) -> None:
        self._in_flight -= 1

    # -- cache layers -----------------------------------------------------------

    def _cache_get(self, key: str) -> Optional[Tuple[str, Optional[List[float]]]]:
        if self._mem is not None and key in self._mem:
            return self._mem[key]
        if self.cache_dir is None:
            return None
        path = self._disk_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            value = (str(entry["status"]), entry["x"])
        except (OSError, ValueError, KeyError):
            return None
        if self._mem is not None:
            self._mem[key] = value
        return value

    def _cache_put(
        self, key: str, status: SolveStatus, x: Optional[List[float]]
    ) -> None:
        value = (status.value, x)
        if self._mem is not None:
            self._mem[key] = value
        if self.cache_dir is None:
            return
        path = self._disk_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump({"status": status.value, "x": x}, handle)
            os.replace(tmp, path)
        except OSError:
            pass  # a read-only cache dir must not fail the solve
    def _disk_path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / CACHE_SCHEMA / key[:2] / f"{key}.json"
