"""Solver service: parallel, memoized execution of ILP solves.

The bottom-up parallelizer (Algorithm 1) generates many mutually
independent ILP instances — sibling hierarchical nodes of one AHTG level,
and the per-class budget sweeps within a node. This module provides the
execution layer that exploits that independence:

* **Process-pool fan-out.** A solve is shipped to a worker process as its
  picklable :class:`repro.ilp.model.MatrixForm` (the model object graph
  never crosses the process boundary); the worker returns the raw solution
  vector, and the :class:`Solution` is reconstructed against the original
  model in the parent. Both backends already derive their answer from the
  matrix form, so the pooled path is bit-identical to the in-process path,
  and ``jobs=1`` (the default) degenerates to a serial in-process solve.

* **Structural memoization.** Solves are cached under a canonical
  fingerprint of the fully ground model matrix plus the solver options.
  The matrix is a pure function of the inputs the paper's ILP is built
  from — subgraph structure, per-class child costs, edge byte volumes,
  main-task class, processor budget — so structurally identical subtrees
  (e.g. the chunks of one parallel loop, or repeated ``toolflow`` runs on
  the same program) resolve to the same key. An in-memory layer serves
  within-run repeats; an optional on-disk store under ``.repro_cache/``
  (versioned by :data:`CACHE_SCHEMA`) persists across runs. A cache hit
  is still recorded as a generated ILP so the Table-I statistics do not
  depend on cache state.

* **Warm starts.** Callers may attach a known valid ``lower_bound`` (for
  the ``bnb`` backend) via :class:`SolveSpec`; the budget sweep uses the
  previous budget's objective, which is a valid bound because shrinking
  the processor budget only shrinks the feasible region. The bound is
  excluded from the cache key — it provably does not change the returned
  solution, only how fast it is found.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.ilp.model import MatrixForm, Model, Solution, SolveStatus
from repro.ilp.stats import PoolStats

#: Version key of the on-disk cache layout *and* the solve semantics.
#: Bump whenever the model construction or a backend changes behavior;
#: old entries become unreachable (different directory and fingerprint).
#: v2: ILPPAR models gained dominance pruning + symmetry-breaking rows.
CACHE_SCHEMA = "repro-ilp-v2"

#: Kernel counters reported for solves that never ran a solver (cache
#: hits, degenerate models).
_ZERO_INFO = {"iterations": 0, "nodes": 0, "warm_lp_solves": 0, "warm_lp_hits": 0}


@dataclass(frozen=True)
class SolveSpec:
    """Solver-side options of one ILP solve.

    Everything except ``lower_bound`` is part of the cache key.
    ``incumbent_obj`` (a cutoff — only strictly better solutions are
    sought) changes the outcome and is keyed; ``lower_bound`` is a pure
    early-termination aid and is not.
    """

    backend: str = "scipy"
    time_limit_s: Optional[float] = None
    mip_rel_gap: float = 0.0
    incumbent_obj: Optional[float] = None
    lower_bound: Optional[float] = None


# ---------------------------------------------------------------------------
# Canonical fingerprint
# ---------------------------------------------------------------------------


def form_fingerprint(form: MatrixForm, spec: SolveSpec) -> str:
    """Canonical hash of a ground model matrix + the keyed solver options."""
    payload = {
        "schema": CACHE_SCHEMA,
        "backend": spec.backend,
        "time_limit": spec.time_limit_s,
        "gap": spec.mip_rel_gap,
        "incumbent": spec.incumbent_obj,
        "minimize": form.minimize,
        "obj_const": form.obj_const,
        "c": [float(v) for v in form.c],
        "lb": [float(v) for v in form.lb],
        "ub": [float(v) for v in form.ub],
        "int": [int(v) for v in form.integrality],
        "rows_ub": [
            [sorted((int(j), float(a)) for j, a in row.items()), float(rhs)]
            for row, rhs in form.rows_ub
        ],
        "rows_eq": [
            [sorted((int(j), float(a)) for j, a in row.items()), float(rhs)]
            for row, rhs in form.rows_eq
        ],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Worker entry point (module-level so it pickles under ProcessPoolExecutor)
# ---------------------------------------------------------------------------


def _execute_form(
    form: MatrixForm, spec: SolveSpec
) -> Tuple[str, Optional[List[float]], float, Dict[str, int]]:
    """Solve a matrix form; returns ``(status_name, x or None, seconds, info)``.

    Runs in a worker process (or inline at ``jobs=1``). Never raises:
    solver failures map to the ``"error"`` status so a crashed solve does
    not take the whole run down. ``info`` carries the solver kernel
    counters (``iterations``/``nodes``/``warm_lp_solves``/``warm_lp_hits``).
    """
    start = time.perf_counter()
    info = dict(_ZERO_INFO)
    try:
        if spec.backend == "scipy":
            from repro.ilp.scipy_backend import solve_form_scipy

            status, x, scipy_info = solve_form_scipy(
                form, time_limit=spec.time_limit_s, mip_rel_gap=spec.mip_rel_gap
            )
            info.update(scipy_info)
        elif spec.backend == "bnb":
            from repro.ilp.bnb import BnbStats, solve_form_bnb

            stats = BnbStats()
            status, x = solve_form_bnb(
                form,
                time_limit=spec.time_limit_s,
                mip_rel_gap=spec.mip_rel_gap,
                incumbent_obj=spec.incumbent_obj,
                lower_bound=spec.lower_bound,
                stats=stats,
            )
            info = {
                "iterations": stats.pivots,
                "nodes": stats.nodes,
                "warm_lp_solves": stats.warm_lp_solves,
                "warm_lp_hits": stats.warm_lp_hits,
            }
        else:
            raise ValueError(f"unknown backend {spec.backend!r}")
    except Exception:
        return SolveStatus.ERROR.value, None, time.perf_counter() - start, info
    vector = None if x is None else [float(v) for v in x]
    return status.value, vector, time.perf_counter() - start, info


def _solution_from_vector(
    model: Model, status: SolveStatus, x: Optional[List[float]]
) -> Solution:
    """Rebuild a :class:`Solution` against the original model objects.

    Mirrors exactly what both backends do after solving — round integer
    entries, evaluate the model objective — so the reconstructed solution
    is identical to an in-process ``model.solve()``.
    """
    if status not in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE) or x is None:
        return Solution(status, float("nan"))
    values = {}
    for var in model.variables:
        value = float(x[var.index])
        if var.integer:
            value = float(round(value))
        values[var] = value
    return Solution(status, model.objective.value(values), values)


# ---------------------------------------------------------------------------
# Pending solve handle
# ---------------------------------------------------------------------------


class PendingSolve:
    """Handle for one submitted solve.

    ``future`` is ``None`` when the solve resolved synchronously (cache
    hit, degenerate model, or serial execution); otherwise it is the pool
    future the scheduler can wait on. :meth:`result` finalizes the solve:
    it caches the outcome, records statistics, and returns the
    reconstructed :class:`Solution`.
    """

    def __init__(
        self,
        service: "SolverService",
        model: Model,
        spec: SolveSpec,
        tag: str,
        collector,
    ):
        self._service = service
        self._model = model
        self._spec = spec
        self._tag = tag
        self._collector = collector
        self._key: Optional[str] = None
        self._solution: Optional[Solution] = None
        self._resolved = False
        self.future = None

    @property
    def resolved(self) -> bool:
        return self._resolved

    @property
    def model(self) -> Model:
        return self._model

    def result(self) -> Solution:
        if not self._resolved:
            assert self.future is not None
            raw = self.future.result()
            self._service._note_completed()
            self.future = None
            self._finish(raw, cache_hit=False)
        assert self._solution is not None
        return self._solution

    # -- internals -----------------------------------------------------------

    def _start(self) -> None:
        service = self._service
        start = time.perf_counter()
        if self._model.num_variables == 0:
            from repro.ilp.scipy_backend import solve_scipy

            solution = solve_scipy(self._model)
            self._settle(solution, time.perf_counter() - start, cache_hit=False)
            service.inline_solves += 1
            return
        form = self._model.to_matrix_form()
        self._key = form_fingerprint(form, self._spec)
        cached = service._cache_get(self._key)
        if cached is not None:
            status_name, x = cached
            # A cache hit ran no solver: kernel counters are genuinely 0,
            # matching solve_seconds being the lookup time.
            self._finish(
                (status_name, x, time.perf_counter() - start, dict(_ZERO_INFO)),
                cache_hit=True,
            )
            return
        pool = service._ensure_pool()
        if pool is None:
            raw = _execute_form(form, self._spec)
            service.inline_solves += 1
            self._finish(raw, cache_hit=False)
            return
        self.future = pool.submit(_execute_form, form, self._spec)
        service._note_dispatched()

    def _finish(self, raw, cache_hit: bool) -> None:
        status_name, x, seconds, info = raw
        status = SolveStatus(status_name)
        if cache_hit:
            self._service.cache_hits += 1
        elif self._key is not None:
            self._service._cache_put(self._key, status, x)
        solution = _solution_from_vector(self._model, status, x)
        solution.iterations = info["iterations"]
        solution.nodes = info["nodes"]
        solution.warm_lp_solves = info["warm_lp_solves"]
        solution.warm_lp_hits = info["warm_lp_hits"]
        self._settle(solution, seconds, cache_hit)

    def _settle(self, solution: Solution, seconds: float, cache_hit: bool) -> None:
        self._solution = solution
        self._resolved = True
        if self._collector is not None:
            self._collector.record(
                model_name=self._model.name,
                num_variables=self._model.num_variables,
                num_constraints=self._model.num_constraints,
                solve_seconds=seconds,
                status=solution.status,
                cache_hit=cache_hit,
                tag=self._tag,
                objective=solution.objective,
                iterations=solution.iterations,
                nodes=solution.nodes,
                warm_lp_solves=solution.warm_lp_solves,
                warm_lp_hits=solution.warm_lp_hits,
            )


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------


class SolverService:
    """Memoizing, optionally process-parallel ILP solve executor.

    Args:
        jobs: worker processes; ``1`` (default) solves inline with no pool.
        cache_dir: directory of the on-disk cache store, or ``None`` to
            keep memoization in-memory only.
        memory_cache: enable the in-memory layer (identical subtrees
            within one run resolve instantly). Safe to leave on: cache
            hits return the exact vector the solver would produce.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        memory_cache: bool = True,
    ):
        self.jobs = max(1, int(jobs))
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self._mem: Optional[Dict[str, Tuple[str, Optional[List[float]]]]] = (
            {} if memory_cache else None
        )
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_unavailable = False
        self.cache_hits = 0
        self.inline_solves = 0
        self.dispatched = 0
        self._in_flight = 0
        self.peak_in_flight = 0

    # -- public API ----------------------------------------------------------

    def submit(
        self, model: Model, spec: SolveSpec, tag: str = "", collector=None
    ) -> PendingSolve:
        pending = PendingSolve(self, model, spec, tag, collector)
        pending._start()
        return pending

    def solve(
        self, model: Model, spec: SolveSpec, tag: str = "", collector=None
    ) -> Solution:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(model, spec, tag=tag, collector=collector).result()

    def pool_stats(self) -> PoolStats:
        return PoolStats(
            jobs=self.jobs,
            dispatched=self.dispatched,
            inline_solves=self.inline_solves,
            cache_hits=self.cache_hits,
            peak_in_flight=self.peak_in_flight,
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- pool management -------------------------------------------------------

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        if self.jobs <= 1 or self._pool_unavailable:
            return None
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            except (OSError, PermissionError, ValueError):
                # Restricted environments (no /dev/shm, no fork): degrade
                # to serial solving rather than failing the run.
                self._pool_unavailable = True
                return None
        return self._pool

    def _note_dispatched(self) -> None:
        self.dispatched += 1
        self._in_flight += 1
        self.peak_in_flight = max(self.peak_in_flight, self._in_flight)

    def _note_completed(self) -> None:
        self._in_flight -= 1

    # -- cache layers -----------------------------------------------------------

    def _cache_get(self, key: str) -> Optional[Tuple[str, Optional[List[float]]]]:
        if self._mem is not None and key in self._mem:
            return self._mem[key]
        if self.cache_dir is None:
            return None
        path = self._disk_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            value = (str(entry["status"]), entry["x"])
        except (OSError, ValueError, KeyError):
            return None
        if self._mem is not None:
            self._mem[key] = value
        return value

    def _cache_put(
        self, key: str, status: SolveStatus, x: Optional[List[float]]
    ) -> None:
        value = (status.value, x)
        if self._mem is not None:
            self._mem[key] = value
        if self.cache_dir is None:
            return
        path = self._disk_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump({"status": status.value, "x": x}, handle)
            os.replace(tmp, path)
        except OSError:
            pass  # a read-only cache dir must not fail the solve

    def _disk_path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / CACHE_SCHEMA / key[:2] / f"{key}.json"
