"""Integer Linear Programming substrate.

This subpackage is a self-contained ILP modelling layer (in the spirit of
PuLP / lp_solve, which the paper uses) together with two exact solver
backends:

* :mod:`repro.ilp.scipy_backend` — wraps ``scipy.optimize.milp`` (HiGHS).
* :mod:`repro.ilp.bnb` — a pure-Python branch-and-bound solver whose LP
  relaxations are solved by the dense two-phase simplex implementation in
  :mod:`repro.ilp.simplex`.

Both backends return provably optimal solutions for feasible bounded
models (or a best-found incumbent flagged ``FEASIBLE`` when a time limit
strikes); they are cross-checked against each other in the test suite.
:mod:`repro.ilp.service` layers memoization and process-pool execution on
top of the backends. :mod:`repro.ilp.stats` records per-solve statistics
(variable, constraint and solve-time counts) which feed the reproduction
of the paper's Table I.
"""

from repro.ilp.model import (
    Constraint,
    InfeasibleError,
    LinExpr,
    Model,
    Sense,
    SolveStatus,
    Solution,
    UnboundedError,
    Variable,
    lin_sum,
)
from repro.ilp.service import SolverService, SolveSpec, form_fingerprint
from repro.ilp.stats import PoolStats, SolveRecord, StatsCollector

__all__ = [
    "Constraint",
    "InfeasibleError",
    "LinExpr",
    "Model",
    "PoolStats",
    "Sense",
    "SolveStatus",
    "Solution",
    "SolveRecord",
    "SolveSpec",
    "SolverService",
    "StatsCollector",
    "UnboundedError",
    "Variable",
    "form_fingerprint",
    "lin_sum",
]
