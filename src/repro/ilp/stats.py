"""Per-solve statistics collection.

The paper's Table I reports, per benchmark and per approach (homogeneous
vs. heterogeneous), the parallelization wall time, the number of generated
ILPs, and the total numbers of variables and constraints across all ILPs.
:class:`StatsCollector` gathers exactly those quantities; the parallelizer
threads one collector through every :meth:`repro.ilp.model.Model.solve`.

On top of the Table-I quantities the collector tracks the solver-service
telemetry introduced with the parallel solving layer: per-record cache
hit/miss flags (a cache hit still counts as a *generated* ILP, keeping the
Table-I numbers independent of caching), per-sweep tags for per-node solve
times, and an optional :class:`PoolStats` snapshot describing process-pool
utilization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ilp.model import SolveStatus


@dataclass(frozen=True)
class SolveRecord:
    """One ILP solve: model name, size, wall time and outcome.

    ``cache_hit`` marks solves answered from the solver-service cache
    (``solve_seconds`` is then the lookup time, and the kernel counters
    below are 0 — no solver ran); ``tag`` identifies the sweep that
    generated the ILP (e.g. ``"node12|fast"``).

    ``iterations`` / ``nodes`` are solver kernel counters (simplex pivots
    and branch-and-bound nodes — backend-invariant accounting for
    Table I), and the ``warm_lp_*`` pair tracks warm-start basis reuse in
    the pure-Python backend.

    ``source`` tells which leg of the scheduling portfolio produced the
    answer: ``"exact"`` (an ILP backend, the default), ``"heuristic"``
    (list scheduler / GA, no exact solve ran) or ``"portfolio"`` (exact
    solve warm-started by a heuristic incumbent). ``opt_gap`` is the
    proven relative optimality gap of an anytime answer (``None`` for
    proved-optimal solves).
    """

    model_name: str
    num_variables: int
    num_constraints: int
    solve_seconds: float
    status: SolveStatus
    cache_hit: bool = False
    tag: str = ""
    objective: float = float("nan")
    iterations: int = 0
    nodes: int = 0
    warm_lp_solves: int = 0
    warm_lp_hits: int = 0
    source: str = "exact"
    opt_gap: Optional[float] = None


@dataclass(frozen=True)
class PoolStats:
    """Process-pool utilization of one solver-service run.

    Beyond the original dispatch counters this carries the batched-dispatch
    telemetry of the suite orchestration layer: how deep the submit queue
    got before a flush (``peak_queue_depth``), how many worker tasks were
    actually shipped (``batches``) and how large the largest one was
    (``max_batch_size``), the total compact-form payload that crossed the
    process boundary (``bytes_shipped``), and the summed in-worker solve
    time (``busy_seconds``) from which worker utilization is derived.

    The ``heuristic_*`` block is the anytime-portfolio telemetry:
    heuristic solves run (list scheduler + GA), incumbent vectors
    injected into exact solves, races the heuristic leg won (the exact
    solver did not improve on the injected incumbent), solves degraded
    to the heuristic answer after a pool loss, and the sum/count of the
    proven optimality gaps of anytime answers (``mean_gap``).
    """

    jobs: int
    dispatched: int = 0
    inline_solves: int = 0
    cache_hits: int = 0
    peak_in_flight: int = 0
    batches: int = 0
    max_batch_size: int = 0
    peak_queue_depth: int = 0
    bytes_shipped: int = 0
    busy_seconds: float = 0.0
    heuristic_solves: int = 0
    incumbents_injected: int = 0
    races_won_by_heuristic: int = 0
    degraded_solves: int = 0
    gap_sum: float = 0.0
    gap_count: int = 0

    @property
    def mean_gap(self) -> float:
        """Mean proven optimality gap of anytime answers (0.0 if none)."""
        return self.gap_sum / self.gap_count if self.gap_count else 0.0

    def utilization(self, wall_seconds: float) -> float:
        """Fraction of worker capacity kept busy over ``wall_seconds``."""
        capacity = wall_seconds * max(1, self.jobs)
        return self.busy_seconds / capacity if capacity > 0 else 0.0


@dataclass(frozen=True)
class SuiteStats:
    """Shared-service telemetry of one multi-cell experiment suite."""

    wall_seconds: float
    cells: int
    pool: PoolStats

    @property
    def worker_utilization(self) -> float:
        return self.pool.utilization(self.wall_seconds)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready flat view (``BENCH_pipeline.json`` suite block)."""
        p = self.pool
        return {
            "wall_seconds": round(self.wall_seconds, 6),
            "cells": self.cells,
            "jobs": p.jobs,
            "dispatched": p.dispatched,
            "inline_solves": p.inline_solves,
            "cache_hits": p.cache_hits,
            "peak_in_flight": p.peak_in_flight,
            "batches": p.batches,
            "max_batch_size": p.max_batch_size,
            "peak_queue_depth": p.peak_queue_depth,
            "bytes_shipped": p.bytes_shipped,
            "busy_seconds": round(p.busy_seconds, 6),
            "worker_utilization": round(self.worker_utilization, 6),
            "portfolio": {
                "heuristic_solves": p.heuristic_solves,
                "incumbents_injected": p.incumbents_injected,
                "races_won_by_heuristic": p.races_won_by_heuristic,
                "degraded_solves": p.degraded_solves,
                "mean_gap": round(p.mean_gap, 6),
            },
        }


@dataclass
class StatsCollector:
    """Accumulates :class:`SolveRecord` entries across a parallelization run."""

    records: List[SolveRecord] = field(default_factory=list)
    #: Pool utilization snapshot, attached by the parallelizer when a
    #: solver service drove the run.
    pool: Optional[PoolStats] = None

    def record(
        self,
        model_name: str,
        num_variables: int,
        num_constraints: int,
        solve_seconds: float,
        status: SolveStatus,
        cache_hit: bool = False,
        tag: str = "",
        objective: float = float("nan"),
        iterations: int = 0,
        nodes: int = 0,
        warm_lp_solves: int = 0,
        warm_lp_hits: int = 0,
        source: str = "exact",
        opt_gap: Optional[float] = None,
    ) -> None:
        self.records.append(
            SolveRecord(
                model_name,
                num_variables,
                num_constraints,
                solve_seconds,
                status,
                cache_hit,
                tag,
                objective,
                iterations,
                nodes,
                warm_lp_solves,
                warm_lp_hits,
                source,
                opt_gap,
            )
        )

    # -- Table I quantities ---------------------------------------------------

    @property
    def num_ilps(self) -> int:
        return len(self.records)

    @property
    def total_variables(self) -> int:
        return sum(r.num_variables for r in self.records)

    @property
    def total_constraints(self) -> int:
        return sum(r.num_constraints for r in self.records)

    @property
    def total_solve_seconds(self) -> float:
        return sum(r.solve_seconds for r in self.records)

    # -- solver-service telemetry ----------------------------------------------

    @property
    def total_iterations(self) -> int:
        """Total solver kernel iterations (simplex pivots) across records."""
        return sum(r.iterations for r in self.records)

    @property
    def total_nodes(self) -> int:
        """Total branch-and-bound nodes across records."""
        return sum(r.nodes for r in self.records)

    @property
    def total_warm_lp_solves(self) -> int:
        return sum(r.warm_lp_solves for r in self.records)

    @property
    def total_warm_lp_hits(self) -> int:
        return sum(r.warm_lp_hits for r in self.records)

    @property
    def warm_hit_rate(self) -> float:
        """Fraction of warm-start offers the LP kernel accepted (0.0 if none)."""
        offered = self.total_warm_lp_solves
        return self.total_warm_lp_hits / offered if offered else 0.0

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.cache_hit)

    @property
    def cache_misses(self) -> int:
        return sum(1 for r in self.records if not r.cache_hit)

    def solves_by_source(self) -> Dict[str, int]:
        """Record counts per portfolio leg (``exact``/``heuristic``/...)."""
        out: Dict[str, int] = {}
        for r in self.records:
            out[r.source] = out.get(r.source, 0) + 1
        return out

    def solve_seconds_by_tag(self) -> Dict[str, float]:
        """Aggregate solve wall time per sweep tag (per-node solve times)."""
        out: Dict[str, float] = {}
        for r in self.records:
            out[r.tag] = out.get(r.tag, 0.0) + r.solve_seconds
        return out

    def merge(self, other: "StatsCollector") -> None:
        self.records.extend(other.records)

    def summary(self) -> "StatsSummary":
        return StatsSummary(
            num_ilps=self.num_ilps,
            total_variables=self.total_variables,
            total_constraints=self.total_constraints,
            total_solve_seconds=self.total_solve_seconds,
        )


@dataclass(frozen=True)
class StatsSummary:
    """Aggregated Table-I row for one (benchmark, approach) pair."""

    num_ilps: int
    total_variables: int
    total_constraints: int
    total_solve_seconds: float

    def ratio_to(self, baseline: "StatsSummary") -> "StatsRatios":
        """Factors of this summary over ``baseline`` (paper's third block)."""

        def safe(a: float, b: float) -> float:
            return a / b if b else float("inf")

        return StatsRatios(
            time_factor=safe(self.total_solve_seconds, baseline.total_solve_seconds),
            ilp_factor=safe(self.num_ilps, baseline.num_ilps),
            variable_factor=safe(self.total_variables, baseline.total_variables),
            constraint_factor=safe(self.total_constraints, baseline.total_constraints),
        )


@dataclass(frozen=True)
class StatsRatios:
    """Heterogeneous-over-homogeneous factors (Table I, "Factor" block)."""

    time_factor: float
    ilp_factor: float
    variable_factor: float
    constraint_factor: float
