"""Per-solve statistics collection.

The paper's Table I reports, per benchmark and per approach (homogeneous
vs. heterogeneous), the parallelization wall time, the number of generated
ILPs, and the total numbers of variables and constraints across all ILPs.
:class:`StatsCollector` gathers exactly those quantities; the parallelizer
threads one collector through every :meth:`repro.ilp.model.Model.solve`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.ilp.model import SolveStatus


@dataclass(frozen=True)
class SolveRecord:
    """One ILP solve: model name, size, wall time and outcome."""

    model_name: str
    num_variables: int
    num_constraints: int
    solve_seconds: float
    status: SolveStatus


@dataclass
class StatsCollector:
    """Accumulates :class:`SolveRecord` entries across a parallelization run."""

    records: List[SolveRecord] = field(default_factory=list)

    def record(
        self,
        model_name: str,
        num_variables: int,
        num_constraints: int,
        solve_seconds: float,
        status: SolveStatus,
    ) -> None:
        self.records.append(
            SolveRecord(model_name, num_variables, num_constraints, solve_seconds, status)
        )

    # -- Table I quantities ---------------------------------------------------

    @property
    def num_ilps(self) -> int:
        return len(self.records)

    @property
    def total_variables(self) -> int:
        return sum(r.num_variables for r in self.records)

    @property
    def total_constraints(self) -> int:
        return sum(r.num_constraints for r in self.records)

    @property
    def total_solve_seconds(self) -> float:
        return sum(r.solve_seconds for r in self.records)

    def merge(self, other: "StatsCollector") -> None:
        self.records.extend(other.records)

    def summary(self) -> "StatsSummary":
        return StatsSummary(
            num_ilps=self.num_ilps,
            total_variables=self.total_variables,
            total_constraints=self.total_constraints,
            total_solve_seconds=self.total_solve_seconds,
        )


@dataclass(frozen=True)
class StatsSummary:
    """Aggregated Table-I row for one (benchmark, approach) pair."""

    num_ilps: int
    total_variables: int
    total_constraints: int
    total_solve_seconds: float

    def ratio_to(self, baseline: "StatsSummary") -> "StatsRatios":
        """Factors of this summary over ``baseline`` (paper's third block)."""

        def safe(a: float, b: float) -> float:
            return a / b if b else float("inf")

        return StatsRatios(
            time_factor=safe(self.total_solve_seconds, baseline.total_solve_seconds),
            ilp_factor=safe(self.num_ilps, baseline.num_ilps),
            variable_factor=safe(self.total_variables, baseline.total_variables),
            constraint_factor=safe(self.total_constraints, baseline.total_constraints),
        )


@dataclass(frozen=True)
class StatsRatios:
    """Heterogeneous-over-homogeneous factors (Table I, "Factor" block)."""

    time_factor: float
    ilp_factor: float
    variable_factor: float
    constraint_factor: float
