"""HiGHS backend: solves :class:`repro.ilp.model.Model` via ``scipy.optimize.milp``."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.ilp.model import MatrixForm, Model, Solution, SolveStatus

# scipy.optimize.milp status codes (see scipy docs).
_STATUS_MAP = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.ERROR,  # iteration/time limit
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


def solve_form_scipy(
    form: MatrixForm,
    time_limit: Optional[float] = None,
    mip_rel_gap: float = 0.0,
) -> Tuple[SolveStatus, Optional[np.ndarray], Dict[str, int]]:
    """Solve a :class:`MatrixForm` with HiGHS; returns ``(status, x, info)``.

    This is the process-pool-friendly core used by the solver service: it
    consumes only the matrix data (picklable), so it can run in a worker
    process. A time-limit hit with an incumbent available is reported as
    ``FEASIBLE`` with that incumbent; ``x`` is ``None`` for every other
    non-optimal outcome. ``info`` carries the solver kernel counters
    (``nodes`` from HiGHS's ``mip_node_count``; ``iterations`` is 0
    because ``scipy.optimize.milp`` does not expose a pivot count) so
    Table-I accounting stays backend-invariant.
    """
    constraints = []
    a_ub, b_ub = form.sparse_ub()
    if a_ub.shape[0]:
        constraints.append(LinearConstraint(a_ub, -np.inf, b_ub))
    a_eq, b_eq = form.sparse_eq()
    if a_eq.shape[0]:
        constraints.append(LinearConstraint(a_eq, b_eq, b_eq))

    options = {"mip_rel_gap": mip_rel_gap}
    if time_limit is not None:
        options["time_limit"] = time_limit

    result = milp(
        c=form.c,
        constraints=constraints or None,
        integrality=form.integrality,
        bounds=Bounds(form.lb, form.ub),
        options=options,
    )
    if result.status == 4:
        # Some HiGHS builds mis-handle presolve on certain big-M models
        # ("Solve error"); retrying without presolve is reliable.
        result = milp(
            c=form.c,
            constraints=constraints or None,
            integrality=form.integrality,
            bounds=Bounds(form.lb, form.ub),
            options={**options, "presolve": False},
        )

    info = {
        "iterations": 0,
        "nodes": int(getattr(result, "mip_node_count", 0) or 0),
    }
    status = _STATUS_MAP.get(result.status, SolveStatus.ERROR)
    if status is SolveStatus.OPTIMAL and result.x is not None:
        return status, result.x, info
    if result.status == 1 and result.x is not None:
        # Iteration/time limit with an incumbent: usable, not proven optimal.
        return SolveStatus.FEASIBLE, result.x, info
    return status, None, info


def solve_scipy(
    model: Model,
    time_limit: Optional[float] = None,
    mip_rel_gap: float = 0.0,
) -> Solution:
    """Solve ``model`` exactly with HiGHS and return a :class:`Solution`.

    ``time_limit`` (seconds) and ``mip_rel_gap`` are passed through to
    HiGHS; the defaults request a proven optimum.
    """
    form = model.to_matrix_form()
    n = len(form.c)
    if n == 0:
        # Degenerate constant model: feasible iff constant constraints hold.
        for row, rhs in form.rows_ub:
            if 0.0 > rhs + 1e-9:
                return Solution(SolveStatus.INFEASIBLE, float("nan"))
        for row, rhs in form.rows_eq:
            if abs(rhs) > 1e-9:
                return Solution(SolveStatus.INFEASIBLE, float("nan"))
        return Solution(SolveStatus.OPTIMAL, form.obj_const, {})

    status, x, info = solve_form_scipy(
        form, time_limit=time_limit, mip_rel_gap=mip_rel_gap
    )
    if status not in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE) or x is None:
        return Solution(
            status,
            float("nan"),
            iterations=info["iterations"],
            nodes=info["nodes"],
        )

    values = {}
    for var in model.variables:
        value = float(x[var.index])
        if var.integer:
            value = float(round(value))
        values[var] = value

    objective = model.objective.value(values)
    return Solution(
        status,
        objective,
        values,
        iterations=info["iterations"],
        nodes=info["nodes"],
    )
