"""Presolve reductions for the pure-Python MILP path.

Small, safe reductions applied before branch-and-bound:

* **singleton rows** — constraints with one variable become bound updates;
* **bound propagation** — activity bounds tighten variable bounds on
  ``<=`` rows (one pass per round, classic interval arithmetic);
* **integral rounding** — integer variables' fractional bounds are
  rounded inward;
* **fixed-variable detection** — ``lb == ub`` variables are reported so
  the search never branches on them;
* **ordering chains** — two-variable rows of the shape
  ``a·x_i - a·x_j <= 0`` (``a > 0``) encode ``x_i <= x_j``; bounds
  propagate along the chain to a fixpoint, so fixing one link of e.g.
  the ILPPAR ``used_order`` prefix rows fixes the whole suffix/prefix
  without any branching;
* **infeasibility detection** — crossed bounds or unsatisfiable constant
  rows end the solve immediately.

The reductions only ever *shrink* the feasible box, never cut off integer
solutions, so optimal objective values are preserved (asserted by the
cross-check tests against the unpresolved HiGHS solve).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np


@dataclass
class PresolveResult:
    """Outcome of presolving: tightened bounds or proven infeasibility."""

    status: str  # 'reduced' | 'infeasible'
    lb: Optional[np.ndarray] = None
    ub: Optional[np.ndarray] = None
    fixed: Dict[int, float] = field(default_factory=dict)
    rounds: int = 0
    tightenings: int = 0
    #: Variables pinned (lb == ub) by ordering-chain propagation alone.
    implied_fixings: int = 0


def presolve(
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    integrality: np.ndarray,
    max_rounds: int = 10,
) -> PresolveResult:
    """Tighten ``lb``/``ub`` under ``a_ub x <= b_ub`` (integrality-aware)."""
    lb = np.array(lb, dtype=float)
    ub = np.array(ub, dtype=float)
    int_mask = np.asarray(integrality, dtype=bool)
    n = lb.shape[0]
    a_ub = np.asarray(a_ub, dtype=float).reshape(-1, n) if np.size(a_ub) else np.zeros((0, n))
    b_ub = np.asarray(b_ub, dtype=float).ravel()

    # Ordering chains: rows "a·x_i - a·x_j <= 0" with a > 0 say x_i <= x_j.
    order_pairs: List[Tuple[int, int]] = []
    for row, rhs in zip(a_ub, b_ub):
        if abs(rhs) > 1e-9:
            continue
        nz = np.flatnonzero(row)
        if nz.size != 2:
            continue
        i, j = int(nz[0]), int(nz[1])
        if abs(row[i] + row[j]) > 1e-12:
            continue
        if row[i] < 0:
            i, j = j, i
        order_pairs.append((i, j))

    tightenings = 0
    implied_fixings = 0
    rounds = 0
    for _ in range(max_rounds):
        rounds += 1
        changed = False

        # integral rounding
        if int_mask.any():
            new_lb = np.where(int_mask, np.ceil(lb - 1e-9), lb)
            new_ub = np.where(int_mask, np.floor(ub + 1e-9), ub)
            if np.any(new_lb > lb + 1e-12) or np.any(new_ub < ub - 1e-12):
                changed = True
                tightenings += int(np.sum(new_lb > lb + 1e-12))
                tightenings += int(np.sum(new_ub < ub - 1e-12))
            lb, ub = new_lb, new_ub

        if np.any(lb > ub + 1e-9):
            return PresolveResult("infeasible", rounds=rounds)

        for row, rhs in zip(a_ub, b_ub):
            nonzero = np.flatnonzero(row)
            if nonzero.size == 0:
                if 0.0 > rhs + 1e-9:
                    return PresolveResult("infeasible", rounds=rounds)
                continue
            # minimum activity of the row (0 * inf at zero coefficients is
            # harmless: those entries are never read)
            with np.errstate(invalid="ignore"):
                mins = np.where(row > 0, row * lb, row * ub)
            min_activity = float(np.sum(mins[nonzero]))
            if min_activity > rhs + 1e-7:
                return PresolveResult("infeasible", rounds=rounds)
            for j in nonzero:
                a = row[j]
                # inf - inf is nan when the rest-activity is unbounded; the
                # comparisons below are then False, correctly skipping the
                # tightening.
                with np.errstate(invalid="ignore"):
                    rest = min_activity - (mins[j])
                    slack = rhs - rest
                if a > 0:
                    new_ub_j = slack / a
                    if new_ub_j < ub[j] - 1e-9:
                        ub[j] = new_ub_j
                        changed = True
                        tightenings += 1
                else:
                    new_lb_j = slack / a
                    if new_lb_j > lb[j] + 1e-9:
                        lb[j] = new_lb_j
                        changed = True
                        tightenings += 1

        # ordering-chain propagation to a fixpoint (chains are short, and
        # each sweep moves information one link, so iterate within the round)
        while order_pairs:
            chain_changed = False
            for i, j in order_pairs:
                if ub[j] < ub[i] - 1e-9:
                    ub[i] = ub[j]
                    tightenings += 1
                    chain_changed = changed = True
                    if abs(ub[i] - lb[i]) <= 1e-9:
                        implied_fixings += 1
                if lb[i] > lb[j] + 1e-9:
                    lb[j] = lb[i]
                    tightenings += 1
                    chain_changed = changed = True
                    if abs(ub[j] - lb[j]) <= 1e-9:
                        implied_fixings += 1
            if not chain_changed:
                break

        if not changed:
            break

    if np.any(lb > ub + 1e-9):
        return PresolveResult("infeasible", rounds=rounds)

    fixed = {
        int(j): float(lb[j])
        for j in range(n)
        if math.isfinite(lb[j]) and abs(ub[j] - lb[j]) <= 1e-9
    }
    return PresolveResult(
        "reduced",
        lb=lb,
        ub=ub,
        fixed=fixed,
        rounds=rounds,
        tightenings=tightenings,
        implied_fixings=implied_fixings,
    )
