"""Pure-Python branch-and-bound MILP solver.

Solves :class:`repro.ilp.model.Model` instances exactly using depth-first
branch and bound over LP relaxations computed by the self-contained simplex
in :mod:`repro.ilp.simplex`. Intended for small-to-medium models and as an
independent cross-check of the HiGHS backend; the parallelizer's default
backend remains :mod:`repro.ilp.scipy_backend`.

Branching strategy: most-fractional integer variable; depth-first with the
"floor" child first (good for 0-1 packing-style models where variables tend
to 0), pruning by the incumbent objective.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.ilp.model import Model, Solution, SolveStatus
from repro.ilp.simplex import solve_lp

_INT_TOL = 1e-6


@dataclass
class _Node:
    lb: np.ndarray
    ub: np.ndarray
    depth: int


#: Above this variable count the dense tableau simplex becomes the
#: bottleneck; the relaxation switches to scipy's LP while the search
#: stays pure Python.
_SIMPLEX_SIZE_LIMIT = 80


def solve_bnb(
    model: Model,
    max_nodes: int = 200_000,
    use_scipy_lp: Optional[bool] = None,
    time_limit: float | None = None,
    mip_rel_gap: float = 0.0,
) -> Solution:
    """Solve ``model`` by branch and bound.

    ``use_scipy_lp`` switches the relaxation engine to
    ``scipy.optimize.linprog`` (keeping the pure-Python search); the
    default picks the built-in simplex for small models and scipy's LP
    above :data:`_SIMPLEX_SIZE_LIMIT` variables. ``time_limit`` and
    ``mip_rel_gap`` are accepted for backend-interface compatibility; the
    B&B always proves optimality and ignores them.
    """
    del time_limit, mip_rel_gap
    if use_scipy_lp is None:
        use_scipy_lp = model.num_variables > _SIMPLEX_SIZE_LIMIT
    form = model.to_matrix_form()
    n = len(form.c)
    if n == 0:
        from repro.ilp.scipy_backend import solve_scipy

        return solve_scipy(model)

    a_ub, b_ub = _dense_rows(form.rows_ub, n)
    a_eq, b_eq = _dense_rows(form.rows_eq, n)
    c = np.asarray(form.c, dtype=float)
    int_mask = np.asarray(form.integrality, dtype=bool)

    if use_scipy_lp:
        relax = _make_scipy_relaxation(c, a_ub, b_ub, a_eq, b_eq)
    else:
        relax = lambda lb, ub: solve_lp(c, a_ub, b_ub, a_eq, b_eq, lb, ub)

    # Root presolve: bound tightening over the inequality system (equality
    # rows contribute both directions). Only shrinks the box, so optima
    # are preserved; proven infeasibility short-circuits the search.
    from repro.ilp.presolve import presolve

    if a_eq.shape[0]:
        pre_a = np.vstack([a_ub, a_eq, -a_eq])
        pre_b = np.concatenate([b_ub, b_eq, -b_eq])
    else:
        pre_a, pre_b = a_ub, b_ub
    pre = presolve(pre_a, pre_b, form.lb, form.ub, form.integrality)
    if pre.status == "infeasible":
        return Solution(SolveStatus.INFEASIBLE, float("nan"))
    assert pre.lb is not None and pre.ub is not None

    root = _Node(np.array(pre.lb, dtype=float), np.array(pre.ub, dtype=float), 0)
    stack: List[_Node] = [root]
    best_obj = math.inf
    best_x: Optional[np.ndarray] = None
    nodes_explored = 0
    root_unbounded = False

    while stack:
        node = stack.pop()
        nodes_explored += 1
        if nodes_explored > max_nodes:
            raise RuntimeError(f"branch-and-bound node limit exceeded on {model.name!r}")

        result = relax(node.lb, node.ub)
        if result.status == "infeasible":
            continue
        if result.status == "unbounded":
            if node.depth == 0:
                root_unbounded = True
            # An unbounded relaxation deeper in the tree still means the
            # MILP itself may be unbounded; treat conservatively.
            root_unbounded = root_unbounded or best_x is None
            continue
        assert result.x is not None
        if result.objective >= best_obj - 1e-9:
            continue  # bound: cannot improve the incumbent

        frac_j = _most_fractional(result.x, int_mask)
        if frac_j < 0:
            # Integral (for all integer vars): candidate incumbent.
            x = result.x.copy()
            x[int_mask] = np.round(x[int_mask])
            obj = float(c @ x)
            if obj < best_obj - 1e-9:
                best_obj = obj
                best_x = x
            continue

        xf = result.x[frac_j]
        floor_node = _Node(node.lb.copy(), node.ub.copy(), node.depth + 1)
        floor_node.ub[frac_j] = math.floor(xf)
        ceil_node = _Node(node.lb.copy(), node.ub.copy(), node.depth + 1)
        ceil_node.lb[frac_j] = math.ceil(xf)
        # DFS, exploring the floor branch first.
        stack.append(ceil_node)
        stack.append(floor_node)

    if best_x is None:
        if root_unbounded:
            return Solution(SolveStatus.UNBOUNDED, float("nan"))
        return Solution(SolveStatus.INFEASIBLE, float("nan"))

    values = {}
    for var in model.variables:
        x = float(best_x[var.index])
        if var.integer:
            x = float(round(x))
        values[var] = x
    objective = model.objective.value(values)
    return Solution(SolveStatus.OPTIMAL, objective, values)


def _dense_rows(rows: List[Tuple[dict, float]], n: int) -> Tuple[np.ndarray, np.ndarray]:
    if not rows:
        return np.zeros((0, n)), np.zeros(0)
    a = np.zeros((len(rows), n))
    b = np.zeros(len(rows))
    for i, (row, rhs) in enumerate(rows):
        b[i] = rhs
        for j, coef in row.items():
            a[i, j] = coef
    return a, b


def _most_fractional(x: np.ndarray, int_mask: np.ndarray) -> int:
    """Index of the integer variable farthest from integrality, or -1."""
    best_j = -1
    best_dist = _INT_TOL
    for j in np.flatnonzero(int_mask):
        frac = x[j] - math.floor(x[j])
        dist = min(frac, 1.0 - frac)
        if dist > best_dist:
            best_dist = dist
            best_j = int(j)
    return best_j


def _make_scipy_relaxation(c, a_ub, b_ub, a_eq, b_eq):
    from scipy.optimize import linprog

    def relax(lb, ub):
        bounds = list(zip(lb, ub))
        res = linprog(
            c,
            A_ub=a_ub if a_ub.shape[0] else None,
            b_ub=b_ub if a_ub.shape[0] else None,
            A_eq=a_eq if a_eq.shape[0] else None,
            b_eq=b_eq if a_eq.shape[0] else None,
            bounds=bounds,
            method="highs",
        )
        from repro.ilp.simplex import LPResult

        if res.status == 2:
            return LPResult("infeasible")
        if res.status == 3:
            return LPResult("unbounded")
        if res.status != 0:
            return LPResult("infeasible")
        return LPResult("optimal", res.x, float(res.fun))

    return relax
