"""Pure-Python branch-and-bound MILP solver.

Solves :class:`repro.ilp.model.Model` instances exactly using depth-first
branch and bound over LP relaxations computed by the self-contained simplex
in :mod:`repro.ilp.simplex`. Intended for small-to-medium models and as an
independent cross-check of the HiGHS backend; the parallelizer's default
backend remains :mod:`repro.ilp.scipy_backend`.

Branching strategy: most-fractional integer variable; depth-first with the
"floor" child first (good for 0-1 packing-style models where variables tend
to 0), pruning by the incumbent objective.

Warm-start interface (used by the solver service's budget sweeps):

* ``incumbent_obj`` seeds the incumbent objective as a *cutoff*: only
  solutions strictly better than it are sought. Without ``incumbent_x``
  the cutoff is anonymous — if nothing beats it the solve reports
  :data:`SolveStatus.INFEASIBLE` ("nothing beats the cutoff") and the
  caller keeps its incumbent.
* ``incumbent_x`` (the heuristic portfolio's warm start) seeds the
  incumbent *solution* alongside its objective. The search then behaves
  like a normal solve that found this incumbent first: exhausting the
  tree proves no strictly better solution exists and returns the best
  incumbent as :data:`SolveStatus.OPTIMAL` — in particular, when the
  injected cutoff already equals the optimum the matching solution comes
  back OPTIMAL instead of everything being pruned into an INFEASIBLE
  verdict. A timeout returns the best incumbent as FEASIBLE. The seeded
  objective is recomputed as ``c @ incumbent_x`` so cutoff comparisons
  stay in the matrix-form objective units the search uses internally.
* ``lower_bound`` is a known valid lower bound on the optimum (e.g. the
  optimum of a relaxation of the same model solved earlier). As soon as an
  incumbent within ``mip_rel_gap`` of the bound is found the search stops
  — the incumbent is provably optimal (within the gap).
* ``time_limit`` / ``mip_rel_gap`` are honored: on timeout the best
  incumbent is returned with :data:`SolveStatus.FEASIBLE`; a positive gap
  relaxes the incumbent-pruning rule so the search terminates once the
  proven gap is small enough.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.ilp.model import MatrixForm, Model, Solution, SolveStatus
from repro.ilp.simplex import SimplexBasis, solve_lp

_INT_TOL = 1e-6

#: Clock hook; tests monkeypatch this to exercise the time-limit path
#: deterministically.
_now = time.perf_counter


@dataclass
class BnbStats:
    """Mutable search counters, accumulated across one ``solve_form_bnb``.

    ``pivots`` counts simplex iterations over all LP relaxations (0 for
    the scipy relaxation path before scipy reports them, see
    ``_make_scipy_relaxation``); ``warm_lp_solves`` counts relaxations
    that were *offered* a parent basis and ``warm_lp_hits`` how many the
    kernel actually accepted.
    """

    nodes: int = 0
    pivots: int = 0
    lp_solves: int = 0
    warm_lp_solves: int = 0
    warm_lp_hits: int = 0


@dataclass
class _Node:
    lb: np.ndarray
    ub: np.ndarray
    depth: int
    basis: Optional[SimplexBasis] = None


#: Above this variable count the revised simplex's dense basis inverse
#: stops paying for itself against scipy's HiGHS (measured crossover on
#: the ILPPAR model family: ~20x faster at 35 variables, ~4x slower at
#: 126); the relaxation switches to scipy's LP while the search stays
#: pure Python. Below the limit the warm-basis protocol re-solves child
#: relaxations in a handful of dual pivots.
_SIMPLEX_SIZE_LIMIT = 80


def solve_form_bnb(
    form: MatrixForm,
    max_nodes: int = 200_000,
    use_scipy_lp: Optional[bool] = None,
    time_limit: float | None = None,
    mip_rel_gap: float = 0.0,
    incumbent_obj: Optional[float] = None,
    incumbent_x: Optional[np.ndarray] = None,
    lower_bound: Optional[float] = None,
    stats: Optional[BnbStats] = None,
    warm_start: bool = True,
) -> Tuple[SolveStatus, Optional[np.ndarray]]:
    """Branch-and-bound over a :class:`MatrixForm`; returns ``(status, x)``.

    This is the process-pool-friendly core: it works purely on the matrix
    data, so it can run in a worker process without shipping the ``Model``
    object graph. ``x`` is the raw solution vector (integer entries not
    yet rounded) and is ``None`` unless the status is ``OPTIMAL`` or
    ``FEASIBLE``. ``stats``, when given, is filled in-place with search
    counters. ``warm_start=False`` disables parent-basis reuse (every
    relaxation solves cold) — used by the kernel microbenchmark to
    measure the pivot savings of the warm-basis protocol.
    """
    n = len(form.c)
    if use_scipy_lp is None:
        use_scipy_lp = n > _SIMPLEX_SIZE_LIMIT

    a_ub, b_ub = _dense_rows(form.rows_ub, n)
    a_eq, b_eq = _dense_rows(form.rows_eq, n)
    c = np.asarray(form.c, dtype=float)
    int_mask = np.asarray(form.integrality, dtype=bool)

    seed_x: Optional[np.ndarray] = None
    if incumbent_x is not None:
        seed_x = np.asarray(incumbent_x, dtype=float).copy()
        if seed_x.shape != (n,):
            raise ValueError(
                f"incumbent_x has {seed_x.shape} entries, model has {n}"
            )
        # Score the seed exactly as search incumbents are scored, so the
        # cutoff comparison is free of caller-side rounding drift.
        incumbent_obj = float(c @ seed_x)

    if use_scipy_lp:
        relax = _make_scipy_relaxation(c, a_ub, b_ub, a_eq, b_eq)
    else:

        def relax(lb, ub, basis=None):
            if basis is None:
                return solve_lp(c, a_ub, b_ub, a_eq, b_eq, lb, ub)
            return solve_lp(c, a_ub, b_ub, a_eq, b_eq, lb, ub, basis=basis)

    # Root presolve: bound tightening over the inequality system (equality
    # rows contribute both directions). Only shrinks the box, so optima
    # are preserved; proven infeasibility short-circuits the search.
    from repro.ilp.presolve import presolve

    if a_eq.shape[0]:
        pre_a = np.vstack([a_ub, a_eq, -a_eq])
        pre_b = np.concatenate([b_ub, b_eq, -b_eq])
    else:
        pre_a, pre_b = a_ub, b_ub
    pre = presolve(pre_a, pre_b, form.lb, form.ub, form.integrality)
    if pre.status == "infeasible":
        return SolveStatus.INFEASIBLE, None
    assert pre.lb is not None and pre.ub is not None
    pre_lb = np.array(pre.lb, dtype=float)
    pre_ub = np.array(pre.ub, dtype=float)

    # Fully-fixed instance: presolve pinned every variable, so the unique
    # candidate point decides the solve without any LP relaxation at all.
    if n and np.all(pre_ub - pre_lb <= 1e-9):
        x = pre_lb.copy()
        feasible = (
            not a_ub.shape[0] or bool(np.all(a_ub @ x <= b_ub + 1e-7))
        ) and (not a_eq.shape[0] or bool(np.all(np.abs(a_eq @ x - b_eq) <= 1e-7)))
        if not feasible:
            return SolveStatus.INFEASIBLE, None
        obj = float(c @ x)
        if incumbent_obj is not None and obj >= float(incumbent_obj) - 1e-9:
            if seed_x is not None:
                # The seeded incumbent is at least as good as the unique
                # feasible point: it *is* the optimum.
                return SolveStatus.OPTIMAL, seed_x
            return SolveStatus.INFEASIBLE, None  # nothing beats the cutoff
        return SolveStatus.OPTIMAL, x

    root = _Node(pre_lb, pre_ub, 0)
    stack: List[_Node] = [root]
    best_obj = math.inf if incumbent_obj is None else float(incumbent_obj)
    best_x: Optional[np.ndarray] = seed_x
    nodes_explored = 0
    root_unbounded = False
    timed_out = False
    start = _now()

    def _prune_margin(ref: float) -> float:
        return max(1e-9, mip_rel_gap * abs(ref)) if math.isfinite(ref) else 1e-9

    if (
        best_x is not None
        and lower_bound is not None
        and best_obj <= float(lower_bound) + _prune_margin(float(lower_bound))
    ):
        # The seeded incumbent already meets a known valid lower bound:
        # provably optimal (within mip_rel_gap) with zero search nodes.
        return SolveStatus.OPTIMAL, best_x

    while stack:
        if time_limit is not None and _now() - start > time_limit:
            timed_out = True
            break
        node = stack.pop()
        nodes_explored += 1
        if nodes_explored > max_nodes:
            raise RuntimeError("branch-and-bound node limit exceeded")

        if use_scipy_lp or node.basis is None:
            result = relax(node.lb, node.ub)
        else:
            result = relax(node.lb, node.ub, node.basis)
        if stats is not None:
            stats.nodes = nodes_explored
            stats.lp_solves += 1
            stats.pivots += getattr(result, "pivots", 0)
            if not use_scipy_lp and node.basis is not None:
                stats.warm_lp_solves += 1
                if getattr(result, "warm_used", False):
                    stats.warm_lp_hits += 1
        if result.status == "infeasible":
            continue
        if result.status == "unbounded":
            # Only an unbounded *root* relaxation proves the MILP may be
            # unbounded; a subproblem's relaxation reporting unbounded while
            # the root was bounded is a numerical artifact of the restricted
            # box and must not flip the verdict (the subtree is pruned
            # conservatively — it offers no fractional point to branch on).
            if node.depth == 0:
                root_unbounded = True
            continue
        assert result.x is not None
        if result.objective >= best_obj - _prune_margin(best_obj):
            continue  # bound: cannot improve the incumbent (within the gap)

        frac_j = _most_fractional(result.x, int_mask)
        if frac_j < 0:
            # Integral (for all integer vars): candidate incumbent.
            x = result.x.copy()
            x[int_mask] = np.round(x[int_mask])
            obj = float(c @ x)
            if obj < best_obj - 1e-9:
                best_obj = obj
                best_x = x
                if lower_bound is not None and best_obj <= lower_bound + _prune_margin(
                    lower_bound
                ):
                    # The incumbent meets a known valid lower bound: it is
                    # provably optimal (within mip_rel_gap); stop searching.
                    break
            continue

        xf = result.x[frac_j]
        # Each child tightens one bound of the parent's box, so the
        # parent's optimal basis stays dual-feasible for it — the child's
        # relaxation warm-starts from it and re-solves in a few dual pivots.
        child_basis = getattr(result, "basis", None) if warm_start else None
        floor_node = _Node(node.lb.copy(), node.ub.copy(), node.depth + 1, child_basis)
        floor_node.ub[frac_j] = math.floor(xf)
        ceil_node = _Node(node.lb.copy(), node.ub.copy(), node.depth + 1, child_basis)
        ceil_node.lb[frac_j] = math.ceil(xf)
        # DFS, exploring the floor branch first.
        stack.append(ceil_node)
        stack.append(floor_node)

    if best_x is None:
        if timed_out:
            return SolveStatus.ERROR, None
        if root_unbounded:
            return SolveStatus.UNBOUNDED, None
        return SolveStatus.INFEASIBLE, None
    if timed_out:
        return SolveStatus.FEASIBLE, best_x
    return SolveStatus.OPTIMAL, best_x


def solve_bnb(
    model: Model,
    max_nodes: int = 200_000,
    use_scipy_lp: Optional[bool] = None,
    time_limit: float | None = None,
    mip_rel_gap: float = 0.0,
    incumbent_obj: Optional[float] = None,
    incumbent_x: Optional[np.ndarray] = None,
    lower_bound: Optional[float] = None,
) -> Solution:
    """Solve ``model`` by branch and bound.

    ``use_scipy_lp`` switches the relaxation engine to
    ``scipy.optimize.linprog`` (keeping the pure-Python search); the
    default picks the built-in simplex for small models and scipy's LP
    above :data:`_SIMPLEX_SIZE_LIMIT` variables. See the module docstring
    for the ``time_limit`` / ``mip_rel_gap`` / ``incumbent_obj`` /
    ``incumbent_x`` / ``lower_bound`` semantics.
    """
    form = model.to_matrix_form()
    if model.num_variables == 0:
        from repro.ilp.scipy_backend import solve_scipy

        return solve_scipy(model)

    stats = BnbStats()
    try:
        status, best_x = solve_form_bnb(
            form,
            max_nodes=max_nodes,
            use_scipy_lp=use_scipy_lp,
            time_limit=time_limit,
            mip_rel_gap=mip_rel_gap,
            incumbent_obj=incumbent_obj,
            incumbent_x=incumbent_x,
            lower_bound=lower_bound,
            stats=stats,
        )
    except RuntimeError as exc:
        raise RuntimeError(f"{exc} on {model.name!r}") from None
    if status not in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE) or best_x is None:
        return Solution(
            status,
            float("nan"),
            iterations=stats.pivots,
            nodes=stats.nodes,
            warm_lp_solves=stats.warm_lp_solves,
            warm_lp_hits=stats.warm_lp_hits,
        )

    values = {}
    for var in model.variables:
        x = float(best_x[var.index])
        if var.integer:
            x = float(round(x))
        values[var] = x
    objective = model.objective.value(values)
    return Solution(
        status,
        objective,
        values,
        iterations=stats.pivots,
        nodes=stats.nodes,
        warm_lp_solves=stats.warm_lp_solves,
        warm_lp_hits=stats.warm_lp_hits,
    )


def root_relaxation_bound(form: MatrixForm) -> Optional[float]:
    """Objective of the root LP relaxation, in model-objective units.

    For a minimization form this is a valid lower bound on the MILP
    optimum. The heuristic portfolio uses it to compute optimality gaps
    for anytime solutions and to seed ``lower_bound`` so an
    incumbent-seeded exact solve can prove gap-optimality at the root
    without branching. Returns ``None`` when the relaxation is
    infeasible or unbounded.
    """
    n = len(form.c)
    if n == 0:
        return float(form.obj_const)
    a_ub, b_ub = _dense_rows(form.rows_ub, n)
    a_eq, b_eq = _dense_rows(form.rows_eq, n)
    c = np.asarray(form.c, dtype=float)
    if n > _SIMPLEX_SIZE_LIMIT:
        relax = _make_scipy_relaxation(c, a_ub, b_ub, a_eq, b_eq)
        res = relax(np.asarray(form.lb, dtype=float), np.asarray(form.ub, dtype=float))
    else:
        res = solve_lp(
            c,
            a_ub,
            b_ub,
            a_eq,
            b_eq,
            np.asarray(form.lb, dtype=float),
            np.asarray(form.ub, dtype=float),
        )
    if res.status != "optimal":
        return None
    value = float(res.objective)
    if not form.minimize:
        value = -value
    return value + float(form.obj_const)


def _dense_rows(rows: List[Tuple[dict, float]], n: int) -> Tuple[np.ndarray, np.ndarray]:
    if not rows:
        return np.zeros((0, n)), np.zeros(0)
    a = np.zeros((len(rows), n))
    b = np.zeros(len(rows))
    for i, (row, rhs) in enumerate(rows):
        b[i] = rhs
        for j, coef in row.items():
            a[i, j] = coef
    return a, b


def _most_fractional(x: np.ndarray, int_mask: np.ndarray) -> int:
    """Index of the integer variable farthest from integrality, or -1.

    Ties (within 1e-12) break toward the lowest variable index so the
    branching order — and hence the reported solution when optima are
    degenerate — is identical across platforms and job counts.
    """
    best_j = -1
    best_dist = _INT_TOL
    for j in np.flatnonzero(int_mask):
        frac = x[j] - math.floor(x[j])
        dist = min(frac, 1.0 - frac)
        if dist > best_dist + 1e-12:
            best_dist = dist
            best_j = int(j)
    return best_j


def _make_scipy_relaxation(c, a_ub, b_ub, a_eq, b_eq):
    from scipy.optimize import linprog

    def relax(lb, ub, basis=None):
        bounds = list(zip(lb, ub))
        res = linprog(
            c,
            A_ub=a_ub if a_ub.shape[0] else None,
            b_ub=b_ub if a_ub.shape[0] else None,
            A_eq=a_eq if a_eq.shape[0] else None,
            b_eq=b_eq if a_eq.shape[0] else None,
            bounds=bounds,
            method="highs",
        )
        from repro.ilp.simplex import LPResult

        pivots = int(getattr(res, "nit", 0) or 0)
        if res.status == 2:
            return LPResult("infeasible", pivots=pivots)
        if res.status == 3:
            return LPResult("unbounded", pivots=pivots)
        if res.status != 0:
            return LPResult("infeasible", pivots=pivots)
        return LPResult("optimal", res.x, float(res.fun), pivots=pivots)

    return relax
