"""ILP modelling layer: variables, linear expressions, constraints, models.

The layer is deliberately small but complete enough to express the paper's
partitioning-and-mapping model (Section IV, Eq. 1-18): binary and general
integer variables, continuous variables, linear constraints in the three
usual senses, a linear objective, and the common modelling gadgets the
paper relies on (the ``z = x AND y`` linearization of Eq. 7 and big-M
implications used for the path-cost constraint of Eq. 9).

Expressions support natural operator syntax::

    m = Model("demo")
    x = m.add_binary("x")
    y = m.add_binary("y")
    m.add_constraint(x + 2 * y <= 2, name="cap")
    m.minimize(-x - y)
    sol = m.solve()
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

Number = Union[int, float]

_INF = math.inf


class Sense(enum.Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "=="


class SolveStatus(enum.Enum):
    """Outcome of a solver run."""

    OPTIMAL = "optimal"
    #: A feasible incumbent returned on a time-limit hit (not proven optimal).
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


class InfeasibleError(RuntimeError):
    """Raised by :meth:`Model.solve` when the model admits no solution."""


class UnboundedError(RuntimeError):
    """Raised by :meth:`Model.solve` when the objective is unbounded."""


class Variable:
    """A decision variable owned by a :class:`Model`.

    Variables are created through :meth:`Model.add_var` /
    :meth:`Model.add_binary`; they compare by identity and carry a stable
    column ``index`` into the model's matrix form.
    """

    __slots__ = ("name", "lb", "ub", "integer", "index")

    def __init__(self, name: str, lb: float, ub: float, integer: bool, index: int):
        self.name = name
        self.lb = lb
        self.ub = ub
        self.integer = integer
        self.index = index

    # -- expression building ------------------------------------------------

    def _as_expr(self) -> "LinExpr":
        return LinExpr({self: 1.0}, 0.0)

    def __add__(self, other: "ExprLike") -> "LinExpr":
        return self._as_expr() + other

    def __radd__(self, other: "ExprLike") -> "LinExpr":
        return self._as_expr() + other

    def __sub__(self, other: "ExprLike") -> "LinExpr":
        return self._as_expr() - other

    def __rsub__(self, other: "ExprLike") -> "LinExpr":
        return (-1.0) * self._as_expr() + other

    def __mul__(self, other: Number) -> "LinExpr":
        return self._as_expr() * other

    def __rmul__(self, other: Number) -> "LinExpr":
        return self._as_expr() * other

    def __neg__(self) -> "LinExpr":
        return self._as_expr() * -1.0

    def __le__(self, other: "ExprLike") -> "Constraint":
        return self._as_expr() <= other

    def __ge__(self, other: "ExprLike") -> "Constraint":
        return self._as_expr() >= other

    def __eq__(self, other: object):  # type: ignore[override]
        if isinstance(other, (Variable, LinExpr, int, float)):
            return self._as_expr() == other
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        kind = "int" if self.integer else "cont"
        return f"Variable({self.name!r}, [{self.lb}, {self.ub}], {kind})"


ExprLike = Union[Variable, "LinExpr", Number]


class LinExpr:
    """An affine expression ``sum(coef_i * var_i) + const``."""

    __slots__ = ("terms", "const")

    def __init__(self, terms: Optional[Mapping[Variable, float]] = None, const: float = 0.0):
        self.terms: Dict[Variable, float] = dict(terms) if terms else {}
        self.const = float(const)

    @staticmethod
    def _coerce(value: ExprLike) -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Variable):
            return value._as_expr()
        if isinstance(value, (int, float)):
            return LinExpr({}, float(value))
        raise TypeError(f"cannot build a linear expression from {value!r}")

    def copy(self) -> "LinExpr":
        return LinExpr(self.terms, self.const)

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: ExprLike) -> "LinExpr":
        rhs = self._coerce(other)
        out = self.copy()
        for var, coef in rhs.terms.items():
            out.terms[var] = out.terms.get(var, 0.0) + coef
        out.const += rhs.const
        return out

    def __radd__(self, other: ExprLike) -> "LinExpr":
        return self.__add__(other)

    def __sub__(self, other: ExprLike) -> "LinExpr":
        return self.__add__(self._coerce(other) * -1.0)

    def __rsub__(self, other: ExprLike) -> "LinExpr":
        return (self * -1.0).__add__(other)

    def __mul__(self, factor: Number) -> "LinExpr":
        if not isinstance(factor, (int, float)):
            raise TypeError("LinExpr may only be scaled by a constant")
        return LinExpr({v: c * factor for v, c in self.terms.items()}, self.const * factor)

    def __rmul__(self, factor: Number) -> "LinExpr":
        return self.__mul__(factor)

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- comparisons build constraints ----------------------------------------

    def __le__(self, other: ExprLike) -> "Constraint":
        return Constraint(self - self._coerce(other), Sense.LE)

    def __ge__(self, other: ExprLike) -> "Constraint":
        return Constraint(self - self._coerce(other), Sense.GE)

    def __eq__(self, other: object):  # type: ignore[override]
        if isinstance(other, (Variable, LinExpr, int, float)):
            return Constraint(self - self._coerce(other), Sense.EQ)
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    # -- evaluation ------------------------------------------------------------

    def value(self, assignment: Mapping[Variable, float]) -> float:
        """Evaluate the expression under a variable assignment."""
        return self.const + sum(coef * assignment[var] for var, coef in self.terms.items())

    def variables(self) -> Iterator[Variable]:
        return iter(self.terms)

    def __repr__(self) -> str:
        parts = [f"{c:+g}*{v.name}" for v, c in self.terms.items()]
        if self.const or not parts:
            parts.append(f"{self.const:+g}")
        return " ".join(parts)


def lin_sum(items: Iterable[ExprLike]) -> LinExpr:
    """Sum an iterable of variables/expressions into one :class:`LinExpr`.

    Quadratic-blowup-free replacement for ``sum(...)`` over expressions.
    """
    out = LinExpr()
    for item in items:
        rhs = LinExpr._coerce(item)
        for var, coef in rhs.terms.items():
            out.terms[var] = out.terms.get(var, 0.0) + coef
        out.const += rhs.const
    return out


@dataclass
class Constraint:
    """A linear constraint ``expr (sense) 0`` in normalized form.

    The right-hand side is folded into ``expr.const``; ``rhs`` exposes the
    conventional form ``terms (sense) rhs``.
    """

    expr: LinExpr
    sense: Sense
    name: str = ""

    @property
    def rhs(self) -> float:
        return -self.expr.const

    def satisfied(self, assignment: Mapping[Variable, float], tol: float = 1e-6) -> bool:
        lhs = self.expr.value(assignment)
        if self.sense is Sense.LE:
            return lhs <= tol
        if self.sense is Sense.GE:
            return lhs >= -tol
        return abs(lhs) <= tol

    def __repr__(self) -> str:
        return f"Constraint({self.name or '?'}: {self.expr!r} {self.sense.value} 0)"


@dataclass
class Solution:
    """Result of a model solve.

    ``iterations`` counts solver kernel iterations (simplex pivots for
    the pure-Python backend), ``nodes`` branch-and-bound nodes, and the
    ``warm_lp_*`` pair tracks how many LP relaxations were offered /
    accepted a warm-start basis (always 0 for the scipy backend).
    """

    status: SolveStatus
    objective: float
    values: Dict[Variable, float] = field(default_factory=dict)
    iterations: int = 0
    nodes: int = 0
    warm_lp_solves: int = 0
    warm_lp_hits: int = 0
    #: True when this solution was *not* produced by the requested solve
    #: but substituted from a portfolio fallback after the worker pool was
    #: lost mid-flight (see ``repro.ilp.service``). Degraded results are
    #: feasible and certified, but carry no optimality claim and are
    #: never cached.
    degraded: bool = False

    @property
    def usable(self) -> bool:
        """True when the solve produced an assignment worth extracting."""
        return (
            self.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)
            and bool(self.values)
        )

    def __getitem__(self, var: Variable) -> float:
        return self.values[var]

    def value(self, expr: ExprLike) -> float:
        return LinExpr._coerce(expr).value(self.values)

    def as_name_dict(self) -> Dict[str, float]:
        return {v.name: x for v, x in self.values.items()}


class Model:
    """A mixed 0-1 / integer / continuous linear program.

    The model records every variable and constraint, exposes modelling
    gadgets used by the parallelizer, converts itself to matrix form for
    the backends, and dispatches to a solver backend.
    """

    def __init__(self, name: str = "model"):
        self.name = name
        self.variables: List[Variable] = []
        self.constraints: List[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self.minimize_objective = True
        #: ``(z, x, y)`` triples recorded by :meth:`add_and`, in creation
        #: order. Heuristic solvers replay them to complete a structural
        #: assignment into a full model vector (``z = x * y`` sequentially,
        #: so chained gadgets resolve in one pass).
        self.and_gadgets: List[Tuple[Variable, Variable, Variable]] = []
        self._names: Dict[str, Variable] = {}
        self._aux_counter = 0

    # -- construction -----------------------------------------------------------

    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = _INF,
        integer: bool = False,
    ) -> Variable:
        """Add a variable. Names must be unique within the model."""
        if name in self._names:
            raise ValueError(f"duplicate variable name {name!r}")
        if lb > ub:
            raise ValueError(f"variable {name!r}: lb {lb} > ub {ub}")
        var = Variable(name, float(lb), float(ub), integer, len(self.variables))
        self.variables.append(var)
        self._names[name] = var
        return var

    def add_binary(self, name: str) -> Variable:
        return self.add_var(name, 0.0, 1.0, integer=True)

    def get_var(self, name: str) -> Variable:
        return self._names[name]

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constraint expects a Constraint (did the comparison "
                "return a bool? use LinExpr operands)"
            )
        if name:
            constraint.name = name
        elif not constraint.name:
            constraint.name = f"c{len(self.constraints)}"
        self.constraints.append(constraint)
        return constraint

    def minimize(self, expr: ExprLike) -> None:
        self.objective = LinExpr._coerce(expr)
        self.minimize_objective = True

    def maximize(self, expr: ExprLike) -> None:
        self.objective = LinExpr._coerce(expr)
        self.minimize_objective = False

    # -- modelling gadgets ---------------------------------------------------------

    def _aux_name(self, prefix: str) -> str:
        self._aux_counter += 1
        return f"__{prefix}_{self._aux_counter}"

    def add_and(self, x: Variable, y: Variable, name: str = "") -> Variable:
        """Return a binary ``z`` constrained to ``z = x AND y`` (paper Eq. 7).

        Adds ``z >= x + y - 1``, ``z <= x`` and ``z <= y``.
        """
        z = self.add_binary(name or self._aux_name("and"))
        self.add_constraint(z >= x + y - 1, name=f"{z.name}_ge")
        self.add_constraint(z <= x, name=f"{z.name}_le_x")
        self.add_constraint(z <= y, name=f"{z.name}_le_y")
        self.and_gadgets.append((z, x, y))
        return z

    def add_implication_ge(
        self,
        guard: ExprLike,
        lhs: ExprLike,
        rhs: ExprLike,
        big_m: float,
        name: str = "",
    ) -> Constraint:
        """Add ``guard = 1  =>  lhs >= rhs`` via big-M relaxation.

        Encoded as ``lhs >= rhs - M * (1 - guard)``; when the binary guard
        expression evaluates to 0 the constraint is vacuous. This is the
        encoding the paper references for the path-cost constraint (Eq. 9).
        """
        guard_expr = LinExpr._coerce(guard)
        lhs_expr = LinExpr._coerce(lhs)
        rhs_expr = LinExpr._coerce(rhs)
        cons = lhs_expr >= rhs_expr - big_m * (1 - guard_expr)
        return self.add_constraint(cons, name=name)

    # -- introspection ----------------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def to_matrix_form(self) -> "MatrixForm":
        """Convert to the dense/sparse matrix form consumed by backends."""
        import numpy as np

        n = len(self.variables)
        c = np.zeros(n)
        for var, coef in self.objective.terms.items():
            c[var.index] += coef
        if not self.minimize_objective:
            c = -c

        rows_ub: List[Tuple[Dict[int, float], float]] = []
        rows_eq: List[Tuple[Dict[int, float], float]] = []
        for cons in self.constraints:
            row = {var.index: coef for var, coef in cons.expr.terms.items()}
            rhs = cons.rhs
            if cons.sense is Sense.LE:
                rows_ub.append((row, rhs))
            elif cons.sense is Sense.GE:
                rows_ub.append(({i: -a for i, a in row.items()}, -rhs))
            else:
                rows_eq.append((row, rhs))

        lb = np.array([v.lb for v in self.variables])
        ub = np.array([v.ub for v in self.variables])
        integrality = np.array([1 if v.integer else 0 for v in self.variables])
        return MatrixForm(
            c=c,
            rows_ub=rows_ub,
            rows_eq=rows_eq,
            lb=lb,
            ub=ub,
            integrality=integrality,
            obj_const=self.objective.const,
            minimize=self.minimize_objective,
        )

    # -- solving ---------------------------------------------------------------------------

    def solve(
        self,
        backend: str = "scipy",
        collector: Optional["StatsCollectorProtocol"] = None,
        **options,
    ) -> Solution:
        """Solve the model and return the optimal :class:`Solution`.

        ``backend`` is ``"scipy"`` (HiGHS via ``scipy.optimize.milp``) or
        ``"bnb"`` (pure-Python branch and bound). Raises
        :class:`InfeasibleError` / :class:`UnboundedError` on those outcomes.
        If ``collector`` is given, a :class:`repro.ilp.stats.SolveRecord`
        is appended to it.
        """
        import time as _time

        if backend == "scipy":
            from repro.ilp.scipy_backend import solve_scipy as solver
        elif backend == "bnb":
            from repro.ilp.bnb import solve_bnb as solver
        else:
            raise ValueError(f"unknown backend {backend!r}")

        start = _time.perf_counter()
        solution = solver(self, **options)
        elapsed = _time.perf_counter() - start

        if collector is not None:
            collector.record(
                model_name=self.name,
                num_variables=self.num_variables,
                num_constraints=self.num_constraints,
                solve_seconds=elapsed,
                status=solution.status,
                objective=solution.objective,
                iterations=solution.iterations,
                nodes=solution.nodes,
                warm_lp_solves=solution.warm_lp_solves,
                warm_lp_hits=solution.warm_lp_hits,
            )

        if solution.status is SolveStatus.INFEASIBLE:
            raise InfeasibleError(f"model {self.name!r} is infeasible")
        if solution.status is SolveStatus.UNBOUNDED:
            raise UnboundedError(f"model {self.name!r} is unbounded")
        if solution.status not in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE):
            raise RuntimeError(f"solver failed on model {self.name!r}")
        return solution

    def check(self, solution: Solution, tol: float = 1e-6) -> List[Constraint]:
        """Return the list of constraints violated by ``solution``."""
        return [c for c in self.constraints if not c.satisfied(solution.values, tol)]

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, {self.num_variables} vars, "
            f"{self.num_constraints} constraints)"
        )


@dataclass
class MatrixForm:
    """Matrix view of a model: ``min c @ x`` s.t. ``A_ub x <= b_ub``, ``A_eq x == b_eq``."""

    c: "object"
    rows_ub: List[Tuple[Dict[int, float], float]]
    rows_eq: List[Tuple[Dict[int, float], float]]
    lb: "object"
    ub: "object"
    integrality: "object"
    obj_const: float
    minimize: bool

    def sparse_ub(self):
        import numpy as np
        from scipy import sparse

        n = len(self.c)
        if not self.rows_ub:
            return sparse.csr_matrix((0, n)), np.zeros(0)
        data, rows, cols = [], [], []
        b = np.zeros(len(self.rows_ub))
        for i, (row, rhs) in enumerate(self.rows_ub):
            b[i] = rhs
            for j, a in row.items():
                rows.append(i)
                cols.append(j)
                data.append(a)
        return sparse.csr_matrix((data, (rows, cols)), shape=(len(self.rows_ub), n)), b

    def sparse_eq(self):
        import numpy as np
        from scipy import sparse

        n = len(self.c)
        if not self.rows_eq:
            return sparse.csr_matrix((0, n)), np.zeros(0)
        data, rows, cols = [], [], []
        b = np.zeros(len(self.rows_eq))
        for i, (row, rhs) in enumerate(self.rows_eq):
            b[i] = rhs
            for j, a in row.items():
                rows.append(i)
                cols.append(j)
                data.append(a)
        return sparse.csr_matrix((data, (rows, cols)), shape=(len(self.rows_eq), n)), b


class StatsCollectorProtocol:
    """Structural protocol for solve-statistics collectors."""

    def record(self, **kwargs) -> None:  # pragma: no cover - interface only
        raise NotImplementedError
