"""Happens-before trace sanitizer: the dynamic oracle for the race tier.

The simulator threads a vector clock through every scheduled task
(:class:`~repro.simulator.engine.SimResult.clocks`): task ``p`` is in
``clocks[t]`` iff ``p`` happened-before ``t`` via dependence edges or
same-core serialization. This analysis replays one simulated schedule
and flags every *conflicting* task pair — tasks whose def/use sets
touch a common variable with at least one write — that executed
unordered. A static miss in the race detector (an uncovered dependence
the flattener then fails to materialize as a precedence edge) shows up
here on every benchmark run.

Chunk tasks of one chunked loop are the single sanctioned exception:
they are unordered *by design*, their disjointness being certified
statically (iteration-range tiling + ``classify_loop``), so pairs of
chunks of the same loop are skipped. Chunk conflicts against anything
else are tracked at array granularity (plus reduction variables): the
scalars in a chunk's def/use set are loop-private temporaries that code
generation privatizes per task.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.core.flatten import FlatTaskGraph
from repro.htg.graph import HTG
from repro.htg.nodes import ChunkNode, HTGNode
from repro.simulator.engine import SimResult


def sanitize_trace(
    graph: FlatTaskGraph, sim: SimResult, htg: HTG
) -> List[Diagnostic]:
    """Certify one simulated schedule against the def/use conflicts.

    Returns one diagnostic per conflicting-but-unordered task pair, plus
    one per precedence edge the clocks fail to order (an engine-level
    consistency failure rather than a partitioning race).
    """
    diags: List[Diagnostic] = []

    # The engine must have ordered every materialized precedence edge.
    for edge in graph.edges:
        if edge.src in sim.clocks and not sim.happens_before(edge.src, edge.dst):
            diags.append(
                Diagnostic(
                    "trace", "trace.missing-order",
                    f"precedence edge task {edge.src} -> task {edge.dst} is "
                    f"not reflected in the happens-before clocks",
                    context={"src": edge.src, "dst": edge.dst},
                )
            )

    node_of: Dict[int, HTGNode] = {n.uid: n for n in htg.root.walk()}
    work = []
    for task in graph.tasks:
        if task.node_uid is None:
            continue  # fork/join markers carry no data accesses
        node = node_of.get(task.node_uid)
        if node is None:
            continue
        work.append((task, node))

    for i in range(len(work)):
        task_a, node_a = work[i]
        for j in range(i + 1, len(work)):
            task_b, node_b = work[j]
            if (
                isinstance(node_a, ChunkNode)
                and isinstance(node_b, ChunkNode)
                and node_a.loop is node_b.loop
            ):
                continue  # same-loop chunks: disjointness certified statically
            conflict = _conflict_vars(node_a, node_b)
            if not conflict:
                continue
            if sim.ordered(task_a.tid, task_b.tid):
                continue
            diags.append(
                Diagnostic(
                    "trace", "trace.unordered-conflict",
                    f"tasks {task_a.label!r} and {task_b.label!r} conflict "
                    f"on {sorted(conflict)} but executed unordered",
                    context={
                        "task_a": task_a.tid, "task_b": task_b.tid,
                        "label_a": task_a.label, "label_b": task_b.label,
                        "node_a": node_a.label, "node_b": node_b.label,
                        "variables": sorted(conflict),
                    },
                )
            )
    return diags


def _conflict_vars(a: HTGNode, b: HTGNode) -> Set[str]:
    """Variables both nodes touch with at least one write."""
    defs_a, uses_a = _boundary_sets(a)
    defs_b, uses_b = _boundary_sets(b)
    return (defs_a & uses_b) | (uses_a & defs_b) | (defs_a & defs_b)


def _boundary_sets(node: HTGNode) -> Tuple[Set[str], Set[str]]:
    if isinstance(node, ChunkNode):
        reductions = set(node.reduction_vars)
        defs = set(node.defuse.array_defs) | reductions
        uses = set(node.defuse.array_uses) | reductions
        return defs, uses
    return set(node.defuse.all_defs), set(node.defuse.all_uses)
