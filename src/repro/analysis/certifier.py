"""Certifier entry point: run every analysis tier over one result.

:func:`certify_run` is the single front door of the certification
pipeline (CLI ``repro verify``, the ``--verify`` runner flag, and the
adversarial tests all come through here). Tiers, in order:

1. **structural** — the :mod:`repro.core.validation` checks
   (coverage, classes, budgets, precedence, lower bound);
2. **race** — static dependence recomputation projected onto every
   parallel candidate of the solution tree (:mod:`repro.analysis.races`);
3. **certificate** — ILP assignments replayed against Eq. 1-18. The
   replay happens at solve time (``ParallelizeOptions.verify``), because
   only then do instance and assignment coexist; the collected
   diagnostics travel on ``ParallelizeResult.certificates`` and are
   folded into the report here;
4. **trace** — one simulated schedule sanitized with happens-before
   vector clocks (:mod:`repro.analysis.hb`);
5. **mapping** — pre-mapping spec, annotated C and OpenMP output
   cross-checked against the solution (:mod:`repro.analysis.maplint`).

Each tier's wall time lands in ``Report.timings_s`` so verification
overhead is reported per benchmark instead of staying silent.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.analysis.diagnostics import Diagnostic, Report
from repro.analysis.hb import sanitize_trace
from repro.analysis.maplint import (
    lint_annotations,
    lint_mapping_spec,
    lint_openmp,
)
from repro.analysis.races import check_candidate_races
from repro.analysis.structural import check_structure
from repro.core.parallelize import ParallelizeResult
from repro.core.solution import SolutionCandidate
from repro.simulator.engine import SimOptions
from repro.simulator.run import SolutionEvaluation, evaluate_solution


def certify_run(
    result: ParallelizeResult,
    evaluation: Optional[SolutionEvaluation] = None,
    sim_options: Optional[SimOptions] = None,
    subject: Optional[Dict[str, Any]] = None,
) -> Report:
    """Certify one parallelization result through all five tiers.

    ``evaluation`` reuses an existing simulation (pipeline runs already
    have one); otherwise the trace tier simulates the solution itself.
    """
    report = Report(
        subject=dict(subject or {
            "platform": result.platform.name,
            "approach": result.approach,
        })
    )

    start = time.perf_counter()
    report.extend(check_structure(result))
    report.timings_s["structural"] = time.perf_counter() - start

    start = time.perf_counter()
    report.extend(check_solution_tree_races(result))
    report.timings_s["race"] = time.perf_counter() - start

    start = time.perf_counter()
    report.extend(list(getattr(result, "certificates", ()) or ()))
    report.timings_s["certificate"] = (
        time.perf_counter() - start
        + float(getattr(result, "certificate_seconds", 0.0))
    )

    start = time.perf_counter()
    if evaluation is None:
        evaluation = evaluate_solution(result, sim_options)
    report.extend(
        sanitize_trace(evaluation.graph, evaluation.sim, result.htg)
    )
    report.timings_s["trace"] = time.perf_counter() - start

    start = time.perf_counter()
    report.extend(check_artifacts(result))
    report.timings_s["mapping"] = time.perf_counter() - start

    # Portfolio tier: anytime answers are legitimate (FEASIBLE plus a
    # proven gap), so degradation events surface as warnings — visible in
    # every report, but never flipping ``ok`` on their own.
    start = time.perf_counter()
    report.extend(list(getattr(result, "portfolio_diagnostics", ()) or ()))
    report.timings_s["portfolio"] = time.perf_counter() - start
    return report


def check_solution_tree_races(result: ParallelizeResult) -> List[Diagnostic]:
    """Run the static race detector over every candidate in the tree."""
    symbols = result.htg.symbols
    diags: List[Diagnostic] = []

    def visit(candidate: SolutionCandidate, path: str) -> None:
        diags.extend(check_candidate_races(candidate, symbols, path))
        for uid, chosen in candidate.child_choice.items():
            visit(chosen, f"{path}/{uid}")

    visit(result.best, "root")
    return diags


def check_artifacts(result: ParallelizeResult) -> List[Diagnostic]:
    """Lint the three emitted artifacts against the solution."""
    # Imported here: codegen renders through the candidate tree and has
    # no reason to exist for callers running only the static tiers.
    from repro.codegen.annotate import annotate_solution
    from repro.codegen.mapping_spec import mapping_spec
    from repro.codegen.openmp import emit_openmp

    diags: List[Diagnostic] = []
    spec = mapping_spec(result)
    diags.extend(lint_mapping_spec(spec, result.best, result.platform))
    diags.extend(
        lint_annotations(annotate_solution(result), result.best, result.platform)
    )
    diags.extend(lint_openmp(emit_openmp(result), result.best, result.platform))
    return diags
