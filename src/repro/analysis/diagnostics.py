"""Diagnostic records and reports of the certification pipeline.

Every analysis in :mod:`repro.analysis` reports findings as
:class:`Diagnostic` values — one record per violation, carrying the
analysis that found it, a stable machine-readable code, a human-readable
message and a JSON-safe context dict (source coordinates, edge
endpoints, constraint names, ...). A :class:`Report` aggregates the
diagnostics of one certification run together with per-analysis
runtimes and renders either as text or as the machine-readable JSON
document CI consumes (schema :data:`REPORT_SCHEMA`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Schema tag of :meth:`Report.to_dict`; bump on breaking layout changes.
REPORT_SCHEMA = "repro-verify-v1"

#: The four certification analyses plus the structural pre-tier and the
#: portfolio tier (anytime-answer provenance: degradation events and
#: optimality-gap annotations from the heuristic scheduling portfolio).
ANALYSES = ("structural", "race", "certificate", "trace", "mapping", "portfolio")


@dataclass(frozen=True)
class Diagnostic:
    """One certification violation.

    ``analysis`` names the tier that produced the finding (one of
    :data:`ANALYSES`); ``code`` is a stable dotted identifier
    (``"race.uncovered-dependence"``) tests and CI match on; ``context``
    holds only JSON-serializable values.
    """

    analysis: str
    code: str
    message: str
    severity: str = "error"
    context: Dict[str, Any] = field(default_factory=dict, hash=False, compare=False)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "analysis": self.analysis,
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "context": dict(self.context),
        }

    def __str__(self) -> str:
        return f"[{self.analysis}] {self.code}: {self.message}"


@dataclass
class Report:
    """Aggregated outcome of one certification run.

    ``subject`` identifies what was certified (benchmark/platform/
    approach/backend); ``timings_s`` records the wall time each analysis
    tier spent, so verification overhead is reported rather than silent.
    """

    subject: Dict[str, Any] = field(default_factory=dict)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    timings_s: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not any(d.severity == "error" for d in self.diagnostics)

    def extend(self, diagnostics: List[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def by_analysis(self, analysis: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.analysis == analysis]

    def merge(self, other: "Report") -> None:
        """Fold another report's findings and timings into this one."""
        self.diagnostics.extend(other.diagnostics)
        for name, seconds in other.timings_s.items():
            self.timings_s[name] = self.timings_s.get(name, 0.0) + seconds

    @property
    def total_seconds(self) -> float:
        return sum(self.timings_s.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA,
            "subject": dict(self.subject),
            "ok": self.ok,
            "num_diagnostics": len(self.diagnostics),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "timings_s": {k: round(v, 6) for k, v in sorted(self.timings_s.items())},
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render_text(self) -> str:
        """Human-readable multi-line summary."""
        subject = ", ".join(f"{k}={v}" for k, v in self.subject.items())
        head = f"verify {subject}" if subject else "verify"
        lines = [f"{head}: {'OK' if self.ok else 'FAILED'} "
                 f"({len(self.diagnostics)} diagnostics, "
                 f"{self.total_seconds:.3f}s)"]
        for diag in self.diagnostics:
            lines.append(f"  {diag}")
            for key in sorted(diag.context):
                lines.append(f"      {key} = {diag.context[key]!r}")
        return "\n".join(lines)
