"""Static race detector: independent re-derivation of dependence coverage.

The ILP consumes the AHTG's data-flow edges; if those edges (or a
mutated solution) ever miss a real dependence, the solver will happily
produce a partition that races. This analysis therefore recomputes the
def/use dependences of every parallelized node **directly from the
node's children's def/use sets** — the same raw facts
:mod:`repro.cfront.deps` derives from the IR, not the edge list the ILP
saw — and certifies that the chosen
:class:`~repro.core.solution.SolutionCandidate` honors each of them:

* a dependence whose endpoints share a task is ordered by the segment's
  sequential chain (their in-segment order must match program order);
* a *backward* (loop-carried) dependence must be intra-task — splitting
  an ``iir``-style recurrence across tasks is a race by construction;
* a forward dependence crossing tasks must be *covered* by a precedence
  edge of the AHTG (that is what the flattener materializes as the
  precedence constraint the simulator and code generator obey), and a
  flow dependence additionally by enough communicated bytes: at least
  one element of every communicated variable whose endpoints execute;
* every child must be fed by a Communication-In edge covering its
  external uses and drained by a Communication-Out edge covering its
  escaping definitions (paper Eq. 5-7/10's comm-node structure);
* chunked loops are re-proven chunkable via
  :func:`repro.cfront.deps.classify_loop` (the ``affine_form``
  distance-0 machinery) and their iteration ranges must tile the loop.

Every violation becomes one :class:`~repro.analysis.diagnostics.Diagnostic`
naming the offending edge with source-level context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.cfront import ir
from repro.cfront.deps import DepKind, classify_loop
from repro.core.solution import SolutionCandidate
from repro.htg.graph import SymbolInfo
from repro.htg.nodes import ChunkNode, HierarchicalNode, HTGEdge, HTGNode


@dataclass(frozen=True)
class RequiredDep:
    """One dependence the candidate must honor (recomputed, not trusted)."""

    src: HTGNode
    dst: HTGNode
    kind: DepKind
    variables: frozenset
    backward: bool = False


def recompute_dependences(node: HierarchicalNode) -> List[RequiredDep]:
    """Re-derive the dependences between ``node``'s children.

    Mirrors the dependence rules of the AHTG builder — forward flow/
    anti/output relations with scalar kill filtering, loop-carried
    backward flow edges for serial loop bodies, ordering between
    mutually exclusive if-branches — but works from the children's
    def/use sets alone, independently of ``node.edges``.
    """
    children = node.children
    deps: List[RequiredDep] = []
    n = len(children)

    if node.construct == "loop-chunked":
        return deps  # chunk independence is certified separately

    if node.construct == "if":
        # Mutually exclusive branches cannot race, but must not be
        # modelled as overlapping: an ordering dependence per pair.
        for i in range(n - 1):
            deps.append(
                RequiredDep(children[i], children[i + 1], DepKind.ANTI, frozenset())
            )
        return deps

    def defs(c: HTGNode) -> Set[str]:
        return c.defuse.all_defs

    def uses(c: HTGNode) -> Set[str]:
        return c.defuse.all_uses

    for j in range(n):
        for i in range(j):
            flow = _surviving(children, i, j, defs(children[i]) & uses(children[j]))
            anti = _surviving(children, i, j, uses(children[i]) & defs(children[j]))
            output = _surviving(children, i, j, defs(children[i]) & defs(children[j]))
            if flow:
                deps.append(
                    RequiredDep(children[i], children[j], DepKind.FLOW, frozenset(flow))
                )
            if anti - flow:
                deps.append(
                    RequiredDep(
                        children[i], children[j], DepKind.ANTI, frozenset(anti - flow)
                    )
                )
            if output - flow:
                deps.append(
                    RequiredDep(
                        children[i], children[j], DepKind.OUTPUT,
                        frozenset(output - flow),
                    )
                )

    if node.construct == "loop":
        # Loop-carried: a later child defines what an earlier child
        # consumes on the next iteration.
        for j in range(n):
            for i in range(j):
                carried = defs(children[j]) & uses(children[i])
                if carried:
                    deps.append(
                        RequiredDep(
                            children[j], children[i], DepKind.FLOW,
                            frozenset(carried), backward=True,
                        )
                    )
    return deps


def _surviving(
    children: Sequence[HTGNode], i: int, j: int, related: Set[str]
) -> Set[str]:
    """Kill filtering: only full (scalar) redefinitions kill a dependence."""
    survivors = set(related)
    for k in range(i + 1, j):
        survivors -= children[k].defuse.scalar_defs
        if not survivors:
            break
    return survivors


def check_candidate_races(
    candidate: SolutionCandidate,
    symbols: Optional[Mapping[str, SymbolInfo]] = None,
    path: str = "root",
) -> List[Diagnostic]:
    """Certify one (non-recursive) candidate against recomputed dependences.

    Returns one diagnostic per uncovered conflicting pair. Sequential
    candidates trivially pass (program order is preserved).
    """
    if candidate.is_sequential:
        return []
    node = candidate.node
    if not isinstance(node, HierarchicalNode):
        return []  # structural tier reports this shape error

    diags: List[Diagnostic] = []
    task_of: Dict[int, int] = {}
    pos_in_segment: Dict[int, int] = {}
    for segment in candidate.segments:
        for pos, child in enumerate(segment.children):
            task_of[child.uid] = segment.index
            pos_in_segment[child.uid] = pos

    if node.construct == "loop-chunked":
        diags.extend(_check_chunked_loop(node, path))
        return diags

    forward_cover: Dict[Tuple[int, int], List[HTGEdge]] = {}
    for edge in node.edges_between_children():
        if not edge.backward:
            forward_cover.setdefault((edge.src.uid, edge.dst.uid), []).append(edge)

    succ: Dict[int, Set[int]] = {}
    for dep in recompute_dependences(node):
        src_task = task_of.get(dep.src.uid)
        dst_task = task_of.get(dep.dst.uid)
        if src_task is None or dst_task is None:
            continue  # uncovered child: the structural tier reports it
        ctx = _dep_context(node, dep, path, src_task, dst_task)
        if src_task == dst_task:
            if not dep.backward and pos_in_segment[dep.src.uid] > pos_in_segment[dep.dst.uid]:
                diags.append(
                    Diagnostic(
                        "race", "race.segment-order",
                        f"{path}: task {src_task} executes "
                        f"{dep.dst.label!r} before {dep.src.label!r}, against the "
                        f"{dep.kind.value} dependence on {sorted(dep.variables)}",
                        context=ctx,
                    )
                )
            continue
        if dep.backward:
            diags.append(
                Diagnostic(
                    "race", "race.loop-carried-split",
                    f"{path}: loop-carried flow dependence "
                    f"{dep.src.label!r} -> {dep.dst.label!r} on "
                    f"{sorted(dep.variables)} is split across tasks "
                    f"{src_task} and {dst_task}",
                    context=ctx,
                )
            )
            continue
        succ.setdefault(src_task, set()).add(dst_task)
        covering = forward_cover.get((dep.src.uid, dep.dst.uid), [])
        if not covering:
            diags.append(
                Diagnostic(
                    "race", "race.uncovered-dependence",
                    f"{path}: {dep.kind.value} dependence "
                    f"{dep.src.label!r} -> {dep.dst.label!r} on "
                    f"{sorted(dep.variables)} crosses tasks "
                    f"{src_task} -> {dst_task} without a precedence edge",
                    context=ctx,
                )
            )
            continue
        if dep.kind is DepKind.FLOW:
            diags.extend(
                _check_flow_bytes(node, dep, covering, symbols, ctx, path)
            )

    if _has_cycle(succ):
        diags.append(
            Diagnostic(
                "race", "race.precedence-cycle",
                f"{path}: recomputed inter-task dependences of "
                f"{node.label!r} form a cycle",
                context={"path": path, "node": node.label, "node_uid": node.uid},
            )
        )

    diags.extend(_check_comm_coverage(node, task_of, candidate, symbols, path))
    return diags


def _check_flow_bytes(
    node: HierarchicalNode,
    dep: RequiredDep,
    covering: List[HTGEdge],
    symbols: Optional[Mapping[str, SymbolInfo]],
    ctx: Dict,
    path: str,
) -> List[Diagnostic]:
    """A cross-task flow dependence must ship at least the data it reads."""
    flow_edges = [e for e in covering if e.kind is DepKind.FLOW]
    covered_vars: Set[str] = set()
    for edge in flow_edges:
        covered_vars |= set(edge.variables)
    missing = set(dep.variables) - covered_vars
    if missing:
        return [
            Diagnostic(
                "race", "race.missing-comm-vars",
                f"{path}: flow dependence {dep.src.label!r} -> "
                f"{dep.dst.label!r} communicates no data for "
                f"{sorted(missing)}",
                context=dict(ctx, missing=sorted(missing)),
            )
        ]
    available = sum(e.bytes_volume for e in flow_edges)
    required = _min_flow_bytes(dep.src, dep.dst, dep.variables, symbols)
    if available + 1e-9 < required:
        return [
            Diagnostic(
                "race", "race.comm-underflow",
                f"{path}: flow edge {dep.src.label!r} -> {dep.dst.label!r} "
                f"on {sorted(dep.variables)} carries {available:.0f} bytes, "
                f"below the {required:.0f}-byte minimum of the communicated "
                f"data",
                context=dict(
                    ctx, bytes_volume=available, required_bytes=required
                ),
            )
        ]
    return []


def _min_flow_bytes(
    src: HTGNode,
    dst: HTGNode,
    variables: frozenset,
    symbols: Optional[Mapping[str, SymbolInfo]],
) -> float:
    """Lower bound on the data a flow dependence must communicate.

    Each variable the consumer reads from the producer needs at least
    one element on the wire per whole run; dead endpoints (zero
    execution count) communicate nothing.
    """
    if src.exec_count <= 0 or dst.exec_count <= 0:
        return 0.0
    total = 0.0
    for name in variables:
        info = symbols.get(name) if symbols else None
        total += info.element_bytes if info is not None else 4
    return total


def _check_comm_coverage(
    node: HierarchicalNode,
    task_of: Dict[int, int],
    candidate: SolutionCandidate,
    symbols: Optional[Mapping[str, SymbolInfo]],
    path: str,
) -> List[Diagnostic]:
    """Comm-In/Out structure: recompute external uses / escaping defs."""
    diags: List[Diagnostic] = []
    in_edges: Dict[int, List[HTGEdge]] = {}
    out_edges: Dict[int, List[HTGEdge]] = {}
    for edge in node.in_edges():
        in_edges.setdefault(edge.dst.uid, []).append(edge)
    for edge in node.out_edges():
        out_edges.setdefault(edge.src.uid, []).append(edge)

    produced: Set[str] = set()
    for child in node.children:
        external = child.defuse.all_uses - produced
        produced |= child.defuse.all_defs
        covered: Set[str] = set()
        for edge in in_edges.get(child.uid, []):
            covered |= set(edge.variables)
        missing = external - covered
        if missing:
            diags.append(
                Diagnostic(
                    "race", "race.missing-comm-in",
                    f"{path}: child {child.label!r} consumes external "
                    f"{sorted(missing)} without a covering Comm-In edge",
                    context={
                        "path": path, "node": node.label, "child": child.label,
                        "child_uid": child.uid, "missing": sorted(missing),
                    },
                )
            )

    def _is_array(name: str) -> bool:
        info = symbols.get(name) if symbols else None
        return bool(info and info.is_array)

    later_scalar_defs: Set[str] = set()
    for child in reversed(node.children):
        escaping: Set[str] = set()
        for name in child.defuse.all_defs:
            if _is_array(name) or name not in later_scalar_defs:
                escaping.add(name)
        covered = set()
        for edge in out_edges.get(child.uid, []):
            covered |= set(edge.variables)
        missing = escaping - covered
        if missing:
            diags.append(
                Diagnostic(
                    "race", "race.missing-comm-out",
                    f"{path}: child {child.label!r} publishes "
                    f"{sorted(missing)} without a covering Comm-Out edge",
                    context={
                        "path": path, "node": node.label, "child": child.label,
                        "child_uid": child.uid, "missing": sorted(missing),
                    },
                )
            )
        later_scalar_defs |= {
            name for name in child.defuse.all_defs if not _is_array(name)
        }
    return diags


def _check_chunked_loop(node: HierarchicalNode, path: str) -> List[Diagnostic]:
    """Re-prove that splitting this loop into chunks is legal."""
    diags: List[Diagnostic] = []
    if isinstance(node.stmt, ir.ForLoop):
        classification = classify_loop(node.stmt)
        if not classification.chunkable:
            diags.append(
                Diagnostic(
                    "race", "race.illegal-chunking",
                    f"{path}: loop {node.label!r} was chunked but the "
                    f"dependence test proves it serial: "
                    f"{classification.reason}",
                    context={
                        "path": path, "node": node.label, "node_uid": node.uid,
                        "reason": classification.reason,
                        "coord": str(getattr(node.stmt, "coord", "") or ""),
                    },
                )
            )
    chunks = sorted(
        (c for c in node.children if isinstance(c, ChunkNode)),
        key=lambda c: c.iter_lo,
    )
    for prev, nxt in zip(chunks, chunks[1:]):
        if nxt.iter_lo < prev.iter_hi:
            diags.append(
                Diagnostic(
                    "race", "race.chunk-overlap",
                    f"{path}: chunks {prev.label!r} and {nxt.label!r} of "
                    f"{node.label!r} overlap in iterations "
                    f"[{nxt.iter_lo}, {prev.iter_hi})",
                    context={
                        "path": path, "node": node.label,
                        "chunks": [prev.label, nxt.label],
                        "ranges": [
                            [prev.iter_lo, prev.iter_hi],
                            [nxt.iter_lo, nxt.iter_hi],
                        ],
                    },
                )
            )
    return diags


def _dep_context(
    node: HierarchicalNode, dep: RequiredDep, path: str, src_task: int, dst_task: int
) -> Dict:
    src_stmt = getattr(dep.src, "stmt", None)
    dst_stmt = getattr(dep.dst, "stmt", None)
    return {
        "path": path,
        "node": node.label,
        "node_uid": node.uid,
        "kind": dep.kind.value,
        "src": dep.src.label,
        "dst": dep.dst.label,
        "src_uid": dep.src.uid,
        "dst_uid": dep.dst.uid,
        "src_task": src_task,
        "dst_task": dst_task,
        "variables": sorted(dep.variables),
        "src_coord": str(getattr(src_stmt, "coord", "") or ""),
        "dst_coord": str(getattr(dst_stmt, "coord", "") or ""),
    }


def _has_cycle(succ: Dict[int, Set[int]]) -> bool:
    """Iterative three-color DFS (no recursion: flattened AHTGs are deep)."""
    color: Dict[int, int] = {}
    for root in list(succ):
        if color.get(root, 0) != 0:
            continue
        stack: List[Tuple[int, Optional[object]]] = [(root, None)]
        while stack:
            vertex, iterator = stack.pop()
            if iterator is None:
                if color.get(vertex, 0) == 2:
                    continue
                color[vertex] = 1
                iterator = iter(succ.get(vertex, ()))
            advanced = False
            for nxt in iterator:
                state = color.get(nxt, 0)
                if state == 1:
                    return True
                if state == 0:
                    stack.append((vertex, iterator))
                    stack.append((nxt, None))
                    advanced = True
                    break
            if not advanced:
                color[vertex] = 2
    return False
