"""Structural tier: the :mod:`repro.core.validation` checks as diagnostics.

`core/validation.py` predates the certification pipeline and reports
violations as plain strings; this adapter folds it in as the first tier
of the certifier, so `repro verify` is the single entry point for every
solution check (the ISSUE's "one certifier entry point"). The checks —
segment coverage, class consistency, processor budgets, precedence
acyclicity, critical-path lower bound — stay where they are; only the
reporting is lifted to :class:`~repro.analysis.diagnostics.Diagnostic`.
"""

from __future__ import annotations

from typing import List

from repro.analysis.diagnostics import Diagnostic
from repro.core.parallelize import ParallelizeResult
from repro.core.validation import validate_result


def check_structure(result: ParallelizeResult) -> List[Diagnostic]:
    """Run the structural validation suite over a whole result."""
    return [
        Diagnostic(
            "structural", "structural.invalid-solution", problem,
            context={"approach": result.approach,
                     "platform": result.platform.name},
        )
        for problem in validate_result(result)
    ]
