"""ILP certificate checker: replay a solved assignment against Eq. 1-18.

The solver backends (scipy/HiGHS and the native bounded-variable
simplex) return a variable assignment that the decoder trusts blindly.
This analysis replays the assignment against the *instance* — every
constraint row of the built :class:`~repro.core.ilppar.IlpParInstance`
or :class:`~repro.core.homogeneous.HomoParInstance`, variable bounds,
integrality, and the objective value — so a presolve bug, a numerically
drifted basis, or a backend divergence surfaces as a diagnostic instead
of silently producing an illegal (and later miscompiled) partition.

Checks per solved instance:

* every constraint of the model is satisfied (``Model.check``) — this is
  the literal replay of Eq. 1-18 at instance level;
* every variable respects its bounds, and integer variables are within
  ``INT_TOL`` of an integer;
* the reported objective equals the objective expression re-evaluated
  under the assignment;
* the assignment decodes uniquely: exactly one task (Eq. 1) and one
  parallel-set choice (Eq. 3) per child, one class per used extra task
  (Eq. 12);
* when the decoded :class:`~repro.core.solution.SolutionCandidate` is
  supplied, its segments/choices/exec-time match the assignment.

Constraint tolerances are row-scaled: an absolute floor of
:data:`FEAS_TOL` plus :data:`FEAS_REL` times the row's largest
coefficient magnitude. Path-cost rows mix big-M terms in the 1e4-1e6 µs
range, and HiGHS guarantees feasibility only *relative* to that scale —
a fixed absolute tolerance either flags pure solver noise on big-M rows
or waves real violations through on unit rows.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.diagnostics import Diagnostic
from repro.core.solution import SolutionCandidate
from repro.ilp.model import Constraint, Model, Solution

#: Absolute feasibility-tolerance floor for constraint replay (µs-scale).
FEAS_TOL = 1e-3
#: Relative feasibility tolerance w.r.t. a row's largest coefficient.
FEAS_REL = 1e-6
#: Distance-to-integer tolerance for integral variables.
INT_TOL = 1e-5
#: Cap on per-constraint diagnostics (one summary record past this).
MAX_CONSTRAINT_DIAGS = 25


def check_solution_certificate(
    inst,
    solution: Solution,
    candidate: Optional[SolutionCandidate] = None,
) -> List[Diagnostic]:
    """Certify one solved ILPPAR / homogeneous instance.

    ``inst`` is an :class:`~repro.core.ilppar.IlpParInstance` or
    :class:`~repro.core.homogeneous.HomoParInstance` (distinguished by
    the presence of the task-class mapping ``map_tc``). Unusable
    solutions (infeasible/error verdicts) carry no assignment to
    certify and yield no diagnostics.
    """
    if not solution.usable:
        return []
    model: Model = inst.model
    diags: List[Diagnostic] = []
    diags.extend(_check_constraints(model, solution))
    diags.extend(_check_variables(model, solution))
    diags.extend(_check_objective(model, solution))
    diags.extend(_check_decode(inst, solution))
    if candidate is not None:
        diags.extend(_check_candidate(inst, solution, candidate))
    return diags


def _row_tol(cons: Constraint) -> float:
    scale = max(
        [abs(cons.expr.const)]
        + [abs(coef) for coef in cons.expr.terms.values()],
        default=0.0,
    )
    return max(FEAS_TOL, FEAS_REL * scale)


def _check_constraints(model: Model, solution: Solution) -> List[Diagnostic]:
    violated: List[Constraint] = []
    for cons in model.constraints:
        try:
            ok = cons.satisfied(solution.values, tol=_row_tol(cons))
        except KeyError:
            continue  # missing-variable diagnostics cover unvalued rows
        if not ok:
            violated.append(cons)
    diags: List[Diagnostic] = []
    for cons in violated[:MAX_CONSTRAINT_DIAGS]:
        residual = cons.expr.value(solution.values)
        diags.append(
            Diagnostic(
                "certificate", "certificate.constraint-violation",
                f"{model.name}: constraint {cons.name!r} violated "
                f"({cons.expr!r} {cons.sense.value} 0, residual {residual:.6g})",
                context={
                    "model": model.name,
                    "constraint": cons.name,
                    "sense": cons.sense.value,
                    "residual": residual,
                },
            )
        )
    if len(violated) > MAX_CONSTRAINT_DIAGS:
        diags.append(
            Diagnostic(
                "certificate", "certificate.constraint-violation",
                f"{model.name}: {len(violated) - MAX_CONSTRAINT_DIAGS} further "
                f"constraint violations suppressed",
                context={
                    "model": model.name,
                    "suppressed": len(violated) - MAX_CONSTRAINT_DIAGS,
                },
            )
        )
    return diags


def _check_variables(model: Model, solution: Solution) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    for var in model.variables:
        value = solution.values.get(var)
        if value is None:
            diags.append(
                Diagnostic(
                    "certificate", "certificate.missing-variable",
                    f"{model.name}: solution carries no value for {var.name!r}",
                    context={"model": model.name, "variable": var.name},
                )
            )
            continue
        if value < var.lb - FEAS_TOL or value > var.ub + FEAS_TOL:
            diags.append(
                Diagnostic(
                    "certificate", "certificate.bound-violation",
                    f"{model.name}: {var.name} = {value:.6g} outside "
                    f"[{var.lb:g}, {var.ub:g}]",
                    context={
                        "model": model.name, "variable": var.name,
                        "value": value, "lb": var.lb, "ub": var.ub,
                    },
                )
            )
        if var.integer and abs(value - round(value)) > INT_TOL:
            diags.append(
                Diagnostic(
                    "certificate", "certificate.fractional-integer",
                    f"{model.name}: integer variable {var.name} = {value:.6g}",
                    context={
                        "model": model.name, "variable": var.name, "value": value,
                    },
                )
            )
    return diags


def _check_objective(model: Model, solution: Solution) -> List[Diagnostic]:
    try:
        recomputed = model.objective.value(solution.values)
    except KeyError:
        return []  # missing-variable diagnostics already cover this
    reported = solution.objective
    if reported is None:
        return []
    tol = FEAS_TOL + 1e-6 * abs(recomputed)
    if abs(recomputed - reported) > tol:
        return [
            Diagnostic(
                "certificate", "certificate.objective-mismatch",
                f"{model.name}: reported objective {reported:.6g} differs "
                f"from the re-evaluated objective {recomputed:.6g}",
                context={
                    "model": model.name,
                    "reported": reported,
                    "recomputed": recomputed,
                },
            )
        ]
    return []


def _ones(solution: Solution, row) -> List[int]:
    return [i for i, var in enumerate(row) if solution.values.get(var, 0.0) > 0.5]


def _check_decode(inst, solution: Solution) -> List[Diagnostic]:
    model: Model = inst.model
    diags: List[Diagnostic] = []
    for ni, child in enumerate(inst.children):
        chosen_tasks = _ones(solution, inst.x[ni])
        if len(chosen_tasks) != 1:
            diags.append(
                Diagnostic(
                    "certificate", "certificate.ambiguous-task",
                    f"{model.name}: child {child.label!r} maps to "
                    f"{len(chosen_tasks)} tasks {chosen_tasks} (Eq. 1 wants 1)",
                    context={
                        "model": model.name, "child": child.label,
                        "child_uid": child.uid, "tasks": chosen_tasks,
                    },
                )
            )
        chosen_cands = _ones(solution, inst.p[ni])
        if len(chosen_cands) != 1:
            diags.append(
                Diagnostic(
                    "certificate", "certificate.ambiguous-candidate",
                    f"{model.name}: child {child.label!r} selects "
                    f"{len(chosen_cands)} parallel-set entries (Eq. 3 wants 1)",
                    context={
                        "model": model.name, "child": child.label,
                        "child_uid": child.uid, "choices": chosen_cands,
                    },
                )
            )
    map_tc = getattr(inst, "map_tc", None)
    if map_tc is not None:
        for t in inst.extras:
            row = [map_tc[(t, c)] for c in inst.classes]
            chosen = _ones(solution, row)
            if len(chosen) != 1:
                diags.append(
                    Diagnostic(
                        "certificate", "certificate.ambiguous-class",
                        f"{model.name}: extra task {t} maps to "
                        f"{len(chosen)} classes (Eq. 12 wants 1)",
                        context={"model": model.name, "task": t,
                                 "classes": [inst.classes[i] for i in chosen]},
                    )
                )
    return diags


def _check_candidate(
    inst, solution: Solution, candidate: SolutionCandidate
) -> List[Diagnostic]:
    """The decoded candidate must restate the assignment, not reinterpret it."""
    model: Model = inst.model
    diags: List[Diagnostic] = []
    for ni, child in enumerate(inst.children):
        chosen = _ones(solution, inst.x[ni])
        if len(chosen) != 1:
            continue  # already diagnosed by the decode check
        decoded = candidate.task_of_child(child)
        if decoded != chosen[0]:
            diags.append(
                Diagnostic(
                    "certificate", "certificate.decode-mismatch",
                    f"{model.name}: child {child.label!r} assigned to task "
                    f"{chosen[0]} by the ILP but to task {decoded} by the "
                    f"decoded candidate",
                    context={
                        "model": model.name, "child": child.label,
                        "child_uid": child.uid,
                        "ilp_task": chosen[0], "decoded_task": decoded,
                    },
                )
            )
    accum_join = getattr(inst, "accum_join", None)
    reference = (
        solution.values.get(accum_join) if accum_join is not None
        else solution.objective
    )
    if reference is not None:
        tol = FEAS_TOL + 1e-6 * abs(reference)
        if abs(candidate.exec_time_us - reference) > tol:
            diags.append(
                Diagnostic(
                    "certificate", "certificate.exec-time-mismatch",
                    f"{model.name}: candidate exec time "
                    f"{candidate.exec_time_us:.6g}us differs from the "
                    f"certified assignment's {reference:.6g}us",
                    context={
                        "model": model.name,
                        "candidate_us": candidate.exec_time_us,
                        "certified_us": reference,
                    },
                )
            )
    return diags
