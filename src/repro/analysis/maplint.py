"""Codegen and mapping lint: the last layer before external tools.

The pre-mapping specification (:mod:`repro.codegen.mapping_spec`) and
the annotated / OpenMP source are what downstream mapping tools and
compilers consume; a dangling task id or a wrong ``private`` list there
is a miscompile that no ILP-level check can see. This tier re-derives
the expected structure from the chosen
:class:`~repro.core.solution.SolutionCandidate` tree and diffs it
against the emitted artifacts:

* **mapping spec**: every task path present exactly as the candidate
  tree implies (no dangling, no missing), every ``class`` a real
  platform class matching the segment's mapping, every chunk
  ``iteration_range`` non-empty and equal to the chunk node's range;
* **annotated C**: every ``#pragma repro task(N)`` inside a region maps
  to a segment the region's candidate actually has, with the segment's
  class; region/join pragmas must nest properly;
* **OpenMP**: every ``repro:class(...)`` / ``repro:main_class(...)``
  hint names a platform class, and each ``parallel sections`` region's
  ``private(...)`` clause lists exactly the region scope's private
  scalars — and none of the variables the region's boundary def/use
  publishes or consumes (privatizing a shared variable drops writes).
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.cfront import ir
from repro.cfront.deps import private_scalars
from repro.core.solution import SolutionCandidate
from repro.htg.nodes import ChunkNode, HierarchicalNode

_TASK_RE = re.compile(
    r"#pragma repro task\((\d+)\) role\((\w+)\) class\((\w+)\)"
)
_REGION_RE = re.compile(r'#pragma repro parallel region\("(.*)"\)')
_JOIN_RE = re.compile(r'#pragma repro join region\("(.*)"\)')
_OMP_SECTIONS_RE = re.compile(
    r"#pragma omp parallel sections"
    r"(?: private\(([^)]*)\))? /\* repro:main_class\((\w+)\) \*/"
)
_OMP_SECTION_RE = re.compile(
    r"#pragma omp section /\* repro:class\((\w+)\) role\((\w+)\) \*/"
)


def region_private_scalars(node: HierarchicalNode) -> Set[str]:
    """Scalars private to a parallel region's scope (safe to privatize)."""
    stmt = getattr(node, "stmt", None)
    if isinstance(stmt, (ir.ForLoop, ir.WhileLoop)):
        private = set(private_scalars(stmt.body))
        if isinstance(stmt, ir.ForLoop):
            private.add(stmt.var)
        return private
    if isinstance(stmt, ir.Block):
        return set(private_scalars(stmt))
    return set()


# ---------------------------------------------------------------------------
# Mapping specification
# ---------------------------------------------------------------------------


def lint_mapping_spec(spec: Dict[str, Any], candidate: SolutionCandidate,
                      platform) -> List[Diagnostic]:
    """Diff a pre-mapping spec against the candidate tree and platform."""
    diags: List[Diagnostic] = []
    classes = set(platform.class_names())

    actual: List[Dict[str, Any]] = []
    _flatten_spec_tasks(spec.get("tasks", []), actual)
    expected: List[Dict[str, Any]] = []
    _expected_tasks(candidate, "root", expected)

    spec_main = spec.get("platform", {}).get("main_class")
    if spec_main is not None and spec_main not in classes:
        diags.append(
            Diagnostic(
                "mapping", "mapping.invalid-class",
                f"mapping spec main class {spec_main!r} is not a platform "
                f"class (have {sorted(classes)})",
                context={"class": spec_main, "classes": sorted(classes)},
            )
        )

    def key(entry: Dict[str, Any]) -> Tuple:
        return (entry["path"], entry.get("role"), entry.get("class"))

    actual_keys = sorted(key(e) for e in actual)
    expected_keys = sorted(key(e) for e in expected)
    for missing in _multiset_diff(expected_keys, actual_keys):
        diags.append(
            Diagnostic(
                "mapping", "mapping.missing-task",
                f"mapping spec lacks task {missing[0]!r} "
                f"(role {missing[1]}, class {missing[2]}) present in the "
                f"solution",
                context={"path": missing[0], "role": missing[1],
                         "class": missing[2]},
            )
        )
    for dangling in _multiset_diff(actual_keys, expected_keys):
        diags.append(
            Diagnostic(
                "mapping", "mapping.dangling-task",
                f"mapping spec task {dangling[0]!r} (role {dangling[1]}, "
                f"class {dangling[2]}) matches no task of the solution",
                context={"path": dangling[0], "role": dangling[1],
                         "class": dangling[2]},
            )
        )

    for entry in actual:
        cname = entry.get("class")
        if cname is not None and cname not in classes:
            diags.append(
                Diagnostic(
                    "mapping", "mapping.invalid-class",
                    f"mapping spec task {entry['path']!r} uses unknown "
                    f"class {cname!r}",
                    context={"path": entry["path"], "class": cname,
                             "classes": sorted(classes)},
                )
            )
        for stmt in entry.get("statements", []):
            rng = stmt.get("iteration_range")
            if rng is not None and (len(rng) != 2 or rng[0] >= rng[1]):
                diags.append(
                    Diagnostic(
                        "mapping", "mapping.empty-chunk-range",
                        f"mapping spec task {entry['path']!r} carries chunk "
                        f"{stmt.get('node')!r} with empty iteration range "
                        f"{rng}",
                        context={"path": entry["path"],
                                 "node": stmt.get("node"), "range": list(rng)},
                    )
                )
    return diags


def _flatten_spec_tasks(tasks: List[Dict[str, Any]],
                        out: List[Dict[str, Any]]) -> None:
    for entry in tasks:
        out.append(entry)
        _flatten_spec_tasks(entry.get("subtasks", []), out)


def _expected_tasks(candidate: SolutionCandidate, path: str,
                    out: List[Dict[str, Any]]) -> None:
    """Mirror of ``mapping_spec._tasks_of``, re-derived for the diff."""
    if candidate.is_sequential:
        out.append({"path": path, "role": "sequential",
                    "class": candidate.main_class})
        return
    for segment in candidate.segments:
        if not segment.children:
            continue
        tpath = f"{path}/T{segment.index}"
        out.append({"path": tpath, "role": segment.role,
                    "class": segment.proc_class})
        for child in segment.children:
            chosen = candidate.child_choice[child.uid]
            if not isinstance(child, ChunkNode) and not chosen.is_sequential:
                _expected_tasks(chosen, tpath, out)


def _multiset_diff(left: List, right: List) -> List:
    """Elements of ``left`` not matched one-for-one in ``right``."""
    remainder = list(right)
    unmatched = []
    for item in left:
        try:
            remainder.remove(item)
        except ValueError:
            unmatched.append(item)
    return unmatched


# ---------------------------------------------------------------------------
# Annotated C (#pragma repro)
# ---------------------------------------------------------------------------


def lint_annotations(text: str, candidate: SolutionCandidate,
                     platform) -> List[Diagnostic]:
    """Check ``#pragma repro`` region/task structure against the solution."""
    diags: List[Diagnostic] = []
    classes = set(platform.class_names())

    # Region labels are not unique ("block" nests inside "block"), so the
    # expectation merges same-labelled regions: a task id is valid when
    # *some* region with that label has the segment, and the class must be
    # one that label's segments allow.
    expected: Dict[str, Dict[int, Set[str]]] = {}
    _expected_regions(candidate, expected)

    stack: List[str] = []
    seen: Dict[str, Set[int]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        opened = _REGION_RE.search(line)
        if opened:
            stack.append(opened.group(1))
            continue
        closed = _JOIN_RE.search(line)
        if closed:
            if not stack or stack[-1] != closed.group(1):
                diags.append(
                    Diagnostic(
                        "mapping", "mapping.unbalanced-region",
                        f"line {lineno}: join for region "
                        f"{closed.group(1)!r} does not match the open "
                        f"region {stack[-1] if stack else None!r}",
                        context={"line": lineno, "region": closed.group(1)},
                    )
                )
            else:
                stack.pop()
            continue
        task = _TASK_RE.search(line)
        if not task:
            continue
        index, _role, cname = int(task.group(1)), task.group(2), task.group(3)
        region = stack[-1] if stack else None
        segments = expected.get(region or "", {})
        if index not in segments:
            diags.append(
                Diagnostic(
                    "mapping", "mapping.dangling-task-id",
                    f"line {lineno}: task({index}) does not name a segment "
                    f"of region {region!r}",
                    context={"line": lineno, "task": index, "region": region},
                )
            )
        elif cname not in segments[index]:
            diags.append(
                Diagnostic(
                    "mapping", "mapping.class-mismatch",
                    f"line {lineno}: task({index}) of region {region!r} "
                    f"annotated with class {cname!r}, solution maps it to "
                    f"{sorted(segments[index])}",
                    context={"line": lineno, "task": index, "region": region,
                             "annotated": cname,
                             "expected": sorted(segments[index])},
                )
            )
        if cname not in classes:
            diags.append(
                Diagnostic(
                    "mapping", "mapping.invalid-class",
                    f"line {lineno}: task({index}) uses unknown class "
                    f"{cname!r}",
                    context={"line": lineno, "task": index, "class": cname},
                )
            )
        if region is not None:
            seen.setdefault(region, set()).add(index)

    for region, segments in expected.items():
        missing = set(segments) - seen.get(region, set())
        for index in sorted(missing):
            diags.append(
                Diagnostic(
                    "mapping", "mapping.missing-task-id",
                    f"region {region!r} lacks an annotation for task "
                    f"({index}) of the solution",
                    context={"region": region, "task": index},
                )
            )
    return diags


def _expected_regions(candidate: SolutionCandidate,
                      out: Dict[str, Dict[int, Set[str]]]) -> None:
    if candidate.is_sequential:
        return
    node = candidate.node
    if isinstance(node, HierarchicalNode) and node.construct != "if":
        region = out.setdefault(node.label, {})
        for segment in candidate.segments:
            if segment.children:
                region.setdefault(segment.index, set()).add(segment.proc_class)
    for chosen in candidate.child_choice.values():
        _expected_regions(chosen, out)


# ---------------------------------------------------------------------------
# OpenMP output
# ---------------------------------------------------------------------------


def lint_openmp(text: str, candidate: SolutionCandidate,
                platform) -> List[Diagnostic]:
    """Check the OpenMP rendering's class hints and ``private`` clauses."""
    diags: List[Diagnostic] = []
    classes = set(platform.class_names())
    expected = _expected_omp_regions(candidate)

    region_index = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        sections = _OMP_SECTIONS_RE.search(line)
        if sections:
            privates_text, main_class = sections.group(1), sections.group(2)
            privates = (
                {v.strip() for v in privates_text.split(",") if v.strip()}
                if privates_text else set()
            )
            if main_class not in classes:
                diags.append(
                    Diagnostic(
                        "mapping", "mapping.invalid-class",
                        f"line {lineno}: main_class hint {main_class!r} is "
                        f"not a platform class",
                        context={"line": lineno, "class": main_class},
                    )
                )
            if region_index < len(expected):
                node, region_cand = expected[region_index]
                want = region_private_scalars(node)
                if privates != want:
                    diags.append(
                        Diagnostic(
                            "mapping", "mapping.private-mismatch",
                            f"line {lineno}: region {node.label!r} declares "
                            f"private({sorted(privates)}), def/use analysis "
                            f"expects private({sorted(want)})",
                            context={"line": lineno, "region": node.label,
                                     "declared": sorted(privates),
                                     "expected": sorted(want)},
                        )
                    )
                shared = node.defuse.all_defs | node.defuse.all_uses
                leaked = privates & shared
                if leaked:
                    diags.append(
                        Diagnostic(
                            "mapping", "mapping.private-shared-conflict",
                            f"line {lineno}: region {node.label!r} privatizes "
                            f"{sorted(leaked)} although the region's boundary "
                            f"def/use publishes or consumes them",
                            context={"line": lineno, "region": node.label,
                                     "variables": sorted(leaked)},
                        )
                    )
            region_index += 1
            continue
        section = _OMP_SECTION_RE.search(line)
        if section and section.group(1) not in classes:
            diags.append(
                Diagnostic(
                    "mapping", "mapping.invalid-class",
                    f"line {lineno}: section class hint "
                    f"{section.group(1)!r} is not a platform class",
                    context={"line": lineno, "class": section.group(1)},
                )
            )

    if region_index != len(expected):
        diags.append(
            Diagnostic(
                "mapping", "mapping.region-count-mismatch",
                f"OpenMP output contains {region_index} parallel-sections "
                f"regions, solution implies {len(expected)}",
                context={"emitted": region_index, "expected": len(expected)},
            )
        )
    return diags


def _expected_omp_regions(
    candidate: SolutionCandidate,
) -> List[Tuple[HierarchicalNode, SolutionCandidate]]:
    """Regions that render as ``parallel sections``, in emission order.

    Mirrors :func:`repro.codegen.openmp._emit_sections`: a region emits a
    pragma only when more than one segment holds children; candidates are
    expanded depth-first in segment/child order.
    """
    out: List[Tuple[HierarchicalNode, SolutionCandidate]] = []

    def visit(cand: SolutionCandidate) -> None:
        if cand.is_sequential:
            return
        node = cand.node
        if not isinstance(node, HierarchicalNode):
            return
        if node.construct == "if":
            for child in node.children:
                visit(cand.child_choice[child.uid])
            return
        used = [s for s in cand.segments if s.children]
        if len(used) > 1:
            out.append((node, cand))
        for segment in used:
            for child in segment.children:
                visit(cand.child_choice[child.uid])

    visit(candidate)
    return out
