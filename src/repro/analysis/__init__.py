"""Independent certification of extracted task-level parallelism.

Every layer of the tool flow is cross-checked against the layer below
it, independently of the inputs that layer consumed:

* :mod:`repro.analysis.structural` — solution-shape validation
  (coverage, classes, budgets; wraps :mod:`repro.core.validation`);
* :mod:`repro.analysis.races` — static race detector over recomputed
  def/use dependences;
* :mod:`repro.analysis.certificate` — ILP assignment replay against
  the Eq. 1-18 instances;
* :mod:`repro.analysis.hb` — happens-before trace sanitizer over
  simulator vector clocks;
* :mod:`repro.analysis.maplint` — mapping-spec / annotation / OpenMP
  lint.

:func:`repro.analysis.certifier.certify_run` orchestrates all tiers and
returns a :class:`repro.analysis.diagnostics.Report`.
"""

from repro.analysis.diagnostics import ANALYSES, REPORT_SCHEMA, Diagnostic, Report
from repro.analysis.certifier import certify_run

__all__ = [
    "ANALYSES",
    "REPORT_SCHEMA",
    "Diagnostic",
    "Report",
    "certify_run",
]
