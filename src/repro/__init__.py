"""repro — ILP-based task-level parallelization for heterogeneous MPSoCs.

A from-scratch reproduction of

    D. Cordes, O. Neugebauer, M. Engel, P. Marwedel:
    "Automatic Extraction of Task-Level Parallelism for Heterogeneous
    MPSoCs", ICPP 2013.

Quickstart::

    from repro import parallelize_source
    from repro.platforms import config_a

    result, evaluation = parallelize_source(C_SOURCE, config_a("accelerator"))
    print(evaluation.speedup)

Subpackages
-----------

``repro.cfront``      ANSI-C frontend (pycparser-based IR + analyses)
``repro.timing``      high-level timing models (interpreter + cycle tables)
``repro.htg``         Augmented Hierarchical Task Graph
``repro.ilp``         ILP modelling layer + exact solvers
``repro.core``        heterogeneous/homogeneous ILP parallelization
``repro.platforms``   MPSoC platform descriptions
``repro.simulator``   discrete-event MPSoC simulator
``repro.codegen``     annotated-source + pre-mapping output
``repro.bench_suite`` UTDSP-style benchmark kernels
``repro.toolflow``    end-to-end tool flow + paper experiments
"""

__version__ = "1.0.0"

from repro.toolflow.flow import ToolFlow, parallelize_source

__all__ = ["ToolFlow", "parallelize_source", "__version__"]
