"""Loop chunking: the "loop iterations" granularity level of the AHTG.

A counted loop proven iteration-independent (PARALLEL) or independent up
to associative reductions (REDUCTION) by :func:`repro.cfront.deps.classify_loop`
is split into ``K`` iteration-range chunk nodes. Chunks carry
proportionally scaled cost and communication footprints and have *no*
edges among each other — the heterogeneous ILP is then free to assign
*different numbers of chunks* to tasks on fast and slow processor
classes, which is precisely how the approach balances work on
heterogeneous platforms (paper Section VI-A: "the two processors with
500 MHz are automatically allocated with heavier workloads").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cfront import ir
from repro.cfront.defuse import DefUse, compute_defuse
from repro.cfront.deps import LoopClassification
from repro.htg.graph import SymbolInfo
from repro.htg.nodes import ChunkNode
from repro.timing.estimator import CostDatabase


@dataclass(frozen=True)
class ChunkPlan:
    """How a parallel loop is split: per-chunk iteration ranges."""

    num_chunks: int
    ranges: Tuple[Tuple[int, int], ...]  # [lo, hi) per chunk, in iteration index space

    @property
    def total_trips(self) -> int:
        return sum(hi - lo for lo, hi in self.ranges)


def plan_chunks(trips: int, num_chunks: int) -> ChunkPlan:
    """Split ``trips`` iterations into ``num_chunks`` near-equal ranges."""
    num_chunks = max(1, min(num_chunks, trips))
    base = trips // num_chunks
    extra = trips % num_chunks
    ranges: List[Tuple[int, int]] = []
    lo = 0
    for index in range(num_chunks):
        size = base + (1 if index < extra else 0)
        ranges.append((lo, lo + size))
        lo += size
    return ChunkPlan(num_chunks, tuple(ranges))


def make_chunk_nodes(
    loop: ir.ForLoop,
    classification: LoopClassification,
    trips: int,
    cost_db: CostDatabase,
    symbols: Dict[str, SymbolInfo],
    num_chunks: int,
    loop_exec_count: float,
) -> Tuple[List[ChunkNode], List[float], List[float]]:
    """Create chunk nodes and per-chunk communication footprints.

    Returns ``(chunks, in_bytes, out_bytes)`` where the byte lists align
    with the chunk list. ``in_bytes[k]`` is the whole-run volume the chunk
    reads from outside the loop; ``out_bytes[k]`` is the volume it
    produces for consumers after the loop (including partial reduction
    values for REDUCTION loops).
    """
    plan = plan_chunks(trips, num_chunks)
    total_cycles = cost_db.subtree_cycles(loop)
    body_du = compute_defuse(loop.body)

    read_total, write_total = _loop_footprints(loop, cost_db, symbols)

    chunks: List[ChunkNode] = []
    in_bytes: List[float] = []
    out_bytes: List[float] = []
    for index, (lo, hi) in enumerate(plan.ranges):
        share = (hi - lo) / trips if trips else 0.0
        chunk_du = DefUse(
            scalar_defs=set(body_du.scalar_defs),
            scalar_uses=set(body_du.scalar_uses) | {loop.var},
            array_defs=set(body_du.array_defs),
            array_uses=set(body_du.array_uses),
            accesses=list(body_du.accesses),
        )
        chunk = ChunkNode(
            label=f"chunk[{lo}:{hi}] of for-{loop.var}",
            exec_count=loop_exec_count,
            defuse=chunk_du,
            cycles=total_cycles * share,
            loop=loop,
            chunk_index=index,
            num_chunks=plan.num_chunks,
            iter_lo=lo,
            iter_hi=hi,
            reduction_vars=classification.reduction_vars,
        )
        chunks.append(chunk)
        in_bytes.append(read_total * share)
        reduction_bytes = sum(
            ir.sizeof(symbols[v].ctype) if v in symbols else 8
            for v in classification.reduction_vars
        )
        out_bytes.append(write_total * share + reduction_bytes)
    return chunks, in_bytes, out_bytes


def _loop_footprints(
    loop: ir.ForLoop,
    cost_db: CostDatabase,
    symbols: Dict[str, SymbolInfo],
) -> Tuple[float, float]:
    """Whole-run (read_bytes, write_bytes) footprints of a loop subtree.

    Element-count estimates come from access sites weighted by their
    statements' execution counts, capped at the full array size per
    variable; scalars contribute their element size once.
    """
    read_elems: Dict[str, float] = {}
    write_elems: Dict[str, float] = {}
    for stmt in loop.walk():
        count = cost_db.exec_count(stmt)
        if count <= 0:
            continue
        for access in _own_accesses(stmt):
            target = write_elems if access.is_write else read_elems
            target[access.name] = target.get(access.name, 0.0) + count

    def to_bytes(elems: Dict[str, float]) -> float:
        total = 0.0
        for name, count in elems.items():
            info = symbols.get(name)
            if info is None:
                total += count * 4
            else:
                total += min(count * info.element_bytes, info.total_bytes)
        return total

    # Scalars read from outside (e.g. coefficients) are negligible next to
    # arrays but still counted once each.
    du = compute_defuse(loop.body)
    scalar_read = sum(
        ir.sizeof(symbols[v].ctype) if v in symbols else 4
        for v in du.scalar_uses
        if v not in du.scalar_defs
    )
    return to_bytes(read_elems) + scalar_read, to_bytes(write_elems)


def _own_accesses(stmt: ir.Stmt):
    """Array accesses appearing directly in one statement's expressions."""
    from repro.cfront.defuse import Access

    accesses: List[Access] = []

    def visit_expr(expr: ir.Expr, as_write: bool = False) -> None:
        if isinstance(expr, ir.ArrayRef):
            accesses.append(Access(expr.name, expr.indices, is_write=as_write))
            for index in expr.indices:
                visit_expr(index)
            return
        for child in expr.children():
            visit_expr(child)

    if isinstance(stmt, ir.Assign):
        if isinstance(stmt.lhs, ir.ArrayRef):
            visit_expr(stmt.lhs, as_write=True)
        visit_expr(stmt.rhs)
    else:
        for expr in stmt.expressions():
            if expr is not None:
                visit_expr(expr)
    return accesses
