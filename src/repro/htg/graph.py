"""AHTG container with whole-graph queries and validation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.cfront import ir
from repro.htg.nodes import HierarchicalNode, HTGNode, SimpleNode


@dataclass
class SymbolInfo:
    """Type/size information for one program variable."""

    name: str
    ctype: str
    dims: Tuple[int, ...] = ()

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def element_bytes(self) -> int:
        return ir.sizeof(self.ctype)

    @property
    def total_bytes(self) -> int:
        total = self.element_bytes
        for dim in self.dims:
            total *= dim
        return total


class HTG:
    """An Augmented Hierarchical Task Graph for one function.

    ``root`` is the hierarchical node of the function body; ``symbols``
    maps variable names to size information used for communication-volume
    annotation.
    """

    def __init__(
        self,
        root: HierarchicalNode,
        function_name: str,
        symbols: Dict[str, SymbolInfo],
    ):
        self.root = root
        self.function_name = function_name
        self.symbols = symbols

    def get_root_node(self) -> HierarchicalNode:
        """Paper's ``htg.getRootNode()`` (Algorithm 1, line 3)."""
        return self.root

    def walk(self) -> Iterator[HTGNode]:
        yield from self.root.walk()

    @property
    def num_nodes(self) -> int:
        return sum(1 for _ in self.walk())

    @property
    def num_simple_nodes(self) -> int:
        return sum(1 for n in self.walk() if isinstance(n, SimpleNode))

    @property
    def num_hierarchical_nodes(self) -> int:
        return sum(1 for n in self.walk() if isinstance(n, HierarchicalNode))

    @property
    def depth(self) -> int:
        def node_depth(node: HTGNode) -> int:
            if isinstance(node, HierarchicalNode) and node.children:
                return 1 + max(node_depth(c) for c in node.children)
            return 1

        return node_depth(self.root)

    def total_cycles(self) -> float:
        return self.root.total_cycles()

    def validate(self) -> List[str]:
        """Structural sanity checks; returns a list of problems (empty = ok)."""
        problems: List[str] = []
        seen = set()
        for node in self.walk():
            if node.uid in seen:
                problems.append(f"duplicate node uid {node.uid} ({node.label})")
            seen.add(node.uid)
        for node in self.walk():
            if not isinstance(node, HierarchicalNode):
                continue
            child_set = set(id(c) for c in node.children)
            child_set.add(id(node.comm_in))
            child_set.add(id(node.comm_out))
            for edge in node.edges:
                if id(edge.src) not in child_set or id(edge.dst) not in child_set:
                    problems.append(
                        f"edge {edge} of {node.label} references a non-child node"
                    )
                if edge.bytes_volume < 0:
                    problems.append(f"edge {edge} has negative byte volume")
            order = {id(c): i for i, c in enumerate(node.children)}
            for edge in node.edges_between_children():
                forward = order[id(edge.src)] < order[id(edge.dst)]
                if forward == edge.backward:
                    problems.append(
                        f"edge {edge} of {node.label}: backward flag does not "
                        f"match child order"
                    )
        return problems

    def pretty(self, max_depth: int = 6) -> str:
        """Indented text rendering of the hierarchy."""
        lines: List[str] = []

        def visit(node: HTGNode, depth: int) -> None:
            if depth > max_depth:
                return
            indent = "  " * depth
            cost = node.total_cycles()
            lines.append(
                f"{indent}{type(node).__name__}#{node.uid} {node.label} "
                f"[x{node.exec_count:g}, {cost:,.0f} cyc]"
            )
            if isinstance(node, HierarchicalNode):
                for child in node.children:
                    visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)
