"""AHTG node and edge types."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.cfront import ir
from repro.cfront.defuse import DefUse
from repro.cfront.deps import DepKind

_node_ids = itertools.count()


class HTGNode:
    """Base class of AHTG nodes.

    Attributes:
        uid: unique node id (stable across the graph).
        label: human-readable description.
        exec_count: whole-run number of executions of this node.
        defuse: aggregated def/use information of the node's subtree
            (used to compute data-flow edges at the parent level).
    """

    def __init__(self, label: str, exec_count: float, defuse: DefUse):
        self.uid: int = next(_node_ids)
        self.label = label
        self.exec_count = exec_count
        self.defuse = defuse

    # -- cost interface ------------------------------------------------------

    def total_cycles(self) -> float:
        """Whole-run reference cycles of this node's entire subtree."""
        raise NotImplementedError

    def is_hierarchical(self) -> bool:
        return False

    def walk(self) -> Iterator["HTGNode"]:
        yield self

    def __repr__(self) -> str:
        return f"{type(self).__name__}#{self.uid}({self.label})"


class SimpleNode(HTGNode):
    """A leaf node: one statement (or an atomic statement subtree)."""

    def __init__(
        self,
        label: str,
        exec_count: float,
        defuse: DefUse,
        cycles: float,
        stmt: Optional[ir.Stmt] = None,
    ):
        super().__init__(label, exec_count, defuse)
        self.cycles = cycles
        self.stmt = stmt

    def total_cycles(self) -> float:
        return self.cycles


class ChunkNode(SimpleNode):
    """An iteration-range chunk of a parallel (or reduction) counted loop.

    Chunks of one loop are mutually independent; a reduction chunk
    additionally ships its partial results (``reduction_vars``) to the
    communication-out node for merging.
    """

    def __init__(
        self,
        label: str,
        exec_count: float,
        defuse: DefUse,
        cycles: float,
        loop: ir.ForLoop,
        chunk_index: int,
        num_chunks: int,
        iter_lo: int,
        iter_hi: int,
        reduction_vars: Tuple[str, ...] = (),
    ):
        super().__init__(label, exec_count, defuse, cycles, stmt=loop)
        self.loop = loop
        self.chunk_index = chunk_index
        self.num_chunks = num_chunks
        self.iter_lo = iter_lo
        self.iter_hi = iter_hi
        self.reduction_vars = reduction_vars

    @property
    def trips(self) -> int:
        return max(0, self.iter_hi - self.iter_lo)


class CommDirection(enum.Enum):
    IN = "in"
    OUT = "out"


class CommNode(HTGNode):
    """Communication-In / Communication-Out boundary node (zero cost)."""

    def __init__(self, direction: CommDirection, owner_label: str):
        super().__init__(f"comm-{direction.value}({owner_label})", 0.0, DefUse())
        self.direction = direction

    def total_cycles(self) -> float:
        return 0.0


@dataclass
class HTGEdge:
    """A data-flow edge between sibling nodes of one hierarchical node.

    ``bytes_volume`` is the whole-run communicated data volume charged
    when ``src`` and ``dst`` end up in different tasks. ``kind`` records
    the dependence type; only flow edges carry bytes, anti/output edges
    impose ordering only. ``backward`` marks loop-carried edges pointing
    against program order (the ILP's cycle handling forces the endpoints
    into one task).
    """

    src: HTGNode
    dst: HTGNode
    kind: DepKind
    variables: frozenset
    bytes_volume: float = 0.0
    backward: bool = False

    def __repr__(self) -> str:
        return (
            f"HTGEdge({self.src.uid}->{self.dst.uid}, {self.kind.value}, "
            f"{self.bytes_volume:.0f}B)"
        )


class HierarchicalNode(HTGNode):
    """A node containing other nodes (loop, block, if, function body).

    ``children`` excludes the communication nodes, which are available as
    ``comm_in`` / ``comm_out``. ``edges`` connect children and comm nodes.
    ``control_overhead_cycles`` is the whole-run cost of the construct
    itself (loop header arithmetic, branch evaluation).
    """

    def __init__(
        self,
        label: str,
        construct: str,
        exec_count: float,
        defuse: DefUse,
        children: List[HTGNode],
        edges: List[HTGEdge],
        control_overhead_cycles: float = 0.0,
        stmt: Optional[ir.Stmt] = None,
    ):
        super().__init__(label, exec_count, defuse)
        self.construct = construct
        self.children = children
        self.edges = edges
        self.control_overhead_cycles = control_overhead_cycles
        self.stmt = stmt
        self.comm_in = CommNode(CommDirection.IN, label)
        self.comm_out = CommNode(CommDirection.OUT, label)

    def is_hierarchical(self) -> bool:
        return True

    def total_cycles(self) -> float:
        return self.control_overhead_cycles + sum(
            child.total_cycles() for child in self.children
        )

    def walk(self) -> Iterator[HTGNode]:
        yield self
        for child in self.children:
            yield from child.walk()

    # -- edge queries -----------------------------------------------------------

    def edges_between_children(self) -> List[HTGEdge]:
        comm = (self.comm_in, self.comm_out)
        return [e for e in self.edges if e.src not in comm and e.dst not in comm]

    def in_edges(self) -> List[HTGEdge]:
        return [e for e in self.edges if e.src is self.comm_in]

    def out_edges(self) -> List[HTGEdge]:
        return [e for e in self.edges if e.dst is self.comm_out]

    def in_bytes(self, child: HTGNode) -> float:
        return sum(e.bytes_volume for e in self.in_edges() if e.dst is child)

    def out_bytes(self, child: HTGNode) -> float:
        return sum(e.bytes_volume for e in self.out_edges() if e.src is child)

    def topological_children(self) -> List[HTGNode]:
        """Children in a dependence-respecting total order.

        Children are created in program order and forward edges follow
        that order by construction, so program order *is* a topological
        order of the forward dependence edges. (Backward loop-carried
        edges are excluded from the order by definition.)
        """
        return list(self.children)
