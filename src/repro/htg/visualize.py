"""Graph exports: AHTG and flat task graphs as networkx / DOT.

Useful for inspecting what the builder extracted and what the ILP chose;
the DOT output renders with graphviz (not bundled), and the networkx
graphs support programmatic analysis (the test suite uses them to verify
structural invariants independently of the builder's own bookkeeping).
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.core.flatten import FlatTaskGraph
from repro.htg.graph import HTG
from repro.htg.nodes import ChunkNode, CommNode, HierarchicalNode, HTGNode


def htg_to_networkx(htg: HTG) -> nx.DiGraph:
    """The AHTG as a directed graph.

    Nodes carry ``label``, ``kind``, ``cycles`` and ``exec_count``
    attributes. Hierarchy is encoded with ``contains`` edges, data flow
    with ``dataflow`` edges carrying ``bytes`` and ``backward``.
    """
    graph = nx.DiGraph(function=htg.function_name)

    def kind_of(node: HTGNode) -> str:
        if isinstance(node, ChunkNode):
            return "chunk"
        if isinstance(node, CommNode):
            return f"comm-{node.direction.value}"
        if isinstance(node, HierarchicalNode):
            return node.construct
        return "simple"

    def add_node(node: HTGNode) -> None:
        graph.add_node(
            node.uid,
            label=node.label,
            kind=kind_of(node),
            cycles=node.total_cycles(),
            exec_count=node.exec_count,
        )

    def visit(node: HTGNode) -> None:
        add_node(node)
        if not isinstance(node, HierarchicalNode):
            return
        add_node(node.comm_in)
        add_node(node.comm_out)
        graph.add_edge(node.uid, node.comm_in.uid, kind="contains")
        graph.add_edge(node.uid, node.comm_out.uid, kind="contains")
        for child in node.children:
            visit(child)
            graph.add_edge(node.uid, child.uid, kind="contains")
        for edge in node.edges:
            graph.add_edge(
                edge.src.uid,
                edge.dst.uid,
                kind="dataflow",
                dep=edge.kind.value,
                bytes=edge.bytes_volume,
                backward=edge.backward,
            )

    visit(htg.root)
    return graph


def flat_graph_to_networkx(graph: FlatTaskGraph) -> nx.DiGraph:
    """The flattened task DAG as a directed graph."""
    out = nx.DiGraph(entry=graph.entry, exit=graph.exit)
    for task in graph.tasks:
        out.add_node(
            task.tid,
            label=task.label,
            cycles=task.cycles,
            proc_class=task.proc_class or "",
            spawn_overhead_us=task.spawn_overhead_us,
        )
    for edge in graph.edges:
        out.add_edge(edge.src, edge.dst, bytes=edge.bytes_volume, transfers=edge.transfers)
    return out


_KIND_SHAPES = {
    "simple": "box",
    "chunk": "box",
    "comm-in": "invtriangle",
    "comm-out": "triangle",
}


def htg_to_dot(htg: HTG, max_label: int = 28) -> str:
    """Graphviz DOT rendering of the AHTG."""
    graph = htg_to_networkx(htg)
    lines = [f'digraph "{htg.function_name}" {{', "  rankdir=TB;"]
    for uid, data in graph.nodes(data=True):
        label = data["label"][:max_label].replace('"', "'")
        cycles = data["cycles"]
        shape = _KIND_SHAPES.get(data["kind"], "ellipse")
        lines.append(
            f'  n{uid} [label="{label}\\n{cycles:,.0f} cyc", shape={shape}];'
        )
    for src, dst, data in graph.edges(data=True):
        if data.get("kind") == "contains":
            lines.append(f"  n{src} -> n{dst} [style=dotted, arrowhead=none];")
        else:
            style = "dashed" if data.get("backward") else "solid"
            label = f'{data.get("bytes", 0):,.0f}B'
            lines.append(f'  n{src} -> n{dst} [style={style}, label="{label}"];')
    lines.append("}")
    return "\n".join(lines)


def flat_graph_to_dot(graph: FlatTaskGraph, max_label: int = 28) -> str:
    """Graphviz DOT rendering of a flattened task DAG (colored by class)."""
    palette = {}
    colors = ["lightblue", "lightgreen", "lightsalmon", "plum", "khaki"]
    lines = ["digraph tasks {", "  rankdir=LR;"]
    for task in graph.tasks:
        cls = task.proc_class or "any"
        if cls not in palette:
            palette[cls] = colors[len(palette) % len(colors)]
        label = task.label[:max_label].replace('"', "'")
        lines.append(
            f'  t{task.tid} [label="{label}\\n{task.cycles:,.0f} cyc ({cls})", '
            f"style=filled, fillcolor={palette[cls]}];"
        )
    for edge in graph.edges:
        label = f"{edge.bytes_volume:,.0f}B" if edge.bytes_volume else ""
        lines.append(f'  t{edge.src} -> t{edge.dst} [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)
