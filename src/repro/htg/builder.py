"""AHTG construction from the statement IR.

Follows Section III-A of the paper: the hierarchy mirrors the source
structure; every hierarchical node gets Communication-In/-Out nodes and
data-flow edges between its children annotated with communicated byte
volumes; leaves carry whole-run execution counts and cycle costs.

Granularity levels realized here:

* **statements** — every simple statement is a node;
* **loop iterations** — provably parallel counted loops become chunk
  nodes (:mod:`repro.htg.chunking`);
* **functions** — single-call-site functions are expanded inline as
  hierarchical nodes, letting the parallelizer descend into them.

Loop-carried flow dependences inside serial loops appear as *backward*
edges; together with the ILP's precedence and path-cost constraints they
force the endpoints into the same task (see DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.cfront import ir
from repro.cfront.defuse import (
    CallSummary,
    DefUse,
    compute_call_summaries,
    compute_defuse,
)
from repro.cfront.deps import DepKind, classify_loop, private_scalars
from repro.cfront.loops import trip_count
from repro.htg.chunking import make_chunk_nodes
from repro.htg.graph import HTG, SymbolInfo
from repro.htg.nodes import (
    ChunkNode,
    HierarchicalNode,
    HTGEdge,
    HTGNode,
    SimpleNode,
)
from repro.timing.costmodel import CostModel
from repro.timing.estimator import CostDatabase, annotate_costs


@dataclass
class BuildOptions:
    """Knobs of the AHTG construction."""

    enable_chunking: bool = True
    chunk_factor: float = 2.0      # chunks ≈ chunk_factor * total_cores
    max_chunks: int = 16
    min_chunk_cycles: float = 2000.0
    inline_calls: bool = True


def build_htg(
    program: ir.Program,
    function: Union[str, ir.Function] = "main",
    cost_db: Optional[CostDatabase] = None,
    options: Optional[BuildOptions] = None,
    total_cores: int = 4,
    summaries: Optional[Dict[str, CallSummary]] = None,
) -> HTG:
    """Extract the AHTG of one function (paper's ``ExtractGraph``)."""
    func = program.entry(function) if isinstance(function, str) else function
    options = options or BuildOptions()
    summaries = summaries if summaries is not None else compute_call_summaries(program)
    if cost_db is None:
        cost_db = annotate_costs(program, func)
    builder = _Builder(program, func, cost_db, options, total_cores, summaries)
    return builder.build()


class _Builder:
    def __init__(
        self,
        program: ir.Program,
        func: ir.Function,
        cost_db: CostDatabase,
        options: BuildOptions,
        total_cores: int,
        summaries: Dict[str, CallSummary],
    ):
        self.program = program
        self.func = func
        self.cost_db = cost_db
        self.options = options
        self.total_cores = total_cores
        self.summaries = summaries
        self.symbols = self._collect_symbols()
        self.call_site_counts = self._count_call_sites()
        self._inline_stack: List[str] = []

    # -- setup ---------------------------------------------------------------

    def _collect_symbols(self) -> Dict[str, SymbolInfo]:
        symbols: Dict[str, SymbolInfo] = {}
        for decl in self.program.globals.values():
            symbols[decl.name] = SymbolInfo(decl.name, decl.ctype, decl.dims)
        for func in self.program.functions.values():
            for stmt in func.body.walk():
                if isinstance(stmt, ir.Decl) and stmt.name not in symbols:
                    symbols[stmt.name] = SymbolInfo(stmt.name, stmt.ctype, stmt.dims)
            for param in func.params:
                if param.name not in symbols:
                    dims = (1024,) if param.is_pointer else ()
                    symbols[param.name] = SymbolInfo(param.name, param.ctype, dims)
        return symbols

    def _count_call_sites(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for func in self.program.functions.values():
            for stmt in func.body.walk():
                for expr in stmt.expressions():
                    if expr is None:
                        continue
                    for node in expr.walk():
                        if isinstance(node, ir.CallExpr):
                            counts[node.name] = counts.get(node.name, 0) + 1
        return counts

    # -- entry ----------------------------------------------------------------

    def build(self) -> HTG:
        root = self._hierarchical_from_stmts(
            label=f"function {self.func.name}",
            construct="function",
            stmt=self.func.body,
            stmts=self.func.body.stmts,
            exec_count=max(1.0, self.cost_db.exec_count(self.func.body)),
            loop_carried=False,
        )
        return HTG(root, self.func.name, self.symbols)

    # -- statement conversion ----------------------------------------------------

    def _convert(self, stmt: ir.Stmt) -> Optional[HTGNode]:
        count = self.cost_db.exec_count(stmt)
        if isinstance(stmt, ir.Block):
            if not stmt.stmts:
                return None
            return self._hierarchical_from_stmts(
                label="block",
                construct="block",
                stmt=stmt,
                stmts=stmt.stmts,
                exec_count=count,
                loop_carried=False,
            )
        if isinstance(stmt, ir.Decl):
            if stmt.init is None:
                return None  # pure allocation: free in the model
            return self._simple(stmt, f"decl {stmt.name}")
        if isinstance(stmt, ir.Assign):
            return self._simple(stmt, f"{stmt.lhs} = ...")
        if isinstance(stmt, ir.CallStmt):
            return self._call_node(stmt)
        if isinstance(stmt, ir.ExprStmt):
            return self._simple(stmt, f"expr {stmt.expr}")
        if isinstance(stmt, ir.Return):
            return self._simple(stmt, "return")
        if isinstance(stmt, ir.ForLoop):
            return self._for_node(stmt)
        if isinstance(stmt, ir.WhileLoop):
            return self._hierarchical_from_stmts(
                label=f"while {stmt.cond}",
                construct="loop",
                stmt=stmt,
                stmts=stmt.body.stmts,
                exec_count=count,
                loop_carried=True,
                control_overhead=self.cost_db.own_cycles(stmt),
            )
        if isinstance(stmt, ir.If):
            return self._if_node(stmt)
        raise TypeError(f"unknown statement {type(stmt).__name__}")

    def _simple(self, stmt: ir.Stmt, label: str) -> SimpleNode:
        return SimpleNode(
            label=label,
            exec_count=self.cost_db.exec_count(stmt),
            defuse=compute_defuse(stmt, self.summaries),
            cycles=self.cost_db.subtree_cycles(stmt),
            stmt=stmt,
        )

    def _call_node(self, stmt: ir.CallStmt) -> HTGNode:
        callee_name = stmt.call.name
        callee = self.program.functions.get(callee_name)
        inlinable = (
            self.options.inline_calls
            and callee is not None
            and self.call_site_counts.get(callee_name, 0) == 1
            and callee_name not in self._inline_stack
            and callee_name != self.func.name
        )
        if not inlinable:
            return self._simple(stmt, f"call {callee_name}")
        # Alias the callee's array parameters to the caller's arrays so
        # footprint estimation sees real sizes.
        for param, arg in zip(callee.params, stmt.call.args):
            if param.is_pointer and isinstance(arg, ir.VarRef):
                info = self.symbols.get(arg.name)
                if info is not None:
                    self.symbols[param.name] = SymbolInfo(
                        param.name, info.ctype, info.dims
                    )
        self._inline_stack.append(callee_name)
        try:
            node = self._hierarchical_from_stmts(
                label=f"call {callee_name}",
                construct="call",
                stmt=callee.body,
                stmts=callee.body.stmts,
                exec_count=self.cost_db.exec_count(stmt),
                loop_carried=False,
            )
        finally:
            self._inline_stack.pop()
        # The node's boundary def/use is the call's own (argument-level).
        node.defuse = self._strip_private(
            compute_defuse(stmt, self.summaries), callee.body
        )
        node.control_overhead_cycles += self.cost_db.own_cycles(stmt)
        return node

    def _if_node(self, stmt: ir.If) -> HTGNode:
        children: List[HTGNode] = []
        then_node = self._convert(stmt.then_block)
        if then_node is not None:
            then_node.label = f"then({stmt.cond})"
            children.append(then_node)
        if stmt.else_block is not None:
            else_node = self._convert(stmt.else_block)
            if else_node is not None:
                else_node.label = f"else({stmt.cond})"
                children.append(else_node)
        node = self._hierarchical_from_children(
            label=f"if {stmt.cond}",
            construct="if",
            stmt=stmt,
            children=children,
            exec_count=self.cost_db.exec_count(stmt),
            loop_carried=False,
            control_overhead=self.cost_db.own_cycles(stmt),
        )
        return node

    # -- loops --------------------------------------------------------------------

    def _for_node(self, loop: ir.ForLoop) -> HTGNode:
        count = self.cost_db.exec_count(loop)
        classification = classify_loop(loop, self.summaries)
        trips = trip_count(loop, self.program.constants)
        if trips is None:
            body_count = self.cost_db.exec_count(loop.body)
            trips = int(body_count / count) if count else 0
        total_cycles = self.cost_db.subtree_cycles(loop)
        chunkable = (
            self.options.enable_chunking
            and classification.chunkable
            and trips is not None
            and trips >= 2
            and total_cycles >= self.options.min_chunk_cycles
            and count > 0
        )
        if chunkable:
            return self._chunked_loop(loop, classification, trips, count)
        return self._hierarchical_from_stmts(
            label=f"for {loop.var} [{classification.parallelism.value}]",
            construct="loop",
            stmt=loop,
            stmts=loop.body.stmts,
            exec_count=count,
            loop_carried=True,
            control_overhead=self.cost_db.own_cycles(loop),
        )

    def _chunked_loop(self, loop, classification, trips, count) -> HierarchicalNode:
        num_chunks = min(
            trips,
            max(2, math.ceil(self.options.chunk_factor * self.total_cores)),
            self.options.max_chunks,
        )
        chunks, in_bytes, out_bytes = make_chunk_nodes(
            loop,
            classification,
            trips,
            self.cost_db,
            self.symbols,
            num_chunks,
            loop_exec_count=count,
        )
        node = HierarchicalNode(
            label=f"for {loop.var} [chunked x{len(chunks)}]",
            construct="loop-chunked",
            exec_count=count,
            defuse=self._strip_private(compute_defuse(loop, self.summaries), loop),
            children=list(chunks),
            edges=[],
            control_overhead_cycles=0.0,
            stmt=loop,
        )
        for chunk, ib, ob in zip(chunks, in_bytes, out_bytes):
            node.edges.append(
                HTGEdge(node.comm_in, chunk, DepKind.FLOW,
                        frozenset(chunk.defuse.array_uses), ib)
            )
            node.edges.append(
                HTGEdge(chunk, node.comm_out, DepKind.FLOW,
                        frozenset(chunk.defuse.array_defs), ob)
            )
        return node

    # -- hierarchical assembly -------------------------------------------------------

    def _hierarchical_from_stmts(
        self,
        label: str,
        construct: str,
        stmt: Optional[ir.Stmt],
        stmts: Sequence[ir.Stmt],
        exec_count: float,
        loop_carried: bool,
        control_overhead: float = 0.0,
    ) -> HierarchicalNode:
        children: List[HTGNode] = []
        for child_stmt in stmts:
            child = self._convert(child_stmt)
            if child is not None:
                children.append(child)
        return self._hierarchical_from_children(
            label, construct, stmt, children, exec_count, loop_carried, control_overhead
        )

    def _hierarchical_from_children(
        self,
        label: str,
        construct: str,
        stmt: Optional[ir.Stmt],
        children: List[HTGNode],
        exec_count: float,
        loop_carried: bool,
        control_overhead: float = 0.0,
    ) -> HierarchicalNode:
        defuse = DefUse()
        for child in children:
            merged = DefUse(
                scalar_defs=set(child.defuse.scalar_defs),
                scalar_uses=set(child.defuse.scalar_uses),
                array_defs=set(child.defuse.array_defs),
                array_uses=set(child.defuse.array_uses),
            )
            defuse.merge(merged)
        if stmt is not None:
            defuse = compute_defuse(stmt, self.summaries)
            defuse = self._strip_private(defuse, stmt)
        node = HierarchicalNode(
            label=label,
            construct=construct,
            exec_count=exec_count,
            defuse=defuse,
            children=children,
            edges=[],
            control_overhead_cycles=control_overhead,
            stmt=stmt,
        )
        node.edges = self._build_edges(node, loop_carried, cross_branch=construct == "if")
        return node

    def _strip_private(self, defuse: DefUse, stmt: ir.Stmt) -> DefUse:
        """Remove block-private scalars from a node's boundary def/use sets.

        Private scalars (loop counters, declared-inside temporaries,
        written-before-read accumulators) neither consume external values
        nor publish results, so keeping them would manufacture spurious
        dependences between sibling nodes that merely reuse a counter name.
        """
        if isinstance(stmt, (ir.ForLoop, ir.WhileLoop)):
            scope: ir.Block = stmt.body
            extra = {stmt.var} if isinstance(stmt, ir.ForLoop) else set()
        elif isinstance(stmt, ir.Block):
            scope = stmt
            extra = set()
        else:
            return defuse
        private = private_scalars(scope, self.summaries) | extra
        return DefUse(
            scalar_defs=defuse.scalar_defs - private,
            scalar_uses=defuse.scalar_uses - private,
            array_defs=set(defuse.array_defs),
            array_uses=set(defuse.array_uses),
            accesses=list(defuse.accesses),
            has_unknown_call=defuse.has_unknown_call,
            has_return=defuse.has_return,
        )

    # -- edges -----------------------------------------------------------------------

    def _build_edges(
        self, node: HierarchicalNode, loop_carried: bool, cross_branch: bool
    ) -> List[HTGEdge]:
        children = node.children
        edges: List[HTGEdge] = []
        n = len(children)

        def defs(c: HTGNode) -> Set[str]:
            return c.defuse.all_defs

        def uses(c: HTGNode) -> Set[str]:
            return c.defuse.all_uses

        # Then/else branches are mutually exclusive: executing them in
        # different tasks can never overlap their execution, so an ordering
        # edge stops the ILP from modelling bogus overlap.
        if cross_branch:
            for i in range(n - 1):
                edges.append(
                    HTGEdge(children[i], children[i + 1], DepKind.ANTI, frozenset())
                )

        # forward dependences with kill filtering
        for j in range(n):
            for i in range(j):
                if cross_branch:
                    continue  # handled above
                flow = self._surviving(children, i, j, defs(children[i]) & uses(children[j]))
                anti = self._surviving(children, i, j, uses(children[i]) & defs(children[j]))
                output = self._surviving(children, i, j, defs(children[i]) & defs(children[j]))
                if flow:
                    edges.append(
                        HTGEdge(
                            children[i],
                            children[j],
                            DepKind.FLOW,
                            frozenset(flow),
                            self._edge_bytes(children[i], children[j], flow),
                        )
                    )
                if anti - flow:
                    edges.append(
                        HTGEdge(children[i], children[j], DepKind.ANTI, frozenset(anti - flow))
                    )
                if output - flow:
                    edges.append(
                        HTGEdge(
                            children[i], children[j], DepKind.OUTPUT, frozenset(output - flow)
                        )
                    )

        # loop-carried backward flow edges: a later child defines a value an
        # earlier child consumes in the next iteration.
        if loop_carried:
            for j in range(n):
                for i in range(j):
                    carried = defs(children[j]) & uses(children[i])
                    if carried:
                        edges.append(
                            HTGEdge(
                                children[j],
                                children[i],
                                DepKind.FLOW,
                                frozenset(carried),
                                self._edge_bytes(children[j], children[i], carried),
                                backward=True,
                            )
                        )

        # communication-in edges: uses not produced by earlier siblings
        produced: Set[str] = set()
        for child in children:
            external = uses(child) - produced
            if loop_carried:
                # In a loop, even values produced by earlier siblings arrive
                # from outside on the first iteration; keep it simple and
                # charge only genuinely external inputs.
                pass
            bytes_in = self._read_bytes(child, external) if external else 0.0
            edges.append(
                HTGEdge(node.comm_in, child, DepKind.FLOW, frozenset(external), bytes_in)
            )
            produced |= defs(child)

        # communication-out edges: every child joins at comm-out (the paper:
        # the out-node is a successor of all child nodes); escaping
        # definitions carry bytes.
        later_defs: Set[str] = set()
        for child in reversed(children):
            escaping = set()
            for name in defs(child):
                info = self.symbols.get(name)
                is_array = info.is_array if info else False
                if is_array or name not in later_defs:
                    escaping.add(name)
            bytes_out = self._write_bytes(child, escaping) if escaping else 0.0
            edges.append(
                HTGEdge(child, node.comm_out, DepKind.FLOW, frozenset(escaping), bytes_out)
            )
            later_defs |= {
                name
                for name in defs(child)
                if not (self.symbols.get(name) and self.symbols[name].is_array)
            }
        edges.reverse()
        return edges

    @staticmethod
    def _surviving(
        children: Sequence[HTGNode], i: int, j: int, related: Set[str]
    ) -> Set[str]:
        survivors = set(related)
        for k in range(i + 1, j):
            # array definitions are partial writes: they do not kill
            killer_scalars = children[k].defuse.scalar_defs
            survivors -= killer_scalars
            if not survivors:
                break
        return survivors

    # -- byte volumes -------------------------------------------------------------------

    def _edge_bytes(self, src: HTGNode, dst: HTGNode, variables: Set[str]) -> float:
        total = 0.0
        for name in variables:
            total += min(
                self._var_bytes(src, name, write=True),
                self._var_bytes(dst, name, write=False),
            )
        return total

    def _read_bytes(self, node: HTGNode, variables: Set[str]) -> float:
        return sum(self._var_bytes(node, name, write=False) for name in variables)

    def _write_bytes(self, node: HTGNode, variables: Set[str]) -> float:
        return sum(self._var_bytes(node, name, write=True) for name in variables)

    def _var_bytes(self, node: HTGNode, name: str, write: bool) -> float:
        """Whole-run byte traffic of ``node`` on variable ``name``."""
        if isinstance(node, ChunkNode):
            # Chunks share the loop's footprint proportionally.
            loop_bytes = self._stmt_var_bytes(node.loop, name, write)
            share = node.trips / max(1, self._loop_trips(node.loop))
            return loop_bytes * share
        stmt = getattr(node, "stmt", None)
        if stmt is not None:
            return self._stmt_var_bytes(stmt, name, write)
        if isinstance(node, HierarchicalNode):
            return sum(self._var_bytes(c, name, write) for c in node.children)
        return 0.0

    def _loop_trips(self, loop: ir.ForLoop) -> int:
        trips = trip_count(loop, self.program.constants)
        if trips:
            return trips
        count = self.cost_db.exec_count(loop)
        body = self.cost_db.exec_count(loop.body)
        return int(body / count) if count else 1

    def _stmt_var_bytes(self, stmt: ir.Stmt, name: str, write: bool) -> float:
        info = self.symbols.get(name)
        elem = info.element_bytes if info else 4
        events = 0.0
        for sub in stmt.walk():
            count = self.cost_db.exec_count(sub)
            if count <= 0:
                continue
            events += count * _own_var_events(sub, name, write)
        total = events * elem
        if info is not None and info.is_array:
            total = min(total, float(info.total_bytes))
        else:
            total = min(total, events * elem)
        return total


def _own_var_events(stmt: ir.Stmt, name: str, write: bool) -> int:
    """Accesses to ``name`` directly in one statement (not substatements)."""
    events = 0

    def visit(expr: ir.Expr) -> None:
        nonlocal events
        if isinstance(expr, (ir.VarRef, ir.ArrayRef)) and expr.name == name and not write:
            events += 1
        for child in expr.children():
            visit(child)

    if isinstance(stmt, ir.Assign):
        if write:
            if isinstance(stmt.lhs, (ir.VarRef, ir.ArrayRef)) and stmt.lhs.name == name:
                events += 1
        else:
            visit(stmt.rhs)
            if isinstance(stmt.lhs, ir.ArrayRef):
                for index in stmt.lhs.indices:
                    visit(index)
        return events
    if isinstance(stmt, ir.Decl):
        if write and stmt.name == name and stmt.init is not None:
            events += 1
        elif not write and stmt.init is not None:
            visit(stmt.init)
        return events
    if not write:
        for expr in stmt.expressions():
            if expr is not None:
                visit(expr)
    else:
        # Writes through calls: approximate one event per call statement.
        if isinstance(stmt, ir.CallStmt):
            du = compute_defuse(stmt)
            if name in du.all_defs:
                events += 1
    return events
