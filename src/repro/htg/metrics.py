"""AHTG metrics: critical paths, parallelism degrees, speedup bounds.

Analytical bounds computed directly from the graph, before any ILP runs:

* **critical path** — the longest dependence chain through a hierarchical
  node's children (in reference cycles), recursively descending into the
  children's own structure;
* **available parallelism** — total work / critical path, the classic
  DAG parallelism degree;
* **speedup bounds** — per platform: the achievable speedup can exceed
  neither the paper's aggregate-frequency limit nor the program's own
  dependence structure (work / critical-path on the fastest composition).

Tests use these bounds to sanity-check every ILP solution from the
outside: no extracted candidate may claim a speedup above the bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.htg.graph import HTG
from repro.htg.nodes import HierarchicalNode, HTGNode
from repro.platforms.description import Platform


@dataclass(frozen=True)
class ParallelismReport:
    """Structural parallelism summary of one AHTG."""

    total_cycles: float
    critical_path_cycles: float
    available_parallelism: float
    num_leaves: int
    chunked_loops: int
    serial_loops: int

    def bounded_speedup(self, platform: Platform) -> float:
        """Upper bound on any speedup achievable on ``platform``.

        The binding constraints are (a) the aggregate-frequency limit
        (paper's dashed line) and (b) the dependence structure: even with
        infinite cores of the fastest class, the critical path must run
        somewhere, so speedup ≤ parallelism × (fastest/main clock ratio).
        """
        frequency_limit = platform.theoretical_speedup()
        fastest = max(pc.effective_mhz for pc in platform.processor_classes)
        clock_ratio = fastest / platform.main_class.effective_mhz
        dependence_limit = self.available_parallelism * clock_ratio
        return min(frequency_limit, dependence_limit)


def critical_path_cycles(node: HTGNode) -> float:
    """Longest dependence chain through the node's subtree, in cycles.

    For hierarchical nodes: longest path over the children DAG where each
    child weighs its own (recursive) critical path; control overhead is
    serial and always added. Backward edges force their endpoints into one
    task, i.e. they serialize — handled by treating the strongly-coupled
    children as a chain (conservatively: their weights add along the
    path anyway since a backward edge implies a forward path).
    """
    if not isinstance(node, HierarchicalNode) or not node.children:
        return node.total_cycles()

    children = node.topological_children()
    index_of = {c.uid: i for i, c in enumerate(children)}
    weights = [critical_path_cycles(c) for c in children]

    # longest path over forward edges (program order is topological)
    longest: List[float] = [w for w in weights]
    preds: Dict[int, List[int]] = {i: [] for i in range(len(children))}
    for edge in node.edges_between_children():
        src = index_of.get(edge.src.uid)
        dst = index_of.get(edge.dst.uid)
        if src is None or dst is None:
            continue
        lo, hi = (src, dst) if src < dst else (dst, src)
        preds[hi].append(lo)
    for i in range(len(children)):
        if preds[i]:
            longest[i] = weights[i] + max(longest[p] for p in preds[i])
    return node.control_overhead_cycles + (max(longest) if longest else 0.0)


def analyze_parallelism(htg: HTG) -> ParallelismReport:
    """Compute the structural parallelism report of an AHTG."""
    total = htg.root.total_cycles()
    critical = critical_path_cycles(htg.root)
    chunked = sum(
        1
        for n in htg.walk()
        if isinstance(n, HierarchicalNode) and n.construct == "loop-chunked"
    )
    serial = sum(
        1
        for n in htg.walk()
        if isinstance(n, HierarchicalNode) and n.construct == "loop"
    )
    leaves = sum(1 for n in htg.walk() if not isinstance(n, HierarchicalNode))
    return ParallelismReport(
        total_cycles=total,
        critical_path_cycles=critical,
        available_parallelism=total / critical if critical > 0 else 1.0,
        num_leaves=leaves,
        chunked_loops=chunked,
        serial_loops=serial,
    )


def render_report(report: ParallelismReport, platform: Optional[Platform] = None) -> str:
    """Human-readable parallelism summary."""
    lines = [
        f"total work          : {report.total_cycles:15,.0f} cycles",
        f"critical path       : {report.critical_path_cycles:15,.0f} cycles",
        f"available parallelism: {report.available_parallelism:14.2f}x",
        f"leaves / chunked / serial loops: {report.num_leaves} / "
        f"{report.chunked_loops} / {report.serial_loops}",
    ]
    if platform is not None:
        lines.append(
            f"speedup bound on {platform.name}: "
            f"{report.bounded_speedup(platform):.2f}x"
        )
    return "\n".join(lines)
