"""Augmented Hierarchical Task Graph (AHTG).

The paper's central data structure (Section III-A): a hierarchy mirroring
the source structure, with *Simple Nodes* for plain statements,
*Hierarchical Nodes* for constructs containing other statements, and a
*Communication-In* / *Communication-Out* node pair per hierarchical node
encapsulating data crossing the node boundary. Data-flow edges between
sibling nodes carry the communicated byte volume; every node is annotated
with whole-run execution counts and reference cycle costs (converted to
per-class times through the platform description).

:mod:`repro.htg.chunking` adds the paper's "loop iterations" granularity
level by splitting provably-parallel counted loops into iteration-range
chunk nodes, which is what lets the ILP balance work *unequally* across
processor classes of different speeds.
"""

from repro.htg.nodes import (
    ChunkNode,
    CommNode,
    HierarchicalNode,
    HTGEdge,
    HTGNode,
    SimpleNode,
)
from repro.htg.builder import BuildOptions, build_htg
from repro.htg.graph import HTG

__all__ = [
    "BuildOptions",
    "ChunkNode",
    "CommNode",
    "HTG",
    "HTGEdge",
    "HTGNode",
    "HierarchicalNode",
    "SimpleNode",
    "build_htg",
]
