"""Schedule traces: Gantt-style ASCII timelines and utilization reports.

CoMET gives the paper's authors waveform-level visibility; this module
provides the equivalent insight for the discrete-event simulator —
per-core timelines of the simulated schedule and utilization summaries,
rendered as plain text (terminal friendly, diffable in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.flatten import FlatTaskGraph
from repro.platforms.description import Platform
from repro.simulator.engine import SimResult


@dataclass(frozen=True)
class CoreTimeline:
    """Occupancy intervals of one core: (start, finish, task label)."""

    core: Tuple[str, int]
    intervals: Tuple[Tuple[float, float, str], ...]

    @property
    def busy_us(self) -> float:
        return sum(finish - start for start, finish, _ in self.intervals)


def build_timelines(
    result: SimResult, graph: Optional[FlatTaskGraph] = None
) -> List[CoreTimeline]:
    """Group the schedule into per-core interval lists, sorted by start."""
    labels: Dict[int, str] = {}
    if graph is not None:
        labels = {t.tid: t.label for t in graph.tasks}
    per_core: Dict[Tuple[str, int], List[Tuple[float, float, str]]] = {}
    for scheduled in result.schedule.values():
        if scheduled.finish_us - scheduled.start_us <= 0:
            continue  # zero-length markers clutter the timeline
        label = labels.get(scheduled.tid, f"task{scheduled.tid}")
        per_core.setdefault(scheduled.core, []).append(
            (scheduled.start_us, scheduled.finish_us, label)
        )
    timelines = []
    cores = sorted({c for c in per_core} | {(c.class_name, c.index) for c in result.cores})
    for core in cores:
        intervals = tuple(sorted(per_core.get(core, []), key=lambda iv: iv[0]))
        timelines.append(CoreTimeline(core, intervals))
    return timelines


def render_gantt(
    result: SimResult,
    graph: Optional[FlatTaskGraph] = None,
    width: int = 72,
) -> str:
    """ASCII Gantt chart of the simulated schedule.

    One row per core; ``#`` marks busy time, ``.`` idle. The chart scales
    the whole makespan to ``width`` characters.
    """
    timelines = build_timelines(result, graph)
    makespan = max(result.makespan_us, 1e-9)
    scale = width / makespan
    lines = [f"simulated makespan: {result.makespan_us:,.1f} us"]
    for timeline in timelines:
        row = ["."] * width
        for start, finish, _label in timeline.intervals:
            lo = min(width - 1, int(start * scale))
            hi = min(width, max(lo + 1, int(finish * scale + 0.5)))
            for i in range(lo, hi):
                row[i] = "#"
        core_name = f"{timeline.core[0]}[{timeline.core[1]}]"
        busy_pct = 100.0 * timeline.busy_us / makespan
        lines.append(f"{core_name:>12} |{''.join(row)}| {busy_pct:5.1f}%")
    return "\n".join(lines)


def render_utilization(result: SimResult) -> str:
    """Tabular core-utilization summary."""
    lines = [f"{'core':>12} {'busy (us)':>12} {'utilization':>12}"]
    for core in result.cores:
        share = core.busy_us / result.makespan_us if result.makespan_us else 0.0
        lines.append(
            f"{core.class_name + '[' + str(core.index) + ']':>12} "
            f"{core.busy_us:>12,.1f} {share:>11.1%}"
        )
    return "\n".join(lines)


def schedule_table(
    result: SimResult, graph: Optional[FlatTaskGraph] = None, limit: int = 50
) -> str:
    """Chronological table of scheduled tasks (markers skipped)."""
    labels: Dict[int, str] = {}
    if graph is not None:
        labels = {t.tid: t.label for t in graph.tasks}
    rows = sorted(result.schedule.values(), key=lambda s: (s.start_us, s.tid))
    lines = [f"{'start':>10} {'finish':>10} {'core':>12}  task"]
    shown = 0
    for scheduled in rows:
        if scheduled.finish_us - scheduled.start_us <= 0:
            continue
        if shown >= limit:
            lines.append(f"... ({len(rows) - shown} more)")
            break
        label = labels.get(scheduled.tid, f"task{scheduled.tid}")
        core = f"{scheduled.core[0]}[{scheduled.core[1]}]"
        lines.append(
            f"{scheduled.start_us:>10,.1f} {scheduled.finish_us:>10,.1f} "
            f"{core:>12}  {label}"
        )
        shown += 1
    return "\n".join(lines)
