"""High-level simulation API: evaluate parallelization solutions.

The measurement methodology mirrors the paper's Section VI-A: the
baseline is the sequential execution on one core of the platform's main
class; a solution's speedup is ``sequential_time / simulated_makespan``.
Homogeneous-baseline solutions are simulated *class-blind*: their tasks
carry no class requirement and land on whichever core frees up first —
reproducing the mis-balancing the paper observes on heterogeneous
platforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.flatten import FlatTaskGraph, flatten_solution
from repro.core.parallelize import ParallelizeResult
from repro.core.solution import SolutionCandidate
from repro.htg.graph import HTG
from repro.platforms.description import Platform
from repro.simulator.engine import SimOptions, SimResult, simulate_graph


@dataclass
class SolutionEvaluation:
    """Simulated performance of one parallelization result."""

    sequential_us: float
    parallel_us: float
    speedup: float
    sim: SimResult
    graph: FlatTaskGraph
    theoretical_limit: float


def sequential_time_us(htg: HTG, platform: Platform) -> float:
    """Whole-run time of the unparallelized program on the main core."""
    return platform.main_class.time_us(htg.root.total_cycles())


def simulate_candidate(
    candidate: SolutionCandidate,
    platform: Platform,
    class_blind: bool = False,
    options: Optional[SimOptions] = None,
) -> SimResult:
    """Flatten and simulate one solution candidate."""
    graph = flatten_solution(candidate, platform, class_blind=class_blind)
    return simulate_graph(graph, platform, options)


def evaluate_solution(
    result: ParallelizeResult,
    options: Optional[SimOptions] = None,
) -> SolutionEvaluation:
    """Simulate a :class:`ParallelizeResult` and compute its speedup."""
    platform = result.platform
    class_blind = result.approach == "homogeneous"
    graph = flatten_solution(result.best, platform, class_blind=class_blind)
    sim = simulate_graph(graph, platform, options)
    seq = sequential_time_us(result.htg, platform)
    speedup = seq / sim.makespan_us if sim.makespan_us > 0 else float("inf")
    return SolutionEvaluation(
        sequential_us=seq,
        parallel_us=sim.makespan_us,
        speedup=speedup,
        sim=sim,
        graph=graph,
        theoretical_limit=platform.theoretical_speedup(),
    )


def speedup_of(
    result: ParallelizeResult,
    options: Optional[SimOptions] = None,
) -> float:
    """Convenience: simulated speedup of a parallelization result."""
    return evaluate_solution(result, options).speedup
