"""Event-driven execution of a flat task DAG on a modelled MPSoC.

The engine is a classic discrete-event list scheduler:

* every core is a resource with a class-determined speed
  (``cycles * cpi_scale / frequency_mhz`` µs per task);
* a task becomes *ready* when all predecessors finished and their data
  arrived (cross-core edges pay the interconnect transfer time; same-core
  edges are free — the data stays in the core's cache);
* ready tasks are placed greedily on free cores of their required class
  (class-less tasks from the homogeneous baseline may run anywhere);
* optional bus contention serializes transfers on the shared bus.

Determinism: ties are broken by task id and by core order, so a given
graph always produces the same schedule.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.flatten import FlatEdge, FlatTaskGraph
from repro.platforms.description import Platform


@dataclass
class SimOptions:
    """Simulator knobs."""

    #: Serialize transfers on the shared bus (contention modelling).
    bus_contention: bool = False
    #: Frozen task→core binding (from
    #: :func:`repro.core.mapping.compute_static_mapping`). When set, the
    #: scheduler executes the static mapping instead of choosing cores —
    #: the paper's "avoid additional scheduling overhead" execution mode.
    fixed_mapping: Optional[Dict[int, Tuple[str, int]]] = None
    #: Placement policy for class-less tasks (homogeneous baseline):
    #: "blind" models a speed-unaware runtime that picks the earliest
    #: *available* core regardless of its clock — the paper's scenario
    #: where "the faster processors have to wait until the slower cores
    #: have finished their tasks". "speed-aware" picks the core with the
    #: earliest *finish* (an idealized heterogeneous-aware runtime, used
    #: as an ablation).
    anyclass_policy: str = "blind"


@dataclass
class ScheduledTask:
    """Placement record of one task in the simulated schedule."""

    tid: int
    core: Tuple[str, int]
    start_us: float
    finish_us: float


@dataclass
class CoreState:
    """Busy/idle accounting for one core."""

    class_name: str
    index: int
    free_at: float = 0.0
    busy_us: float = 0.0


@dataclass
class SimResult:
    """Outcome of a simulation run."""

    makespan_us: float
    schedule: Dict[int, ScheduledTask] = field(default_factory=dict)
    cores: List[CoreState] = field(default_factory=list)
    bus_busy_us: float = 0.0
    #: dynamic energy (nJ) = executed cycles x per-class energy-per-cycle
    energy_nj: float = 0.0
    #: happens-before vector clock per task, as a bitmask of task ids:
    #: bit ``p`` of ``clocks[t]`` is set iff ``p`` happened-before ``t``
    #: (or ``p == t``). Each task runs exactly once, so one bit per task
    #: is a full vector clock. Ordering sources: dependence edges and
    #: same-core serialization. Consumed by the trace sanitizer.
    clocks: Dict[int, int] = field(default_factory=dict)

    def happens_before(self, a: int, b: int) -> bool:
        """True iff task ``a`` happened-before task ``b`` in this run."""
        return a != b and bool((self.clocks.get(b, 0) >> a) & 1)

    def ordered(self, a: int, b: int) -> bool:
        """True iff tasks ``a`` and ``b`` are ordered either way."""
        return self.happens_before(a, b) or self.happens_before(b, a)

    def utilization(self) -> Dict[Tuple[str, int], float]:
        if self.makespan_us <= 0:
            return {(c.class_name, c.index): 0.0 for c in self.cores}
        return {
            (c.class_name, c.index): c.busy_us / self.makespan_us for c in self.cores
        }


def simulate_graph(
    graph: FlatTaskGraph,
    platform: Platform,
    options: Optional[SimOptions] = None,
) -> SimResult:
    """Simulate the DAG to completion; returns makespan and schedule."""
    options = options or SimOptions()
    problems = graph.validate()
    if problems:
        raise ValueError(f"invalid task graph: {problems}")

    tasks = {t.tid: t for t in graph.tasks}
    preds: Dict[int, List[FlatEdge]] = {tid: [] for tid in tasks}
    succs: Dict[int, List[FlatEdge]] = {tid: [] for tid in tasks}
    for edge in graph.edges:
        preds[edge.dst].append(edge)
        succs[edge.src].append(edge)

    cores = [CoreState(cname, idx) for cname, idx in platform.cores()]
    by_class: Dict[str, List[CoreState]] = {}
    for core in cores:
        by_class.setdefault(core.class_name, []).append(core)

    remaining_preds = {tid: len(preds[tid]) for tid in tasks}
    #: data-arrival time per (task, pred-edge); a task may start at
    #: max over pred edges of arrival(edge, chosen core).
    finish_time: Dict[int, float] = {}
    core_of: Dict[int, Tuple[str, int]] = {}
    schedule: Dict[int, ScheduledTask] = {}
    bus_free_at = 0.0
    bus_busy = 0.0

    #: happens-before clocks (bitmask per task) and same-core predecessors.
    clocks: Dict[int, int] = {}
    last_on_core: Dict[Tuple[str, int], int] = {}

    ready: List[int] = [tid for tid, k in remaining_preds.items() if k == 0]
    ready.sort()
    # Event queue holds running-task completions: (finish, tid).
    running: List[Tuple[float, int]] = []
    now = 0.0
    scheduled: Set[int] = set()

    def transfer_us(edge: FlatEdge) -> float:
        ic = platform.interconnect
        if edge.bytes_volume <= 0:
            return 0.0
        return ic.latency_us * max(1.0, edge.transfers) + (
            edge.bytes_volume / ic.bandwidth_bytes_per_us
        )

    core_by_key = {(c.class_name, c.index): c for c in cores}

    def eligible_cores(task) -> List[CoreState]:
        if options.fixed_mapping is not None:
            key = options.fixed_mapping.get(task.tid)
            if key is None:
                raise ValueError(f"fixed mapping misses task {task.label!r}")
            core = core_by_key.get(key)
            if core is None:
                raise ValueError(f"fixed mapping uses unknown core {key}")
            if task.proc_class is not None and key[0] != task.proc_class:
                raise ValueError(
                    f"fixed mapping places {task.label!r} on class {key[0]!r}, "
                    f"requires {task.proc_class!r}"
                )
            return [core]
        if task.proc_class is not None:
            return by_class.get(task.proc_class, [])
        return list(cores)

    def arrival_time(tid: int, core: CoreState) -> float:
        nonlocal bus_free_at, bus_busy
        latest = 0.0
        for edge in preds[tid]:
            src_finish = finish_time[edge.src]
            if core_of[edge.src] == (core.class_name, core.index):
                latest = max(latest, src_finish)
            else:
                latest = max(latest, src_finish + transfer_us(edge))
        return latest

    def place(tid: int) -> None:
        """Reserve the earliest-finishing eligible core slot for ``tid``."""
        nonlocal bus_free_at, bus_busy
        task = tasks[tid]
        candidates = eligible_cores(task)
        if not candidates:
            raise ValueError(
                f"task {task.label!r} requires unknown class {task.proc_class!r}"
            )
        blind = task.proc_class is None and options.anyclass_policy == "blind"
        best_core = None
        best_key = math.inf
        best_start = 0.0
        for core in candidates:
            pc = platform.get_class(core.class_name)
            start = max(core.free_at, arrival_time(tid, core))
            if blind:
                # Speed-unaware runtime: judge a core only by availability.
                key = start
            else:
                key = start + pc.time_us(task.cycles) + task.spawn_overhead_us
            if key < best_key - 1e-12:
                best_key = key
                best_start = start
                best_core = core
        assert best_core is not None
        start = best_start
        if options.bus_contention:
            xfer = sum(
                transfer_us(e)
                for e in preds[tid]
                if core_of[e.src] != (best_core.class_name, best_core.index)
            )
            if xfer > 0:
                bus_start = max(bus_free_at, start - xfer)
                bus_free_at = bus_start + xfer
                bus_busy += xfer
                start = max(start, bus_free_at)
        pc = platform.get_class(best_core.class_name)
        duration = pc.time_us(task.cycles) + task.spawn_overhead_us
        finish = start + duration
        best_core.free_at = finish
        best_core.busy_us += duration
        finish_time[tid] = finish
        core_key = (best_core.class_name, best_core.index)
        core_of[tid] = core_key
        # Vector-clock update: a task inherits the clocks of its graph
        # predecessors (place() only runs once all of them finished) and
        # of the previous occupant of its core (``free_at`` serializes).
        clock = 1 << tid
        for edge in preds[tid]:
            clock |= clocks[edge.src]
        prev = last_on_core.get(core_key)
        if prev is not None:
            clock |= clocks[prev]
        clocks[tid] = clock
        last_on_core[core_key] = tid
        schedule[tid] = ScheduledTask(tid, core_key, start, finish)
        heapq.heappush(running, (finish, tid))
        scheduled.add(tid)

    while ready or running:
        for tid in ready:
            place(tid)
        ready = []
        if not running:
            break
        now, done = heapq.heappop(running)
        for edge in succs[done]:
            remaining_preds[edge.dst] -= 1
            if remaining_preds[edge.dst] == 0:
                ready.append(edge.dst)
        ready.sort()

    if len(scheduled) != len(tasks):
        missing = sorted(set(tasks) - scheduled)
        raise RuntimeError(f"simulation deadlock: tasks never ran: {missing}")

    makespan = max(finish_time.values()) if finish_time else 0.0
    energy = 0.0
    for tid, core_key in core_of.items():
        pc = platform.get_class(core_key[0])
        energy += tasks[tid].cycles * pc.cpi_scale * pc.energy_per_cycle_nj
    return SimResult(
        makespan_us=makespan,
        schedule=schedule,
        cores=cores,
        bus_busy_us=bus_busy,
        energy_nj=energy,
        clocks=clocks,
    )
