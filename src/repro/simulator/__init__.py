"""Discrete-event MPSoC simulator (substitute for CoMET/MPARM).

Executes a flattened task DAG on a modelled heterogeneous MPSoC:
frequency-scaled cores grouped in processor classes, a shared bus with
per-transfer latency and finite bandwidth (optionally with contention),
and per-spawn task-creation overhead. Produces cycle-level makespans used
for all speedup measurements, mirroring the role the cycle-accurate CoMET
simulator plays in the paper's evaluation.
"""

from repro.simulator.engine import CoreState, SimOptions, SimResult, simulate_graph
from repro.simulator.run import evaluate_solution, simulate_candidate, speedup_of
from repro.simulator.trace import render_gantt, render_utilization, schedule_table

__all__ = [
    "CoreState",
    "SimOptions",
    "SimResult",
    "evaluate_solution",
    "render_gantt",
    "render_utilization",
    "schedule_table",
    "simulate_candidate",
    "simulate_graph",
    "speedup_of",
]
