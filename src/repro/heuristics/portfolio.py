"""Anytime heuristic solves for ILPPAR instances.

:func:`solve_heuristic` is the portfolio's heuristic leg: list-schedule
the instance (HEFT/AMTHA-style greedy), refine with the seeded GA under
a generation budget, complete the winning structure into a full,
certificate-clean model solution, and price its optimality gap against
the root LP relaxation. The result carries everything the exact stack
needs to warm-start: the raw solution vector (``incumbent_x`` for
:func:`repro.ilp.bnb.solve_form_bnb`), the objective (the cutoff) and
the root lower bound (which lets an incumbent-seeded solve prove
gap-optimality without branching).

Everything here runs inline in the parent process with an rng derived
only from ``(seed, model name)`` — results are bit-identical across
``--jobs`` / ``--batch-size`` configurations.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.ilppar import IlpParInstance, extract_ilppar_candidate
from repro.core.solution import SolutionCandidate
from repro.heuristics.assignment import (
    Assignment,
    complete_solution,
    solution_vector,
)
from repro.heuristics.ga import refine
from repro.heuristics.list_scheduler import fallback_assignment, list_schedule
from repro.ilp.model import Solution


@dataclass(frozen=True)
class HeuristicResult:
    """One anytime solution plus its warm-start payload.

    ``gap`` is the proven relative optimality gap against the root LP
    relaxation (``None`` when the relaxation could not be priced) — an
    upper bound on the true gap, so reporting it never overclaims.
    """

    assignment: Assignment
    solution: Solution
    candidate: SolutionCandidate
    objective: float
    lower_bound: Optional[float]
    gap: Optional[float]
    seconds: float
    vector: Tuple[float, ...]


def heuristic_rng(seed: int, model_name: str) -> random.Random:
    """Deterministic per-model rng, independent of solve order and jobs."""
    digest = hashlib.sha256(f"{seed}:{model_name}".encode()).hexdigest()
    return random.Random(int(digest[:16], 16))


def relative_gap(objective: float, lower_bound: Optional[float]) -> Optional[float]:
    """``max(0, (obj - lb) / |obj|)``, or ``None`` without a bound."""
    if lower_bound is None:
        return None
    if abs(objective) <= 1e-12:
        return 0.0 if lower_bound >= -1e-12 else None
    return max(0.0, (objective - lower_bound) / abs(objective))


def solve_heuristic(
    inst: IlpParInstance,
    seed: int = 0,
    budget: int = 40,
    compute_bound: bool = True,
) -> HeuristicResult:
    """Best-of-portfolio heuristic solve of one ILPPAR instance.

    ``budget`` caps the GA generations (0 disables refinement and
    returns the better of the list schedule and the sequential
    fallback). ``compute_bound=False`` skips the root-LP pricing when
    the caller will obtain a bound some other way.
    """
    assert inst.ctx is not None, "instance built without scheduling context"
    start = time.perf_counter()

    seeds: List[Assignment] = [fallback_assignment(inst)]
    scheduled = list_schedule(inst)
    if scheduled not in seeds:
        seeds.append(scheduled)

    if budget > 0:
        rng = heuristic_rng(seed, inst.model.name)
        best, _obj = refine(inst, seeds, rng, budget)
    else:
        from repro.heuristics.assignment import evaluate

        best = min(
            seeds,
            key=lambda a: (
                evaluate(inst, a.task_of, a.class_map(), a.cand_of),
                a.task_of,
            ),
        )

    solution = complete_solution(inst, best)
    violated = inst.model.check(solution)
    if violated:
        names = [c.name for c in violated[:4]]
        raise RuntimeError(
            f"heuristic completion violates {len(violated)} rows "
            f"of {inst.model.name!r}: {names}"
        )
    candidate = extract_ilppar_candidate(inst, solution)
    vector = tuple(solution_vector(inst, solution))

    lower_bound: Optional[float] = None
    if compute_bound:
        from repro.heuristics.assignment import critical_path_bound
        from repro.ilp.bnb import root_relaxation_bound

        # Best of the LP relaxation and the combinatorial critical-path
        # bound; the latter usually wins (big-M gating makes the root LP
        # nearly vacuous on ILPPAR models).
        bounds = [critical_path_bound(inst)]
        lp_bound = root_relaxation_bound(inst.model.to_matrix_form())
        if lp_bound is not None:
            bounds.append(lp_bound)
        lower_bound = max(bounds)
    gap = relative_gap(solution.objective, lower_bound)
    return HeuristicResult(
        assignment=best,
        solution=solution,
        candidate=candidate,
        objective=float(solution.objective),
        lower_bound=lower_bound,
        gap=gap,
        seconds=time.perf_counter() - start,
        vector=vector,
    )
