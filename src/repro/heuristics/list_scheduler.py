"""HEFT/AMTHA-style greedy list scheduling of one ILPPAR instance.

The scheduler walks the children in topological order — the only order
the monotone-task-id rule (Eq. 10) admits — and greedily grows a run
structure: each child either *stays* on the currently open task slot,
*opens* the next extra slot under one of the processor classes, or
*joins* the master thread's tail segment. Each option is scored with a
full lookahead evaluation: the remaining children are tentatively placed
on the option's slot and the complete structure is priced by
:func:`repro.heuristics.assignment.evaluate` — the exact ILPPAR
objective, so the greedy decision optimizes estimated finish time the
way HEFT's earliest-finish-time rule does, and the AMTHA-style class
choice falls out of comparing the same placement under every class.

The result is always feasible: the all-on-fork structure (every child
sequential on the master thread) is both the scoring baseline and the
guaranteed fallback.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.core.ilppar import IlpParInstance
from repro.heuristics.assignment import (
    Assignment,
    choose_candidates,
    evaluate,
)


def fallback_assignment(inst: IlpParInstance) -> Assignment:
    """The always-feasible structure: every child on the fork segment."""
    n = len(inst.children)
    task_of = tuple([0] * n)
    cand_of = choose_candidates(inst, task_of, {})
    assert cand_of is not None, "sequential seeding guarantees candidates"
    return Assignment(task_of=task_of, class_of=(), cand_of=cand_of)


def _score(
    inst: IlpParInstance,
    task_of: List[int],
    class_map: Dict[int, str],
) -> float:
    cand_of = choose_candidates(inst, task_of, class_map)
    if cand_of is None:
        return math.inf
    value = evaluate(inst, task_of, class_map, cand_of)
    return math.inf if value is None else value


def list_schedule(inst: IlpParInstance) -> Assignment:
    """Greedy placement of every child; returns a feasible assignment."""
    assert inst.ctx is not None, "instance built without scheduling context"
    n = len(inst.children)
    num_extra = len(inst.extras)
    join = inst.join

    assigned: List[int] = []
    class_map: Dict[int, str] = {}
    for _ni in range(n):
        cur = assigned[-1] if assigned else 0
        opened = max((t for t in assigned if t in set(inst.extras)), default=0)
        # Option order is fixed so score ties resolve deterministically:
        # stay, open-next-slot per class (declaration order), join.
        options: List[Tuple[int, Optional[str]]] = [(cur, None)]
        if cur != join and opened + 1 <= num_extra:
            for cname in inst.classes:
                options.append((opened + 1, cname))
        if cur != join:
            options.append((join, None))

        best: Optional[Tuple[float, int, Optional[str]]] = None
        for slot, cname in options:
            trial_classes = dict(class_map)
            if cname is not None:
                trial_classes[slot] = cname
            # Lookahead: the remaining children ride on the same slot.
            trial = assigned + [slot] * (n - len(assigned))
            score = _score(inst, trial, trial_classes)
            if best is None or score < best[0]:
                best = (score, slot, cname)
        assert best is not None
        _score_val, slot, cname = best
        assigned.append(slot)
        if cname is not None:
            class_map[slot] = cname

    cand_of = choose_candidates(inst, assigned, class_map)
    if cand_of is None or evaluate(inst, assigned, class_map, cand_of) is None:
        return fallback_assignment(inst)
    used = {t for t in assigned if t in set(inst.extras)}
    return Assignment(
        task_of=tuple(assigned),
        class_of=tuple(sorted((t, c) for t, c in class_map.items() if t in used)),
        cand_of=cand_of,
    )
