"""Seeded bias-elitist genetic refinement of ILPPAR assignments.

The genome is the run-length encoding of a structural assignment: a
sequence of ``(length, kind)`` runs over the topologically ordered
children, where ``kind`` is ``"fork"`` (master thread before the spawn,
only legal as the first run), ``"join"`` (master tail, only legal as the
last run) or a processor-class name (one extra task slot per run, at
most ``len(inst.extras)`` of them). Because feasible ILPPAR assignments
are exactly the nondecreasing slot sequences (Eq. 10) with the occupied
extras forming a prefix, *every* legal genome decodes to a structurally
feasible assignment — the GA never wastes evaluations on broken
encodings, and candidate/budget repair is delegated to
:func:`repro.heuristics.assignment.choose_candidates`.

Selection is bias-elitist: the top ``elite`` genomes survive verbatim
and the first parent of every offspring is drawn from them, the second
from the whole population — a strong exploitation bias that suits the
short budgets the portfolio grants (the exact solver is racing us).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.core.ilppar import IlpParInstance
from repro.heuristics.assignment import (
    Assignment,
    choose_candidates,
    evaluate,
)

Run = Tuple[int, str]
Genome = Tuple[Run, ...]

_FORK = "fork"
_JOIN = "join"


def encode(inst: IlpParInstance, assignment: Assignment) -> Genome:
    """Run-length encode an assignment's slot structure."""
    class_map = assignment.class_map()
    runs: List[Run] = []
    for ni, t in enumerate(assignment.task_of):
        if t == 0:
            kind = _FORK
        elif t == inst.join:
            kind = _JOIN
        else:
            kind = class_map[t]
        if runs and (
            (t == 0 or t == inst.join)
            and runs[-1][1] == kind
            or (0 < t < inst.join and ni > 0 and assignment.task_of[ni - 1] == t)
        ):
            runs[-1] = (runs[-1][0] + 1, kind)
        else:
            runs.append((1, kind))
    return tuple(runs)


def decode(
    inst: IlpParInstance, genome: Genome
) -> Tuple[List[int], Dict[int, str]]:
    """Expand a genome into ``(task_of, class_map)``."""
    task_of: List[int] = []
    class_map: Dict[int, str] = {}
    slot = 0
    for length, kind in genome:
        if kind == _FORK:
            t = 0
        elif kind == _JOIN:
            t = inst.join
        else:
            slot += 1
            t = slot
            class_map[t] = kind
        task_of.extend([t] * length)
    return task_of, class_map


def _legal(inst: IlpParInstance, genome: Genome) -> bool:
    if sum(length for length, _ in genome) != len(inst.children):
        return False
    if any(length <= 0 for length, _ in genome):
        return False
    kinds = [kind for _, kind in genome]
    if _FORK in kinds[1:] or _JOIN in kinds[:-1]:
        return False
    class_runs = sum(1 for k in kinds if k not in (_FORK, _JOIN))
    if class_runs > len(inst.extras):
        return False
    return all(
        k in (_FORK, _JOIN) or k in inst.classes for k in kinds
    )


def mutate(
    inst: IlpParInstance, genome: Genome, rng: random.Random
) -> Genome:
    """One random structural edit; returns a legal genome (or the input)."""
    runs = [list(r) for r in genome]
    ops = ["shift", "split", "merge", "reclass"]
    rng.shuffle(ops)
    for op in ops:
        if op == "shift" and len(runs) >= 2:
            i = rng.randrange(len(runs) - 1)
            if rng.random() < 0.5:
                src, dst = i, i + 1
            else:
                src, dst = i + 1, i
            out = [list(r) for r in runs]
            out[src][0] -= 1
            out[dst][0] += 1
            if out[src][0] == 0:
                del out[src]
            cand = tuple((ln, k) for ln, k in out)
            if _legal(inst, cand):
                return cand
        elif op == "split":
            fat = [i for i, (ln, _k) in enumerate(runs) if ln >= 2]
            if fat:
                i = rng.choice(fat)
                cut = rng.randrange(1, runs[i][0])
                cls = rng.choice(inst.classes)
                left: List[Run] = [(cut, runs[i][1])]
                right: List[Run] = [(runs[i][0] - cut, runs[i][1])]
                if runs[i][1] == _FORK:
                    right = [(runs[i][0] - cut, cls)]
                elif runs[i][1] == _JOIN:
                    left = [(cut, cls)]
                else:
                    right = [(runs[i][0] - cut, cls)]
                out2 = (
                    [(ln, k) for ln, k in runs[:i]]
                    + left
                    + right
                    + [(ln, k) for ln, k in runs[i + 1 :]]
                )
                cand = tuple(out2)
                if _legal(inst, cand):
                    return cand
        elif op == "merge" and len(runs) >= 2:
            i = rng.randrange(len(runs) - 1)
            a, b = runs[i], runs[i + 1]
            # Keep whichever kind stays legal at the merged position.
            for kind in (a[1], b[1]):
                out3 = (
                    [(ln, k) for ln, k in runs[:i]]
                    + [(a[0] + b[0], kind)]
                    + [(ln, k) for ln, k in runs[i + 2 :]]
                )
                cand = tuple(out3)
                if _legal(inst, cand):
                    return cand
        elif op == "reclass":
            cls_runs = [
                i for i, (_ln, k) in enumerate(runs) if k not in (_FORK, _JOIN)
            ]
            if cls_runs and len(inst.classes) > 1:
                i = rng.choice(cls_runs)
                choices = [c for c in inst.classes if c != runs[i][1]]
                cand = tuple(
                    (ln, rng.choice(choices) if j == i else k)
                    for j, (ln, k) in enumerate(runs)
                )
                if _legal(inst, cand):
                    return cand
    return genome


def crossover(
    inst: IlpParInstance, a: Genome, b: Genome, rng: random.Random
) -> Genome:
    """Single-point crossover at a child index, with legality fixes."""
    n = len(inst.children)
    if n < 2:
        return a
    cut = rng.randrange(1, n)
    out: List[Run] = []
    pos = 0
    for length, kind in a:
        take = min(length, cut - pos)
        if take > 0:
            out.append((take, kind))
        pos += length
        if pos >= cut:
            break
    pos = 0
    for length, kind in b:
        end = pos + length
        take = min(length, end - max(pos, cut))
        if take > 0:
            out.append((take, kind))
        pos = end

    # Legality fixes: interior fork runs become class runs, interior
    # join runs too; excess class runs merge into their left neighbor.
    fixed: List[Run] = []
    for i, (length, kind) in enumerate(out):
        if kind == _FORK and i > 0:
            kind = rng.choice(inst.classes)
        if kind == _JOIN and i < len(out) - 1:
            kind = rng.choice(inst.classes)
        if fixed and fixed[-1][1] == kind and kind in (_FORK, _JOIN):
            fixed[-1] = (fixed[-1][0] + length, kind)
        else:
            fixed.append((length, kind))
    while (
        sum(1 for _l, k in fixed if k not in (_FORK, _JOIN)) > len(inst.extras)
        and len(fixed) >= 2
    ):
        idx = next(
            i for i, (_l, k) in enumerate(fixed) if k not in (_FORK, _JOIN)
        )
        if idx > 0:
            fixed[idx - 1] = (fixed[idx - 1][0] + fixed[idx][0], fixed[idx - 1][1])
            del fixed[idx]
        else:
            fixed[idx + 1] = (fixed[idx][0] + fixed[idx + 1][0], fixed[idx + 1][1])
            del fixed[idx]
    cand = tuple(fixed)
    return cand if _legal(inst, cand) else a


def neighbors(inst: IlpParInstance, genome: Genome) -> List[Genome]:
    """Systematic structural neighborhood of a genome.

    Enumerates every single edit the random :func:`mutate` operators can
    make — boundary shifts, run splits (including carving off a fork
    head or join tail), merges and reclassing — plus fork/join
    conversions of the first/last run. Used by :func:`polish` to descend
    deterministically: random mutation alone routinely strands wide
    slot-packing instances one coordinated edit away from the optimum
    (e.g. an idle fork segment next to an overloaded extra).
    """
    out: List[Genome] = []
    runs: List[Run] = list(genome)
    m = len(runs)
    for i in range(m - 1):
        for src, dst in ((i, i + 1), (i + 1, i)):
            edit = [list(r) for r in runs]
            edit[src][0] -= 1
            edit[dst][0] += 1
            if edit[src][0] == 0:
                del edit[src]
            out.append(tuple((ln, k) for ln, k in edit))
    for i, (length, kind) in enumerate(runs):
        if length < 2:
            continue
        for cut in range(1, length):
            left = [(cut, kind)]
            right = [(length - cut, kind)]
            pieces: List[Tuple[List[Run], List[Run]]] = []
            for cls in inst.classes:
                if kind == _JOIN:
                    pieces.append(([(cut, cls)], right))
                else:
                    pieces.append((left, [(length - cut, cls)]))
            if i == 0 and kind != _FORK:
                pieces.append(([(cut, _FORK)], right))
            if i == m - 1 and kind != _JOIN:
                pieces.append((left, [(length - cut, _JOIN)]))
            for lft, rgt in pieces:
                out.append(tuple(runs[:i] + lft + rgt + runs[i + 1 :]))
    for i in range(m - 1):
        a, b = runs[i], runs[i + 1]
        for kind in (a[1], b[1]):
            out.append(tuple(runs[:i] + [(a[0] + b[0], kind)] + runs[i + 2 :]))
    for i, (length, kind) in enumerate(runs):
        swaps = [c for c in inst.classes if c != kind]
        if kind not in (_FORK, _JOIN):
            if i == 0:
                swaps.append(_FORK)
            if i == m - 1:
                swaps.append(_JOIN)
        for swap in swaps:
            out.append(tuple(runs[:i] + [(length, swap)] + runs[i + 1 :]))
    seen = set()
    uniq: List[Genome] = []
    for g in out:
        if g not in seen and _legal(inst, g):
            seen.add(g)
            uniq.append(g)
    return uniq


def _fitness(inst: IlpParInstance, genome: Genome) -> Tuple[float, Optional[Assignment]]:
    task_of, class_map = decode(inst, genome)
    cand_of = choose_candidates(inst, task_of, class_map)
    if cand_of is None:
        return float("inf"), None
    value = evaluate(inst, task_of, class_map, cand_of)
    if value is None:
        return float("inf"), None
    occupied = {t for t in task_of if 0 < t < inst.join}
    assignment = Assignment(
        task_of=tuple(task_of),
        class_of=tuple(sorted((t, c) for t, c in class_map.items() if t in occupied)),
        cand_of=cand_of,
    )
    return value, assignment


def polish(
    inst: IlpParInstance,
    genome: Genome,
    score,
    max_evals: Optional[int] = None,
) -> Genome:
    """Plateau-tolerant steepest descent from ``genome``.

    Expands the neighborhood breadth-first over *equal-cost* states too
    (visited-guarded), because the strictly improving edit frequently
    requires a cost-neutral enabler first — e.g. when every extra slot
    is occupied, a run must be folded into the fork segment (neutral if
    that slot was not the bottleneck) before a split of the overloaded
    run becomes legal. Whenever a strict improvement appears, the
    descent restarts from it; the walk is deterministic (frontiers and
    winners ordered by genome) and bounded by ``max_evals`` fitness
    evaluations, and the result is never worse than the input.
    """
    cap = max_evals if max_evals is not None else 150 * (len(inst.children) + 2)
    best = genome
    best_obj = score(best)[0]
    frontier = [best]
    visited = {best}
    evals = 0
    while frontier and evals < cap:
        frontier.sort()
        plateau: List[Genome] = []
        improved: Optional[Tuple[float, Genome]] = None
        for g in frontier:
            for nb in neighbors(inst, g):
                if nb in visited:
                    continue
                visited.add(nb)
                obj = score(nb)[0]
                evals += 1
                if obj < best_obj - 1e-9:
                    if improved is None or (obj, nb) < improved:
                        improved = (obj, nb)
                elif obj <= best_obj + 1e-9:
                    plateau.append(nb)
                if evals >= cap:
                    break
            if evals >= cap:
                break
        if improved is not None:
            best_obj, best = improved
            frontier = [best]
        else:
            frontier = plateau
    return best


def refine(
    inst: IlpParInstance,
    seeds: List[Assignment],
    rng: random.Random,
    budget: int,
) -> Tuple[Assignment, float]:
    """Run the GA for ``budget`` generations; returns (best, objective).

    ``seeds`` must contain at least one feasible assignment (the list
    scheduler / fallback guarantee this); the best seed is always part of
    the elite set, so the result is never worse than the best seed.
    """
    n = len(inst.children)
    pop_size = min(24, 6 + 2 * n)
    generations = max(0, min(budget, 8 + 4 * n))
    elite = min(4, pop_size)

    scored: Dict[Genome, Tuple[float, Optional[Assignment]]] = {}

    def score(g: Genome) -> Tuple[float, Optional[Assignment]]:
        if g not in scored:
            scored[g] = _fitness(inst, g)
        return scored[g]

    population: List[Genome] = []
    for seed in seeds:
        g = encode(inst, seed)
        if g not in population:
            population.append(g)
    base = list(population)
    while len(population) < pop_size:
        g = mutate(inst, base[len(population) % len(base)], rng)
        for _ in range(rng.randrange(3)):
            g = mutate(inst, g, rng)
        population.append(g)

    for _gen in range(generations):
        population.sort(key=lambda g: (score(g)[0], g))
        elites = population[:elite]
        nxt = list(elites)
        while len(nxt) < pop_size:
            pa = rng.choice(elites)
            pb = rng.choice(population)
            child = crossover(inst, pa, pb, rng)
            if rng.random() < 0.8:
                child = mutate(inst, child, rng)
            nxt.append(child)
        population = nxt

    population.sort(key=lambda g: (score(g)[0], g))
    # Descend from the GA's winner: crossover+mutation leave wide
    # slot-packing instances stranded at near-optima the systematic
    # neighborhood escapes in a couple of steps.
    best_obj, best_assignment = score(polish(inst, population[0], score))
    if best_assignment is None:
        # All genomes degenerate (cannot happen with feasible seeds).
        for g in population[1:]:
            best_obj, best_assignment = score(g)
            if best_assignment is not None:
                break
    assert best_assignment is not None, "GA lost every feasible seed"
    return best_assignment, best_obj
