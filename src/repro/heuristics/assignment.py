"""Structural assignments over ILPPAR instances.

The heuristic schedulers of this package never manipulate model rows;
they decide the *combinatorial structure* of an ILPPAR solution — which
task slot hosts each child (Eq. 1, respecting the monotone-task-id rule
of Eq. 10, so feasible assignments are nondecreasing sequences over the
topological child order), which processor class each occupied extra slot
maps to (Eq. 12), and which parallel-set candidate each child selects
(Eq. 3) — and this module turns such a structure into numbers:

* :func:`check_feasible` / :func:`evaluate` replay the instance's cost
  semantics (Eq. 8-9, 14-16) from the :class:`~repro.core.ilppar.IlpParContext`
  and return the exact model objective of the assignment, or the reason
  it is infeasible (budget overrun, broken slot prefix, class mismatch).
* :func:`choose_candidates` picks per-child candidates greedily (fastest
  of the hosting class) and repairs processor-budget overruns by
  downgrading the cheapest-to-downgrade choices toward the zero-processor
  sequential candidates that always exist.
* :func:`complete_solution` expands the structure into a *full* model
  assignment — every variable of the MILP valued, dependent integers
  (occupancy, precedence, AND gadgets) derived, continuous cost variables
  set to their LP-minimal completion — so the result passes the
  certificate replay of :mod:`repro.analysis.certificate` verbatim and
  can seed :func:`repro.ilp.bnb.solve_form_bnb` as an incumbent vector.

The minimal completion is computable in closed form: with all integer
variables fixed, every continuous variable of the ILPPAR model is either
equality-defined (child costs, task costs) or bounded below by gated
rows whose tightest binding value is a max over already-known terms
(communication, processor usage, path costs via the longest-path
recursion ``accum[t] = cost[t] + max(0, max_u accum[u] + commcost[u])``
over the forced precedence DAG). Setting each variable to that minimum
satisfies every row and minimizes ``accum[join]`` — the completion's
objective *is* the true objective of the structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.ilppar import IlpParInstance
from repro.ilp.model import Solution, SolveStatus, Variable


@dataclass(frozen=True)
class Assignment:
    """One structural ILPPAR solution proposed by a heuristic.

    ``task_of`` maps each child (topological order) to a task slot
    (0 = fork, 1..E = extras, E+1 = join) and must be nondecreasing with
    the occupied extras forming the prefix 1..k; ``class_of`` maps each
    *occupied* extra slot to a processor class; ``cand_of`` indexes each
    child's chosen entry of ``inst.cand_table``.
    """

    task_of: Tuple[int, ...]
    class_of: Tuple[Tuple[int, str], ...]
    cand_of: Tuple[int, ...]

    def class_map(self) -> Dict[int, str]:
        return dict(self.class_of)


def host_class(inst: IlpParInstance, task: int, class_map: Dict[int, str]) -> str:
    """Processor class executing children hosted on ``task``."""
    if task == 0 or task == inst.join:
        return inst.seq_class
    return class_map[task]


def check_feasible(
    inst: IlpParInstance,
    task_of: Sequence[int],
    class_map: Dict[int, str],
    cand_of: Sequence[int],
) -> Optional[str]:
    """Return the reason the structure is infeasible, or ``None`` if OK."""
    ctx = inst.ctx
    assert ctx is not None, "instance built without scheduling context"
    n = len(inst.children)
    if len(task_of) != n or len(cand_of) != n:
        return "assignment length mismatch"
    task_set = set(inst.tasks)
    prev = 0
    for t in task_of:
        if t not in task_set:
            return f"task {t} out of range"
        if t < prev:
            return "task ids not monotone over topological order"
        prev = t
    # Dependence cycles at child granularity (e.g. Jacobi double-buffer
    # swaps) appear as an order pair running against the topological
    # index order. Splitting such a pair across tasks forces pred edges
    # both ways, which the model's accum rows make infeasible (a positive
    # cycle of completion-time lower bounds) — reject the structure here
    # so the closed-form accum recursion below only ever sees a DAG.
    for src_ni, dst_ni in ctx.order_pairs:
        if task_of[src_ni] > task_of[dst_ni]:
            return "dependence cycle split across tasks"
    occupied = sorted({t for t in task_of if t in set(inst.extras)})
    if occupied != list(range(1, len(occupied) + 1)):
        return "occupied extra slots do not form a prefix"
    for t in occupied:
        if class_map.get(t) not in inst.classes:
            return f"slot {t} has no processor class"
    for ni in range(n):
        si = cand_of[ni]
        if not (0 <= si < len(inst.cand_table[ni])):
            return f"child {ni} candidate index out of range"
        cname = inst.cand_table[ni][si][0]
        host = host_class(inst, task_of[ni], class_map)
        if cname != host:
            return f"child {ni} candidate class {cname} != host class {host}"

    # Eq. 14-16: per-class and global processor budgets.
    inner: Dict[Tuple[int, str], int] = {}
    for ni in range(n):
        cand = inst.cand_table[ni][cand_of[ni]][1]
        t = task_of[ni]
        for c, k in cand.used_procs.items():
            key = (t, c)
            inner[key] = max(inner.get(key, 0), k)
    total_inner = 0
    for c in inst.classes:
        slots = sum(1 for t in occupied if class_map[t] == c)
        procs = sum(k for (t, cc), k in inner.items() if cc == c)
        total_inner += procs
        if slots + procs > ctx.available[c]:
            return f"class {c} budget exceeded ({slots}+{procs} > {ctx.available[c]})"
    if len(occupied) + total_inner > ctx.budget - 1:
        return "global processor budget exceeded"
    return None


def _cost_arrays(
    inst: IlpParInstance,
    task_of: Sequence[int],
    cand_of: Sequence[int],
) -> Tuple[Dict[int, float], Dict[int, float], Dict[int, float]]:
    """Minimal (cost, commcost, accum) per task for a feasible structure."""
    ctx = inst.ctx
    assert ctx is not None
    n = len(inst.children)
    join = inst.join
    extras = set(inst.extras)

    child_cost = [
        inst.cand_table[ni][cand_of[ni]][1].exec_time_us for ni in range(n)
    ]
    cost: Dict[int, float] = {}
    for t in inst.tasks:
        total = sum(child_cost[ni] for ni in range(n) if task_of[ni] == t)
        if t == join:
            total += ctx.control_us
        if t in extras:
            if any(task_of[ni] == t for ni in range(n)):
                total += ctx.ec * ctx.tco
            total += sum(
                ctx.in_edge_time[ni]
                for ni in range(n)
                if task_of[ni] == t and ctx.in_edge_time[ni] > 0
            )
        cost[t] = total

    commcost: Dict[int, float] = {}
    for t in inst.tasks:
        total = 0.0
        for src_ni, dst_ni, xt in ctx.inner_edges:
            if xt <= 0 or task_of[src_ni] != t or task_of[dst_ni] == t:
                continue
            if t == 0 and task_of[dst_ni] == join:
                continue  # fork -> join stays on the master thread: free
            total += xt
        if t in extras:
            total += sum(
                ctx.out_edge_time[ni]
                for ni in range(n)
                if task_of[ni] == t and ctx.out_edge_time[ni] > 0
            )
        commcost[t] = total

    forced = forced_precedence(inst, task_of)
    accum: Dict[int, float] = {}
    for t in inst.tasks:  # ascending: forced edges only go low -> high
        incoming = [
            accum[u] + commcost[u] for (u, tt) in forced if tt == t
        ]
        accum[t] = cost[t] + max(incoming, default=0.0)
    return cost, commcost, accum


def forced_precedence(
    inst: IlpParInstance, task_of: Sequence[int]
) -> set:
    """The pred pairs the model's lower-bound rows force to 1 (Eq. 5-7)."""
    ctx = inst.ctx
    assert ctx is not None
    join = inst.join
    forced = set()
    for src_ni, dst_ni in ctx.order_pairs:
        t, u = task_of[src_ni], task_of[dst_ni]
        if t != u:
            forced.add((t, u))
    for ni in range(len(inst.children)):
        t = task_of[ni]
        if t != join:
            forced.add((t, join))
    return forced


def evaluate(
    inst: IlpParInstance,
    task_of: Sequence[int],
    class_map: Dict[int, str],
    cand_of: Sequence[int],
) -> Optional[float]:
    """Exact model objective of a structure, or ``None`` when infeasible."""
    if check_feasible(inst, task_of, class_map, cand_of) is not None:
        return None
    _cost, _comm, accum = _cost_arrays(inst, task_of, cand_of)
    return accum[inst.join]


def choose_candidates(
    inst: IlpParInstance,
    task_of: Sequence[int],
    class_map: Dict[int, str],
) -> Optional[Tuple[int, ...]]:
    """Greedy per-child candidate choice with processor-budget repair.

    Starts from the fastest candidate of each child's hosting class and,
    while a budget is violated, downgrades the choice whose alternative
    frees processors of the violated class at the smallest execution-time
    penalty. Falls back to the zero-processor (sequential) candidates —
    which the solution sets guarantee per class — when no single swap
    helps; returns ``None`` only if a child has no candidate of its
    hosting class at all (cannot happen with sequential seeding).
    """
    ctx = inst.ctx
    assert ctx is not None
    n = len(inst.children)
    options: List[List[int]] = []
    picks: List[int] = []
    for ni in range(n):
        host = host_class(inst, task_of[ni], class_map)
        opts = [
            si
            for si, (cname, _cand) in enumerate(inst.cand_table[ni])
            if cname == host
        ]
        if not opts:
            return None
        options.append(opts)
        picks.append(
            min(opts, key=lambda si: (inst.cand_table[ni][si][1].exec_time_us, si))
        )

    for _ in range(4 * n + 4):
        reason = check_feasible(inst, task_of, class_map, picks)
        if reason is None:
            return tuple(picks)
        best_swap: Optional[Tuple[float, int, int]] = None
        for ni in range(n):
            cur = inst.cand_table[ni][picks[ni]][1]
            for si in options[ni]:
                if si == picks[ni]:
                    continue
                alt = inst.cand_table[ni][si][1]
                frees = sum(cur.used_procs.values()) - sum(alt.used_procs.values())
                if frees <= 0:
                    continue
                penalty = alt.exec_time_us - cur.exec_time_us
                key = (penalty / frees, ni, si)
                if best_swap is None or key < best_swap:
                    best_swap = key
        if best_swap is None:
            break
        _score, ni, si = best_swap
        picks[ni] = si

    # Last resort: every child on its hosting class's cheapest
    # zero-processor candidate (always present and always budget-clean).
    for ni in range(n):
        zero = [
            si
            for si in options[ni]
            if not inst.cand_table[ni][si][1].used_procs
        ]
        if not zero:
            return None
        picks[ni] = min(
            zero, key=lambda si: (inst.cand_table[ni][si][1].exec_time_us, si)
        )
    if check_feasible(inst, task_of, class_map, picks) is not None:
        return None
    return tuple(picks)


def critical_path_bound(inst: IlpParInstance) -> float:
    """Combinatorial lower bound on the time objective of an instance.

    Valid for *any* assignment: every child executes for at least its
    fastest candidate's time, chained children (``order_pairs``) finish
    in sequence whether co-hosted or split across tasks (Eq. 5-9), and
    the join segment always pays the master control cost. The longest
    path through the child-dependency DAG under minimal execution times
    therefore bounds ``accum[join]`` from below — usually far tighter
    than the root LP relaxation, whose big-M gating collapses.
    """
    ctx = inst.ctx
    assert ctx is not None
    n = len(inst.children)
    min_cost = [
        min(cand.exec_time_us for _cname, cand in inst.cand_table[ni])
        for ni in range(n)
    ]
    finish = list(min_cost)
    for ni in range(n):  # order_pairs go low -> high in topological order
        for src, dst in ctx.order_pairs:
            if dst == ni:
                finish[ni] = max(finish[ni], finish[src] + min_cost[ni])
    return ctx.control_us + max(finish, default=0.0)


def complete_solution(inst: IlpParInstance, assignment: Assignment) -> Solution:
    """Expand a feasible structure into a full, certifiable model solution.

    Every model variable receives a value; the returned solution carries
    :data:`SolveStatus.FEASIBLE` (the structure is feasible but not
    proven optimal) and the exact objective of the completed assignment.
    """
    ctx = inst.ctx
    assert ctx is not None, "instance built without scheduling context"
    class_map = assignment.class_map()
    task_of, cand_of = assignment.task_of, assignment.cand_of
    reason = check_feasible(inst, task_of, class_map, cand_of)
    if reason is not None:
        raise ValueError(f"infeasible assignment: {reason}")

    model = inst.model
    n = len(inst.children)
    join = inst.join
    values: Dict[Variable, float] = {}

    for ni in range(n):
        for t in inst.tasks:
            values[inst.x[ni][t]] = 1.0 if task_of[ni] == t else 0.0
        for si in range(len(inst.cand_table[ni])):
            values[inst.p[ni][si]] = 1.0 if cand_of[ni] == si else 0.0

    occupied = {t for t in task_of if t in set(inst.extras)}
    for t in inst.extras:
        # Idle slots are pinned to the first class by the symmetry rows.
        cls = class_map[t] if t in occupied else inst.classes[0]
        for c in inst.classes:
            values[inst.map_tc[(t, c)]] = 1.0 if c == cls else 0.0
        values[ctx.used[t]] = 1.0 if t in occupied else 0.0

    for ni in range(n):
        values[ctx.childcost[ni]] = inst.cand_table[ni][cand_of[ni]][1].exec_time_us
    for (ni, t), var in ctx.contrib.items():
        values[var] = values[ctx.childcost[ni]] if task_of[ni] == t else 0.0

    cost, commcost, accum = _cost_arrays(inst, task_of, cand_of)
    for t in inst.tasks:
        values[ctx.cost[t]] = cost[t]
        values[ctx.commcost[t]] = commcost[t]
        values[ctx.accum[t]] = accum[t]

    forced = forced_precedence(inst, task_of)
    for (t, u), var in ctx.pred.items():
        values[var] = 1.0 if (t, u) in forced else 0.0

    # AND gadgets resolve sequentially: operands are primary binaries
    # (or earlier gadgets), all valued by the time each triple is reached.
    for z, xv, yv in model.and_gadgets:
        values[z] = 1.0 if (values[xv] > 0.5 and values[yv] > 0.5) else 0.0

    for (ni, c), var in ctx.childprocs.items():
        if var is not None:
            values[var] = float(
                inst.cand_table[ni][cand_of[ni]][1].used_procs_of(c)
            )
    for (t, c), var in ctx.procsused.items():
        if var is None:
            continue
        hosted = [
            values[ctx.childprocs[(ni, c)]]
            for ni in range(n)
            if task_of[ni] == t and ctx.childprocs[(ni, c)] is not None
        ]
        values[var] = max(hosted, default=0.0)

    if len(values) != model.num_variables:
        missing = [v.name for v in model.variables if v not in values]
        raise RuntimeError(
            f"assignment completion left {len(missing)} variables unvalued "
            f"on {model.name!r}: {missing[:8]}"
        )
    objective = model.objective.value(values)
    return Solution(SolveStatus.FEASIBLE, objective, values)


def solution_vector(inst: IlpParInstance, solution: Solution) -> List[float]:
    """The solution as a raw column vector (for bnb incumbent seeding)."""
    return [solution.values[var] for var in inst.model.variables]
