"""Anytime heuristic scheduling portfolio (list scheduler + GA).

Feasible-by-construction ILPPAR solutions produced without the exact
solver: a HEFT/AMTHA-style list scheduler seeds a bias-elitist GA, and
the winner is completed into a full model vector that passes the same
certificate replay as exact solutions and warm-starts the branch-and-
bound backend as an incumbent. See ``docs/HEURISTICS.md``.
"""

from repro.heuristics.assignment import (
    Assignment,
    check_feasible,
    choose_candidates,
    complete_solution,
    critical_path_bound,
    evaluate,
    solution_vector,
)
from repro.heuristics.ga import refine
from repro.heuristics.list_scheduler import fallback_assignment, list_schedule
from repro.heuristics.portfolio import (
    HeuristicResult,
    heuristic_rng,
    relative_gap,
    solve_heuristic,
)

__all__ = [
    "Assignment",
    "HeuristicResult",
    "check_feasible",
    "choose_candidates",
    "complete_solution",
    "critical_path_bound",
    "evaluate",
    "fallback_assignment",
    "heuristic_rng",
    "list_schedule",
    "refine",
    "relative_gap",
    "solution_vector",
    "solve_heuristic",
]
