"""Static trip-count extraction for canonical counted loops.

The AHTG annotates every node with iteration counts (Section III-A; in
the paper these come from target-platform simulation / profiling). For
the benchmark subset, bounds are integer literals or names bound to
compile-time constants, so a small evaluator over a constant environment
suffices; the abstract interpreter in :mod:`repro.timing.interp` provides
dynamic counts when static evaluation fails.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

from repro.cfront import ir

Env = Mapping[str, Union[int, float]]


def eval_const_expr(expr: ir.Expr, env: Optional[Env] = None) -> Optional[Union[int, float]]:
    """Evaluate an expression over a constant environment, or ``None``."""
    env = env or {}
    if isinstance(expr, ir.Const):
        return expr.value
    if isinstance(expr, ir.VarRef):
        return env.get(expr.name)
    if isinstance(expr, ir.UnOp):
        inner = eval_const_expr(expr.operand, env)
        if inner is None:
            return None
        if expr.op == "-":
            return -inner
        if expr.op == "!":
            return int(not inner)
        if expr.op == "~" and isinstance(inner, int):
            return ~inner
        return None
    if isinstance(expr, ir.Cast):
        inner = eval_const_expr(expr.operand, env)
        if inner is None:
            return None
        return int(inner) if expr.ctype in ir.SIZEOF and expr.ctype not in (
            "float",
            "double",
            "long double",
        ) else float(inner)
    if isinstance(expr, ir.BinOp):
        left = eval_const_expr(expr.left, env)
        right = eval_const_expr(expr.right, env)
        if left is None or right is None:
            return None
        try:
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                if right == 0:
                    return None
                if isinstance(left, int) and isinstance(right, int):
                    return left // right
                return left / right
            if expr.op == "%":
                return left % right if right else None
            if expr.op == "<<":
                return left << right
            if expr.op == ">>":
                return left >> right
        except TypeError:
            return None
    return None


def trip_count(loop: ir.ForLoop, env: Optional[Env] = None) -> Optional[int]:
    """Number of iterations of a canonical loop, or ``None`` if unknown.

    ``env`` supplies values for symbolic bounds (e.g. a parameter ``n``
    fixed by the benchmark driver).
    """
    lower = eval_const_expr(loop.lower, env)
    upper = eval_const_expr(loop.upper, env)
    if lower is None or upper is None:
        return None
    if not isinstance(lower, (int, float)) or not isinstance(upper, (int, float)):
        return None
    span = upper - lower
    if span <= 0:
        return 0
    return int((span + loop.step - 1) // loop.step)
