"""Data-dependence analysis.

Two services used by the AHTG builder:

* :func:`analyze_block_dependences` — flow/anti/output dependence edges
  between sibling statements of a block, at variable-name granularity.
  These become the AHTG's data-flow edges (Section III-A).
* :func:`classify_loop` — loop-carried dependence test for canonical
  counted loops, deciding whether a loop may be *chunked* into
  iteration-range sub-loops (the paper's "loop iterations" granularity
  level). The test combines a scalar privatization/reduction analysis
  with a conservative per-dimension affine-subscript disjointness test.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cfront import ir
from repro.cfront.defuse import Access, CallSummary, DefUse, compute_defuse


class DepKind(enum.Enum):
    FLOW = "flow"      # def -> use (true dependence, carries data)
    ANTI = "anti"      # use -> def
    OUTPUT = "output"  # def -> def


@dataclass(frozen=True)
class DependenceEdge:
    """A dependence between sibling statements ``src_index -> dst_index``."""

    src_index: int
    dst_index: int
    kind: DepKind
    variables: frozenset

    def __str__(self) -> str:
        return f"{self.src_index}->{self.dst_index} [{self.kind.value}: {sorted(self.variables)}]"


def analyze_block_dependences(
    stmts: Sequence[ir.Stmt],
    summaries: Optional[Dict[str, CallSummary]] = None,
) -> List[DependenceEdge]:
    """Dependence edges between the statements of one block.

    Edges always point forward in program order (``src < dst``) — the
    block's sequential order is the source of truth, matching the AHTG
    construction where nodes are topologically sorted by source order.
    Only *direct* dependences are reported: an edge ``i -> j`` on
    variable ``v`` is omitted when an intermediate statement ``k``
    (``i < k < j``) redefines ``v`` (killing the dependence).
    """
    defuses = [compute_defuse(s, summaries) for s in stmts]
    edges: List[DependenceEdge] = []
    n = len(stmts)
    for j in range(n):
        for i in range(j):
            flow = _surviving(defuses, i, j, lambda a, b: a.all_defs & b.all_uses)
            anti = _surviving(defuses, i, j, lambda a, b: a.all_uses & b.all_defs)
            output = _surviving(defuses, i, j, lambda a, b: a.all_defs & b.all_defs)
            if flow:
                edges.append(DependenceEdge(i, j, DepKind.FLOW, frozenset(flow)))
            if anti:
                edges.append(DependenceEdge(i, j, DepKind.ANTI, frozenset(anti)))
            if output:
                edges.append(DependenceEdge(i, j, DepKind.OUTPUT, frozenset(output)))
    return edges


def _surviving(defuses: List[DefUse], i: int, j: int, relation) -> Set[str]:
    """Variables related between i and j with no killing redefinition between."""
    related = relation(defuses[i], defuses[j])
    if not related:
        return set()
    survivors = set(related)
    for k in range(i + 1, j):
        survivors -= defuses[k].all_defs
        if not survivors:
            break
    return survivors


# ---------------------------------------------------------------------------
# Loop-carried dependence analysis
# ---------------------------------------------------------------------------


class LoopParallelism(enum.Enum):
    """Classification of a counted loop w.r.t. iteration-level parallelism."""

    PARALLEL = "parallel"      # iterations independent; freely chunkable
    REDUCTION = "reduction"    # independent up to associative reductions
    SERIAL = "serial"          # loop-carried dependence; keep sequential


@dataclass
class LoopClassification:
    """Result of :func:`classify_loop`."""

    parallelism: LoopParallelism
    reduction_vars: Tuple[str, ...] = ()
    reason: str = ""

    @property
    def chunkable(self) -> bool:
        return self.parallelism in (LoopParallelism.PARALLEL, LoopParallelism.REDUCTION)


def classify_loop(
    loop: ir.ForLoop,
    summaries: Optional[Dict[str, CallSummary]] = None,
) -> LoopClassification:
    """Decide whether ``loop``'s iterations may execute concurrently.

    Conservative: any construct the analysis cannot prove independent
    yields ``SERIAL``. The rules:

    * calls to unknown (non-builtin, non-summarized) functions ⇒ serial;
    * ``return`` inside the body ⇒ serial (control leaves the loop);
    * every written scalar must be loop-private (defined before use on
      every use path — approximated by "first textual access is a
      non-self-referencing write") or a recognized ``s = s ⊕ expr``
      reduction with ⊕ ∈ {+, -, *};
    * every array with a write must pass the affine disjointness test
      against every other access to the same array: some dimension has
      identical affine form ``c*i + k`` (``c ≠ 0``) in both accesses,
      proving the pair only ever touches the same element within one
      iteration (dependence distance 0).
    """
    summaries = summaries or {}
    body_du = compute_defuse(loop.body, summaries)

    if body_du.has_return:
        return LoopClassification(LoopParallelism.SERIAL, reason="return inside loop body")
    if body_du.has_unknown_call:
        return LoopClassification(LoopParallelism.SERIAL, reason="call to unknown function")
    if loop.var in _written_scalars_excluding_loop_header(loop, summaries):
        return LoopClassification(LoopParallelism.SERIAL, reason="loop variable mutated in body")

    # --- scalar analysis ----------------------------------------------------
    reductions: List[str] = []
    written = body_du.scalar_defs - {loop.var}
    # Names declared inside the body are trivially private.
    declared_inside = {
        s.name for s in loop.body.walk() if isinstance(s, ir.Decl)
    }
    inner_loop_vars = {
        s.var for s in loop.body.walk() if isinstance(s, ir.ForLoop)
    }
    for name in sorted(written):
        if name in inner_loop_vars:
            continue
        if name in declared_inside and _is_private_scalar(loop.body, name):
            continue
        if _is_private_scalar(loop.body, name):
            continue
        if _is_reduction_scalar(loop.body, name):
            reductions.append(name)
            continue
        return LoopClassification(
            LoopParallelism.SERIAL,
            reason=f"scalar {name!r} carries a loop dependence",
        )

    # --- array analysis -------------------------------------------------------
    accesses_by_array: Dict[str, List[Access]] = {}
    for access in body_du.accesses:
        accesses_by_array.setdefault(access.name, []).append(access)
    for name, accesses in accesses_by_array.items():
        writes = [a for a in accesses if a.is_write]
        if not writes:
            continue
        for write in writes:
            for other in accesses:
                if other is write and len(writes) == 1 and len(accesses) == 1:
                    # A single access pair (the write with itself) still needs
                    # the distance-0 proof across iterations.
                    pass
                if not _distance_zero(write, other, loop.var):
                    return LoopClassification(
                        LoopParallelism.SERIAL,
                        reason=(
                            f"array {name!r}: cannot prove independence of "
                            f"{write} and {other}"
                        ),
                    )

    if reductions:
        return LoopClassification(
            LoopParallelism.REDUCTION,
            reduction_vars=tuple(reductions),
            reason=f"reductions over {reductions}",
        )
    return LoopClassification(LoopParallelism.PARALLEL, reason="no carried dependences")


def _written_scalars_excluding_loop_header(loop: ir.ForLoop, summaries) -> Set[str]:
    du = compute_defuse(loop.body, summaries)
    return du.scalar_defs


def private_scalars(block: ir.Block, summaries=None) -> Set[str]:
    """Scalars private to ``block``: declared inside, used as loop counters,
    or always written before read (per-execution temporaries).

    Private scalars neither consume values from outside the block nor
    (by the benchmark-subset convention) publish their final value, so the
    AHTG builder strips them from a hierarchical node's boundary def/use
    sets to avoid spurious inter-node dependences.
    """
    du = compute_defuse(block, summaries)
    private: Set[str] = set()
    for stmt in block.walk():
        if isinstance(stmt, ir.Decl) and not stmt.is_array:
            private.add(stmt.name)
        if isinstance(stmt, ir.ForLoop):
            private.add(stmt.var)
    for name in du.scalar_defs:
        if name not in private and _is_private_scalar(block, name):
            private.add(name)
    return private


def _is_private_scalar(body: ir.Block, name: str) -> bool:
    """True if the first straight-line access to ``name`` is a plain write.

    The approximation walks statements in textual order; a write whose RHS
    does not read ``name`` privatizes it for the rest of the iteration.
    Conditional contexts (if/while) make the first access ambiguous, so a
    first access inside a conditional only counts when it is a write on
    *both* branches (approximated by: any read anywhere before an
    unconditional write disqualifies).
    """
    state = _first_access_state(body, name, conditional=False)
    return state == "write"


def _first_access_state(stmt: ir.Stmt, name: str, conditional: bool) -> str:
    """Return 'write', 'read', or 'none' for the first access to name."""
    if isinstance(stmt, ir.Block):
        for child in stmt.stmts:
            state = _first_access_state(child, name, conditional)
            if state != "none":
                return state
        return "none"
    if isinstance(stmt, ir.Decl):
        if stmt.name == name:
            if stmt.init is not None and not _expr_reads(stmt.init, name):
                return "write" if not conditional else "read"
        if stmt.init is not None and _expr_reads(stmt.init, name):
            return "read"
        return "none"
    if isinstance(stmt, ir.Assign):
        if _expr_reads(stmt.rhs, name):
            return "read"
        if isinstance(stmt.lhs, ir.ArrayRef) and any(
            _expr_reads(i, name) for i in stmt.lhs.indices
        ):
            return "read"
        if isinstance(stmt.lhs, ir.VarRef) and stmt.lhs.name == name:
            # A write inside a conditional context does not dominate the
            # loop body's uses.
            return "write" if not conditional else "read"
        return "none"
    if isinstance(stmt, (ir.CallStmt, ir.ExprStmt, ir.Return)):
        for expr in stmt.expressions():
            if expr is not None and _expr_reads(expr, name):
                return "read"
        return "none"
    if isinstance(stmt, ir.ForLoop):
        if _expr_reads(stmt.lower, name) or _expr_reads(stmt.upper, name):
            return "read"
        if stmt.var == name:
            return "write" if not conditional else "read"
        # A counted loop with a provably positive trip count always runs
        # its body, so a leading write there still dominates.
        from repro.cfront.loops import trip_count

        trips = trip_count(stmt)
        body_conditional = conditional or trips is None or trips < 1
        return _first_access_state(stmt.body, name, conditional=body_conditional)
    if isinstance(stmt, ir.WhileLoop):
        if _expr_reads(stmt.cond, name):
            return "read"
        return _first_access_state(stmt.body, name, conditional=True)
    if isinstance(stmt, ir.If):
        if _expr_reads(stmt.cond, name):
            return "read"
        then_state = _first_access_state(stmt.then_block, name, conditional=True)
        if then_state == "read":
            return "read"
        if stmt.else_block is not None:
            else_state = _first_access_state(stmt.else_block, name, conditional=True)
            if else_state == "read":
                return "read"
        return "none"
    return "none"


def _expr_reads(expr: ir.Expr, name: str) -> bool:
    for node in expr.walk():
        if isinstance(node, ir.VarRef) and node.name == name:
            return True
        if isinstance(node, ir.ArrayRef) and node.name == name:
            return True
    return False


def _is_reduction_scalar(body: ir.Block, name: str) -> bool:
    """True if every write to ``name`` is ``name = name ⊕ expr`` (⊕ ∈ +,-,*)
    and ``name`` is read nowhere else in the body."""
    found_update = False
    for stmt in body.walk():
        if isinstance(stmt, ir.Decl) and stmt.name == name:
            return False
        if isinstance(stmt, ir.Assign):
            writes_name = isinstance(stmt.lhs, ir.VarRef) and stmt.lhs.name == name
            if writes_name:
                if not _is_reduction_rhs(stmt.rhs, name):
                    return False
                found_update = True
            else:
                if _expr_reads(stmt.rhs, name):
                    return False
                if isinstance(stmt.lhs, ir.ArrayRef) and any(
                    _expr_reads(i, name) for i in stmt.lhs.indices
                ):
                    return False
        else:
            for expr in stmt.expressions():
                if expr is not None and _expr_reads(expr, name):
                    return False
    return found_update


def _is_reduction_rhs(rhs: ir.Expr, name: str) -> bool:
    """Match ``name ⊕ expr`` / ``expr + name`` with name-free ``expr``."""
    if not isinstance(rhs, ir.BinOp) or rhs.op not in ("+", "-", "*"):
        return False
    left_is_name = isinstance(rhs.left, ir.VarRef) and rhs.left.name == name
    right_is_name = isinstance(rhs.right, ir.VarRef) and rhs.right.name == name
    if left_is_name and not _expr_reads(rhs.right, name):
        return True
    if (
        right_is_name
        and rhs.op in ("+", "*")
        and not _expr_reads(rhs.left, name)
    ):
        return True
    return False


# ---------------------------------------------------------------------------
# Affine subscript machinery
# ---------------------------------------------------------------------------


def affine_form(expr: ir.Expr, var: str) -> Optional[Tuple[int, str]]:
    """Decompose ``expr`` as ``c * var + rest`` with ``rest`` free of ``var``.

    Returns ``(c, canonical_rest)`` or ``None`` when the expression is not
    affine in ``var``. ``canonical_rest`` is a normalized string used for
    syntactic equality of the var-free remainder.
    """
    decomposed = _affine(expr, var)
    if decomposed is None:
        return None
    coef, rest_terms, const = decomposed
    rest = "+".join(sorted(rest_terms)) + (f"#{const}" if const or not rest_terms else "#0")
    return coef, rest


def _affine(expr: ir.Expr, var: str):
    """Return (coef, multiset-of-other-term-strings, const) or None."""
    if isinstance(expr, ir.Const):
        if isinstance(expr.value, int):
            return 0, [], expr.value
        return None
    if isinstance(expr, ir.VarRef):
        if expr.name == var:
            return 1, [], 0
        return 0, [expr.name], 0
    if isinstance(expr, ir.UnOp) and expr.op == "-":
        inner = _affine(expr.operand, var)
        if inner is None:
            return None
        coef, rest, const = inner
        return -coef, [f"-({t})" for t in rest], -const
    if isinstance(expr, ir.BinOp):
        if expr.op == "+":
            left = _affine(expr.left, var)
            right = _affine(expr.right, var)
            if left is None or right is None:
                return None
            return left[0] + right[0], left[1] + right[1], left[2] + right[2]
        if expr.op == "-":
            left = _affine(expr.left, var)
            right = _affine(expr.right, var)
            if left is None or right is None:
                return None
            return (
                left[0] - right[0],
                left[1] + [f"-({t})" for t in right[1]],
                left[2] - right[2],
            )
        if expr.op == "*":
            left_const = _fold_const_int(expr.left)
            right_const = _fold_const_int(expr.right)
            if left_const is not None:
                inner = _affine(expr.right, var)
                if inner is None:
                    return None
                coef, rest, const = inner
                return (
                    coef * left_const,
                    [f"{left_const}*({t})" for t in rest],
                    const * left_const,
                )
            if right_const is not None:
                inner = _affine(expr.left, var)
                if inner is None:
                    return None
                coef, rest, const = inner
                return (
                    coef * right_const,
                    [f"{right_const}*({t})" for t in rest],
                    const * right_const,
                )
            # var-free product is fine as an opaque term
            if not _expr_reads(expr, var):
                return 0, [str(expr)], 0
            return None
    if not _expr_reads(expr, var):
        return 0, [str(expr)], 0
    return None


def _fold_const_int(expr: ir.Expr) -> Optional[int]:
    if isinstance(expr, ir.Const) and isinstance(expr.value, int):
        return expr.value
    if isinstance(expr, ir.UnOp) and expr.op == "-":
        inner = _fold_const_int(expr.operand)
        return -inner if inner is not None else None
    return None


def _distance_zero(write: Access, other: Access, var: str) -> bool:
    """Prove that ``write`` and ``other`` only collide within one iteration.

    True when some dimension has identical affine forms ``c*var + k`` with
    ``c != 0`` in both accesses: equal subscripts then force equal
    iteration indices, so cross-iteration collisions are impossible.
    """
    dims = min(len(write.indices), len(other.indices))
    for d in range(dims):
        wform = affine_form(write.indices[d], var)
        oform = affine_form(other.indices[d], var)
        if wform is None or oform is None:
            continue
        wc, wrest = wform
        oc, orest = oform
        if wc != 0 and wc == oc and wrest == orest:
            return True
    return False
