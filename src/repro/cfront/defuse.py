"""Def/use analysis over the statement IR.

Produces, per statement (including hierarchical statements, aggregated
over their subtree):

* scalar definitions and uses by variable name,
* array definitions and uses by array name,
* the individual subscripted accesses (for the dependence tests in
  :mod:`repro.cfront.deps`).

Calls are handled through *function summaries*: pure math builtins only
read their scalar arguments; calls to functions defined in the same
program use a computed parameter read/write summary; unknown calls
conservatively read and write every array argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cfront import ir

#: Math-library functions treated as pure scalar functions.
PURE_BUILTINS: Set[str] = {
    "sin", "cos", "tan", "asin", "acos", "atan", "atan2",
    "sinf", "cosf", "tanf", "sqrtf", "fabsf", "expf", "logf",
    "sqrt", "fabs", "abs", "exp", "log", "log2", "log10", "pow",
    "floor", "ceil", "fmod", "hypot",
}


@dataclass(frozen=True)
class Access:
    """One array access: ``name[indices...]``, read or write."""

    name: str
    indices: Tuple[ir.Expr, ...]
    is_write: bool

    def __str__(self) -> str:
        arrow = "W" if self.is_write else "R"
        subs = "".join(f"[{i}]" for i in self.indices)
        return f"{arrow}:{self.name}{subs}"


@dataclass
class DefUse:
    """Aggregated def/use information for one statement subtree."""

    scalar_defs: Set[str] = field(default_factory=set)
    scalar_uses: Set[str] = field(default_factory=set)
    array_defs: Set[str] = field(default_factory=set)
    array_uses: Set[str] = field(default_factory=set)
    accesses: List[Access] = field(default_factory=list)
    has_unknown_call: bool = False
    has_return: bool = False

    @property
    def all_defs(self) -> Set[str]:
        return self.scalar_defs | self.array_defs

    @property
    def all_uses(self) -> Set[str]:
        return self.scalar_uses | self.array_uses

    def merge(self, other: "DefUse") -> None:
        self.scalar_defs |= other.scalar_defs
        self.scalar_uses |= other.scalar_uses
        self.array_defs |= other.array_defs
        self.array_uses |= other.array_uses
        self.accesses.extend(other.accesses)
        self.has_unknown_call |= other.has_unknown_call
        self.has_return |= other.has_return


@dataclass(frozen=True)
class CallSummary:
    """Which pointer/array parameters a function reads and writes."""

    reads_params: frozenset
    writes_params: frozenset
    reads_globals: frozenset
    writes_globals: frozenset


def compute_call_summaries(program: ir.Program) -> Dict[str, CallSummary]:
    """Parameter/global read-write summaries for every defined function.

    One fixed-point-free pass suffices for the benchmark kernels (no
    recursion in the subset); nested calls to defined functions are
    resolved by iterating until stable, bounded by the function count.
    """
    summaries: Dict[str, CallSummary] = {}
    for _ in range(max(1, len(program.functions))):
        changed = False
        for name, func in program.functions.items():
            summary = _summarize_function(func, program, summaries)
            if summaries.get(name) != summary:
                summaries[name] = summary
                changed = True
        if not changed:
            break
    return summaries


def _summarize_function(
    func: ir.Function,
    program: ir.Program,
    summaries: Dict[str, CallSummary],
) -> CallSummary:
    du = compute_defuse(func.body, summaries)
    param_names = {p.name: i for i, p in enumerate(func.params)}
    reads_p = frozenset(param_names[n] for n in du.all_uses if n in param_names)
    writes_p = frozenset(param_names[n] for n in du.all_defs if n in param_names)
    global_names = set(program.globals)
    reads_g = frozenset(n for n in du.all_uses if n in global_names)
    writes_g = frozenset(n for n in du.all_defs if n in global_names)
    return CallSummary(reads_p, writes_p, reads_g, writes_g)


def compute_defuse(
    stmt: ir.Stmt,
    summaries: Optional[Dict[str, CallSummary]] = None,
) -> DefUse:
    """Def/use sets of a statement subtree."""
    du = DefUse()
    _visit_stmt(stmt, du, summaries or {})
    return du


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------


def _visit_stmt(stmt: ir.Stmt, du: DefUse, summaries: Dict[str, CallSummary]) -> None:
    if isinstance(stmt, ir.Block):
        for child in stmt.stmts:
            _visit_stmt(child, du, summaries)
    elif isinstance(stmt, ir.Decl):
        # A declaration defines the name; array decls define the array shape
        # but no elements yet.
        if stmt.init is not None:
            _visit_expr_read(stmt.init, du, summaries)
            du.scalar_defs.add(stmt.name)
        elif not stmt.is_array:
            # Uninitialized scalar: definition happens at first assignment,
            # but the name exists; treat the decl itself as neutral.
            pass
    elif isinstance(stmt, ir.Assign):
        _visit_expr_read(stmt.rhs, du, summaries)
        _visit_lvalue_write(stmt.lhs, du, summaries)
    elif isinstance(stmt, ir.CallStmt):
        _visit_call(stmt.call, du, summaries, used_as_value=False)
    elif isinstance(stmt, ir.ExprStmt):
        _visit_expr_read(stmt.expr, du, summaries)
    elif isinstance(stmt, ir.ForLoop):
        _visit_expr_read(stmt.lower, du, summaries)
        _visit_expr_read(stmt.upper, du, summaries)
        du.scalar_defs.add(stmt.var)
        du.scalar_uses.add(stmt.var)
        _visit_stmt(stmt.body, du, summaries)
    elif isinstance(stmt, ir.WhileLoop):
        _visit_expr_read(stmt.cond, du, summaries)
        _visit_stmt(stmt.body, du, summaries)
    elif isinstance(stmt, ir.If):
        _visit_expr_read(stmt.cond, du, summaries)
        _visit_stmt(stmt.then_block, du, summaries)
        if stmt.else_block is not None:
            _visit_stmt(stmt.else_block, du, summaries)
    elif isinstance(stmt, ir.Return):
        if stmt.expr is not None:
            _visit_expr_read(stmt.expr, du, summaries)
        du.has_return = True
    else:  # pragma: no cover - exhaustive over IR statements
        raise TypeError(f"unknown statement type {type(stmt).__name__}")


def _visit_lvalue_write(lhs: ir.Expr, du: DefUse, summaries) -> None:
    if isinstance(lhs, ir.VarRef):
        du.scalar_defs.add(lhs.name)
    elif isinstance(lhs, ir.ArrayRef):
        du.array_defs.add(lhs.name)
        du.accesses.append(Access(lhs.name, lhs.indices, is_write=True))
        for index in lhs.indices:
            _visit_expr_read(index, du, summaries)
    else:  # pragma: no cover - parser restricts lvalues
        raise TypeError(f"invalid lvalue {lhs!r}")


def _visit_expr_read(expr: ir.Expr, du: DefUse, summaries) -> None:
    if isinstance(expr, ir.Const):
        return
    if isinstance(expr, ir.VarRef):
        du.scalar_uses.add(expr.name)
        return
    if isinstance(expr, ir.ArrayRef):
        du.array_uses.add(expr.name)
        du.accesses.append(Access(expr.name, expr.indices, is_write=False))
        for index in expr.indices:
            _visit_expr_read(index, du, summaries)
        return
    if isinstance(expr, ir.CallExpr):
        _visit_call(expr, du, summaries, used_as_value=True)
        return
    for child in expr.children():
        _visit_expr_read(child, du, summaries)


def _visit_call(
    call: ir.CallExpr,
    du: DefUse,
    summaries: Dict[str, CallSummary],
    used_as_value: bool,
) -> None:
    # Scalar-valued index/argument expressions are always reads.
    array_args: List[Tuple[int, str]] = []
    for pos, arg in enumerate(call.args):
        if isinstance(arg, ir.VarRef):
            # Could be a scalar or a whole-array argument; resolved below.
            array_args.append((pos, arg.name))
            du.scalar_uses.add(arg.name)
        else:
            _visit_expr_read(arg, du, summaries)

    if call.name in PURE_BUILTINS:
        return

    summary = summaries.get(call.name)
    if summary is None:
        # Unknown function: conservatively, every named argument may be an
        # array that is both read and written.
        du.has_unknown_call = True
        for _pos, name in array_args:
            du.array_uses.add(name)
            du.array_defs.add(name)
        return

    for pos, name in array_args:
        if pos in summary.reads_params:
            du.array_uses.add(name)
        if pos in summary.writes_params:
            du.array_defs.add(name)
    du.array_uses |= set(summary.reads_globals)
    du.array_defs |= set(summary.writes_globals)
    du.scalar_uses |= set(summary.reads_globals)
    du.scalar_defs |= set(summary.writes_globals)
