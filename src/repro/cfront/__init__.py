"""ANSI-C frontend.

Replaces the ICD-C based frontend of the paper's tool flow: parses a
(benchmark-sized) subset of ANSI C via ``pycparser`` into a hierarchical
statement IR (:mod:`repro.cfront.ir`), computes def/use sets
(:mod:`repro.cfront.defuse`), statement-level data dependences and
loop-carried dependence / reduction classification
(:mod:`repro.cfront.deps`), and static trip counts
(:mod:`repro.cfront.loops`).
"""

from repro.cfront.ir import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    CallExpr,
    CallStmt,
    Cast,
    Const,
    Decl,
    ExprStmt,
    ForLoop,
    Function,
    If,
    Program,
    Return,
    UnOp,
    UnsupportedCError,
    VarRef,
    WhileLoop,
)
from repro.cfront.parser import parse_c_program, parse_c_source
from repro.cfront.defuse import DefUse, compute_defuse
from repro.cfront.deps import (
    DependenceEdge,
    LoopParallelism,
    analyze_block_dependences,
    classify_loop,
)
from repro.cfront.loops import trip_count

__all__ = [
    "ArrayRef",
    "Assign",
    "BinOp",
    "Block",
    "CallExpr",
    "CallStmt",
    "Cast",
    "Const",
    "Decl",
    "DefUse",
    "DependenceEdge",
    "ExprStmt",
    "ForLoop",
    "Function",
    "If",
    "LoopParallelism",
    "Program",
    "Return",
    "UnOp",
    "UnsupportedCError",
    "VarRef",
    "WhileLoop",
    "analyze_block_dependences",
    "classify_loop",
    "compute_defuse",
    "parse_c_program",
    "parse_c_source",
    "trip_count",
]
