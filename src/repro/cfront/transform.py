"""IR normalization passes.

Source-level tools benefit from a canonical IR: macro expansion leaves
constant arithmetic in loop bounds and subscripts (``i < 64 + 256``),
and benchmark kernels accumulate algebraic noise (``x * 1.0``,
``0 + e``). Two passes are provided:

* :func:`fold_constants` — bottom-up constant folding over expressions
  (C semantics: truncating integer division, short-circuit collapse of
  constant conditions), plus algebraic identities
  (``e*1 → e``, ``e+0 → e``, ``e*0 → 0`` for side-effect-free ``e``);
* :func:`simplify_program` — applies folding to every statement of every
  function and drops statically dead branches (``if (0) ...``).

The passes return *new* expression trees but mutate statements in place
(the IR's statement identity — ``sid`` — must survive for cost
annotations to stay attached).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.cfront import ir

Number = Union[int, float]


def _is_const(expr: ir.Expr, value: Optional[Number] = None) -> bool:
    if not isinstance(expr, ir.Const):
        return False
    return value is None or expr.value == value


def _const_of(left: ir.Const, right: ir.Const, op: str) -> Optional[ir.Const]:
    a, b = left.value, right.value
    both_int = isinstance(a, int) and isinstance(b, int)
    ctype = "int" if both_int else (
        "double" if "double" in (left.ctype, right.ctype) else "float"
    )
    try:
        if op == "+":
            value: Number = a + b
        elif op == "-":
            value = a - b
        elif op == "*":
            value = a * b
        elif op == "/":
            if b == 0:
                return None
            if both_int:
                q = abs(a) // abs(b)
                value = q if (a >= 0) == (b >= 0) else -q
            else:
                value = a / b
        elif op == "%":
            if b == 0 or not both_int:
                return None
            q = abs(a) // abs(b)
            q = q if (a >= 0) == (b >= 0) else -q
            value = a - q * b
        elif op in ("<", "<=", ">", ">=", "==", "!="):
            value = int(
                {"<": a < b, "<=": a <= b, ">": a > b,
                 ">=": a >= b, "==": a == b, "!=": a != b}[op]
            )
            ctype = "int"
        elif op == "<<" and both_int:
            value = a << b
        elif op == ">>" and both_int:
            value = a >> b
        elif op == "&" and both_int:
            value = a & b
        elif op == "|" and both_int:
            value = a | b
        elif op == "^" and both_int:
            value = a ^ b
        elif op == "&&":
            value = int(bool(a) and bool(b))
            ctype = "int"
        elif op == "||":
            value = int(bool(a) or bool(b))
            ctype = "int"
        else:
            return None
    except TypeError:
        return None
    return ir.Const(value, ctype)


def fold_constants(expr: ir.Expr) -> ir.Expr:
    """Return an equivalent expression with constants folded."""
    if isinstance(expr, (ir.Const, ir.VarRef)):
        return expr
    if isinstance(expr, ir.ArrayRef):
        return ir.ArrayRef(expr.name, tuple(fold_constants(i) for i in expr.indices))
    if isinstance(expr, ir.UnOp):
        inner = fold_constants(expr.operand)
        if isinstance(inner, ir.Const):
            if expr.op == "-":
                return ir.Const(-inner.value, inner.ctype)
            if expr.op == "!":
                return ir.Const(int(not inner.value), "int")
            if expr.op == "~" and isinstance(inner.value, int):
                return ir.Const(~inner.value, "int")
        if expr.op == "-" and isinstance(inner, ir.UnOp) and inner.op == "-":
            return inner.operand  # --e -> e
        return ir.UnOp(expr.op, inner)
    if isinstance(expr, ir.Cast):
        inner = fold_constants(expr.operand)
        if isinstance(inner, ir.Const):
            int_types = set(ir.SIZEOF) - {"float", "double", "long double", "void"}
            if expr.ctype in int_types:
                return ir.Const(int(inner.value), "int")
            return ir.Const(float(inner.value), expr.ctype)
        return ir.Cast(expr.ctype, inner)
    if isinstance(expr, ir.CallExpr):
        return ir.CallExpr(expr.name, tuple(fold_constants(a) for a in expr.args))
    if isinstance(expr, ir.BinOp):
        left = fold_constants(expr.left)
        right = fold_constants(expr.right)
        if isinstance(left, ir.Const) and isinstance(right, ir.Const):
            folded = _const_of(left, right, expr.op)
            if folded is not None:
                return folded
        # algebraic identities on side-effect-free operands
        if expr.op == "+":
            if _is_const(left, 0):
                return right
            if _is_const(right, 0):
                return left
        if expr.op == "-" and _is_const(right, 0):
            return left
        if expr.op == "*":
            if _is_const(left, 1):
                return right
            if _is_const(right, 1):
                return left
            if (_is_const(left, 0) or _is_const(right, 0)) and not _may_have_effects(
                right if _is_const(left, 0) else left
            ):
                return ir.Const(0, "int")
        if expr.op == "/" and _is_const(right, 1):
            return left
        return ir.BinOp(expr.op, left, right)
    raise TypeError(f"unknown expression {type(expr).__name__}")


def _may_have_effects(expr: ir.Expr) -> bool:
    """Calls may have side effects; everything else in the subset is pure."""
    return any(isinstance(node, ir.CallExpr) for node in expr.walk())


def simplify_stmt(stmt: ir.Stmt) -> None:
    """Fold constants in one statement subtree, in place."""
    if isinstance(stmt, ir.Block):
        new_stmts = []
        for child in stmt.stmts:
            simplify_stmt(child)
            if isinstance(child, ir.If) and isinstance(child.cond, ir.Const):
                # statically decided branch: splice the live side
                live = child.then_block if child.cond.value else child.else_block
                if live is not None:
                    new_stmts.append(live)
                continue
            new_stmts.append(child)
        stmt.stmts = new_stmts
    elif isinstance(stmt, ir.Decl):
        if stmt.init is not None:
            stmt.init = fold_constants(stmt.init)
    elif isinstance(stmt, ir.Assign):
        stmt.lhs = fold_constants(stmt.lhs)  # folds subscripts
        stmt.rhs = fold_constants(stmt.rhs)
    elif isinstance(stmt, ir.CallStmt):
        stmt.call = fold_constants(stmt.call)
    elif isinstance(stmt, ir.ExprStmt):
        stmt.expr = fold_constants(stmt.expr)
    elif isinstance(stmt, ir.ForLoop):
        stmt.lower = fold_constants(stmt.lower)
        stmt.upper = fold_constants(stmt.upper)
        simplify_stmt(stmt.body)
    elif isinstance(stmt, ir.WhileLoop):
        stmt.cond = fold_constants(stmt.cond)
        simplify_stmt(stmt.body)
    elif isinstance(stmt, ir.If):
        stmt.cond = fold_constants(stmt.cond)
        simplify_stmt(stmt.then_block)
        if stmt.else_block is not None:
            simplify_stmt(stmt.else_block)
    elif isinstance(stmt, ir.Return):
        if stmt.expr is not None:
            stmt.expr = fold_constants(stmt.expr)


def simplify_program(program: ir.Program) -> ir.Program:
    """Fold constants and prune dead branches in every function (in place)."""
    for func in program.functions.values():
        simplify_stmt(func.body)
    for decl in program.globals.values():
        if decl.init is not None:
            decl.init = fold_constants(decl.init)
    return program
