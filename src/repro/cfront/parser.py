"""pycparser-based ANSI-C parser producing the :mod:`repro.cfront.ir` IR.

Only a preprocessed translation unit is accepted (no ``#include``; the
benchmark kernels in :mod:`repro.bench_suite` are written in this style,
mirroring how the paper's ICD-C frontend consumes preprocessed sources).
``#define NAME literal`` lines are honoured by a tiny built-in
pre-pass so kernels can keep their symbolic sizes.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple, Union

from pycparser import c_ast, c_parser

from repro.cfront import ir
from repro.cfront.ir import UnsupportedCError

_DEFINE_RE = re.compile(r"^\s*#\s*define\s+(\w+)\s+(.+?)\s*$", re.MULTILINE)
_COMMENT_RE = re.compile(r"/\*.*?\*/|//[^\n]*", re.DOTALL)


def parse_c_source(source: str) -> ir.Program:
    """Parse a C source string into a :class:`repro.cfront.ir.Program`."""
    source = _COMMENT_RE.sub(" ", source)
    defines: Dict[str, str] = {}
    for match in _DEFINE_RE.finditer(source):
        defines[match.group(1)] = match.group(2)
    source = _DEFINE_RE.sub("", source)
    # Expand object-like macros (iterate to support chained defines).
    for _ in range(4):
        changed = False
        for name, repl in defines.items():
            pattern = re.compile(rf"\b{re.escape(name)}\b")
            new_source = pattern.sub(f"({repl})", source)
            if new_source != source:
                source = new_source
                changed = True
        if not changed:
            break

    parser = c_parser.CParser()
    try:
        ast = parser.parse(source)
    except Exception as exc:  # pycparser raises plain ParseError
        raise UnsupportedCError(f"C parse error: {exc}") from exc
    return _Converter().convert(ast)


def parse_c_program(path: str) -> ir.Program:
    """Parse a C source file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_c_source(handle.read())


class _Converter:
    """Converts a pycparser AST into the statement IR."""

    def convert(self, ast: c_ast.FileAST) -> ir.Program:
        program = ir.Program()
        for ext in ast.ext:
            if isinstance(ext, c_ast.FuncDef):
                func = self._function(ext)
                program.functions[func.name] = func
            elif isinstance(ext, c_ast.Decl):
                decl = self._decl(ext)
                program.globals[decl.name] = decl
                if decl.init is not None and isinstance(decl.init, ir.Const):
                    program.constants[decl.name] = decl.init.value
            elif isinstance(ext, c_ast.Typedef):
                raise UnsupportedCError("typedef is outside the supported subset")
            else:
                raise UnsupportedCError(
                    f"unsupported file-scope construct {type(ext).__name__}"
                )
        return program

    # -- declarations -------------------------------------------------------

    def _function(self, node: c_ast.FuncDef) -> ir.Function:
        name = node.decl.name
        func_decl = node.decl.type
        return_type = self._type_name(func_decl.type)
        params: List[ir.Param] = []
        if func_decl.args is not None:
            for param in func_decl.args.params:
                if isinstance(param, c_ast.EllipsisParam):
                    raise UnsupportedCError("varargs functions are unsupported")
                if isinstance(param.type, c_ast.PtrDecl):
                    ptype = self._type_name(param.type.type)
                    params.append(ir.Param(param.name, ptype, is_pointer=True))
                elif isinstance(param.type, c_ast.ArrayDecl):
                    ptype = self._base_type_name(param.type)
                    params.append(ir.Param(param.name, ptype, is_pointer=True))
                elif isinstance(param.type, c_ast.TypeDecl):
                    ptype = self._type_name(param.type)
                    if ptype == "void":
                        continue  # f(void)
                    params.append(ir.Param(param.name, ptype))
                else:
                    raise UnsupportedCError(
                        f"unsupported parameter declarator {type(param.type).__name__}"
                    )
        body = self._block(node.body)
        return ir.Function(name, return_type, params, body)

    def _decl(self, node: c_ast.Decl) -> ir.Decl:
        dims: List[int] = []
        type_node = node.type
        while isinstance(type_node, c_ast.ArrayDecl):
            dim_expr = type_node.dim
            if dim_expr is None:
                raise UnsupportedCError(f"array {node.name!r} needs explicit dimensions")
            dim_value = self._const_int(dim_expr)
            dims.append(dim_value)
            type_node = type_node.type
        if isinstance(type_node, c_ast.PtrDecl):
            raise UnsupportedCError(
                f"pointer declaration {node.name!r}: pointers are only supported "
                f"as array-style function parameters"
            )
        if not isinstance(type_node, c_ast.TypeDecl):
            raise UnsupportedCError(
                f"unsupported declarator for {node.name!r}: {type(type_node).__name__}"
            )
        ctype = self._type_name(type_node)
        init: Optional[ir.Expr] = None
        if node.init is not None:
            if isinstance(node.init, c_ast.InitList):
                raise UnsupportedCError(
                    f"initializer lists are unsupported (array {node.name!r}); "
                    f"initialize in a loop instead"
                )
            init = self._expr(node.init)
        return ir.Decl(node.name, ctype, tuple(dims), init, coord=str(node.coord))

    def _type_name(self, node: c_ast.TypeDecl) -> str:
        inner = node.type
        if isinstance(inner, c_ast.IdentifierType):
            return " ".join(inner.names)
        raise UnsupportedCError(f"unsupported type {type(inner).__name__}")

    def _base_type_name(self, node) -> str:
        while isinstance(node, (c_ast.ArrayDecl, c_ast.PtrDecl)):
            node = node.type
        return self._type_name(node)

    # -- statements ------------------------------------------------------------

    def _block(self, node: Optional[c_ast.Compound]) -> ir.Block:
        stmts: List[ir.Stmt] = []
        if node is not None and node.block_items:
            for item in node.block_items:
                converted = self._stmt(item)
                stmts.extend(converted)
        return ir.Block(stmts)

    def _stmt_as_block(self, node) -> ir.Block:
        """Wrap a single statement (loop/if body) into a Block."""
        if node is None:
            return ir.Block([])
        if isinstance(node, c_ast.Compound):
            return self._block(node)
        return ir.Block(list(self._stmt(node)))

    def _stmt(self, node) -> List[ir.Stmt]:
        coord = str(node.coord) if getattr(node, "coord", None) else None

        if isinstance(node, c_ast.Decl):
            return [self._decl(node)]
        if isinstance(node, c_ast.DeclList):
            return [self._decl(d) for d in node.decls]
        if isinstance(node, c_ast.Assignment):
            return [self._assignment(node, coord)]
        if isinstance(node, c_ast.UnaryOp) and node.op in ("p++", "++", "p--", "--"):
            return [self._incdec(node, coord)]
        if isinstance(node, c_ast.FuncCall):
            call = self._expr(node)
            assert isinstance(call, ir.CallExpr)
            return [ir.CallStmt(call, coord)]
        if isinstance(node, c_ast.For):
            return [self._for(node, coord)]
        if isinstance(node, c_ast.While):
            return [ir.WhileLoop(self._expr(node.cond), self._stmt_as_block(node.stmt), coord)]
        if isinstance(node, c_ast.If):
            else_block = self._stmt_as_block(node.iffalse) if node.iffalse else None
            return [
                ir.If(self._expr(node.cond), self._stmt_as_block(node.iftrue), else_block, coord)
            ]
        if isinstance(node, c_ast.Return):
            expr = self._expr(node.expr) if node.expr is not None else None
            return [ir.Return(expr, coord)]
        if isinstance(node, c_ast.Compound):
            return [self._block(node)]
        if isinstance(node, c_ast.EmptyStatement):
            return []
        raise UnsupportedCError(f"unsupported statement {type(node).__name__} at {coord}")

    def _assignment(self, node: c_ast.Assignment, coord: Optional[str]) -> ir.Assign:
        lhs = self._expr(node.lvalue)
        if not isinstance(lhs, (ir.VarRef, ir.ArrayRef)):
            raise UnsupportedCError(f"unsupported assignment target {lhs} at {coord}")
        rhs = self._expr(node.rvalue)
        if node.op != "=":
            binop = node.op[:-1]  # "+=" -> "+"
            rhs = ir.BinOp(binop, lhs, rhs)
        return ir.Assign(lhs, rhs, coord)

    def _incdec(self, node: c_ast.UnaryOp, coord: Optional[str]) -> ir.Assign:
        target = self._expr(node.expr)
        if not isinstance(target, (ir.VarRef, ir.ArrayRef)):
            raise UnsupportedCError(f"unsupported ++/-- target at {coord}")
        op = "+" if "++" in node.op else "-"
        return ir.Assign(target, ir.BinOp(op, target, ir.Const(1)), coord)

    # -- loops ------------------------------------------------------------------

    def _for(self, node: c_ast.For, coord: Optional[str]) -> ir.Stmt:
        body = self._stmt_as_block(node.stmt)
        canonical = self._canonical_for(node)
        if canonical is not None:
            var, lower, upper, step = canonical
            return ir.ForLoop(var, lower, upper, step, body, coord)
        # Fall back to a while loop preserving semantics as far as possible.
        init_stmts: List[ir.Stmt] = []
        if node.init is not None:
            init_stmts = self._stmt(node.init)
        cond = self._expr(node.cond) if node.cond is not None else ir.Const(1)
        if node.next is not None:
            body.stmts.extend(self._stmt(node.next))
        loop = ir.WhileLoop(cond, body, coord)
        if init_stmts:
            return ir.Block(init_stmts + [loop], coord)
        return loop

    def _canonical_for(
        self, node: c_ast.For
    ) -> Optional[Tuple[str, ir.Expr, ir.Expr, int]]:
        """Recognize ``for (i = lo; i < hi; i += step)`` shapes."""
        # init: i = lo  (assignment or single declaration)
        var: Optional[str] = None
        lower: Optional[ir.Expr] = None
        if isinstance(node.init, c_ast.Assignment) and node.init.op == "=":
            if isinstance(node.init.lvalue, c_ast.ID):
                var = node.init.lvalue.name
                lower = self._expr(node.init.rvalue)
        elif isinstance(node.init, c_ast.DeclList) and len(node.init.decls) == 1:
            decl = node.init.decls[0]
            if decl.init is not None and isinstance(decl.type, c_ast.TypeDecl):
                var = decl.name
                lower = self._expr(decl.init)
        if var is None or lower is None:
            return None

        # cond: i < hi or i <= hi
        if not isinstance(node.cond, c_ast.BinaryOp):
            return None
        if not (isinstance(node.cond.left, c_ast.ID) and node.cond.left.name == var):
            return None
        bound = self._expr(node.cond.right)
        if node.cond.op == "<":
            upper = bound
        elif node.cond.op == "<=":
            upper = ir.BinOp("+", bound, ir.Const(1))
        else:
            return None

        # next: i++, ++i, i += c, i = i + c
        step: Optional[int] = None
        nxt = node.next
        if isinstance(nxt, c_ast.UnaryOp) and nxt.op in ("p++", "++"):
            if isinstance(nxt.expr, c_ast.ID) and nxt.expr.name == var:
                step = 1
        elif isinstance(nxt, c_ast.Assignment):
            if isinstance(nxt.lvalue, c_ast.ID) and nxt.lvalue.name == var:
                if nxt.op == "+=":
                    step = self._try_const_int(nxt.rvalue)
                elif nxt.op == "=":
                    rv = nxt.rvalue
                    if (
                        isinstance(rv, c_ast.BinaryOp)
                        and rv.op == "+"
                        and isinstance(rv.left, c_ast.ID)
                        and rv.left.name == var
                    ):
                        step = self._try_const_int(rv.right)
        if step is None or step <= 0:
            return None
        return var, lower, upper, step

    # -- expressions ---------------------------------------------------------------

    def _expr(self, node) -> ir.Expr:
        if isinstance(node, c_ast.Constant):
            return self._constant(node)
        if isinstance(node, c_ast.ID):
            return ir.VarRef(node.name)
        if isinstance(node, c_ast.ArrayRef):
            return self._array_ref(node)
        if isinstance(node, c_ast.BinaryOp):
            return ir.BinOp(node.op, self._expr(node.left), self._expr(node.right))
        if isinstance(node, c_ast.UnaryOp):
            if node.op in ("-", "+", "!", "~"):
                if node.op == "+":
                    return self._expr(node.expr)
                return ir.UnOp(node.op, self._expr(node.expr))
            raise UnsupportedCError(f"unsupported unary operator {node.op!r} in expression")
        if isinstance(node, c_ast.Cast):
            ctype = self._base_type_name(node.to_type.type)
            return ir.Cast(ctype, self._expr(node.expr))
        if isinstance(node, c_ast.FuncCall):
            args: List[ir.Expr] = []
            if node.args is not None:
                args = [self._expr(a) for a in node.args.exprs]
            name = node.name.name if isinstance(node.name, c_ast.ID) else None
            if name is None:
                raise UnsupportedCError("indirect calls are unsupported")
            return ir.CallExpr(name, tuple(args))
        if isinstance(node, c_ast.TernaryOp):
            raise UnsupportedCError("the ?: operator is unsupported; use if/else")
        if isinstance(node, c_ast.Paren) if hasattr(c_ast, "Paren") else False:
            return self._expr(node.expr)  # pragma: no cover - pycparser folds parens
        raise UnsupportedCError(f"unsupported expression {type(node).__name__}")

    def _array_ref(self, node: c_ast.ArrayRef) -> ir.ArrayRef:
        indices: List[ir.Expr] = []
        base = node
        while isinstance(base, c_ast.ArrayRef):
            indices.append(self._expr(base.subscript))
            base = base.name
        if not isinstance(base, c_ast.ID):
            raise UnsupportedCError("array base must be a plain identifier")
        indices.reverse()
        return ir.ArrayRef(base.name, tuple(indices))

    def _constant(self, node: c_ast.Constant) -> ir.Const:
        text = node.value
        if node.type in ("int", "long int", "unsigned int", "long long int", "char"):
            if node.type == "char":
                stripped = text.strip("'")
                value = ord(stripped) if len(stripped) == 1 else 0
                return ir.Const(value, "char")
            cleaned = text.rstrip("uUlL")
            base = 16 if cleaned.lower().startswith("0x") else (8 if _is_octal(cleaned) else 10)
            return ir.Const(int(cleaned, base), "int")
        if node.type in ("float", "double", "long double"):
            cleaned = text.rstrip("fFlL")
            return ir.Const(float(cleaned), "double" if node.type != "float" else "float")
        raise UnsupportedCError(f"unsupported constant type {node.type!r}")

    # -- helpers ----------------------------------------------------------------------

    def _const_int(self, node) -> int:
        value = self._try_const_int(node)
        if value is None:
            raise UnsupportedCError("expected an integer constant expression")
        return value

    def _try_const_int(self, node) -> Optional[int]:
        try:
            expr = self._expr(node)
        except UnsupportedCError:
            return None
        return _fold_int(expr)


def _is_octal(text: str) -> bool:
    return len(text) > 1 and text.startswith("0") and text[1:].isdigit()


def _fold_int(expr: ir.Expr) -> Optional[int]:
    """Constant-fold an integer expression tree, or None."""
    if isinstance(expr, ir.Const) and isinstance(expr.value, int):
        return expr.value
    if isinstance(expr, ir.UnOp) and expr.op == "-":
        inner = _fold_int(expr.operand)
        return -inner if inner is not None else None
    if isinstance(expr, ir.BinOp):
        left = _fold_int(expr.left)
        right = _fold_int(expr.right)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/" and right != 0:
            return left // right
    return None
