"""Hierarchical statement-level IR for the C frontend.

The IR mirrors the hierarchical structure the paper's Augmented
Hierarchical Task Graph is built from: every statement becomes a node;
compound statements (loops, conditionals, blocks, function bodies) contain
child statements. Expressions form ordinary trees below statements.

The IR covers the ANSI-C subset exercised by UTDSP-style DSP kernels:
scalar and (multi-dimensional) array declarations, assignments (including
normalized compound assignment and ++/--), canonical counted ``for`` loops,
``while`` loops, ``if``/``else``, calls, and ``return``. Anything outside
the subset raises :class:`UnsupportedCError` at parse time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union


class UnsupportedCError(Exception):
    """Raised when the input program uses C features outside the subset."""


_stmt_ids = itertools.count()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class of expression nodes."""

    __slots__ = ()

    def children(self) -> Sequence["Expr"]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant; ``value`` is an ``int`` or ``float``."""

    value: Union[int, float]
    ctype: str = "int"

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class VarRef(Expr):
    """A scalar variable reference."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayRef(Expr):
    """``name[i0][i1]...`` — an array element access."""

    name: str
    indices: Tuple[Expr, ...]

    def children(self) -> Sequence[Expr]:
        return self.indices

    def __str__(self) -> str:
        return self.name + "".join(f"[{i}]" for i in self.indices)


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operation; ``op`` is the C operator token (``+``, ``<``, ...)."""

    op: str
    left: Expr
    right: Expr

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnOp(Expr):
    """Unary operation (``-``, ``!``, ``~``)."""

    op: str
    operand: Expr

    def children(self) -> Sequence[Expr]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class Cast(Expr):
    """A C cast ``(type) expr``."""

    ctype: str
    operand: Expr

    def children(self) -> Sequence[Expr]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"(({self.ctype}){self.operand})"


@dataclass(frozen=True)
class CallExpr(Expr):
    """A call used as an expression (e.g. ``sqrt(x)``)."""

    name: str
    args: Tuple[Expr, ...]

    def children(self) -> Sequence[Expr]:
        return self.args

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


LValue = Union[VarRef, ArrayRef]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base class of statement nodes. Each instance has a unique ``sid``."""

    def __init__(self, coord: Optional[str] = None):
        self.sid: int = next(_stmt_ids)
        self.coord = coord

    def substatements(self) -> Sequence["Stmt"]:
        """Direct child statements (the hierarchical structure)."""
        return ()

    def expressions(self) -> Sequence[Expr]:
        """Expressions evaluated directly by this statement (not children)."""
        return ()

    def walk(self) -> Iterator["Stmt"]:
        yield self
        for child in self.substatements():
            yield from child.walk()

    def is_hierarchical(self) -> bool:
        return bool(self.substatements())


class Block(Stmt):
    """A ``{ ... }`` compound statement."""

    def __init__(self, stmts: List[Stmt], coord: Optional[str] = None):
        super().__init__(coord)
        self.stmts = stmts

    def substatements(self) -> Sequence[Stmt]:
        return self.stmts

    def __repr__(self) -> str:
        return f"Block({len(self.stmts)} stmts)"


class Decl(Stmt):
    """A declaration; ``dims`` is non-empty for arrays, ``init`` optional."""

    def __init__(
        self,
        name: str,
        ctype: str,
        dims: Tuple[int, ...] = (),
        init: Optional[Expr] = None,
        coord: Optional[str] = None,
    ):
        super().__init__(coord)
        self.name = name
        self.ctype = ctype
        self.dims = dims
        self.init = init

    def expressions(self) -> Sequence[Expr]:
        return (self.init,) if self.init is not None else ()

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    def __repr__(self) -> str:
        dims = "".join(f"[{d}]" for d in self.dims)
        return f"Decl({self.ctype} {self.name}{dims})"


class Assign(Stmt):
    """``lhs = rhs`` (compound assignments are normalized to this form)."""

    def __init__(self, lhs: LValue, rhs: Expr, coord: Optional[str] = None):
        super().__init__(coord)
        self.lhs = lhs
        self.rhs = rhs

    def expressions(self) -> Sequence[Expr]:
        return (self.lhs, self.rhs)

    def __repr__(self) -> str:
        return f"Assign({self.lhs} = {self.rhs})"


class CallStmt(Stmt):
    """A call used as a statement (``foo(a, b);``)."""

    def __init__(self, call: CallExpr, coord: Optional[str] = None):
        super().__init__(coord)
        self.call = call

    def expressions(self) -> Sequence[Expr]:
        return (self.call,)

    def __repr__(self) -> str:
        return f"CallStmt({self.call})"


class ExprStmt(Stmt):
    """A bare expression statement with a side-effect-free expression."""

    def __init__(self, expr: Expr, coord: Optional[str] = None):
        super().__init__(coord)
        self.expr = expr

    def expressions(self) -> Sequence[Expr]:
        return (self.expr,)

    def __repr__(self) -> str:
        return f"ExprStmt({self.expr})"


class ForLoop(Stmt):
    """A canonical counted loop ``for (var = lower; var < upper; var += step)``.

    ``lower``/``upper`` are expressions; ``step`` is a positive integer
    constant. The comparison is normalized to ``<`` (so ``i <= n`` becomes
    ``upper = n + 1``). Non-canonical loops fall back to :class:`WhileLoop`.
    """

    def __init__(
        self,
        var: str,
        lower: Expr,
        upper: Expr,
        step: int,
        body: Block,
        coord: Optional[str] = None,
    ):
        super().__init__(coord)
        if step <= 0:
            raise UnsupportedCError("for-loop step must be a positive constant")
        self.var = var
        self.lower = lower
        self.upper = upper
        self.step = step
        self.body = body

    def substatements(self) -> Sequence[Stmt]:
        return (self.body,)

    def expressions(self) -> Sequence[Expr]:
        return (self.lower, self.upper)

    def __repr__(self) -> str:
        return f"ForLoop({self.var}: {self.lower}..{self.upper} step {self.step})"


class WhileLoop(Stmt):
    """A general loop with a guard condition."""

    def __init__(self, cond: Expr, body: Block, coord: Optional[str] = None):
        super().__init__(coord)
        self.cond = cond
        self.body = body

    def substatements(self) -> Sequence[Stmt]:
        return (self.body,)

    def expressions(self) -> Sequence[Expr]:
        return (self.cond,)

    def __repr__(self) -> str:
        return f"WhileLoop({self.cond})"


class If(Stmt):
    """``if (cond) then_block else else_block``."""

    def __init__(
        self,
        cond: Expr,
        then_block: Block,
        else_block: Optional[Block] = None,
        coord: Optional[str] = None,
    ):
        super().__init__(coord)
        self.cond = cond
        self.then_block = then_block
        self.else_block = else_block

    def substatements(self) -> Sequence[Stmt]:
        if self.else_block is not None:
            return (self.then_block, self.else_block)
        return (self.then_block,)

    def expressions(self) -> Sequence[Expr]:
        return (self.cond,)

    def __repr__(self) -> str:
        return f"If({self.cond})"


class Return(Stmt):
    """``return expr;`` (or bare ``return;``)."""

    def __init__(self, expr: Optional[Expr] = None, coord: Optional[str] = None):
        super().__init__(coord)
        self.expr = expr

    def expressions(self) -> Sequence[Expr]:
        return (self.expr,) if self.expr is not None else ()

    def __repr__(self) -> str:
        return f"Return({self.expr})"


# ---------------------------------------------------------------------------
# Functions and programs
# ---------------------------------------------------------------------------


@dataclass
class Param:
    """A function parameter. ``is_pointer`` marks array-like parameters."""

    name: str
    ctype: str
    is_pointer: bool = False


@dataclass
class Function:
    """A parsed C function."""

    name: str
    return_type: str
    params: List[Param]
    body: Block

    def walk_statements(self) -> Iterator[Stmt]:
        yield from self.body.walk()


#: Element sizes in bytes for communicated-data estimation.
SIZEOF: Dict[str, int] = {
    "char": 1,
    "signed char": 1,
    "unsigned char": 1,
    "short": 2,
    "unsigned short": 2,
    "int": 4,
    "unsigned int": 4,
    "unsigned": 4,
    "long": 8,
    "unsigned long": 8,
    "long long": 8,
    "float": 4,
    "double": 8,
    "long double": 8,
    "void": 0,
}


def sizeof(ctype: str) -> int:
    """Byte size of a C scalar type (defaults to 4 for unknown types)."""
    return SIZEOF.get(ctype, 4)


@dataclass
class Program:
    """A parsed translation unit.

    ``functions`` preserves source order; ``globals`` maps names of
    file-scope declarations (arrays and scalars) to their :class:`Decl`.
    ``constants`` holds file-scope ``const``-style scalar initializers,
    used for trip-count evaluation.
    """

    functions: Dict[str, Function] = field(default_factory=dict)
    globals: Dict[str, Decl] = field(default_factory=dict)
    constants: Dict[str, Union[int, float]] = field(default_factory=dict)

    def entry(self, name: str = "main") -> Function:
        if name in self.functions:
            return self.functions[name]
        if len(self.functions) == 1:
            return next(iter(self.functions.values()))
        raise KeyError(
            f"no function {name!r}; available: {sorted(self.functions)}"
        )

    def array_decl(self, name: str, scope: Optional[Function] = None) -> Optional[Decl]:
        """Find the declaration of an array by name (scope then globals)."""
        if scope is not None:
            for stmt in scope.body.walk():
                if isinstance(stmt, Decl) and stmt.name == name:
                    return stmt
        return self.globals.get(name)
