"""Per-operation reference cycle costs.

A deliberately high-level model in the spirit of the paper's "adequate
high-level timing models": each C-level operation has a fixed reference
cycle cost on the common ISA; a processor class's execution time follows
from its clock (and optional CPI scale) via
:meth:`repro.platforms.description.ProcessorClass.time_us`.

The default numbers approximate an in-order ARM9-class pipeline (the
MPARM / CoMET targets of the paper): single-cycle ALU, few-cycle
multiplies, expensive divides, two-cycle memory accesses through the
shared L2.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.cfront import ir

_FLOAT_TYPES = ("float", "double", "long double")


@dataclass(frozen=True)
class OperationCosts:
    """Reference cycles per operation kind."""

    int_alu: float = 1.0          # +, -, bitwise, shifts, compares
    int_mul: float = 3.0
    int_div: float = 24.0         # also %
    float_alu: float = 4.0        # software-assisted FP add/sub/compare
    float_mul: float = 6.0
    float_div: float = 30.0
    load: float = 2.0             # memory read (shared L2)
    store: float = 2.0
    address: float = 1.0          # per-dimension address arithmetic
    branch: float = 2.0           # taken-branch penalty (if / loop back-edge)
    loop_overhead: float = 3.0    # per-iteration counter update + compare + branch
    call_overhead: float = 30.0   # call/return + register save/restore
    builtin_math: float = 60.0    # sin/cos/sqrt/... library routine

    def scaled(self, factor: float) -> "OperationCosts":
        """A copy with every cost multiplied by ``factor``."""
        return OperationCosts(
            **{name: getattr(self, name) * factor for name in self.__dataclass_fields__}
        )


class CostModel:
    """Computes reference cycle costs of expressions and statements.

    ``type_env`` maps variable names to C types so the model can pick
    integer vs. floating-point operation costs; unknown operands default
    to ``default_type``.
    """

    def __init__(
        self,
        costs: Optional[OperationCosts] = None,
        type_env: Optional[Dict[str, str]] = None,
        default_type: str = "int",
    ):
        self.costs = costs or OperationCosts()
        self.type_env = dict(type_env or {})
        self.default_type = default_type

    # -- type inference ---------------------------------------------------------

    def expr_type(self, expr: ir.Expr) -> str:
        if isinstance(expr, ir.Const):
            return expr.ctype
        if isinstance(expr, ir.VarRef):
            return self.type_env.get(expr.name, self.default_type)
        if isinstance(expr, ir.ArrayRef):
            return self.type_env.get(expr.name, self.default_type)
        if isinstance(expr, ir.Cast):
            return expr.ctype
        if isinstance(expr, ir.UnOp):
            return self.expr_type(expr.operand)
        if isinstance(expr, ir.BinOp):
            left = self.expr_type(expr.left)
            right = self.expr_type(expr.right)
            if left in _FLOAT_TYPES or right in _FLOAT_TYPES:
                return "double" if "double" in (left, right) else "float"
            return left
        if isinstance(expr, ir.CallExpr):
            return "double"
        return self.default_type

    def _is_float(self, expr: ir.Expr) -> bool:
        return self.expr_type(expr) in _FLOAT_TYPES

    # -- expression costs ----------------------------------------------------------

    def expr_cycles(self, expr: ir.Expr) -> float:
        """Cycles to evaluate ``expr`` once."""
        c = self.costs
        if isinstance(expr, ir.Const):
            return 0.0
        if isinstance(expr, ir.VarRef):
            return c.load
        if isinstance(expr, ir.ArrayRef):
            index_cost = sum(self.expr_cycles(i) for i in expr.indices)
            return index_cost + c.address * len(expr.indices) + c.load
        if isinstance(expr, ir.UnOp):
            return self._op_cost("+", self._is_float(expr.operand)) + self.expr_cycles(
                expr.operand
            )
        if isinstance(expr, ir.Cast):
            return c.int_alu + self.expr_cycles(expr.operand)
        if isinstance(expr, ir.BinOp):
            is_float = self._is_float(expr.left) or self._is_float(expr.right)
            return (
                self._op_cost(expr.op, is_float)
                + self.expr_cycles(expr.left)
                + self.expr_cycles(expr.right)
            )
        if isinstance(expr, ir.CallExpr):
            args = sum(self.expr_cycles(a) for a in expr.args)
            from repro.cfront.defuse import PURE_BUILTINS

            if expr.name in PURE_BUILTINS:
                return args + c.builtin_math
            return args + c.call_overhead
        raise TypeError(f"unknown expression {type(expr).__name__}")

    def _op_cost(self, op: str, is_float: bool) -> float:
        c = self.costs
        if op == "*":
            return c.float_mul if is_float else c.int_mul
        if op in ("/", "%"):
            return c.float_div if is_float else c.int_div
        if is_float:
            return c.float_alu
        return c.int_alu

    # -- statement costs ------------------------------------------------------------

    def stmt_cycles(self, stmt: ir.Stmt) -> float:
        """Cycles for *one* execution of the statement itself.

        For hierarchical statements this is the per-execution control
        overhead only (loop header, branch evaluation); the children's
        costs are accumulated separately by the estimator using their own
        execution counts.
        """
        c = self.costs
        if isinstance(stmt, ir.Block):
            return 0.0
        if isinstance(stmt, ir.Decl):
            if stmt.init is not None:
                return self.expr_cycles(stmt.init) + c.store
            return 0.0
        if isinstance(stmt, ir.Assign):
            lhs_cost = 0.0
            if isinstance(stmt.lhs, ir.ArrayRef):
                lhs_cost = (
                    sum(self.expr_cycles(i) for i in stmt.lhs.indices)
                    + c.address * len(stmt.lhs.indices)
                )
            return self.expr_cycles(stmt.rhs) + lhs_cost + c.store
        if isinstance(stmt, ir.CallStmt):
            return self.expr_cycles(stmt.call)
        if isinstance(stmt, ir.ExprStmt):
            return self.expr_cycles(stmt.expr)
        if isinstance(stmt, ir.ForLoop):
            # charged once per iteration via the estimator
            return c.loop_overhead
        if isinstance(stmt, ir.WhileLoop):
            return self.expr_cycles(stmt.cond) + c.branch
        if isinstance(stmt, ir.If):
            return self.expr_cycles(stmt.cond) + c.branch
        if isinstance(stmt, ir.Return):
            if stmt.expr is not None:
                return self.expr_cycles(stmt.expr)
            return 0.0
        raise TypeError(f"unknown statement {type(stmt).__name__}")

    @classmethod
    def for_function(
        cls,
        program: ir.Program,
        function: ir.Function,
        costs: Optional[OperationCosts] = None,
    ) -> "CostModel":
        """Cost model with a type environment from the function's scope."""
        type_env: Dict[str, str] = {}
        for decl in program.globals.values():
            type_env[decl.name] = decl.ctype
        for param in function.params:
            type_env[param.name] = param.ctype
        for stmt in function.body.walk():
            if isinstance(stmt, ir.Decl):
                type_env[stmt.name] = stmt.ctype
        return cls(costs=costs, type_env=type_env)
