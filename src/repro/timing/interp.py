"""Concrete IR interpreter — the profiling substitute.

Runs a parsed program function to completion, recording how often every
statement executes. This replaces the paper's "execution costs ...
automatically extracted by target platform simulation": combined with the
static per-operation cycle model it yields exact whole-run cost totals per
statement and processor class.

The interpreter implements enough C semantics for the benchmark kernels:
integer/float scalars with C-style truncation, multi-dimensional arrays
(numpy-backed, passed by reference), calls to program functions and math
builtins, and all IR control flow. A step limit guards against runaway
loops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cfront import ir

Value = Union[int, float, np.ndarray]


class InterpreterError(Exception):
    """Semantic error while interpreting (unknown name, bad call, ...)."""


class InterpreterLimitExceeded(InterpreterError):
    """The step budget was exhausted."""


class _ReturnSignal(Exception):
    def __init__(self, value: Optional[Value]):
        self.value = value


_BUILTINS = {
    "sin": math.sin, "cos": math.cos, "tan": math.tan,
    "asin": math.asin, "acos": math.acos, "atan": math.atan,
    "atan2": math.atan2, "sqrt": math.sqrt, "fabs": abs, "abs": abs,
    "exp": math.exp, "log": math.log, "log2": math.log2,
    "log10": math.log10, "pow": math.pow, "floor": math.floor,
    "ceil": math.ceil, "fmod": math.fmod, "hypot": math.hypot,
    "sinf": math.sin, "cosf": math.cos, "tanf": math.tan,
    "sqrtf": math.sqrt, "fabsf": abs, "expf": math.exp, "logf": math.log,
}

_INT_TYPES = {
    "char", "signed char", "unsigned char", "short", "unsigned short",
    "int", "unsigned int", "unsigned", "long", "unsigned long", "long long",
}

_NP_DTYPE = {
    "float": np.float32,
    "double": np.float64,
    "long double": np.float64,
}


def _np_dtype(ctype: str):
    if ctype in _NP_DTYPE:
        return _NP_DTYPE[ctype]
    return np.int64


@dataclass
class ExecutionProfile:
    """Per-statement execution counts gathered by one interpreter run."""

    counts: Dict[int, int] = field(default_factory=dict)
    return_value: Optional[Value] = None
    steps: int = 0

    def count(self, sid: int) -> int:
        return self.counts.get(sid, 0)


class Interpreter:
    """Executes one program; reusable across function invocations."""

    def __init__(self, program: ir.Program, max_steps: int = 20_000_000):
        self.program = program
        self.max_steps = max_steps
        self.globals: Dict[str, Value] = {}
        self.profile = ExecutionProfile()
        self._steps = 0
        self._init_globals()

    def _init_globals(self) -> None:
        for name, decl in self.program.globals.items():
            if decl.is_array:
                self.globals[name] = np.zeros(decl.dims, dtype=_np_dtype(decl.ctype))
            elif decl.init is not None:
                value = self._eval(decl.init, {})
                self.globals[name] = self._coerce(value, decl.ctype)
            else:
                self.globals[name] = 0 if decl.ctype in _INT_TYPES else 0.0

    # -- public API ---------------------------------------------------------

    def run(self, function_name: str, args: Sequence[Value] = ()) -> ExecutionProfile:
        """Run a function to completion; returns the accumulated profile."""
        func = self.program.entry(function_name)
        try:
            result = self._call_function(func, list(args))
        except _ReturnSignal as signal:  # pragma: no cover - top-level return
            result = signal.value
        self.profile.return_value = result
        self.profile.steps = self._steps
        return self.profile

    # -- execution ---------------------------------------------------------------

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise InterpreterLimitExceeded(
                f"interpreter exceeded {self.max_steps} steps"
            )

    def _call_function(self, func: ir.Function, args: List[Value]) -> Optional[Value]:
        if len(args) != len(func.params):
            raise InterpreterError(
                f"{func.name}: expected {len(func.params)} arguments, got {len(args)}"
            )
        frame: Dict[str, Value] = {}
        types: Dict[str, str] = {}
        for param, arg in zip(func.params, args):
            if param.is_pointer:
                if not isinstance(arg, np.ndarray):
                    raise InterpreterError(
                        f"{func.name}: parameter {param.name!r} expects an array"
                    )
                frame[param.name] = arg
            else:
                frame[param.name] = self._coerce(arg, param.ctype)
            types[param.name] = param.ctype
        try:
            self._exec_block(func.body, frame, types)
        except _ReturnSignal as signal:
            return signal.value
        return None

    def _exec_block(self, block: ir.Block, frame: Dict[str, Value], types: Dict[str, str]) -> None:
        self._record(block)
        for stmt in block.stmts:
            self._exec_stmt(stmt, frame, types)

    def _exec_stmt(self, stmt: ir.Stmt, frame: Dict[str, Value], types: Dict[str, str]) -> None:
        self._tick()
        if isinstance(stmt, ir.Block):
            self._exec_block(stmt, frame, types)
            return
        self._record(stmt)
        if isinstance(stmt, ir.Decl):
            types[stmt.name] = stmt.ctype
            if stmt.is_array:
                frame[stmt.name] = np.zeros(stmt.dims, dtype=_np_dtype(stmt.ctype))
            elif stmt.init is not None:
                frame[stmt.name] = self._coerce(self._eval(stmt.init, frame), stmt.ctype)
            else:
                frame[stmt.name] = 0 if stmt.ctype in _INT_TYPES else 0.0
        elif isinstance(stmt, ir.Assign):
            value = self._eval(stmt.rhs, frame)
            self._store(stmt.lhs, value, frame, types)
        elif isinstance(stmt, ir.CallStmt):
            self._eval(stmt.call, frame)
        elif isinstance(stmt, ir.ExprStmt):
            self._eval(stmt.expr, frame)
        elif isinstance(stmt, ir.ForLoop):
            lower = self._eval(stmt.lower, frame)
            upper = self._eval(stmt.upper, frame)
            types.setdefault(stmt.var, "int")
            i = int(lower)
            while i < upper:
                self._tick()
                frame[stmt.var] = i
                self._exec_block(stmt.body, frame, types)
                i += stmt.step
            frame[stmt.var] = i
        elif isinstance(stmt, ir.WhileLoop):
            while self._truthy(self._eval(stmt.cond, frame)):
                self._tick()
                self._exec_block(stmt.body, frame, types)
        elif isinstance(stmt, ir.If):
            if self._truthy(self._eval(stmt.cond, frame)):
                self._exec_block(stmt.then_block, frame, types)
            elif stmt.else_block is not None:
                self._exec_block(stmt.else_block, frame, types)
        elif isinstance(stmt, ir.Return):
            value = self._eval(stmt.expr, frame) if stmt.expr is not None else None
            raise _ReturnSignal(value)
        else:  # pragma: no cover
            raise InterpreterError(f"unknown statement {type(stmt).__name__}")

    def _record(self, stmt: ir.Stmt) -> None:
        self.profile.counts[stmt.sid] = self.profile.counts.get(stmt.sid, 0) + 1

    # -- expressions -----------------------------------------------------------------

    def _eval(self, expr: ir.Expr, frame: Dict[str, Value]) -> Value:
        if isinstance(expr, ir.Const):
            return expr.value
        if isinstance(expr, ir.VarRef):
            return self._lookup(expr.name, frame)
        if isinstance(expr, ir.ArrayRef):
            array = self._lookup(expr.name, frame)
            if not isinstance(array, np.ndarray):
                raise InterpreterError(f"{expr.name!r} is not an array")
            idx = tuple(int(self._eval(i, frame)) for i in expr.indices)
            self._check_bounds(expr.name, array, idx)
            return array[idx].item()
        if isinstance(expr, ir.UnOp):
            value = self._eval(expr.operand, frame)
            if expr.op == "-":
                return -value
            if expr.op == "!":
                return int(not self._truthy(value))
            if expr.op == "~":
                return ~int(value)
            raise InterpreterError(f"unknown unary {expr.op!r}")
        if isinstance(expr, ir.Cast):
            value = self._eval(expr.operand, frame)
            return self._coerce(value, expr.ctype)
        if isinstance(expr, ir.BinOp):
            return self._binop(expr, frame)
        if isinstance(expr, ir.CallExpr):
            return self._call(expr, frame)
        raise InterpreterError(f"unknown expression {type(expr).__name__}")

    def _binop(self, expr: ir.BinOp, frame: Dict[str, Value]) -> Value:
        op = expr.op
        if op == "&&":
            return int(
                self._truthy(self._eval(expr.left, frame))
                and self._truthy(self._eval(expr.right, frame))
            )
        if op == "||":
            return int(
                self._truthy(self._eval(expr.left, frame))
                or self._truthy(self._eval(expr.right, frame))
            )
        left = self._eval(expr.left, frame)
        right = self._eval(expr.right, frame)
        both_int = isinstance(left, int) and isinstance(right, int)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise InterpreterError("division by zero")
            if both_int:
                return _c_div(left, right)
            return left / right
        if op == "%":
            if right == 0:
                raise InterpreterError("modulo by zero")
            return _c_mod(int(left), int(right))
        if op == "<":
            return int(left < right)
        if op == "<=":
            return int(left <= right)
        if op == ">":
            return int(left > right)
        if op == ">=":
            return int(left >= right)
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        if op == "<<":
            return int(left) << int(right)
        if op == ">>":
            return int(left) >> int(right)
        if op == "&":
            return int(left) & int(right)
        if op == "|":
            return int(left) | int(right)
        if op == "^":
            return int(left) ^ int(right)
        raise InterpreterError(f"unknown operator {op!r}")

    def _call(self, call: ir.CallExpr, frame: Dict[str, Value]) -> Optional[Value]:
        if call.name in _BUILTINS:
            args = [self._eval(a, frame) for a in call.args]
            return _BUILTINS[call.name](*args)
        if call.name in self.program.functions:
            func = self.program.functions[call.name]
            args: List[Value] = []
            for arg, param in zip(call.args, func.params):
                if param.is_pointer:
                    if not isinstance(arg, ir.VarRef):
                        raise InterpreterError(
                            f"array argument to {call.name} must be a name"
                        )
                    value = self._lookup(arg.name, frame)
                else:
                    value = self._eval(arg, frame)
                args.append(value)
            return self._call_function(func, args)
        raise InterpreterError(f"call to undefined function {call.name!r}")

    # -- storage --------------------------------------------------------------------------

    def _lookup(self, name: str, frame: Dict[str, Value]) -> Value:
        if name in frame:
            return frame[name]
        if name in self.globals:
            return self.globals[name]
        raise InterpreterError(f"undefined variable {name!r}")

    def _store(
        self,
        lhs: ir.Expr,
        value: Value,
        frame: Dict[str, Value],
        types: Dict[str, str],
    ) -> None:
        if isinstance(lhs, ir.VarRef):
            ctype = types.get(lhs.name)
            if lhs.name in frame:
                frame[lhs.name] = self._coerce(value, ctype)
            elif lhs.name in self.globals:
                decl = self.program.globals.get(lhs.name)
                gtype = decl.ctype if decl is not None else ctype
                self.globals[lhs.name] = self._coerce(value, gtype)
            else:
                # Implicit definition (benchmark kernels always declare, but
                # be forgiving for tests).
                frame[lhs.name] = self._coerce(value, ctype)
        elif isinstance(lhs, ir.ArrayRef):
            array = self._lookup(lhs.name, frame)
            if not isinstance(array, np.ndarray):
                raise InterpreterError(f"{lhs.name!r} is not an array")
            idx = tuple(int(self._eval(i, frame)) for i in lhs.indices)
            self._check_bounds(lhs.name, array, idx)
            array[idx] = value
        else:  # pragma: no cover
            raise InterpreterError(f"invalid assignment target {lhs!r}")

    def _check_bounds(self, name: str, array: np.ndarray, idx: Tuple[int, ...]) -> None:
        if len(idx) != array.ndim:
            raise InterpreterError(
                f"{name}: {len(idx)} subscripts on {array.ndim}-D array"
            )
        for axis, (i, dim) in enumerate(zip(idx, array.shape)):
            if i < 0 or i >= dim:
                raise InterpreterError(
                    f"{name}: index {i} out of bounds for axis {axis} (size {dim})"
                )

    @staticmethod
    def _coerce(value: Value, ctype: Optional[str]) -> Value:
        if value is None:
            raise InterpreterError("void value used in assignment")
        if isinstance(value, np.generic):
            value = value.item()
        if ctype is None:
            return value
        if ctype in _INT_TYPES:
            return int(value)
        if ctype in ("float", "double", "long double"):
            return float(value)
        return value

    @staticmethod
    def _truthy(value: Value) -> bool:
        return bool(value)


def _c_div(a: int, b: int) -> int:
    """C99 integer division (truncation toward zero)."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _c_mod(a: int, b: int) -> int:
    """C99 remainder: ``a == (a/b)*b + a%b``."""
    return a - _c_div(a, b) * b


def run_function(
    program: ir.Program,
    function_name: str,
    args: Sequence[Value] = (),
    max_steps: int = 20_000_000,
) -> ExecutionProfile:
    """Convenience wrapper: fresh interpreter, run one function."""
    return Interpreter(program, max_steps=max_steps).run(function_name, args)
