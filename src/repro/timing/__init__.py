"""High-level timing models.

The paper annotates AHTG leaves with execution costs "automatically
extracted by target platform simulation", once per processor class
(Section III-A). This subpackage substitutes that step with:

* :mod:`repro.timing.costmodel` — per-operation reference cycle tables
  (same-ISA platforms share one table; classes differ by clock and an
  optional CPI scale),
* :mod:`repro.timing.interp` — a concrete interpreter executing the IR to
  obtain exact per-statement execution counts (the profiling substitute),
* :mod:`repro.timing.estimator` — combines both into per-statement,
  per-class cost annotations consumed by the AHTG builder.
"""

from repro.timing.costmodel import CostModel, OperationCosts
from repro.timing.interp import InterpreterError, InterpreterLimitExceeded, run_function
from repro.timing.estimator import CostAnnotation, CostDatabase, annotate_costs

__all__ = [
    "CostAnnotation",
    "CostDatabase",
    "CostModel",
    "InterpreterError",
    "InterpreterLimitExceeded",
    "OperationCosts",
    "annotate_costs",
    "run_function",
]
