"""Timing-model calibration from measured samples.

The paper extracts statement costs "by target platform simulation"; when
such measurements exist (per-statement cycle counts from a cycle-accurate
simulator or hardware counters), this module fits the per-operation cycle
table of :class:`repro.timing.costmodel.OperationCosts` to them by
non-negative least squares, so the high-level model can be recalibrated
per processor class instead of relying on the shipped ARM9-like defaults.

Each sample pairs a statement with a measured per-execution cycle count;
the statement's cost is linear in the operation-cost parameters, so the
fit is a small linear regression whose features are *operation counts*.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cfront import ir
from repro.cfront.defuse import PURE_BUILTINS
from repro.timing.costmodel import CostModel, OperationCosts

#: Calibratable parameters, in a stable order.
PARAMETERS: Tuple[str, ...] = tuple(
    f.name for f in fields(OperationCosts)
)

_FLOAT_TYPES = ("float", "double", "long double")


@dataclass(frozen=True)
class CalibrationSample:
    """One measurement: a statement and its per-execution cycles.

    ``counts`` may carry precomputed feature counts (operation counts per
    parameter); when absent they are derived from the statement with the
    ``type_env`` passed to :func:`calibrate` — supplying them avoids
    type-environment mismatches between measurement and fit.
    """

    stmt: ir.Stmt
    measured_cycles: float
    counts: Optional[Tuple[float, ...]] = None


@dataclass
class CalibrationResult:
    """Fitted operation costs and fit quality."""

    costs: OperationCosts
    residual_rms: float
    samples: int

    def relative_error(self, model_cycles: float, measured: float) -> float:
        return abs(model_cycles - measured) / max(measured, 1e-9)


def operation_counts(
    stmt: ir.Stmt, type_env: Optional[Dict[str, str]] = None
) -> Dict[str, float]:
    """How many times each :class:`OperationCosts` parameter applies to
    one execution of ``stmt`` (the feature vector of the regression)."""
    model = CostModel(type_env=type_env)
    counts: Dict[str, float] = {name: 0.0 for name in PARAMETERS}

    def is_float(expr: ir.Expr) -> bool:
        return model.expr_type(expr) in _FLOAT_TYPES

    def visit_expr(expr: ir.Expr) -> None:
        if isinstance(expr, ir.Const):
            return
        if isinstance(expr, ir.VarRef):
            counts["load"] += 1
            return
        if isinstance(expr, ir.ArrayRef):
            counts["load"] += 1
            counts["address"] += len(expr.indices)
            for index in expr.indices:
                visit_expr(index)
            return
        if isinstance(expr, ir.UnOp):
            counts["float_alu" if is_float(expr.operand) else "int_alu"] += 1
            visit_expr(expr.operand)
            return
        if isinstance(expr, ir.Cast):
            counts["int_alu"] += 1
            visit_expr(expr.operand)
            return
        if isinstance(expr, ir.BinOp):
            flt = is_float(expr.left) or is_float(expr.right)
            if expr.op == "*":
                counts["float_mul" if flt else "int_mul"] += 1
            elif expr.op in ("/", "%"):
                counts["float_div" if flt else "int_div"] += 1
            else:
                counts["float_alu" if flt else "int_alu"] += 1
            visit_expr(expr.left)
            visit_expr(expr.right)
            return
        if isinstance(expr, ir.CallExpr):
            if expr.name in PURE_BUILTINS:
                counts["builtin_math"] += 1
            else:
                counts["call_overhead"] += 1
            for arg in expr.args:
                visit_expr(arg)
            return
        raise TypeError(f"unknown expression {type(expr).__name__}")

    if isinstance(stmt, ir.Assign):
        visit_expr(stmt.rhs)
        if isinstance(stmt.lhs, ir.ArrayRef):
            counts["address"] += len(stmt.lhs.indices)
            for index in stmt.lhs.indices:
                visit_expr(index)
        counts["store"] += 1
    elif isinstance(stmt, ir.Decl) and stmt.init is not None:
        visit_expr(stmt.init)
        counts["store"] += 1
    elif isinstance(stmt, (ir.CallStmt, ir.ExprStmt, ir.Return)):
        for expr in stmt.expressions():
            if expr is not None:
                visit_expr(expr)
    elif isinstance(stmt, ir.ForLoop):
        counts["loop_overhead"] += 1
    elif isinstance(stmt, (ir.WhileLoop, ir.If)):
        for expr in stmt.expressions():
            visit_expr(expr)
        counts["branch"] += 1
    return counts


def calibrate(
    samples: Sequence[CalibrationSample],
    type_env: Optional[Dict[str, str]] = None,
    ridge: float = 1e-6,
) -> CalibrationResult:
    """Fit :class:`OperationCosts` to measured per-execution cycles.

    Uses ridge-regularized least squares clipped at zero (costs cannot be
    negative); parameters that never occur in the samples keep the default
    values.
    """
    if not samples:
        raise ValueError("calibration needs at least one sample")
    features = np.zeros((len(samples), len(PARAMETERS)))
    target = np.zeros(len(samples))
    for row, sample in enumerate(samples):
        if sample.counts is not None:
            features[row, :] = sample.counts
        else:
            counts = operation_counts(sample.stmt, type_env)
            for col, name in enumerate(PARAMETERS):
                features[row, col] = counts[name]
        target[row] = sample.measured_cycles

    defaults = OperationCosts()
    present = features.any(axis=0)
    x = features[:, present]
    # non-negative least squares: exact on consistent measurements and
    # well-behaved on noisy ones (costs can never be negative)
    from scipy.optimize import nnls

    weights, _residual = nnls(x, target)
    del ridge  # kept in the signature for API stability

    values = {name: getattr(defaults, name) for name in PARAMETERS}
    fitted = iter(weights)
    for name, used in zip(PARAMETERS, present):
        if used:
            values[name] = float(next(fitted))
    costs = OperationCosts(**values)

    predicted = features[:, present] @ weights
    residual_rms = float(np.sqrt(np.mean((predicted - target) ** 2)))
    return CalibrationResult(costs=costs, residual_rms=residual_rms, samples=len(samples))


def samples_from_profile(
    program: ir.Program,
    function: str,
    reference_costs: OperationCosts,
    noise: float = 0.0,
    seed: int = 0,
) -> List[CalibrationSample]:
    """Synthesize calibration samples from a program using a reference
    cost table (optionally with multiplicative noise) — the stand-in for
    a cycle-accurate measurement run."""
    func = program.entry(function)
    type_env: Dict[str, str] = {}
    for decl in program.globals.values():
        type_env[decl.name] = decl.ctype
    for stmt in func.body.walk():
        if isinstance(stmt, ir.Decl):
            type_env[stmt.name] = stmt.ctype
    model = CostModel(costs=reference_costs, type_env=type_env)
    rng = np.random.default_rng(seed)
    samples: List[CalibrationSample] = []
    for stmt in func.body.walk():
        if isinstance(stmt, ir.Block):
            continue
        cycles = model.stmt_cycles(stmt)
        if cycles <= 0:
            continue
        factor = 1.0 + noise * rng.standard_normal() if noise else 1.0
        counts = operation_counts(stmt, type_env)
        feature_row = tuple(counts[name] for name in PARAMETERS)
        samples.append(
            CalibrationSample(stmt, cycles * max(0.1, factor), feature_row)
        )
    return samples
