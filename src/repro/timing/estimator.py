"""Per-statement, per-class cost annotation.

Combines the interpreter's execution counts with the per-operation cycle
model into the cost database the AHTG builder consumes. All costs are
*whole-run totals* (see DESIGN.md): a statement's total cycles are its
per-execution cycles multiplied by how often it ran, so costs compose
additively across hierarchy levels and parallel solution execution times
remain comparable between levels — the property the hierarchical ILP of
the paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Union

from repro.cfront import ir
from repro.cfront.loops import trip_count
from repro.platforms.description import ProcessorClass
from repro.timing.costmodel import CostModel
from repro.timing.interp import ExecutionProfile, run_function


@dataclass(frozen=True)
class CostAnnotation:
    """Whole-run cost of one statement (its own work, children excluded)."""

    exec_count: float
    cycles_per_exec: float

    @property
    def total_cycles(self) -> float:
        return self.exec_count * self.cycles_per_exec


class CostDatabase:
    """Maps statement ids to :class:`CostAnnotation` with subtree queries."""

    def __init__(self, annotations: Dict[int, CostAnnotation], cost_model: CostModel):
        self.annotations = annotations
        self.cost_model = cost_model
        self._subtree_cache: Dict[int, float] = {}

    def annotation(self, stmt: ir.Stmt) -> CostAnnotation:
        return self.annotations.get(stmt.sid, CostAnnotation(0.0, 0.0))

    def exec_count(self, stmt: ir.Stmt) -> float:
        return self.annotation(stmt).exec_count

    def own_cycles(self, stmt: ir.Stmt) -> float:
        return self.annotation(stmt).total_cycles

    def subtree_cycles(self, stmt: ir.Stmt) -> float:
        """Whole-run cycles of a statement including all nested statements."""
        cached = self._subtree_cache.get(stmt.sid)
        if cached is not None:
            return cached
        total = self.own_cycles(stmt)
        for child in stmt.substatements():
            total += self.subtree_cycles(child)
        self._subtree_cache[stmt.sid] = total
        return total

    def subtree_time_us(self, stmt: ir.Stmt, proc_class: ProcessorClass) -> float:
        """Whole-run execution time of the subtree on one core of a class."""
        return proc_class.time_us(self.subtree_cycles(stmt))


def annotate_costs(
    program: ir.Program,
    function: Union[str, ir.Function],
    profile: Optional[ExecutionProfile] = None,
    cost_model: Optional[CostModel] = None,
    env: Optional[Mapping[str, Union[int, float]]] = None,
    max_steps: int = 20_000_000,
) -> CostDatabase:
    """Build the cost database for one function.

    Execution counts come from ``profile`` if given, otherwise from running
    the concrete interpreter (the profiling substitute); if interpretation
    is impossible (e.g. the function needs arguments), static estimation
    from trip counts is used with 50/50 branch probabilities.
    """
    func = program.entry(function) if isinstance(function, str) else function
    model = cost_model or CostModel.for_function(program, func)

    if profile is None:
        if func.params:
            counts = _static_counts(func, env or dict(program.constants))
        else:
            profile = run_function(program, func.name, max_steps=max_steps)
            counts = dict(profile.counts)
    else:
        counts = dict(profile.counts)

    annotations: Dict[int, CostAnnotation] = {}
    for stmt in func.body.walk():
        exec_count = float(counts.get(stmt.sid, 0))
        per_exec = model.stmt_cycles(stmt)
        if isinstance(stmt, (ir.ForLoop, ir.WhileLoop)) and exec_count > 0:
            # Loop control overhead accrues once per *iteration*; fold the
            # iterations-per-entry factor into the per-execution cost so
            # exec_count keeps meaning "entries" (the AHTG's EC).
            body_count = float(counts.get(stmt.body.sid, 0))
            per_exec *= body_count / exec_count
        annotations[stmt.sid] = CostAnnotation(exec_count, per_exec)
    return CostDatabase(annotations, model)


def _static_counts(
    func: ir.Function, env: Mapping[str, Union[int, float]]
) -> Dict[int, float]:
    """Static execution-count estimation (trip counts, 50/50 branches)."""
    counts: Dict[int, float] = {}

    def visit(stmt: ir.Stmt, count: float) -> None:
        counts[stmt.sid] = counts.get(stmt.sid, 0.0) + count
        if isinstance(stmt, ir.Block):
            for child in stmt.stmts:
                visit(child, count)
        elif isinstance(stmt, ir.ForLoop):
            trips = trip_count(stmt, env)
            body_count = count * (trips if trips is not None else 16)
            visit(stmt.body, body_count)
        elif isinstance(stmt, ir.WhileLoop):
            body_count = count * 16  # unknown loop: assume a modest trip count
            visit(stmt.body, body_count)
        elif isinstance(stmt, ir.If):
            visit(stmt.then_block, count * 0.5)
            if stmt.else_block is not None:
                visit(stmt.else_block, count * 0.5)

    visit(func.body, 1.0)
    return counts
