"""A small library of real-world-inspired platform descriptions.

The paper's introduction motivates heterogeneous same-ISA MPSoCs with
three industrial designs; these presets model them at the granularity the
tool flow needs (classes × clocks; the CPI scale folds micro-architecture
differences into an effective clock, as the paper's high-level timing
model does):

* **NVIDIA Tegra 3** — 4 Cortex-A9 performance cores plus one
  low-power "shadow" core at a lower clock (variable-SMP).
* **TI OMAP 4** — 2 Cortex-A9 application cores plus 2 Cortex-M3
  cores for task offloading (far slower per clock: higher CPI scale).
* **ARM big.LITTLE (Cortex-A15 + Cortex-A7)** — the paper cites its
  ≈2.5x average performance discrepancy; see also
  :func:`repro.platforms.presets.big_little`.
"""

from __future__ import annotations

from repro.platforms.description import Interconnect, Platform, ProcessorClass

_SOC_BUS = Interconnect(bandwidth_bytes_per_us=3200.0, latency_us=0.3)


def tegra3(scenario: str = "accelerator") -> Platform:
    """NVIDIA Tegra 3-style variable-SMP: 4 fast A9s + 1 LP companion core."""
    main = "companion" if scenario in ("accelerator", "I") else "a9"
    return Platform(
        name=f"tegra3-{scenario}",
        processor_classes=(
            ProcessorClass("companion", 500.0, 1),
            ProcessorClass("a9", 1300.0, 4),
        ),
        interconnect=_SOC_BUS,
        task_creation_overhead_us=10.0,
        main_class_name=main,
    )


def omap4(scenario: str = "accelerator") -> Platform:
    """TI OMAP4-style: 2 Cortex-A9 + 2 Cortex-M3 offload cores.

    The M3s run at 200 MHz and execute the same C code far less
    efficiently (modelled with a CPI scale of 1.5).
    """
    main = "m3" if scenario in ("accelerator", "I") else "a9"
    return Platform(
        name=f"omap4-{scenario}",
        processor_classes=(
            ProcessorClass("m3", 200.0, 2, cpi_scale=1.5),
            ProcessorClass("a9", 1000.0, 2),
        ),
        interconnect=_SOC_BUS,
        task_creation_overhead_us=15.0,
        main_class_name=main,
    )


def exynos_big_little(scenario: str = "accelerator") -> Platform:
    """Exynos-5-style big.LITTLE: 4x A15 @ 1600 + 4x A7 @ 1200 (CPI 1.9).

    The effective throughput gap lands near the paper's quoted ~2.5x.
    """
    main = "a7" if scenario in ("accelerator", "I") else "a15"
    return Platform(
        name=f"exynos-bl-{scenario}",
        processor_classes=(
            ProcessorClass("a7", 1200.0, 4, cpi_scale=1.9),
            ProcessorClass("a15", 1600.0, 4),
        ),
        interconnect=_SOC_BUS,
        task_creation_overhead_us=8.0,
        main_class_name=main,
    )


ALL_PRESETS = {
    "tegra3": tegra3,
    "omap4": omap4,
    "exynos-big-little": exynos_big_little,
}
