"""Platform model: processor classes, interconnect, derived quantities.

Unit conventions used throughout the repository:

* **cycles** — abstract processor cycles produced by the timing model
  (:mod:`repro.timing`); identical across classes of a same-ISA platform
  up to the per-class ``cpi_scale`` factor.
* **time** — microseconds. A statement costing ``k`` cycles takes
  ``k * cpi_scale / frequency_mhz`` µs on a class (cycles / MHz = µs).
* **communication** — bytes, converted to µs by the
  :class:`Interconnect` model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ProcessorClass:
    """A group of identical processing units of a heterogeneous MPSoC.

    The paper maps *tasks to processor classes* (Section IV-H); a class
    stands for all cores of one type (e.g. the two 500 MHz Cortex-A cores
    of platform configuration (A)).

    Attributes:
        name: unique class identifier (e.g. ``"arm500"``).
        frequency_mhz: core clock of every unit in the class.
        count: number of processing units in the class.
        cpi_scale: multiplier on the cycle counts of the common timing
            model; models micro-architectural differences beyond clock
            speed (pipeline depth etc.). 1.0 = reference pipeline.
        energy_per_cycle_nj: energy per cycle, used only by the optional
            energy objective (paper future work).
    """

    name: str
    frequency_mhz: float
    count: int
    cpi_scale: float = 1.0
    energy_per_cycle_nj: float = 1.0

    def __post_init__(self) -> None:
        if self.frequency_mhz <= 0:
            raise ValueError(f"class {self.name!r}: frequency must be positive")
        if self.count < 1:
            raise ValueError(f"class {self.name!r}: need at least one core")
        if self.cpi_scale <= 0:
            raise ValueError(f"class {self.name!r}: cpi_scale must be positive")

    def time_us(self, cycles: float) -> float:
        """Execution time in µs of ``cycles`` reference cycles on this class."""
        return cycles * self.cpi_scale / self.frequency_mhz

    @property
    def effective_mhz(self) -> float:
        """Clock corrected by CPI scale — the class's real throughput rate."""
        return self.frequency_mhz / self.cpi_scale


@dataclass(frozen=True)
class Interconnect:
    """Shared-bus model connecting all cores (and the L2 in the paper).

    Transfer time of ``n`` bytes = ``latency_us + n / bandwidth_bytes_per_us``.
    """

    name: str = "shared-bus"
    bandwidth_bytes_per_us: float = 400.0
    latency_us: float = 1.0

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_us <= 0:
            raise ValueError("bus bandwidth must be positive")
        if self.latency_us < 0:
            raise ValueError("bus latency cannot be negative")

    def transfer_time_us(self, num_bytes: float) -> float:
        """Time to move ``num_bytes`` between two tasks on different cores."""
        if num_bytes <= 0:
            return 0.0
        return self.latency_us + num_bytes / self.bandwidth_bytes_per_us


@dataclass(frozen=True)
class Platform:
    """A heterogeneous MPSoC: processor classes + interconnect + overheads.

    Attributes:
        name: platform identifier.
        processor_classes: the classes, in a stable order.
        interconnect: shared bus model.
        task_creation_overhead_us: time charged per task spawn (the
            paper's configurable ``TCO``).
        main_class_name: class hosting the sequential "main" task; the
            measurement baseline is sequential execution on one core of
            this class (paper Section VI-A).
    """

    name: str
    processor_classes: Tuple[ProcessorClass, ...]
    interconnect: Interconnect = field(default_factory=Interconnect)
    task_creation_overhead_us: float = 25.0
    main_class_name: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.processor_classes:
            raise ValueError("platform needs at least one processor class")
        names = [pc.name for pc in self.processor_classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate processor class names: {names}")
        if self.main_class_name is not None and self.main_class_name not in names:
            raise ValueError(f"unknown main class {self.main_class_name!r}")
        if self.task_creation_overhead_us < 0:
            raise ValueError("task creation overhead cannot be negative")

    # -- lookups ---------------------------------------------------------------

    def get_class(self, name: str) -> ProcessorClass:
        for pc in self.processor_classes:
            if pc.name == name:
                return pc
        raise KeyError(f"no processor class named {name!r} in platform {self.name!r}")

    @property
    def main_class(self) -> ProcessorClass:
        """Class of the main processor (defaults to the slowest class)."""
        if self.main_class_name is not None:
            return self.get_class(self.main_class_name)
        return min(self.processor_classes, key=lambda pc: pc.effective_mhz)

    def with_main_class(self, name: str) -> "Platform":
        """Copy of this platform with a different main-processor class."""
        self.get_class(name)  # validate
        return replace(self, main_class_name=name)

    # -- derived quantities -------------------------------------------------------

    @property
    def total_cores(self) -> int:
        return sum(pc.count for pc in self.processor_classes)

    @property
    def is_homogeneous(self) -> bool:
        rates = {pc.effective_mhz for pc in self.processor_classes}
        return len(rates) == 1

    def num_procs(self, class_name: str) -> int:
        """``NUMPROCS_c`` of the ILP model (Eq. 15)."""
        return self.get_class(class_name).count

    def theoretical_speedup(self, main_class_name: Optional[str] = None) -> float:
        """The paper's dashed-line limit: ``sum(count_c * f_c) / f_main``.

        For configuration (A) with a 100 MHz main core this yields
        ``(100 + 250 + 2*500)/100 = 13.5``; with the 500 MHz main core,
        ``2.7`` — exactly the footnoted values of Section VI.
        """
        main = (
            self.get_class(main_class_name) if main_class_name else self.main_class
        )
        aggregate = sum(pc.count * pc.effective_mhz for pc in self.processor_classes)
        return aggregate / main.effective_mhz

    def fingerprint(self) -> str:
        """Content hash of everything that influences a parallelization run.

        Two :class:`Platform` objects that merely share a ``name`` but
        differ in class specs, interconnect or overheads produce different
        fingerprints — use this (not ``name``) to key caches of results
        computed *on* a platform.
        """
        import hashlib

        payload = (
            self.name,
            tuple(
                (pc.name, pc.frequency_mhz, pc.count, pc.cpi_scale,
                 pc.energy_per_cycle_nj)
                for pc in self.processor_classes
            ),
            (
                self.interconnect.name,
                self.interconnect.bandwidth_bytes_per_us,
                self.interconnect.latency_us,
            ),
            self.task_creation_overhead_us,
            self.main_class_name,
        )
        return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()

    def class_names(self) -> List[str]:
        return [pc.name for pc in self.processor_classes]

    def cores(self) -> Iterator[Tuple[str, int]]:
        """Iterate concrete cores as ``(class_name, local_index)`` pairs."""
        for pc in self.processor_classes:
            for i in range(pc.count):
                yield pc.name, i

    def describe(self) -> str:
        """Human-readable one-paragraph description."""
        parts = [
            f"{pc.count}x {pc.frequency_mhz:g} MHz ({pc.name})"
            for pc in self.processor_classes
        ]
        return (
            f"Platform {self.name!r}: {', '.join(parts)}; "
            f"bus {self.interconnect.bandwidth_bytes_per_us:g} B/µs "
            f"(+{self.interconnect.latency_us:g} µs latency); "
            f"TCO {self.task_creation_overhead_us:g} µs; "
            f"main class {self.main_class.name!r}"
        )
