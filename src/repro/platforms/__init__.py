"""Heterogeneous MPSoC platform descriptions.

Plays the role of the platform-description files of [18] (Pyka et al.,
LCTES 2010) in the paper's tool flow: processor classes with per-class
clock frequencies and core counts, the shared interconnect, and the task
creation overhead. Presets reproduce the paper's evaluation platforms
(configuration (A): 100/250/500/500 MHz and (B): 200/200/500/500 MHz).
"""

from repro.platforms.description import Interconnect, Platform, ProcessorClass
from repro.platforms.presets import (
    big_little,
    config_a,
    config_b,
    homogeneous,
)

__all__ = [
    "Interconnect",
    "Platform",
    "ProcessorClass",
    "big_little",
    "config_a",
    "config_b",
    "homogeneous",
]
