"""Preset platforms matching the paper's evaluation section.

Both evaluation platforms are 4-core same-ISA ARM MPSoCs connected by a
high-performance bus with a shared L2 (Section VI):

* **Configuration (A)** — 1x 100 MHz, 1x 250 MHz, 2x 500 MHz. Large
  performance variance; theoretical speedup limits 13.5x (scenario I,
  100 MHz main core) and 2.7x (scenario II, 500 MHz main core).
* **Configuration (B)** — 2x 200 MHz, 2x 500 MHz. Approximates ARM
  big.LITTLE's ~2.5x performance discrepancy; limits 7x / 2.8x.
"""

from __future__ import annotations

from typing import Optional

from repro.platforms.description import Interconnect, Platform, ProcessorClass

#: Default bus: 400 bytes/µs with 1 µs setup latency — fast relative to the
#: benchmark kernels' compute so that data-parallel kernels can approach the
#: theoretical limit, yet costly enough to penalize communication-heavy
#: solutions (latnrm, spectral), as in the paper.
_DEFAULT_BUS = Interconnect()


def config_a(
    scenario: str = "accelerator",
    task_creation_overhead_us: float = 25.0,
) -> Platform:
    """Paper platform configuration (A): 100/250/500/500 MHz.

    ``scenario`` selects the main processor per Section VI-A:
    ``"accelerator"`` (I) uses the slow 100 MHz core as main processor;
    ``"slower-cores"`` (II) uses a fast 500 MHz core.
    """
    main = _main_for_scenario(scenario, slow="arm100", fast="arm500")
    return Platform(
        name=f"config-a-{scenario}",
        processor_classes=(
            ProcessorClass("arm100", 100.0, 1),
            ProcessorClass("arm250", 250.0, 1),
            ProcessorClass("arm500", 500.0, 2),
        ),
        interconnect=_DEFAULT_BUS,
        task_creation_overhead_us=task_creation_overhead_us,
        main_class_name=main,
    )


def config_b(
    scenario: str = "accelerator",
    task_creation_overhead_us: float = 25.0,
) -> Platform:
    """Paper platform configuration (B): 200/200/500/500 MHz (big.LITTLE-like)."""
    main = _main_for_scenario(scenario, slow="arm200", fast="arm500")
    return Platform(
        name=f"config-b-{scenario}",
        processor_classes=(
            ProcessorClass("arm200", 200.0, 2),
            ProcessorClass("arm500", 500.0, 2),
        ),
        interconnect=_DEFAULT_BUS,
        task_creation_overhead_us=task_creation_overhead_us,
        main_class_name=main,
    )


def homogeneous(
    num_cores: int = 4,
    frequency_mhz: float = 500.0,
    task_creation_overhead_us: float = 25.0,
) -> Platform:
    """A uniform platform, as targeted by the baseline approach [6]."""
    return Platform(
        name=f"homogeneous-{num_cores}x{frequency_mhz:g}",
        processor_classes=(
            ProcessorClass("core", frequency_mhz, num_cores),
        ),
        interconnect=_DEFAULT_BUS,
        task_creation_overhead_us=task_creation_overhead_us,
    )


def big_little(
    big_cores: int = 2,
    little_cores: int = 2,
    big_mhz: float = 1500.0,
    little_mhz: float = 600.0,
    task_creation_overhead_us: float = 25.0,
    scenario: str = "accelerator",
) -> Platform:
    """An ARM big.LITTLE-style platform (Cortex-A15 + Cortex-A7 flavour)."""
    main = _main_for_scenario(scenario, slow="little", fast="big")
    return Platform(
        name="big-little",
        processor_classes=(
            ProcessorClass("little", little_mhz, little_cores),
            ProcessorClass("big", big_mhz, big_cores),
        ),
        interconnect=_DEFAULT_BUS,
        task_creation_overhead_us=task_creation_overhead_us,
        main_class_name=main,
    )


def _main_for_scenario(scenario: str, slow: str, fast: str) -> str:
    if scenario in ("accelerator", "I", "i", "1"):
        return slow
    if scenario in ("slower-cores", "II", "ii", "2"):
        return fast
    raise ValueError(
        f"unknown scenario {scenario!r}; expected 'accelerator' (I) or "
        f"'slower-cores' (II)"
    )
