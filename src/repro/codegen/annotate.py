"""Emit the parallelized source with task annotations.

Output format: the transformed C program with ``#pragma repro``
annotations — the open stand-in for the paper's ATOMIUM/MPA parallel
specification or OpenMP extension. Parallel regions show the fork/join
structure chosen by the ILP; chunked loops are *actually split* into
their per-task iteration-range loops (the source-to-source transformation
the paper's tool flow performs).
"""

from __future__ import annotations

from typing import List

from repro.cfront import ir
from repro.codegen.unparse import unparse_expr, unparse_stmt
from repro.core.parallelize import ParallelizeResult
from repro.core.solution import SolutionCandidate
from repro.htg.nodes import ChunkNode, HierarchicalNode, HTGNode, SimpleNode

_INDENT = "    "


def annotate_solution(result: ParallelizeResult, program=None) -> str:
    """Render the chosen solution as annotated C.

    With ``program`` (the :class:`repro.cfront.ir.Program` the solution was
    extracted from) the output is a *complete translation unit*: file-scope
    declarations, the other functions, and the entry function rebuilt
    around the annotated body (local declarations hoisted to the top).
    Stripping the ``#pragma repro`` lines then yields a compilable —
    and, because task indices follow the topological child order, a
    semantically equivalent — sequential program. Without ``program``
    only the annotated body is emitted.
    """
    lines: List[str] = [
        f"/* parallelized by repro ({result.approach} approach) */",
        f"/* platform: {result.platform.describe()} */",
        f"/* estimated execution time: {result.best.exec_time_us:,.1f} us"
        f" (speedup {result.estimated_speedup:.2f}x) */",
        "",
    ]
    if program is None:
        lines.extend(_render_candidate(result.best, depth=0))
        return "\n".join(lines)

    from repro.cfront import ir as _ir
    from repro.codegen.unparse import unparse_function, unparse_stmt as _unparse

    entry_name = result.htg.function_name
    for decl in program.globals.values():
        lines.extend(_unparse(decl, 0))
    lines.append("")
    inlined = _inlined_function_names(result.best)
    for func in program.functions.values():
        if func.name == entry_name or func.name in inlined:
            continue
        lines.append(unparse_function(func))
        lines.append("")

    entry = program.functions[entry_name]
    lines.append(f"{entry.return_type} {entry_name}(void)")
    lines.append("{")
    hoisted = _local_declarations(entry, inlined, program)
    for decl_line in hoisted:
        lines.append(f"{_INDENT}{decl_line}")
    if hoisted:
        lines.append("")
    for body_line in _render_candidate(result.best, depth=1):
        lines.append(body_line)
    lines.append("}")
    return "\n".join(lines)


def _inlined_function_names(candidate: SolutionCandidate) -> set:
    """Functions expanded inline into the solution (construct == 'call')."""
    names = set()

    def visit(cand: SolutionCandidate) -> None:
        node = cand.node
        if isinstance(node, HierarchicalNode) and node.construct == "call":
            names.add(node.label.replace("call ", "", 1))
        for child in cand.child_choice.values():
            visit(child)

    visit(candidate)
    return names


def _local_declarations(entry, inlined, program) -> List[str]:
    """Uninitialized local declarations of the entry function (and of any
    inlined callees), hoisted above the annotated body."""
    from repro.cfront import ir as _ir

    seen = set()
    out: List[str] = []

    def collect(func) -> None:
        for stmt in func.body.walk():
            if isinstance(stmt, _ir.Decl) and stmt.init is None:
                if stmt.name in seen:
                    continue
                seen.add(stmt.name)
                dims = "".join(f"[{d}]" for d in stmt.dims)
                out.append(f"{stmt.ctype} {stmt.name}{dims};")

    collect(entry)
    # Note: inlined callees' bodies reference their parameter names; the
    # full-unit output is only guaranteed re-parseable for call-free entry
    # functions (all bundled benchmarks qualify). Their locals are still
    # hoisted so partial inspection works.
    for name in inlined:
        func = program.functions.get(name)
        if func is not None:
            collect(func)
    return out


def _render_candidate(candidate: SolutionCandidate, depth: int) -> List[str]:
    pad = _INDENT * depth
    node = candidate.node
    if candidate.is_sequential:
        lines = [f"{pad}/* sequential on class {candidate.main_class} */"]
        lines.extend(_render_node_source(node, depth))
        return lines

    assert isinstance(node, HierarchicalNode)

    # Constructs whose control flow encloses the parallel region must keep
    # their headers: a parallelized serial-loop body still iterates, and
    # parallelized if-branches stay guarded by the condition.
    if node.construct == "loop" and isinstance(node.stmt, (ir.ForLoop, ir.WhileLoop)):
        header = _loop_header(node.stmt, pad)
        inner = _render_region(candidate, node, depth + 1)
        return [header, f"{pad}{{", *inner, f"{pad}}}"]
    if node.construct == "if" and isinstance(node.stmt, ir.If):
        return _render_if(candidate, node, depth)
    return _render_region(candidate, node, depth)


def _render_region(
    candidate: SolutionCandidate, node: HierarchicalNode, depth: int
) -> List[str]:
    pad = _INDENT * depth
    lines = [
        f"{pad}#pragma repro parallel region(\"{node.label}\") "
        f"tasks({candidate.num_tasks}) main_class({candidate.main_class})"
    ]
    for segment in candidate.segments:
        if not segment.children:
            continue
        lines.append(
            f"{pad}#pragma repro task({segment.index}) role({segment.role}) "
            f"class({segment.proc_class})"
        )
        lines.append(f"{pad}{{")
        for child in segment.children:
            chosen = candidate.child_choice[child.uid]
            lines.extend(_render_candidate(chosen, depth + 1))
        lines.append(f"{pad}}}")
    lines.append(f"{pad}#pragma repro join region(\"{node.label}\")")
    return lines


def _loop_header(stmt, pad: str) -> str:
    if isinstance(stmt, ir.ForLoop):
        step = f"{stmt.var}++" if stmt.step == 1 else f"{stmt.var} += {stmt.step}"
        return (
            f"{pad}for ({stmt.var} = {unparse_expr(stmt.lower)}; "
            f"{stmt.var} < {unparse_expr(stmt.upper)}; {step})"
        )
    return f"{pad}while ({unparse_expr(stmt.cond)})"


def _render_if(
    candidate: SolutionCandidate, node: HierarchicalNode, depth: int
) -> List[str]:
    """Branches are mutually exclusive: keep the guard, annotate per branch."""
    pad = _INDENT * depth
    lines = [f"{pad}if ({unparse_expr(node.stmt.cond)})"]
    branches = list(node.children)
    for index, branch in enumerate(branches):
        if index == 1:
            lines.append(f"{pad}else")
        segment_index = candidate.task_of_child(branch)
        segment = next(
            (s for s in candidate.segments if s.index == segment_index), None
        )
        if segment is not None:
            lines.append(
                f"{pad}/* branch task({segment.index}) class({segment.proc_class}) */"
            )
        lines.append(f"{pad}{{")
        chosen = candidate.child_choice[branch.uid]
        lines.extend(_render_candidate(chosen, depth + 1))
        lines.append(f"{pad}}}")
    if len(branches) == 1:
        # no else branch in the AHTG: nothing to emit
        pass
    return lines


def _render_node_source(node: HTGNode, depth: int) -> List[str]:
    pad = _INDENT * depth
    if isinstance(node, ChunkNode):
        return _render_chunk(node, depth)
    stmt = getattr(node, "stmt", None)
    if stmt is not None:
        return unparse_stmt(stmt, depth)
    if isinstance(node, HierarchicalNode):
        lines: List[str] = []
        for child in node.children:
            lines.extend(_render_node_source(child, depth))
        return lines
    return [f"{pad}/* {node.label} */"]


def _render_chunk(chunk: ChunkNode, depth: int) -> List[str]:
    """Render a chunk as its iteration-range sub-loop."""
    loop = chunk.loop
    lo = _offset_expr(loop.lower, chunk.iter_lo * loop.step)
    hi = _offset_expr(loop.lower, chunk.iter_hi * loop.step)
    pad = _INDENT * depth
    step = f"{loop.var}++" if loop.step == 1 else f"{loop.var} += {loop.step}"
    header = (
        f"{pad}for ({loop.var} = {unparse_expr(lo)}; "
        f"{loop.var} < {unparse_expr(hi)}; {step})"
        f" /* chunk {chunk.chunk_index + 1}/{chunk.num_chunks} */"
    )
    return [header] + unparse_stmt(loop.body, depth)


def _offset_expr(base: ir.Expr, offset: int) -> ir.Expr:
    if offset == 0:
        return base
    if isinstance(base, ir.Const) and isinstance(base.value, int):
        return ir.Const(base.value + offset)
    return ir.BinOp("+", base, ir.Const(offset))
