"""IR → C source regeneration.

Produces compilable ANSI C from the statement IR — the inverse of
:mod:`repro.cfront.parser` over the supported subset. The annotator
builds on this to emit the transformed (parallelized) program.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cfront import ir

_INDENT = "    "

# Operator precedence for minimal parenthesization (C precedence levels).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}
_UNARY_PRECEDENCE = 11


def unparse_expr(expr: ir.Expr, parent_prec: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(expr, ir.Const):
        if isinstance(expr.value, float):
            text = repr(expr.value)
            if "." not in text and "e" not in text and "inf" not in text:
                text += ".0"
            return text + ("f" if expr.ctype == "float" else "")
        return str(expr.value)
    if isinstance(expr, ir.VarRef):
        return expr.name
    if isinstance(expr, ir.ArrayRef):
        return expr.name + "".join(f"[{unparse_expr(i)}]" for i in expr.indices)
    if isinstance(expr, ir.UnOp):
        inner = unparse_expr(expr.operand, _UNARY_PRECEDENCE)
        # Avoid lexing hazards: "-(-x)" must not render as "--x".
        sep = " " if inner.startswith(expr.op[0]) else ""
        text = f"{expr.op}{sep}{inner}"
        return f"({text})" if parent_prec > _UNARY_PRECEDENCE else text
    if isinstance(expr, ir.Cast):
        inner = unparse_expr(expr.operand, _UNARY_PRECEDENCE)
        text = f"({expr.ctype}){inner}"
        return f"({text})" if parent_prec > _UNARY_PRECEDENCE else text
    if isinstance(expr, ir.BinOp):
        prec = _PRECEDENCE.get(expr.op, 9)
        left = unparse_expr(expr.left, prec)
        right = unparse_expr(expr.right, prec + 1)  # left-assoc
        text = f"{left} {expr.op} {right}"
        return f"({text})" if parent_prec > prec else text
    if isinstance(expr, ir.CallExpr):
        args = ", ".join(unparse_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    raise TypeError(f"cannot unparse {type(expr).__name__}")


def unparse_stmt(stmt: ir.Stmt, depth: int = 0) -> List[str]:
    """Render a statement as a list of indented source lines."""
    pad = _INDENT * depth
    if isinstance(stmt, ir.Block):
        lines = [f"{pad}{{"]
        for child in stmt.stmts:
            lines.extend(unparse_stmt(child, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ir.Decl):
        dims = "".join(f"[{d}]" for d in stmt.dims)
        init = f" = {unparse_expr(stmt.init)}" if stmt.init is not None else ""
        return [f"{pad}{stmt.ctype} {stmt.name}{dims}{init};"]
    if isinstance(stmt, ir.Assign):
        return [f"{pad}{unparse_expr(stmt.lhs)} = {unparse_expr(stmt.rhs)};"]
    if isinstance(stmt, ir.CallStmt):
        return [f"{pad}{unparse_expr(stmt.call)};"]
    if isinstance(stmt, ir.ExprStmt):
        return [f"{pad}{unparse_expr(stmt.expr)};"]
    if isinstance(stmt, ir.ForLoop):
        header = (
            f"{pad}for ({stmt.var} = {unparse_expr(stmt.lower)}; "
            f"{stmt.var} < {unparse_expr(stmt.upper)}; "
            + (f"{stmt.var}++)" if stmt.step == 1 else f"{stmt.var} += {stmt.step})")
        )
        return [header] + unparse_stmt(stmt.body, depth)
    if isinstance(stmt, ir.WhileLoop):
        return [f"{pad}while ({unparse_expr(stmt.cond)})"] + unparse_stmt(
            stmt.body, depth
        )
    if isinstance(stmt, ir.If):
        lines = [f"{pad}if ({unparse_expr(stmt.cond)})"]
        lines.extend(unparse_stmt(stmt.then_block, depth))
        if stmt.else_block is not None:
            lines.append(f"{pad}else")
            lines.extend(unparse_stmt(stmt.else_block, depth))
        return lines
    if isinstance(stmt, ir.Return):
        if stmt.expr is not None:
            return [f"{pad}return {unparse_expr(stmt.expr)};"]
        return [f"{pad}return;"]
    raise TypeError(f"cannot unparse {type(stmt).__name__}")


def unparse_function(func: ir.Function) -> str:
    """Render a complete function definition."""
    if func.params:
        params = ", ".join(
            f"{p.ctype} {'*' if p.is_pointer else ''}{p.name}" for p in func.params
        )
    else:
        params = "void"
    header = f"{func.return_type} {func.name}({params})"
    return "\n".join([header] + unparse_stmt(func.body, 0))


def unparse_program(program: ir.Program) -> str:
    """Render a whole translation unit (globals then functions)."""
    parts: List[str] = []
    for decl in program.globals.values():
        parts.extend(unparse_stmt(decl, 0))
    if parts:
        parts.append("")
    for func in program.functions.values():
        parts.append(unparse_function(func))
        parts.append("")
    return "\n".join(parts)
