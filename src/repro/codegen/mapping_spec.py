"""Pre-mapping specification (task → processor class), JSON format.

The paper's parallelization tool passes a pre-mapping specification to
the downstream mapping tool "to ensure that tasks are mapped to
processing units for which they are optimized" (Section V). This module
emits that specification as a JSON-serializable dictionary.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.core.parallelize import ParallelizeResult
from repro.core.solution import SolutionCandidate
from repro.htg.nodes import ChunkNode


def mapping_spec(result: ParallelizeResult) -> Dict[str, Any]:
    """Build the pre-mapping specification for a parallelization result."""
    platform = result.platform
    return {
        "format": "repro-premapping",
        "version": 1,
        "approach": result.approach,
        "platform": {
            "name": platform.name,
            "classes": [
                {
                    "name": pc.name,
                    "frequency_mhz": pc.frequency_mhz,
                    "count": pc.count,
                }
                for pc in platform.processor_classes
            ],
            "main_class": platform.main_class.name,
            "task_creation_overhead_us": platform.task_creation_overhead_us,
        },
        "estimated_execution_time_us": result.best.exec_time_us,
        "tasks": _tasks_of(result.best, path="root"),
    }


def _tasks_of(candidate: SolutionCandidate, path: str) -> List[Dict[str, Any]]:
    if candidate.is_sequential:
        return [
            {
                "path": path,
                "role": "sequential",
                "class": candidate.main_class,
                "node": candidate.node.label,
                "exec_time_us": candidate.exec_time_us,
            }
        ]
    tasks: List[Dict[str, Any]] = []
    for segment in candidate.segments:
        if not segment.children:
            continue
        entry: Dict[str, Any] = {
            "path": f"{path}/T{segment.index}",
            "role": segment.role,
            "class": segment.proc_class,
            "statements": [],
            "subtasks": [],
        }
        for child in segment.children:
            chosen = candidate.child_choice[child.uid]
            if isinstance(child, ChunkNode):
                entry["statements"].append(
                    {
                        "node": child.label,
                        "loop_var": child.loop.var,
                        "iteration_range": [child.iter_lo, child.iter_hi],
                    }
                )
            elif chosen.is_sequential:
                entry["statements"].append({"node": child.label})
            else:
                entry["subtasks"].extend(
                    _tasks_of(chosen, f"{path}/T{segment.index}")
                )
        tasks.append(entry)
    return tasks


def mapping_spec_json(result: ParallelizeResult, indent: int = 2) -> str:
    """The specification as a JSON string."""
    return json.dumps(mapping_spec(result), indent=indent)
