"""Source-to-source output stage.

The paper's tool annotates the application source to describe the
extracted parallelism (ATOMIUM/MPA-compatible or OpenMP-extension
format) and emits a *pre-mapping specification* binding tasks to
processor classes. This subpackage provides the open equivalents:

* :mod:`repro.codegen.unparse` — regenerates C from the IR;
* :mod:`repro.codegen.annotate` — emits the parallelized source with
  ``#pragma repro`` task/section annotations and split chunk loops;
* :mod:`repro.codegen.mapping_spec` — the JSON pre-mapping specification.
"""

from repro.codegen.annotate import annotate_solution
from repro.codegen.mapping_spec import mapping_spec
from repro.codegen.unparse import unparse_function, unparse_program, unparse_stmt

__all__ = [
    "annotate_solution",
    "mapping_spec",
    "unparse_function",
    "unparse_program",
    "unparse_stmt",
]
