"""The end-to-end parallelization tool flow (paper Figure 6).

``ToolFlow`` chains every stage: parse C → profile (interpreter) → cost
annotation → AHTG extraction → ILP parallelization (heterogeneous or the
homogeneous baseline) → flattening → simulation → speedup, plus the
source-annotation/pre-mapping outputs of :mod:`repro.codegen`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.cfront import ir, parse_c_source
from repro.cfront.defuse import compute_call_summaries
from repro.core.parallelize import (
    HeterogeneousParallelizer,
    HomogeneousParallelizer,
    ParallelizeOptions,
    ParallelizeResult,
)
from repro.htg.builder import BuildOptions, build_htg
from repro.htg.graph import HTG
from repro.platforms.description import Platform
from repro.simulator.engine import SimOptions
from repro.simulator.run import SolutionEvaluation, evaluate_solution
from repro.timing.estimator import CostDatabase, annotate_costs


@dataclass
class FlowResult:
    """Everything the tool flow produced for one (program, platform) run."""

    program: ir.Program
    htg: HTG
    cost_db: CostDatabase
    result: ParallelizeResult
    evaluation: SolutionEvaluation

    @property
    def speedup(self) -> float:
        return self.evaluation.speedup

    @property
    def estimated_speedup(self) -> float:
        return self.result.estimated_speedup


class ToolFlow:
    """Configured pipeline from C source to evaluated parallel solution."""

    def __init__(
        self,
        platform: Platform,
        approach: str = "heterogeneous",
        build_options: Optional[BuildOptions] = None,
        parallelize_options: Optional[ParallelizeOptions] = None,
        sim_options: Optional[SimOptions] = None,
    ):
        if approach not in ("heterogeneous", "homogeneous"):
            raise ValueError(f"unknown approach {approach!r}")
        self.platform = platform
        self.approach = approach
        self.build_options = build_options or BuildOptions()
        self.parallelize_options = parallelize_options or ParallelizeOptions()
        self.sim_options = sim_options or SimOptions()

    def run(self, source: str, entry: str = "main") -> FlowResult:
        """Parse, parallelize and evaluate a C program."""
        program = parse_c_source(source)
        return self.run_program(program, entry)

    def run_program(self, program: ir.Program, entry: str = "main") -> FlowResult:
        func = program.entry(entry)
        summaries = compute_call_summaries(program)
        cost_db = annotate_costs(program, func)
        htg = build_htg(
            program,
            func,
            cost_db=cost_db,
            options=self.build_options,
            total_cores=self.platform.total_cores,
            summaries=summaries,
        )
        if self.approach == "heterogeneous":
            parallelizer = HeterogeneousParallelizer(
                self.platform, self.parallelize_options
            )
        else:
            parallelizer = HomogeneousParallelizer(
                self.platform, self.parallelize_options
            )
        result = parallelizer.parallelize(htg)
        evaluation = evaluate_solution(result, self.sim_options)
        return FlowResult(program, htg, cost_db, result, evaluation)


def parallelize_source(
    source: str,
    platform: Platform,
    entry: str = "main",
    approach: str = "heterogeneous",
    **kwargs,
) -> Tuple[ParallelizeResult, SolutionEvaluation]:
    """One-call convenience API: returns (parallelize result, evaluation)."""
    flow = ToolFlow(platform, approach=approach, **kwargs)
    outcome = flow.run(source, entry=entry)
    return outcome.result, outcome.evaluation
