"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``parallelize FILE.c`` — run the full tool flow on a C file and print
  the solution, speedup, and optionally the annotated source, the
  pre-mapping spec and a Gantt chart of the simulated schedule.
* ``inspect FILE.c`` — show the extracted AHTG and loop classifications.
* ``figure {7a,7b,8a,8b}`` / ``table1`` — regenerate paper experiments.
* ``verify`` — certify benchmark solutions (structural checks, static
  race detection, ILP certificate replay, happens-before trace
  sanitizing, mapping lint) and cross-check the ILP backends.
* ``benchmarks`` — list the bundled benchmark kernels.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.platforms import big_little, config_a, config_b, homogeneous
from repro.platforms.description import Platform

_PLATFORMS = {
    "config-a": config_a,
    "config-b": config_b,
    "big-little": lambda scenario: big_little(scenario=scenario),
}


def _resolve_platform(name: str, scenario: str) -> Platform:
    if name in _PLATFORMS:
        return _PLATFORMS[name](scenario)
    if name.startswith("homogeneous"):
        # homogeneous[:N[:MHZ]]
        parts = name.split(":")
        cores = int(parts[1]) if len(parts) > 1 else 4
        mhz = float(parts[2]) if len(parts) > 2 else 500.0
        return homogeneous(cores, mhz)
    raise SystemExit(
        f"unknown platform {name!r}; choose from {sorted(_PLATFORMS)} or "
        f"homogeneous[:N[:MHZ]]"
    )


def _solver_options(args: argparse.Namespace):
    """Build :class:`ParallelizeOptions` from the shared solver flags."""
    from repro.core.parallelize import ParallelizeOptions

    # ``verify``'s --backend accepts "both" and iterates the backends
    # itself; anything but a concrete backend falls back to the default.
    backend = getattr(args, "backend", None)
    if backend not in ("scipy", "bnb"):
        backend = "scipy"
    return ParallelizeOptions(
        jobs=args.jobs,
        cache=args.cache or args.cache_dir is not None,
        cache_dir=args.cache_dir,
        batch_size=args.batch_size,
        backend=backend,
        portfolio=args.portfolio,
        heuristic_budget=args.heuristic_budget,
        seed=args.seed,
    )


def _add_solver_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="solve independent ILPs on N worker processes (default: 1, "
        "serial; results are identical for any value)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=8, metavar="K",
        help="group up to K small ILPs into one worker task when pooled "
        "(default: 8; 1 dispatches every solve individually; results are "
        "identical for any value)",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help="memoize ILP solves on disk (default dir: .repro_cache/)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="on-disk solver cache directory (implies --cache)",
    )
    parser.add_argument(
        "--portfolio", default="exact",
        choices=["exact", "heuristic", "race"],
        help="solve strategy: 'exact' runs only the ILP backends "
        "(default); 'heuristic' answers every time-objective ILP with "
        "the anytime list-scheduler/GA portfolio (fast, tagged with a "
        "proven optimality gap); 'race' runs the heuristic first, "
        "injects its answer as a branch-and-bound incumbent, and keeps "
        "the better of the two — degrading gracefully to the heuristic "
        "answer if the worker pool is lost",
    )
    parser.add_argument(
        "--heuristic-budget", type=int, default=40, metavar="G",
        help="genetic-refinement generation budget per heuristic solve "
        "(default: 40; 0 skips the GA and keeps the list-scheduled "
        "solution)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="random seed of the heuristic portfolio (default: 0); runs "
        "are bit-reproducible for a fixed seed regardless of --jobs or "
        "--batch-size",
    )


def _cmd_parallelize(args: argparse.Namespace) -> int:
    from repro.codegen import annotate_solution
    from repro.codegen.mapping_spec import mapping_spec_json
    from repro.simulator.trace import render_gantt
    from repro.toolflow.flow import ToolFlow

    platform = _resolve_platform(args.platform, args.scenario)
    with open(args.source, "r", encoding="utf-8") as handle:
        source = handle.read()
    options = _solver_options(args)
    if args.verify:
        # Certify at solve time too: replay every accepted budget-sweep
        # ILP solution against Eq. 1-18 (the certificate tier of the
        # post-run report below).
        from dataclasses import replace

        options = replace(options, verify=True)
    flow = ToolFlow(
        platform, approach=args.approach, parallelize_options=options
    )
    outcome = flow.run(source, entry=args.entry)

    print(platform.describe())
    print(f"sequential: {outcome.evaluation.sequential_us:12,.1f} us")
    print(f"parallel  : {outcome.evaluation.parallel_us:12,.1f} us")
    print(
        f"speedup   : {outcome.speedup:12.2f}x "
        f"(limit {outcome.evaluation.theoretical_limit:.2f}x, "
        f"model estimate {outcome.estimated_speedup:.2f}x)"
    )
    print(f"solution  : {outcome.result.best.describe()}")
    print(
        f"ILPs      : {outcome.result.stats.num_ilps} "
        f"({outcome.result.stats.total_variables:,} vars, "
        f"{outcome.result.stats.total_constraints:,} constraints, "
        f"{outcome.result.stats.total_solve_seconds:.1f}s solve time)"
    )
    pool = outcome.result.stats.pool
    if pool is not None and (pool.jobs > 1 or pool.cache_hits):
        print(
            f"solver    : jobs={pool.jobs}, {pool.dispatched} pooled / "
            f"{pool.inline_solves} inline solves, "
            f"{pool.cache_hits} cache hits, "
            f"peak {pool.peak_in_flight} in flight"
        )
    if pool is not None and pool.jobs > 1:
        print(
            f"dispatch  : {pool.batches} batches (max size "
            f"{pool.max_batch_size}), peak queue {pool.peak_queue_depth}, "
            f"{pool.bytes_shipped:,} bytes shipped"
        )
    if pool is not None and (pool.heuristic_solves or pool.degraded_solves):
        print(
            f"portfolio : {pool.heuristic_solves} heuristic solves, "
            f"{pool.incumbents_injected} incumbents injected, "
            f"{pool.races_won_by_heuristic} races won by heuristic, "
            f"{pool.degraded_solves} degraded, "
            f"mean gap {100.0 * pool.mean_gap:.1f}%"
        )
    best = outcome.result.best
    if best.opt_gap is not None:
        print(
            f"gap       : best solution is heuristic "
            f"(≤ {100.0 * best.opt_gap:.1f}% from optimal)"
        )

    if args.annotate:
        text = annotate_solution(outcome.result, program=outcome.program)
        with open(args.annotate, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"annotated source written to {args.annotate}")
    if args.mapping:
        with open(args.mapping, "w", encoding="utf-8") as handle:
            handle.write(mapping_spec_json(outcome.result) + "\n")
        print(f"pre-mapping spec written to {args.mapping}")
    if args.gantt:
        print()
        print(render_gantt(outcome.evaluation.sim, outcome.evaluation.graph))
    if args.artifacts:
        from repro.toolflow.artifacts import write_artifacts

        written = write_artifacts(outcome, args.artifacts)
        print(f"artifact bundle ({len(written)} files) written to {args.artifacts}")
    if args.verify:
        from repro.analysis import certify_run

        report = certify_run(
            outcome.result,
            evaluation=outcome.evaluation,
            subject={"source": args.source, "platform": platform.name,
                     "approach": args.approach},
        )
        print()
        print(report.render_text())
        if not report.ok:
            return 1
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.cfront import ir, parse_c_program
    from repro.cfront.defuse import compute_call_summaries
    from repro.cfront.deps import classify_loop
    from repro.htg.builder import build_htg
    from repro.timing.estimator import annotate_costs

    program = parse_c_program(args.source)
    func = program.entry(args.entry)
    summaries = compute_call_summaries(program)
    cost_db = annotate_costs(program, func)
    htg = build_htg(program, func, cost_db=cost_db, summaries=summaries)

    print(f"function {func.name!r}: {htg.num_nodes} AHTG nodes, depth {htg.depth}")
    print()
    print(htg.pretty())
    print()
    print("loop classifications:")
    for stmt in func.body.walk():
        if isinstance(stmt, ir.ForLoop):
            cls = classify_loop(stmt, summaries)
            print(
                f"  for {stmt.var} @ {stmt.coord or '?'}: "
                f"{cls.parallelism.value} ({cls.reason})"
            )
    if args.dot:
        from repro.htg.visualize import htg_to_dot

        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(htg_to_dot(htg) + "\n")
        print(f"DOT graph written to {args.dot}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.toolflow.experiments import run_figure
    from repro.toolflow.report import render_figure
    from repro.toolflow.verify import resolve_verify_benchmarks

    names = resolve_verify_benchmarks(args.benchmarks) if args.benchmarks else None
    print(
        render_figure(
            run_figure(
                args.figure, benchmarks=names,
                parallelize_options=_solver_options(args),
            )
        )
    )
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.toolflow.experiments import run_table1
    from repro.toolflow.report import render_table1
    from repro.toolflow.verify import resolve_verify_benchmarks

    names = resolve_verify_benchmarks(args.benchmarks) if args.benchmarks else None
    print(
        render_table1(
            run_table1(benchmarks=names, parallelize_options=_solver_options(args))
        )
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    import json as _json

    from repro.toolflow.verify import (
        resolve_verify_benchmarks,
        resolve_verify_platforms,
        run_verify,
    )

    names = resolve_verify_benchmarks(args.benchmarks)
    platforms = resolve_verify_platforms(args.platform, args.scenario)
    backends = ["scipy", "bnb"] if args.backend == "both" else [args.backend]
    approaches = (
        ["heterogeneous", "homogeneous"]
        if args.approach == "both"
        else [args.approach]
    )
    suite = run_verify(
        benchmarks=names,
        platforms=platforms,
        approaches=approaches,
        backends=backends,
        parallelize_options=_solver_options(args),
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            _json.dump(suite.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.format == "json":
        print(_json.dumps(suite.to_dict(), indent=2, sort_keys=True))
    else:
        print(suite.render_text())
    return 0 if suite.ok else 1


def _cmd_benchmarks(_args: argparse.Namespace) -> int:
    from repro.bench_suite import BENCHMARKS, benchmark_names

    for name in benchmark_names():
        bench = BENCHMARKS[name]
        print(f"{name:<14} [{bench.character:<14}] {bench.description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    par = sub.add_parser("parallelize", help="parallelize a C file")
    par.add_argument("source")
    par.add_argument("--platform", default="config-a")
    par.add_argument(
        "--scenario", default="accelerator", choices=["accelerator", "slower-cores"]
    )
    par.add_argument(
        "--approach", default="heterogeneous",
        choices=["heterogeneous", "homogeneous"],
    )
    par.add_argument("--entry", default="main")
    par.add_argument("--annotate", metavar="OUT.c")
    par.add_argument("--mapping", metavar="OUT.json")
    par.add_argument("--gantt", action="store_true")
    par.add_argument(
        "--artifacts", metavar="DIR",
        help="write the full artifact bundle (annotated/OpenMP source, "
        "pre-mapping, DOT graphs, schedule, report) to DIR",
    )
    par.add_argument(
        "--verify", action="store_true",
        help="certify the solution (races, ILP certificates, trace, "
        "mapping) and exit nonzero on any diagnostic",
    )
    par.add_argument(
        "--backend", default="scipy", choices=["scipy", "bnb"],
        help="exact ILP backend (default: scipy; 'bnb' is the pure-python "
        "branch-and-bound solver, which accepts --portfolio race "
        "incumbent warm starts)",
    )
    _add_solver_args(par)
    par.set_defaults(func=_cmd_parallelize)

    ins = sub.add_parser("inspect", help="show the AHTG of a C file")
    ins.add_argument("source")
    ins.add_argument("--entry", default="main")
    ins.add_argument("--dot", metavar="OUT.dot")
    ins.set_defaults(func=_cmd_inspect)

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("figure", choices=["7a", "7b", "8a", "8b"])
    fig.add_argument("--benchmarks")
    _add_solver_args(fig)
    fig.set_defaults(func=_cmd_figure)

    tab = sub.add_parser("table1", help="regenerate Table I")
    tab.add_argument("--benchmarks")
    _add_solver_args(tab)
    tab.set_defaults(func=_cmd_table1)

    ver = sub.add_parser(
        "verify", help="certify benchmark solutions on both ILP backends"
    )
    ver.add_argument(
        "--benchmarks", metavar="NAMES",
        help="comma-separated benchmark names (default: all ten)",
    )
    ver.add_argument(
        "--platform", default="both", choices=["config-a", "config-b", "both"]
    )
    ver.add_argument(
        "--scenario", default="accelerator",
        choices=["accelerator", "slower-cores"],
    )
    ver.add_argument("--backend", default="both", choices=["scipy", "bnb", "both"])
    ver.add_argument(
        "--approach", default="heterogeneous",
        choices=["heterogeneous", "homogeneous", "both"],
    )
    ver.add_argument("--format", default="text", choices=["text", "json"])
    ver.add_argument(
        "--out", metavar="OUT.json",
        help="also write the machine-readable suite report to OUT.json",
    )
    _add_solver_args(ver)
    ver.set_defaults(func=_cmd_verify)

    lst = sub.add_parser("benchmarks", help="list bundled benchmarks")
    lst.set_defaults(func=_cmd_benchmarks)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)
